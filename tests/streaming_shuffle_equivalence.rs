//! Equivalence and resource-contract suite for the map-side streaming shuffle
//! (PR 4), companion to `shuffle_pipeline_determinism.rs`.
//!
//! Contracts enforced here:
//!
//! * **three-way equivalence** — `shuffle_streaming` ≡ `shuffle_parallel` ≡
//!   the sequential `BTreeMap` reference over random key/value/partitioner
//!   combinations, at every thread count;
//! * **no clones** — keys and values are moved from the mapper's `emit` into
//!   their reduce group, never cloned;
//! * **no all-pairs vector** — the streaming path's largest single heap
//!   allocation stays at per-shard scale, while the gather design's is the
//!   job-wide all-pairs vector (asserted with a counting global allocator);
//! * **pipelined-cancel interaction** — a staged iteration whose map output is
//!   already sharded map-side cancels cleanly and leaves later iterations
//!   bit-identical;
//! * **cached counts** — `total_records` / `total_groups` are identical on
//!   every path.
//!
//! The CI thread-matrix job runs this file with `EARL_THREADS` ∈ {1, 2, 4, 8};
//! when the variable is unset, every count is covered in-process.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

use earl_mapreduce::partition::{HashPartitioner, Partitioner};
use earl_mapreduce::{contrib, run_job, InputSource, JobConf, PipelinedSession, ShuffleOutput};
use earl_parallel::sharded_emit;
use rand::rngs::StdRng;
use rand::Rng;

// ---------------------------------------------------------------------------
// Thread-local allocation tracking: installed binary-wide, but only counting
// on the thread that opted in — the test harness's other threads never touch
// the counters.
// ---------------------------------------------------------------------------

thread_local! {
    static TRACKING: Cell<bool> = const { Cell::new(false) };
    static TOTAL_BYTES: Cell<u64> = const { Cell::new(0) };
    static MAX_SINGLE: Cell<u64> = const { Cell::new(0) };
}

struct CountingAllocator;

impl CountingAllocator {
    fn record(size: usize) {
        let _ = TRACKING.try_with(|t| {
            if t.get() {
                let size = size as u64;
                let _ = TOTAL_BYTES.try_with(|c| c.set(c.get() + size));
                let _ = MAX_SINGLE.try_with(|m| {
                    if size > m.get() {
                        m.set(size);
                    }
                });
            }
        });
    }
}

// SAFETY: delegates every operation to `System`; the bookkeeping touches only
// `Cell`s in this thread's TLS and never allocates.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        Self::record(layout.size());
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        Self::record(new_size);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Runs `f` with allocation tracking on this thread, returning
/// `(result, total_bytes_allocated, largest_single_allocation)`.
fn measure_allocations<R>(f: impl FnOnce() -> R) -> (R, u64, u64) {
    TRACKING.with(|t| t.set(true));
    TOTAL_BYTES.with(|c| c.set(0));
    MAX_SINGLE.with(|m| m.set(0));
    let out = f();
    TRACKING.with(|t| t.set(false));
    (out, TOTAL_BYTES.with(Cell::get), MAX_SINGLE.with(Cell::get))
}

// ---------------------------------------------------------------------------
// Shared helpers
// ---------------------------------------------------------------------------

/// Thread counts under test: the `EARL_THREADS` matrix value when set, the
/// full {1, 2, 4, 8} ladder otherwise.
fn thread_counts() -> Vec<usize> {
    match std::env::var("EARL_THREADS") {
        Ok(v) => vec![v.parse().expect("EARL_THREADS must be a positive integer")],
        Err(_) => vec![1, 2, 4, 8],
    }
}

fn seeded(seed: u64) -> StdRng {
    earl_bootstrap::rng::seeded_rng(seed)
}

fn rand_word(rng: &mut StdRng, max_len: usize) -> String {
    const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789_-";
    let len = rng.gen_range(1..=max_len);
    (0..len)
        .map(|_| ALPHABET[rng.gen_range(0..ALPHABET.len())] as char)
        .collect()
}

/// A deliberately skewed partitioner: everything below the pivot goes to
/// partition 0.
struct PivotPartitioner(u64);

impl Partitioner<u64> for PivotPartitioner {
    fn partition(&self, key: &u64, num_partitions: usize) -> usize {
        if *key < self.0 {
            0
        } else {
            (*key % num_partitions as u64) as usize
        }
    }
}

/// The streaming path over `pairs` in input order: every pair emitted into its
/// shard map-side, then the reduce-side merge — no all-pairs handoff.
fn stream_pairs<K, V, P>(
    pairs: &[(K, V)],
    partitions: usize,
    partitioner: &P,
    threads: usize,
) -> ShuffleOutput<K, V>
where
    K: Ord + std::hash::Hash + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
    P: Partitioner<K> + Sync,
{
    let partitions = partitions.max(1);
    let (_, buffers) = sharded_emit(pairs.len(), partitions, threads, |i, buf| {
        let (key, value) = pairs[i].clone();
        buf.emit(partitioner.partition(&key, partitions), (key, value));
    });
    ShuffleOutput::shuffle_streaming(buffers, threads)
}

// ---------------------------------------------------------------------------
// Property: three-way equivalence on arbitrary inputs
// ---------------------------------------------------------------------------

/// streaming ≡ sharded ≡ sequential over arbitrary key/value/partitioner
/// combinations at every thread count (32 randomized cases; the case seed
/// reproduces a failure).
#[test]
fn streaming_matches_sharded_and_sequential_on_arbitrary_inputs() {
    for case in 0u64..32 {
        let mut rng = seeded(0x57E4_0000 + case);
        let n = rng.gen_range(0..4_000usize);
        let key_space = rng.gen_range(1..200u64);
        let partitions = rng.gen_range(1..12usize);

        // u64 keys, String values, skewed partitioner.
        let pairs: Vec<(u64, String)> = (0..n)
            .map(|_| (rng.gen_range(0..key_space), rand_word(&mut rng, 12)))
            .collect();
        let pivot = PivotPartitioner(key_space / 2);
        let reference = ShuffleOutput::shuffle(pairs.clone(), partitions, &pivot).into_partitions();
        for &threads in &thread_counts() {
            let sharded =
                ShuffleOutput::shuffle_parallel(pairs.clone(), partitions, &pivot, threads)
                    .into_partitions();
            assert_eq!(
                sharded, reference,
                "sharded: case {case}, threads {threads}"
            );
            let streamed = stream_pairs(&pairs, partitions, &pivot, threads).into_partitions();
            assert_eq!(
                streamed, reference,
                "streaming: case {case}, threads {threads}"
            );
        }

        // String keys, u64 values, hash partitioner.
        let pairs: Vec<(String, u64)> = (0..n)
            .map(|_| (rand_word(&mut rng, 6), rng.gen_range(0..u64::MAX)))
            .collect();
        let reference =
            ShuffleOutput::shuffle(pairs.clone(), partitions, &HashPartitioner).into_partitions();
        for &threads in &thread_counts() {
            let streamed =
                stream_pairs(&pairs, partitions, &HashPartitioner, threads).into_partitions();
            assert_eq!(
                streamed, reference,
                "streaming: case {case}, threads {threads}"
            );
        }
    }
}

/// The cached `total_records` / `total_groups` agree across all three paths
/// and with a manual walk of the partitions.
#[test]
fn cached_counts_agree_on_every_path() {
    let pairs: Vec<(u64, u64)> = (0..6_000).map(|i| (i % 113, i)).collect();
    let seq = ShuffleOutput::shuffle(pairs.clone(), 5, &HashPartitioner);
    assert_eq!(seq.total_records(), 6_000);
    assert_eq!(seq.total_groups(), 113);
    for &threads in &thread_counts() {
        let par = ShuffleOutput::shuffle_parallel(pairs.clone(), 5, &HashPartitioner, threads);
        let streamed = stream_pairs(&pairs, 5, &HashPartitioner, threads);
        for out in [&par, &streamed] {
            assert_eq!(out.total_records(), 6_000, "threads {threads}");
            assert_eq!(out.total_groups(), 113, "threads {threads}");
        }
        let manual_records: u64 = streamed
            .partitions()
            .flat_map(|p| p.values())
            .map(|v| v.len() as u64)
            .sum();
        assert_eq!(manual_records, 6_000);
    }
}

// ---------------------------------------------------------------------------
// Move semantics: keys are never cloned
// ---------------------------------------------------------------------------

static KEY_CLONES: AtomicUsize = AtomicUsize::new(0);

/// A key that counts clones (only this test touches the counter).
#[derive(Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
struct CountedKey(u64);

impl Clone for CountedKey {
    fn clone(&self) -> Self {
        KEY_CLONES.fetch_add(1, Ordering::Relaxed);
        CountedKey(self.0)
    }
}

struct IdentityPartitioner;
impl Partitioner<CountedKey> for IdentityPartitioner {
    fn partition(&self, key: &CountedKey, num_partitions: usize) -> usize {
        (key.0 as usize) % num_partitions
    }
}

/// Pairs emitted map-side are moved through emit → shard bucket → concat →
/// group; zero key clones on the whole streaming path, at every thread count.
#[test]
fn streaming_path_never_clones_keys() {
    for &threads in &thread_counts() {
        let before = KEY_CLONES.load(Ordering::Relaxed);
        let (_, buffers) = sharded_emit(2_000usize, 4, threads, |i, buf| {
            // The pair is *constructed* here, exactly like a mapper emitting:
            // no source collection to clone from.
            let key = CountedKey((i as u64) % 13);
            let shard = IdentityPartitioner.partition(&key, 4);
            buf.emit(shard, (key, i as u64));
        });
        let out = ShuffleOutput::shuffle_streaming(buffers, threads);
        assert_eq!(out.total_records(), 2_000);
        assert_eq!(out.total_groups(), 13);
        assert_eq!(
            KEY_CLONES.load(Ordering::Relaxed),
            before,
            "streaming shuffle must move keys, never clone them (threads {threads})"
        );
    }
}

// ---------------------------------------------------------------------------
// Allocation contract: the all-pairs vector is gone
// ---------------------------------------------------------------------------

/// The gather design's largest allocation is the job-wide all-pairs vector;
/// the streaming design's largest allocation stays at per-shard scale.  Both
/// run single-threaded on this thread so the thread-local counters see every
/// allocation.
#[test]
fn streaming_path_never_materialises_an_all_pairs_vector() {
    const TASKS: usize = 64;
    const PAIRS_PER_TASK: usize = 1_024;
    const SHARDS: usize = 8;
    let n = TASKS * PAIRS_PER_TASK; // 65_536 pairs × 16 bytes = 1 MiB
    let pair_bytes = (n * std::mem::size_of::<(u64, u64)>()) as u64;
    let gen = |task: usize, j: usize| -> (u64, u64) {
        let i = (task * PAIRS_PER_TASK + j) as u64;
        (i.wrapping_mul(0x9E37_79B9_7F4A_7C15) % 4_096, i)
    };

    // Gather design (the old engine): every task's pairs concatenated into one
    // all-pairs vector, then sharded.
    let ((), _, gather_max) = measure_allocations(|| {
        let mut all_pairs: Vec<(u64, u64)> = Vec::new();
        for task in 0..TASKS {
            for j in 0..PAIRS_PER_TASK {
                all_pairs.push(gen(task, j));
            }
        }
        let out = ShuffleOutput::shuffle_parallel(all_pairs, SHARDS, &HashPartitioner, 1);
        assert_eq!(out.total_records(), n as u64);
    });

    // Streaming design: each task emits straight into shard buffers.
    let ((), _, streaming_max) = measure_allocations(|| {
        let (_, buffers) = sharded_emit(TASKS, SHARDS, 1, |task, buf| {
            for j in 0..PAIRS_PER_TASK {
                let (key, value) = gen(task, j);
                let shard = HashPartitioner.partition(&key, SHARDS);
                buf.emit(shard, (key, value));
            }
        });
        let out = ShuffleOutput::shuffle_streaming(buffers, 1);
        assert_eq!(out.total_records(), n as u64);
    });

    assert!(
        gather_max >= pair_bytes,
        "gather must have materialised the all-pairs vector ({gather_max} < {pair_bytes})"
    );
    assert!(
        streaming_max <= pair_bytes / 4,
        "streaming max single allocation {streaming_max} should stay at per-shard scale \
         (≤ {} for {SHARDS} shards), not the all-pairs {pair_bytes}",
        pair_bytes / 4
    );
}

// ---------------------------------------------------------------------------
// Pipelined-cancel interaction
// ---------------------------------------------------------------------------

fn pipeline_session(lines: &[String]) -> PipelinedSession {
    let cluster = earl_cluster::Cluster::builder()
        .nodes(3)
        .cost_model(earl_cluster::CostModel::commodity_2012())
        .seed(5)
        .build()
        .unwrap();
    let dfs = earl_dfs::Dfs::new(
        cluster,
        earl_dfs::DfsConfig {
            block_size: 1 << 12,
            replication: 2,
            io_chunk: 256,
        },
    )
    .unwrap();
    dfs.write_lines("/pipe", lines).unwrap();
    PipelinedSession::new(dfs)
}

/// A staged iteration holds map output that is already sharded map-side;
/// cancelling it must drop those buffers cleanly and leave the next
/// iterations bit-identical to a schedule that never speculated.
#[test]
fn cancelling_a_staged_streaming_iteration_leaves_later_iterations_identical() {
    let lines: Vec<String> = (0..5_000)
        .map(|i| format!("k{} k{} v{}", i % 97, i % 7, i))
        .collect();
    let conf = |threads: usize| {
        JobConf::new("wc", InputSource::Path("/pipe".into()))
            .with_reducers(6)
            .with_parallelism(Some(threads))
    };

    for &threads in &thread_counts() {
        // Reference: plain schedule, two committed iterations.
        let mut plain = pipeline_session(&lines);
        let first_ref = plain
            .run_iteration(
                &conf(1),
                &contrib::TokenCountMapper,
                &contrib::WordCountReducer,
            )
            .unwrap();
        let second_ref = plain
            .run_iteration(
                &conf(1),
                &contrib::TokenCountMapper,
                &contrib::WordCountReducer,
            )
            .unwrap();

        // Speculative schedule: iteration 2 is staged (its map phase — and
        // with it the map-side sharding — already ran), then cancelled, then
        // re-run for real.
        let mut spec = pipeline_session(&lines);
        let first = spec
            .run_iteration(
                &conf(threads),
                &contrib::TokenCountMapper,
                &contrib::WordCountReducer,
            )
            .unwrap();
        assert_eq!(first.outputs, first_ref.outputs, "threads {threads}");
        assert_eq!(first.counters, first_ref.counters);

        let pending = spec
            .begin_iteration(&conf(threads), &contrib::TokenCountMapper)
            .unwrap();
        assert!(pending.map_stats().map_tasks >= 1);
        assert_eq!(
            pending.map_stats().shuffle_records,
            first_ref.stats.shuffle_records,
            "the staged map phase counted its sharded records"
        );
        let wasted = spec.cancel_iteration(pending);
        assert_eq!(wasted.reduce_tasks, 0, "cancelled before its reduce phase");

        let second = spec
            .run_iteration(
                &conf(threads),
                &contrib::TokenCountMapper,
                &contrib::WordCountReducer,
            )
            .unwrap();
        assert_eq!(second.outputs, second_ref.outputs, "threads {threads}");
        assert_eq!(second.counters, second_ref.counters, "threads {threads}");
    }
}

/// A full job through the runner (map-side streaming shuffle → reduce) stays
/// bit-identical at every thread count — outputs, counters and stats.
#[test]
fn full_job_with_streaming_shuffle_is_identical_across_thread_counts() {
    let lines: Vec<String> = (0..20_000)
        .map(|i| format!("k{} k{} v-{}", i % 211, i % 13, i % 7))
        .collect();
    let run = |threads: usize| {
        let cluster = earl_cluster::Cluster::builder()
            .nodes(4)
            .cost_model(earl_cluster::CostModel::commodity_2012())
            .seed(3)
            .build()
            .unwrap();
        let dfs = earl_dfs::Dfs::new(
            cluster,
            earl_dfs::DfsConfig {
                block_size: 1 << 12,
                replication: 2,
                io_chunk: 256,
            },
        )
        .unwrap();
        dfs.write_lines("/shuf", &lines).unwrap();
        let conf = JobConf::new("wc", InputSource::Path("/shuf".into()))
            .with_reducers(8)
            .with_parallelism(Some(threads));
        run_job(
            &dfs,
            &conf,
            &contrib::TokenCountMapper,
            &contrib::WordCountReducer,
        )
        .unwrap()
    };
    let reference = run(1);
    for &threads in &thread_counts() {
        let result = run(threads);
        assert_eq!(reference.outputs, result.outputs, "threads {threads}");
        assert_eq!(reference.counters, result.counters, "threads {threads}");
        assert_eq!(reference.stats, result.stats, "threads {threads}");
    }
}
