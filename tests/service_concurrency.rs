//! Concurrency properties of the resident service, pinned at the facade
//! level: per-job reports stay bit-identical to solo runs under concurrent
//! load at every `EARL_THREADS` level, progressive updates are monotone,
//! cancellation releases capacity without corrupting neighbours, and the
//! 8-job smoke the CI `service-smoke` job runs.

use earl::core::tasks::MeanTask;
use earl::core::{EarlConfig, EarlDriver, EarlReport, EarlUpdate};
use earl::mapreduce::TaskSpec;
use earl::serve::{
    replay, DatasetDef, DatasetRegistry, EarlService, JobRequest, ServeError, ServiceConfig,
};
use earl::workload::DatasetSpec;

/// Parallelism levels under test; `EARL_THREADS=n` pins one (CI matrix).
fn thread_counts() -> Vec<usize> {
    match std::env::var("EARL_THREADS") {
        Ok(v) => vec![v.parse().expect("EARL_THREADS must be a thread count")],
        Err(_) => vec![2, 8],
    }
}

/// Multi-iteration ladder: 60k records at cv ≈ 0.8, first sample just above
/// the pilot, so the run expands 700 → 1400 → 2800 before σ = 2% is met.
fn ladder_config(threads: usize, seed: u64) -> EarlConfig {
    EarlConfig {
        parallelism: Some(threads),
        sigma: 0.02,
        bootstraps: Some(60),
        sample_size: Some(700),
        seed,
        ..EarlConfig::default()
    }
}

fn spread_def() -> DatasetDef {
    DatasetDef::new(4, "/spread", DatasetSpec::normal(60_000, 500.0, 400.0, 21))
}

fn registry() -> DatasetRegistry {
    let mut registry = DatasetRegistry::new();
    registry.register("spread", spread_def());
    registry
}

fn solo_run(config: EarlConfig) -> EarlReport {
    let dfs = spread_def().build().unwrap();
    EarlDriver::new(dfs, config)
        .run("/spread", &MeanTask)
        .unwrap()
}

/// N jobs with distinct seeds admitted back-to-back: every report is
/// bit-identical to its solo baseline, no matter how the pool interleaves
/// them, at every thread count.
#[test]
fn concurrent_jobs_are_bit_identical_to_solo_runs() {
    for threads in thread_counts() {
        let service = EarlService::new(registry(), ServiceConfig::default());
        let seeds = [0xEA21u64, 7, 1234, 0xDEAD];
        let handles: Vec<_> = seeds
            .iter()
            .map(|&seed| {
                service
                    .admit(JobRequest::new(
                        TaskSpec::named("mean"),
                        "spread",
                        ladder_config(threads, seed),
                    ))
                    .unwrap()
            })
            .collect();
        for (handle, &seed) in handles.into_iter().zip(&seeds) {
            let report = handle
                .wait()
                .unwrap()
                .result
                .expect("concurrent job converges");
            let solo = solo_run(ladder_config(threads, seed));
            assert_eq!(
                report, solo,
                "seed {seed:#x} at {threads} threads must match its solo run"
            );
        }
    }
}

/// The progressive stream: at least two updates before the final report on a
/// multi-iteration workload, iteration numbers strictly increasing from 1,
/// sample fraction non-decreasing, cv non-increasing (the ladder only ever
/// tightens on this deterministic workload), and the last update agrees with
/// the final report.
#[test]
fn updates_are_monotone_and_cv_non_increasing() {
    for threads in thread_counts() {
        let service = EarlService::new(registry(), ServiceConfig::default());
        let handle = service
            .admit(JobRequest::new(
                TaskSpec::named("mean"),
                "spread",
                ladder_config(threads, 0xEA21),
            ))
            .unwrap();
        let mut updates: Vec<EarlUpdate> = Vec::new();
        while let Some(update) = handle.next_update() {
            updates.push(update);
        }
        let report = handle.wait().unwrap().result.expect("job converges");

        assert!(
            updates.len() >= 2,
            "multi-iteration workload must deliver progressive updates, got {}",
            updates.len()
        );
        assert_eq!(updates.len(), report.iterations);
        for (i, update) in updates.iter().enumerate() {
            assert_eq!(update.iteration, i + 1, "iterations are 1-based and dense");
        }
        for pair in updates.windows(2) {
            assert!(
                pair[1].sample_fraction >= pair[0].sample_fraction,
                "the ladder never shrinks the sample"
            );
            assert!(
                pair[1].cv <= pair[0].cv,
                "cv must tighten on this workload: {} -> {}",
                pair[0].cv,
                pair[1].cv
            );
        }
        let last = updates.last().unwrap();
        assert_eq!(last.estimate, report.result);
        assert_eq!(last.cv, report.error_estimate);
        assert_eq!(last.sample_fraction, report.sample_fraction);
    }
}

/// Cancel one job mid-ladder while a neighbour runs: the neighbour's report
/// is untouched (bit-identical to solo), the cancelled job's partial report
/// replays bit-identically from its log, and the freed slot runs a follow-up
/// job to completion.
#[test]
fn cancellation_releases_capacity_and_never_corrupts_neighbours() {
    for threads in thread_counts() {
        let registry = registry();
        let service = EarlService::new(registry.clone(), ServiceConfig::default());
        let victim = service
            .admit(JobRequest::new(
                TaskSpec::named("mean"),
                "spread",
                ladder_config(threads, 0xEA21),
            ))
            .unwrap();
        let neighbour = service
            .admit(JobRequest::new(
                TaskSpec::named("mean"),
                "spread",
                ladder_config(threads, 7),
            ))
            .unwrap();

        let first = victim.next_update().expect("at least one update");
        assert_eq!(first.iteration, 1);
        victim.cancel();
        let victim_outcome = victim.wait().unwrap();
        match &victim_outcome.result {
            Err(ServeError::Cancelled(partial)) => {
                assert!(partial.iterations >= 1);
                match replay(&victim_outcome.log, &registry) {
                    Err(ServeError::Cancelled(replayed)) => {
                        assert_eq!(replayed, *partial, "cancelled log replays bit-identically")
                    }
                    other => panic!("replay must cancel too, got {other:?}"),
                }
            }
            // The cancel can land after the bound was already met.
            Ok(report) => assert_eq!(replay(&victim_outcome.log, &registry).unwrap(), *report),
            other => panic!("unexpected victim outcome {other:?}"),
        }

        let neighbour_report = neighbour
            .wait()
            .unwrap()
            .result
            .expect("neighbour converges");
        assert_eq!(
            neighbour_report,
            solo_run(ladder_config(threads, 7)),
            "a neighbour's cancellation must not perturb the report"
        );

        // The cancelled job's slot is free again: a follow-up job runs.
        let follow_up = service
            .admit(JobRequest::new(
                TaskSpec::named("mean"),
                "spread",
                ladder_config(threads, 99),
            ))
            .unwrap();
        follow_up
            .wait()
            .unwrap()
            .result
            .expect("capacity released after cancellation");
    }
}

/// CI `service-smoke`: eight jobs admitted concurrently from client threads
/// all converge, and each matches its solo baseline.
#[test]
fn eight_concurrent_jobs_all_converge() {
    let service = std::sync::Arc::new(EarlService::new(
        registry(),
        ServiceConfig {
            max_running: 4,
            ..ServiceConfig::default()
        },
    ));
    let clients: Vec<_> = (0..8u64)
        .map(|i| {
            let service = std::sync::Arc::clone(&service);
            std::thread::spawn(move || {
                let config = ladder_config(2, 1000 + i);
                let handle = service
                    .admit(JobRequest::new(TaskSpec::named("mean"), "spread", config))
                    .unwrap();
                let report = handle.wait().unwrap().result.expect("job converges");
                (i, report)
            })
        })
        .collect();
    for client in clients {
        let (i, report) = client.join().unwrap();
        assert_eq!(
            report,
            solo_run(ladder_config(2, 1000 + i)),
            "job {i} must match its solo baseline"
        );
        assert!(report.error_estimate <= report.target_sigma);
    }
}
