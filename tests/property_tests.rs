//! Property-based tests of the core invariants listed in DESIGN.md.
//!
//! The build environment has no crates.io access, so instead of proptest this
//! file drives each property over a seeded stream of randomized cases (32 per
//! property, like the previous `ProptestConfig::with_cases(32)`).  Failures
//! print the case seed, which reproduces the exact inputs.

use earl_bootstrap::bootstrap::{bootstrap_distribution, BootstrapConfig};
use earl_bootstrap::delta::{IncrementalBootstrap, SketchConfig};
use earl_bootstrap::estimators::{Estimator, Mean, Median, Quantile, StreamingStats, Variance};
use earl_bootstrap::rng::seeded_rng;
use earl_cluster::{Cluster, CostModel, Phase};
use earl_core::tasks::{MeanTask, MedianTask, SumTask};
use earl_core::EarlTask;
use earl_dfs::{Dfs, DfsConfig};
use earl_mapreduce::partition::{HashPartitioner, Partitioner};
use earl_sampling::reservoir::reservoir_sample;
use rand::rngs::StdRng;
use rand::Rng;

const CASES: u64 = 32;

/// Runs `property` over `CASES` randomized cases, each with its own seeded
/// RNG derived from `base` — re-seed with the printed case seed to reproduce
/// a failure.
fn check(base: u64, property: impl Fn(&mut StdRng)) {
    for case in 0..CASES {
        let seed = base.wrapping_mul(0x1_0000).wrapping_add(case);
        let mut rng = seeded_rng(seed);
        property(&mut rng);
    }
}

fn rand_len(rng: &mut StdRng, lo: usize, hi: usize) -> usize {
    rng.gen_range(lo..hi)
}

fn rand_values(rng: &mut StdRng, len: usize, lo: f64, hi: f64) -> Vec<f64> {
    (0..len).map(|_| rng.gen_range(lo..hi)).collect()
}

fn rand_word(rng: &mut StdRng, max_len: usize) -> String {
    const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJ0123456789 ,.:_-";
    let len = rng.gen_range(0..=max_len);
    (0..len)
        .map(|_| ALPHABET[rng.gen_range(0..ALPHABET.len())] as char)
        .collect()
}

fn free_dfs(block_size: u64) -> Dfs {
    let cluster = Cluster::builder()
        .nodes(3)
        .cost_model(CostModel::free())
        .build()
        .unwrap();
    Dfs::new(
        cluster,
        DfsConfig {
            block_size,
            replication: 2,
            io_chunk: 32,
        },
    )
    .unwrap()
}

/// DFS round-trip: what is written is what is read, for arbitrary line
/// contents and block sizes (invariant 6).
#[test]
fn dfs_round_trip_preserves_lines() {
    check(1, |rng| {
        let lines: Vec<String> = (0..rand_len(rng, 1, 80))
            .map(|_| rand_word(rng, 40))
            .collect();
        let block_size = rng.gen_range(16u64..512);
        let dfs = free_dfs(block_size);
        dfs.write_lines("/prop/file", &lines).unwrap();
        let read = dfs.read_all_lines(Phase::Load, "/prop/file").unwrap();
        assert_eq!(read, lines, "block_size = {block_size}");
    });
}

/// Splits cover the file exactly once and the line reader never tears a
/// line, regardless of split size (invariant 6).
#[test]
fn splits_partition_lines_exactly() {
    check(2, |rng| {
        let lines: Vec<String> = (0..rand_len(rng, 1, 60))
            .map(|_| {
                let len = rng.gen_range(1..=20);
                (0..len)
                    .map(|_| (b'a' + rng.gen_range(0..26u8)) as char)
                    .collect()
            })
            .collect();
        let split_size = rng.gen_range(8u64..256);
        let dfs = free_dfs(64);
        dfs.write_lines("/prop/split", &lines).unwrap();
        let mut collected = Vec::new();
        for split in dfs.splits("/prop/split", split_size).unwrap() {
            let mut reader = dfs.open_split(split, Phase::Map);
            collected.extend(reader.read_all().unwrap().into_iter().map(|(_, l)| l));
        }
        assert_eq!(collected, lines, "split_size = {split_size}");
    });
}

/// The hash partitioner sends every key to exactly one partition in range.
#[test]
fn partitioner_is_stable_and_bounded() {
    check(3, |rng| {
        let parts = rng.gen_range(1usize..16);
        for _ in 0..200 {
            let key: u64 = rng.gen();
            let p = HashPartitioner.partition(&key, parts);
            assert!(p < parts);
            assert_eq!(p, HashPartitioner.partition(&key, parts));
        }
    });
}

/// Bootstrap replicates of the mean centre on the sample mean and the cv is
/// non-negative and finite for non-degenerate data (invariant 2).
#[test]
fn bootstrap_centres_on_the_point_estimate() {
    check(4, |rng| {
        let len = rand_len(rng, 20, 200);
        let values = rand_values(rng, len, 1.0, 1000.0);
        let b = rng.gen_range(10usize..60);
        let seed: u64 = rng.gen();
        let result =
            bootstrap_distribution(seed, &values, &Mean, &BootstrapConfig::with_resamples(b))
                .unwrap();
        assert!(result.cv.is_finite());
        assert!(result.cv >= 0.0);
        assert_eq!(result.replicates.len(), b);
        // The replicate mean stays within a few standard errors of f(s).
        let tolerance = 5.0 * result.std_error + 1e-9;
        assert!((result.replicate_mean - result.point_estimate).abs() <= tolerance);
        // Quantile estimators never leave the sample's range.
        let q = Quantile::new(0.9).estimate(&values);
        let max = values.iter().cloned().fold(f64::MIN, f64::max);
        let min = values.iter().cloned().fold(f64::MAX, f64::min);
        assert!(q >= min && q <= max);
    });
}

/// Delta-maintained resamples keep the right size and a finite error
/// estimate after any expansion (invariant 3).
#[test]
fn incremental_bootstrap_preserves_resample_sizes() {
    check(5, |rng| {
        let initial_len = rand_len(rng, 30, 120);
        let initial = rand_values(rng, initial_len, 0.0, 100.0);
        let delta_len = rand_len(rng, 10, 80);
        let delta = rand_values(rng, delta_len, 0.0, 100.0);
        let seed: u64 = rng.gen();
        let mut ib =
            IncrementalBootstrap::new(seed, &initial, 15, SketchConfig::default()).unwrap();
        let work = ib.expand(&delta).unwrap();
        assert_eq!(ib.sample_size(), initial.len() + delta.len());
        assert!(work.items_touched <= work.naive_items);
        let eval = ib.evaluate(&Median);
        assert!(eval.point_estimate.is_finite());
        assert_eq!(eval.replicates.len(), 15);
    });
}

/// Reservoir samples are subsets of the population with the exact requested
/// size (invariant 1).
#[test]
fn reservoir_samples_are_valid_subsets() {
    check(6, |rng| {
        let n = rand_len(rng, 10, 500);
        let k = rng.gen_range(1usize..50);
        let population: Vec<u64> = (0..n as u64).collect();
        let sample = reservoir_sample(rng, population.iter().copied(), k);
        assert_eq!(sample.len(), k.min(n));
        for item in &sample {
            assert!(population.contains(item));
        }
    });
}

/// EarlTask incremental update() agrees with batch evaluation, and the
/// streaming moments match the batch estimators (the paper's
/// initialize/update/finalize contract).
#[test]
fn incremental_task_states_match_batch_evaluation() {
    check(7, |rng| {
        let len = rand_len(rng, 2, 300);
        let values = rand_values(rng, len, -500.0, 500.0);
        let split = rng.gen_range(1usize..200).min(values.len() - 1);
        // Sum task.
        let sum = SumTask;
        let mut state = sum.initialize(&values[..split]);
        let other = sum.initialize(&values[split..]);
        sum.update(&mut state, &other);
        assert!((sum.finalize(&state) - sum.evaluate(&values)).abs() < 1e-6);
        // Mean task.
        let mean = MeanTask;
        let mut state = mean.initialize(&values[..split]);
        mean.update(&mut state, &mean.initialize(&values[split..]));
        assert!((mean.finalize(&state) - mean.evaluate(&values)).abs() < 1e-9);
        // Median task buffers are order-insensitive.
        let median = MedianTask;
        let mut state = median.initialize(&values[split..]);
        median.update(&mut state, &median.initialize(&values[..split]));
        assert!((median.finalize(&state) - median.evaluate(&values)).abs() < 1e-9);
        // Streaming moments match the batch variance.
        let mut stream = StreamingStats::new();
        for &v in &values {
            stream.push(v);
        }
        let batch_var = Variance.estimate(&values);
        if batch_var.is_finite() {
            assert!((stream.variance() - batch_var).abs() < 1e-6);
        }
    });
}

/// Sum correction by 1/p is exact when the sample really is a p-fraction.
#[test]
fn sum_correction_recovers_population_scale() {
    check(8, |rng| {
        let len = rand_len(rng, 50, 400);
        let values = rand_values(rng, len, 1.0, 10.0);
        let denominator = rng.gen_range(2usize..10);
        let p = 1.0 / denominator as f64;
        let take = ((values.len() as f64 * p).round() as usize).max(1);
        let sample_sum = SumTask.evaluate(&values[..take]);
        let corrected = SumTask.correct(sample_sum, take as f64 / values.len() as f64);
        let truth = SumTask.evaluate(&values);
        // The corrected estimate equals the truth up to sampling error, which for
        // a prefix of i.i.d.-generated values is bounded well within 50%.
        assert!((corrected - truth).abs() / truth < 0.5);
    });
}
