//! Property-based tests (proptest) of the core invariants listed in DESIGN.md.

use earl_bootstrap::bootstrap::{bootstrap_distribution, BootstrapConfig};
use earl_bootstrap::delta::{IncrementalBootstrap, SketchConfig};
use earl_bootstrap::estimators::{Estimator, Mean, Median, Quantile, StreamingStats, Variance};
use earl_bootstrap::rng::seeded_rng;
use earl_cluster::{Cluster, CostModel, Phase};
use earl_core::tasks::{MeanTask, MedianTask, SumTask};
use earl_core::EarlTask;
use earl_dfs::{Dfs, DfsConfig};
use earl_mapreduce::partition::{HashPartitioner, Partitioner};
use earl_sampling::reservoir::reservoir_sample;
use proptest::prelude::*;

fn free_dfs(block_size: u64) -> Dfs {
    let cluster = Cluster::builder().nodes(3).cost_model(CostModel::free()).build().unwrap();
    Dfs::new(cluster, DfsConfig { block_size, replication: 2, io_chunk: 32 }).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// DFS round-trip: what is written is what is read, for arbitrary line
    /// contents and block sizes (invariant 6).
    #[test]
    fn dfs_round_trip_preserves_lines(
        lines in prop::collection::vec("[a-zA-Z0-9 ,.:_-]{0,40}", 1..80),
        block_size in 16u64..512,
    ) {
        let dfs = free_dfs(block_size);
        dfs.write_lines("/prop/file", &lines).unwrap();
        let read = dfs.read_all_lines(Phase::Load, "/prop/file").unwrap();
        prop_assert_eq!(read, lines);
    }

    /// Splits cover the file exactly once and the line reader never tears a
    /// line, regardless of split size (invariant 6).
    #[test]
    fn splits_partition_lines_exactly(
        lines in prop::collection::vec("[a-z]{1,20}", 1..60),
        split_size in 8u64..256,
    ) {
        let dfs = free_dfs(64);
        dfs.write_lines("/prop/split", &lines).unwrap();
        let mut collected = Vec::new();
        for split in dfs.splits("/prop/split", split_size).unwrap() {
            let mut reader = dfs.open_split(split, Phase::Map);
            collected.extend(reader.read_all().unwrap().into_iter().map(|(_, l)| l));
        }
        prop_assert_eq!(collected, lines);
    }

    /// The hash partitioner sends every key to exactly one partition in range.
    #[test]
    fn partitioner_is_stable_and_bounded(keys in prop::collection::vec(any::<u64>(), 1..200), parts in 1usize..16) {
        for key in &keys {
            let p = HashPartitioner.partition(key, parts);
            prop_assert!(p < parts);
            prop_assert_eq!(p, HashPartitioner.partition(key, parts));
        }
    }

    /// Bootstrap replicates of the mean centre on the sample mean and the cv is
    /// non-negative and finite for non-degenerate data (invariant 2).
    #[test]
    fn bootstrap_centres_on_the_point_estimate(
        values in prop::collection::vec(1.0f64..1000.0, 20..200),
        b in 10usize..60,
    ) {
        let mut rng = seeded_rng(7);
        let result = bootstrap_distribution(&mut rng, &values, &Mean, &BootstrapConfig::with_resamples(b)).unwrap();
        prop_assert!(result.cv.is_finite());
        prop_assert!(result.cv >= 0.0);
        prop_assert_eq!(result.replicates.len(), b);
        // The replicate mean stays within a few standard errors of f(s).
        let tolerance = 5.0 * result.std_error + 1e-9;
        prop_assert!((result.replicate_mean - result.point_estimate).abs() <= tolerance);
        // Quantile estimators never leave the sample's range.
        let q = Quantile::new(0.9).estimate(&values);
        let max = values.iter().cloned().fold(f64::MIN, f64::max);
        let min = values.iter().cloned().fold(f64::MAX, f64::min);
        prop_assert!(q >= min && q <= max);
    }

    /// Delta-maintained resamples keep the right size and a finite error
    /// estimate after any expansion (invariant 3).
    #[test]
    fn incremental_bootstrap_preserves_resample_sizes(
        initial in prop::collection::vec(0.0f64..100.0, 30..120),
        delta in prop::collection::vec(0.0f64..100.0, 10..80),
    ) {
        let mut rng = seeded_rng(11);
        let mut ib = IncrementalBootstrap::new(&mut rng, &initial, 15, SketchConfig::default()).unwrap();
        let work = ib.expand(&mut rng, &delta).unwrap();
        prop_assert_eq!(ib.sample_size(), initial.len() + delta.len());
        prop_assert!(work.items_touched <= work.naive_items);
        let eval = ib.evaluate(&Median);
        prop_assert!(eval.point_estimate.is_finite());
        prop_assert_eq!(eval.replicates.len(), 15);
    }

    /// Reservoir samples are subsets of the population with the exact requested
    /// size (invariant 1).
    #[test]
    fn reservoir_samples_are_valid_subsets(n in 10usize..500, k in 1usize..50) {
        let mut rng = seeded_rng(13);
        let population: Vec<u64> = (0..n as u64).collect();
        let sample = reservoir_sample(&mut rng, population.iter().copied(), k);
        prop_assert_eq!(sample.len(), k.min(n));
        for item in &sample {
            prop_assert!(population.contains(item));
        }
    }

    /// EarlTask incremental update() agrees with batch evaluation, and the
    /// streaming moments match the batch estimators (the paper's
    /// initialize/update/finalize contract).
    #[test]
    fn incremental_task_states_match_batch_evaluation(
        values in prop::collection::vec(-500.0f64..500.0, 2..300),
        split_at in 1usize..200,
    ) {
        let split = split_at.min(values.len() - 1);
        // Sum task.
        let sum = SumTask;
        let mut state = sum.initialize(&values[..split]);
        let other = sum.initialize(&values[split..]);
        sum.update(&mut state, &other);
        prop_assert!((sum.finalize(&state) - sum.evaluate(&values)).abs() < 1e-6);
        // Mean task.
        let mean = MeanTask;
        let mut state = mean.initialize(&values[..split]);
        mean.update(&mut state, &mean.initialize(&values[split..]));
        prop_assert!((mean.finalize(&state) - mean.evaluate(&values)).abs() < 1e-9);
        // Median task buffers are order-insensitive.
        let median = MedianTask;
        let mut state = median.initialize(&values[split..]);
        median.update(&mut state, &median.initialize(&values[..split]));
        prop_assert!((median.finalize(&state) - median.evaluate(&values)).abs() < 1e-9);
        // Streaming moments match the batch variance.
        let mut stream = StreamingStats::new();
        for &v in &values {
            stream.push(v);
        }
        let batch_var = Variance.estimate(&values);
        if batch_var.is_finite() {
            prop_assert!((stream.variance() - batch_var).abs() < 1e-6);
        }
    }

    /// Sum correction by 1/p is exact when the sample really is a p-fraction.
    #[test]
    fn sum_correction_recovers_population_scale(
        values in prop::collection::vec(1.0f64..10.0, 50..400),
        denominator in 2usize..10,
    ) {
        let p = 1.0 / denominator as f64;
        let take = (values.len() as f64 * p).round().max(1.0) as usize;
        let sample_sum = SumTask.evaluate(&values[..take]);
        let corrected = SumTask.correct(sample_sum, take as f64 / values.len() as f64);
        let truth = SumTask.evaluate(&values);
        // The corrected estimate equals the truth up to sampling error, which for
        // a prefix of i.i.d.-generated values is bounded well within 50%.
        prop_assert!((corrected - truth).abs() / truth < 0.5);
    }
}
