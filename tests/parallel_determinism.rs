//! Determinism contract of the parallel execution engine (PR 1).
//!
//! The engine's invariant: `parallelism` trades wall-clock time only — every
//! result (bootstrap replicates, job outputs, counters, stats, full EARL
//! reports) is bit-identical for every thread count, because replicate RNG
//! streams derive from `(seed, replicate index)` and MapReduce task state is
//! merged in deterministic task order after the barrier.

use earl_bootstrap::bootstrap::{bootstrap_distribution, BootstrapConfig};
use earl_bootstrap::estimators::{Mean, Median};
use earl_bootstrap::rng::{seeded_rng, standard_normal};
use earl_cluster::{
    Cluster, CostModel, FailureEvent, FailureSchedule, NodeId, SimDuration, SimInstant,
};
use earl_core::tasks::MeanTask;
use earl_core::{EarlConfig, EarlDriver};
use earl_dfs::{Dfs, DfsConfig};
use earl_mapreduce::{contrib, run_job, InputSource, JobConf};

/// Non-reference thread counts under test: the `EARL_THREADS` matrix value
/// when set (the CI thread-matrix job runs this file at 1, 2, 4 and 8), the
/// {2, 8} ladder otherwise.  Every property compares against a 1-thread
/// reference run.
fn thread_counts() -> Vec<usize> {
    match std::env::var("EARL_THREADS") {
        Ok(v) => vec![v.parse().expect("EARL_THREADS must be a positive integer")],
        Err(_) => vec![2, 8],
    }
}

fn normal_sample(n: usize, mean: f64, sd: f64, seed: u64) -> Vec<f64> {
    let mut rng = seeded_rng(seed);
    (0..n)
        .map(|_| mean + sd * standard_normal(&mut rng))
        .collect()
}

fn test_dfs(nodes: u32, seed: u64) -> Dfs {
    let cluster = Cluster::builder()
        .nodes(nodes)
        .cost_model(CostModel::commodity_2012())
        .seed(seed)
        .build()
        .unwrap();
    Dfs::new(
        cluster,
        DfsConfig {
            block_size: 1 << 12,
            replication: 2,
            io_chunk: 256,
        },
    )
    .unwrap()
}

fn wordcount_lines() -> Vec<String> {
    (0..5_000)
        .map(|i| format!("w{} w{} shared tail-{}", i % 53, i % 17, i % 5))
        .collect()
}

/// Property: `bootstrap_distribution` is a pure function of `(seed, data,
/// config)` — identical to the last bit for thread counts {1, 2, 8}, across a
/// spread of seeds, sample sizes and B values.
#[test]
fn bootstrap_distribution_is_identical_across_thread_counts() {
    for case in 0u64..8 {
        let n = 500 + (case as usize) * 700;
        let b = 16 + (case as usize) * 9;
        let data = normal_sample(n, 50.0, 8.0, 1000 + case);
        let reference = bootstrap_distribution(
            case,
            &data,
            &Median,
            &BootstrapConfig::with_resamples(b).with_parallelism(Some(1)),
        )
        .unwrap();
        for &threads in &thread_counts() {
            let result = bootstrap_distribution(
                case,
                &data,
                &Median,
                &BootstrapConfig::with_resamples(b).with_parallelism(Some(threads)),
            )
            .unwrap();
            assert_eq!(reference, result, "case {case}, threads {threads}");
        }
    }
}

/// Property: `run_job` produces identical outputs, counters and stats for
/// thread counts {1, 2, 8} with the same cluster seed.
#[test]
fn run_job_is_identical_across_thread_counts() {
    let run = |threads: usize| {
        let dfs = test_dfs(4, 7);
        dfs.write_lines("/wc", wordcount_lines()).unwrap();
        let conf = JobConf::new("wc", InputSource::Path("/wc".into()))
            .with_reducers(4)
            .with_parallelism(Some(threads));
        run_job(
            &dfs,
            &conf,
            &contrib::TokenCountMapper,
            &contrib::WordCountReducer,
        )
        .unwrap()
    };
    let reference = run(1);
    for &threads in &thread_counts() {
        let result = run(threads);
        assert_eq!(reference.outputs, result.outputs, "threads {threads}");
        assert_eq!(reference.counters, result.counters, "threads {threads}");
        assert_eq!(reference.stats, result.stats, "threads {threads}");
    }
}

/// Equivalence: the parallel reduce path emits outputs in exactly the order
/// the sequential path does (partition order, sorted keys within each
/// partition).  The sequential path is forced by arming a failure schedule
/// whose only event lies far beyond the end of the job.
#[test]
fn parallel_reduce_matches_sequential_reduce_ordering() {
    let lines = wordcount_lines();

    // Sequential reference: a pending (but never-firing) failure schedule
    // routes the job down the legacy sequential engine.
    let sequential = {
        let schedule = FailureSchedule::Deterministic(vec![FailureEvent {
            node: NodeId(0),
            at: SimInstant::EPOCH + SimDuration::from_secs(1_000_000),
        }]);
        let cluster = Cluster::builder()
            .nodes(4)
            .cost_model(CostModel::commodity_2012())
            .failure_schedule(schedule)
            .seed(7)
            .build()
            .unwrap();
        let dfs = Dfs::new(
            cluster,
            DfsConfig {
                block_size: 1 << 12,
                replication: 2,
                io_chunk: 256,
            },
        )
        .unwrap();
        dfs.write_lines("/wc", &lines).unwrap();
        let conf = JobConf::new("wc", InputSource::Path("/wc".into())).with_reducers(4);
        run_job(
            &dfs,
            &conf,
            &contrib::TokenCountMapper,
            &contrib::WordCountReducer,
        )
        .unwrap()
    };

    // Parallel run on an identical failure-free cluster.
    let parallel = {
        let dfs = test_dfs(4, 7);
        dfs.write_lines("/wc", &lines).unwrap();
        let conf = JobConf::new("wc", InputSource::Path("/wc".into()))
            .with_reducers(4)
            .with_parallelism(Some(8));
        run_job(
            &dfs,
            &conf,
            &contrib::TokenCountMapper,
            &contrib::WordCountReducer,
        )
        .unwrap()
    };

    assert_eq!(
        sequential.outputs, parallel.outputs,
        "output records (and their order) must not depend on the execution engine"
    );
    assert_eq!(sequential.counters, parallel.counters);
    assert_eq!(
        sequential.stats.map_input_records,
        parallel.stats.map_input_records
    );
    assert_eq!(sequential.stats.reduce_groups, parallel.stats.reduce_groups);
    assert_eq!(sequential.stats.reduce_tasks, parallel.stats.reduce_tasks);
}

/// Property: a full EARL driver run (sampling + SSABE + pipelined jobs + AES)
/// reports identical results for thread counts {1, 2, 8}.
#[test]
fn earl_driver_reports_are_identical_across_thread_counts() {
    let run = |threads: usize| {
        let dfs = test_dfs(3, 11);
        earl_workload::DatasetBuilder::new(dfs.clone())
            .build(
                "/data",
                &earl_workload::DatasetSpec::normal(20_000, 500.0, 100.0, 11),
            )
            .unwrap();
        let config = EarlConfig {
            parallelism: Some(threads),
            ..EarlConfig::default()
        };
        EarlDriver::new(dfs, config)
            .run("/data", &MeanTask)
            .unwrap()
    };
    let reference = run(1);
    for &threads in &thread_counts() {
        let report = run(threads);
        assert_eq!(reference.result, report.result, "threads {threads}");
        assert_eq!(
            reference.error_estimate, report.error_estimate,
            "threads {threads}"
        );
        assert_eq!(
            reference.sample_size, report.sample_size,
            "threads {threads}"
        );
        assert_eq!(reference.bootstraps, report.bootstraps, "threads {threads}");
        assert_eq!(reference.iterations, report.iterations, "threads {threads}");
    }
}

/// Property: the parallel engine and the `Mean` bootstrap agree with the
/// sequential legacy estimate — exercised at the workspace level so a change
/// in any layer that breaks the stream derivation fails loudly here.
#[test]
fn bootstrap_mean_replicates_match_at_every_parallelism() {
    let data = normal_sample(10_000, 100.0, 10.0, 99);
    let configs: Vec<BootstrapConfig> = std::iter::once(1)
        .chain(thread_counts())
        .map(|t| BootstrapConfig::with_resamples(64).with_parallelism(Some(t)))
        .collect();
    let results: Vec<_> = configs
        .iter()
        .map(|c| bootstrap_distribution(42, &data, &Mean, c).unwrap())
        .collect();
    for pair in results.windows(2) {
        assert_eq!(pair[0], pair[1]);
    }
    // And `None` (all cores) matches too — the default EarlConfig path.
    let auto = bootstrap_distribution(
        42,
        &data,
        &Mean,
        &BootstrapConfig::with_resamples(64).with_parallelism(None),
    )
    .unwrap();
    assert_eq!(results[0], auto);
}
