//! Determinism and accuracy suite for the grouped per-key and categorical
//! workloads (PR 4).
//!
//! Contracts enforced here:
//!
//! * **per-group stream equivalence** — the grouped driver's accuracy stage
//!   (`grouped_accuracy`) produces, for every group, the **bitwise** result of
//!   a standalone `bootstrap_distribution` run over that group's values on the
//!   `group_seed(seed, key)` RNG stream — across the kernel × `EARL_THREADS`
//!   matrix;
//! * **thread/kernel invariance** — `run_grouped` reports are bit-identical at
//!   every thread count; `Auto` ≡ `CountBased` bitwise for the linear grouped
//!   statistics, and `Gather` agrees at seeded tolerance;
//! * **accuracy** — per-group estimates respect their own error bounds against
//!   exact ground truth, and `Sum`/`Count` are corrected by `1/p`;
//! * **categorical proportions** — the `ProportionTask` runs end-to-end
//!   through the scalar driver on the count-based kernel, and its bootstrap cv
//!   agrees with the paper's Appendix-A z-approximation.
//!
//! The CI thread-matrix job runs this file with `EARL_THREADS` ∈ {1, 2, 4, 8}.

use std::collections::BTreeMap;

use earl_bootstrap::bootstrap::{bootstrap_distribution, BootstrapConfig};
use earl_bootstrap::BootstrapKernel;
use earl_core::grouped::{group_seed, grouped_accuracy};
use earl_core::tasks::{MeanTask, ProportionTask, SumTask};
use earl_core::{EarlConfig, EarlDriver, GroupedAggregate, GroupedEarlReport, TaskEstimator};
use earl_dfs::{Dfs, DfsConfig};
use earl_workload::{CategoricalSpec, DatasetBuilder, GroupedSpec};

fn thread_counts() -> Vec<usize> {
    match std::env::var("EARL_THREADS") {
        Ok(v) => vec![v.parse().expect("EARL_THREADS must be a positive integer")],
        Err(_) => vec![1, 2, 4, 8],
    }
}

const KERNELS: [BootstrapKernel; 4] = [
    BootstrapKernel::Auto,
    BootstrapKernel::Gather,
    BootstrapKernel::Streaming,
    BootstrapKernel::CountBased,
];

fn dfs(nodes: u32, seed: u64) -> Dfs {
    let cluster = earl_cluster::Cluster::builder()
        .nodes(nodes)
        .cost_model(earl_cluster::CostModel::commodity_2012())
        .seed(seed)
        .build()
        .unwrap();
    Dfs::new(
        cluster,
        DfsConfig {
            block_size: 1 << 12,
            replication: 2,
            io_chunk: 256,
        },
    )
    .unwrap()
}

/// Synthetic per-group samples with distinct sizes (to exercise distinct
/// section layouts in the count-based kernel).
fn sample_groups(seed: u64) -> BTreeMap<String, Vec<f64>> {
    let mut rng = earl_bootstrap::rng::seeded_rng(seed);
    let mut groups = BTreeMap::new();
    for (i, key) in ["alpha", "beta", "gamma", "delta"].iter().enumerate() {
        let n = 150 + 70 * i;
        let mean = 50.0 * (i + 1) as f64;
        let values: Vec<f64> = (0..n)
            .map(|_| mean + 0.2 * mean * earl_bootstrap::rng::standard_normal(&mut rng))
            .collect();
        groups.insert((*key).to_owned(), values);
    }
    groups
}

/// The driver's per-group accuracy stage reproduces, for every group, a
/// standalone bootstrap on the `(group_seed, replicate)` stream — bitwise,
/// for every kernel and thread count, for both mean and sum statistics.
#[test]
fn per_group_cv_matches_standalone_bootstrap_across_kernel_and_thread_matrix() {
    let groups = sample_groups(0xA11CE);
    for agg in [GroupedAggregate::mean(), GroupedAggregate::sum()] {
        for kernel in KERNELS {
            for &threads in &thread_counts() {
                let cfg = BootstrapConfig::with_resamples(120)
                    .with_parallelism(Some(threads))
                    .with_kernel(kernel);
                let staged = grouped_accuracy(42, &groups, &agg, &cfg).unwrap();
                assert_eq!(staged.len(), groups.len());
                for (key, result) in &staged {
                    // The standalone run: same values, same (seed, replicate)
                    // streams, evaluated through the scalar estimator — always
                    // single-threaded to prove thread invariance too.
                    let standalone_cfg = BootstrapConfig::with_resamples(120)
                        .with_parallelism(Some(1))
                        .with_kernel(kernel);
                    let standalone = match agg.stat() {
                        earl_core::GroupedStat::Mean => bootstrap_distribution(
                            group_seed(42, key),
                            &groups[key],
                            &TaskEstimator::new(&MeanTask),
                            &standalone_cfg,
                        ),
                        _ => bootstrap_distribution(
                            group_seed(42, key),
                            &groups[key],
                            &TaskEstimator::new(&SumTask),
                            &standalone_cfg,
                        ),
                    }
                    .unwrap();
                    assert_eq!(
                        result.replicates,
                        standalone.replicates,
                        "{} group {key}: kernel {kernel:?}, threads {threads}",
                        agg.name()
                    );
                    assert_eq!(
                        result.cv.to_bits(),
                        standalone.cv.to_bits(),
                        "{} group {key}: cv must be bitwise stable",
                        agg.name()
                    );
                }
            }
        }
    }
}

fn grouped_report(threads: usize, kernel: BootstrapKernel, sigma: f64) -> GroupedEarlReport {
    let d = dfs(4, 23);
    DatasetBuilder::new(d.clone())
        .build_grouped(
            "/grouped",
            &GroupedSpec::normal_groups(5, 12_000, 100.0, 0.3, 23),
        )
        .unwrap();
    let config = EarlConfig {
        parallelism: Some(threads),
        bootstrap_kernel: kernel,
        bootstraps: Some(120),
        // A fixed initial sample so every kernel sees the same records in its
        // first iteration (the expansion schedule itself is kernel-dependent:
        // it follows the kernel's cv estimates).
        sample_size: Some(4_000),
        sigma,
        ..EarlConfig::default()
    };
    EarlDriver::new(d, config)
        .run_grouped("/grouped", &GroupedAggregate::mean())
        .unwrap()
}

/// The grouped driver's full report — every per-group estimate, cv and CI —
/// is bit-identical at every thread count, per kernel.
#[test]
fn grouped_reports_are_identical_across_thread_counts() {
    for kernel in [BootstrapKernel::Auto, BootstrapKernel::Gather] {
        let reference = grouped_report(1, kernel, 0.03);
        assert!(reference.groups.len() == 5);
        assert!(!reference.exact);
        for &threads in &thread_counts() {
            let report = grouped_report(threads, kernel, 0.03);
            assert_eq!(report, reference, "kernel {kernel:?}, threads {threads}");
        }
    }
}

/// `Auto` resolves the linear grouped statistics to the count-based kernel —
/// bitwise the same report — while `Gather` agrees on every per-group cv at
/// seeded tolerance (different algorithm, same distribution moments).
#[test]
fn auto_is_count_based_and_gather_agrees_at_tolerance() {
    let auto = grouped_report(1, BootstrapKernel::Auto, 0.03);
    let count = grouped_report(1, BootstrapKernel::CountBased, 0.03);
    assert_eq!(auto, count, "Auto must run the linear stats resample-free");

    let gather = grouped_report(1, BootstrapKernel::Gather, 0.03);
    assert_eq!(gather.groups.len(), auto.groups.len());
    // Both kernels met σ on the same fixed first sample, so the per-group
    // point estimates are comparable (same records, same evaluation).
    assert_eq!(auto.iterations, 1, "σ=3% at n=4000 is met in one iteration");
    assert_eq!(gather.iterations, 1);
    for (a, g) in auto.groups.iter().zip(&gather.groups) {
        assert_eq!(a.key, g.key);
        assert_eq!(
            a.uncorrected_result, g.uncorrected_result,
            "point estimates are kernel-independent"
        );
        // cv agreement at seeded tolerance: the count-based kernel reproduces
        // the result distribution's mean/variance up to the Eq. 3 count
        // approximation; at B=120 the Monte-Carlo noise dominates.
        let rel = (a.error_estimate - g.error_estimate).abs() / g.error_estimate;
        assert!(
            rel < 0.35,
            "group {}: count-based cv {} vs gather cv {} (rel {rel})",
            a.key,
            a.error_estimate,
            g.error_estimate
        );
    }
}

/// Per-group estimates are accurate against exact ground truth, every group
/// meets its own bound, and the sum statistic is `1/p`-corrected.
#[test]
fn grouped_estimates_meet_their_bounds_against_ground_truth() {
    let d = dfs(5, 31);
    let spec = GroupedSpec::normal_groups(6, 15_000, 80.0, 0.25, 31);
    let ds = DatasetBuilder::new(d.clone())
        .build_grouped("/grouped", &spec)
        .unwrap();

    let mean_report = EarlDriver::new(d.clone(), EarlConfig::default())
        .run_grouped("/grouped", &GroupedAggregate::mean())
        .unwrap();
    assert!(mean_report.meets_bound());
    assert_eq!(mean_report.groups.len(), 6);
    assert!(mean_report.sample_fraction < 0.25, "sampling must pay off");
    for group in &mean_report.groups {
        let truth = ds.truth[&group.key].mean;
        let rel = (group.result - truth).abs() / truth;
        assert!(
            rel < 0.08,
            "group {} mean {} vs truth {truth} (rel {rel})",
            group.key,
            group.result
        );
        assert!(group.error_estimate <= mean_report.target_sigma + 1e-12);
        assert!(group.ci_low < group.result && group.result < group.ci_high);
        assert!(group.sample_size > 0);
    }

    // Sum: corrected to population scale.
    let sum_report = EarlDriver::new(d, EarlConfig::default())
        .run_grouped("/grouped", &GroupedAggregate::sum())
        .unwrap();
    for group in &sum_report.groups {
        let truth = ds.truth[&group.key].sum;
        assert!(
            group.result > group.uncorrected_result,
            "sum must be scaled up by 1/p"
        );
        let rel = (group.result - truth).abs() / truth;
        assert!(
            rel < 0.15,
            "group {} corrected sum {} vs truth {truth} (rel {rel})",
            group.key,
            group.result
        );
    }

    // Count: recovers each group's population share.
    let count_report = EarlDriver::new(
        dfs(5, 31),
        EarlConfig::default(), // fresh cluster, same data regenerated below
    );
    let d2 = count_report.dfs().clone();
    DatasetBuilder::new(d2)
        .build_grouped("/grouped", &spec)
        .unwrap();
    let count_report = count_report
        .run_grouped("/grouped", &GroupedAggregate::count())
        .unwrap();
    for group in &count_report.groups {
        let truth = ds.truth[&group.key].count as f64;
        let rel = (group.result - truth).abs() / truth;
        assert!(
            rel < 0.15,
            "group {} corrected count {} vs truth {truth} (rel {rel})",
            group.key,
            group.result
        );
    }
}

/// A tiny grouped file degenerates to exact evaluation: zero error, full
/// sample fraction, per-group results equal to ground truth.
#[test]
fn tiny_grouped_dataset_falls_back_to_exact_evaluation() {
    let d = dfs(2, 37);
    let spec = GroupedSpec::normal_groups(3, 120, 50.0, 0.6, 37);
    let ds = DatasetBuilder::new(d.clone())
        .build_grouped("/tiny", &spec)
        .unwrap();
    let config = EarlConfig {
        sigma: 0.005,
        bootstraps: Some(60),
        ..EarlConfig::default()
    };
    let report = EarlDriver::new(d, config)
        .run_grouped("/tiny", &GroupedAggregate::mean())
        .unwrap();
    assert!(
        report.exact,
        "σ = 0.5% on 360 noisy records needs everything"
    );
    assert_eq!(report.sample_fraction, 1.0);
    for group in &report.groups {
        assert_eq!(group.error_estimate, 0.0);
        let truth = ds.truth[&group.key].mean;
        assert!(
            (group.result - truth).abs() < 1e-9,
            "exact group {} must equal ground truth",
            group.key
        );
    }
}

/// A rare group must not be declared converged off a handful of records: its
/// bootstrap cv is near zero (few, near-identical replicates) while the real
/// error is unbounded, so the loop keeps expanding until the group clears the
/// `MIN_GROUP_SAMPLE` floor.
#[test]
fn rare_groups_are_not_declared_converged_below_the_sample_floor() {
    use earl_core::grouped::MIN_GROUP_SAMPLE;
    use earl_workload::GroupSpec;
    let d = dfs(3, 47);
    // 40,000 common records vs 400 rare ones (1%): the ~400-record pilot sees
    // the rare group ~4 times — far below the floor.
    let spec = GroupedSpec {
        groups: vec![
            GroupSpec {
                key: "common".into(),
                num_records: 40_000,
                distribution: earl_workload::Distribution::Normal {
                    mean: 100.0,
                    std_dev: 10.0,
                },
            },
            GroupSpec {
                key: "rare".into(),
                num_records: 400,
                distribution: earl_workload::Distribution::Normal {
                    mean: 500.0,
                    std_dev: 50.0,
                },
            },
        ],
        seed: 47,
    };
    DatasetBuilder::new(d.clone())
        .build_grouped("/rare", &spec)
        .unwrap();
    let report = EarlDriver::new(d, EarlConfig::default())
        .run_grouped("/rare", &GroupedAggregate::mean())
        .unwrap();
    assert!(report.meets_bound());
    let rare = report.group("rare").expect("rare group was sampled");
    assert!(
        rare.sample_size >= MIN_GROUP_SAMPLE as u64,
        "rare group converged with only {} records",
        rare.sample_size
    );
    assert!(
        report.iterations > 1,
        "the floor must have forced at least one expansion"
    );
}

/// The categorical proportion task runs end-to-end through the scalar driver,
/// meets the bound, recovers the true proportion, and its bootstrap cv agrees
/// with the Appendix-A z-approximation.
#[test]
fn categorical_proportion_runs_end_to_end_and_matches_the_z_approximation() {
    let d = dfs(4, 41);
    let spec = CategoricalSpec {
        categories: vec![
            ("spam".into(), 0.3),
            ("ham".into(), 0.6),
            ("unsure".into(), 0.1),
        ],
        num_records: 80_000,
        seed: 41,
    };
    let ds = DatasetBuilder::new(d.clone())
        .build_categorical("/cat", &spec)
        .unwrap();
    let config = EarlConfig {
        // Fixed B: large enough that Monte-Carlo noise on the cv is a few
        // percent, so the z cross-check below is meaningful.
        bootstraps: Some(400),
        ..EarlConfig::default()
    };
    let report = EarlDriver::new(d, config)
        .run("/cat", &ProportionTask::new("spam"))
        .unwrap();
    assert!(report.meets_bound());
    assert!(!report.exact);
    let truth = ds.true_proportion("spam");
    assert!(
        (report.result - truth).abs() < 0.05 * truth.max(1e-9),
        "proportion {} vs truth {truth}",
        report.result
    );

    // Appendix-A cross-check: cv_z = √(p̂(1−p̂)/n) / p̂.
    let z = ProportionTask::z_estimate(report.result, report.sample_size).unwrap();
    let rel = (report.error_estimate - z.cv()).abs() / z.cv();
    assert!(
        rel < 0.30,
        "bootstrap cv {} vs z cv {} (rel {rel})",
        report.error_estimate,
        z.cv()
    );
}

/// Proportion reports are bit-identical across thread counts (the count-based
/// kernel serving an indicator mean).
#[test]
fn proportion_reports_are_identical_across_thread_counts() {
    let run = |threads: usize| {
        let d = dfs(3, 43);
        DatasetBuilder::new(d.clone())
            .build_categorical(
                "/cat",
                &CategoricalSpec {
                    categories: vec![("hit".into(), 0.25), ("miss".into(), 0.75)],
                    num_records: 40_000,
                    seed: 43,
                },
            )
            .unwrap();
        let config = EarlConfig {
            parallelism: Some(threads),
            bootstraps: Some(200),
            ..EarlConfig::default()
        };
        EarlDriver::new(d, config)
            .run("/cat", &ProportionTask::new("hit"))
            .unwrap()
    };
    let reference = run(1);
    for &threads in &thread_counts() {
        let report = run(threads);
        assert_eq!(reference.result, report.result, "threads {threads}");
        assert_eq!(
            reference.error_estimate, report.error_estimate,
            "threads {threads}"
        );
        assert_eq!(reference.sample_size, report.sample_size);
        assert_eq!(reference.sim_time, report.sim_time, "threads {threads}");
    }
}
