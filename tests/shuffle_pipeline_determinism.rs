//! Determinism suite for the sharded shuffle and the pipelined EARL schedule
//! (PR 2), companion to `parallel_determinism.rs`.
//!
//! Contracts enforced here:
//!
//! * `ShuffleOutput::shuffle_parallel` is bit-identical to the sequential
//!   BTreeMap reference for arbitrary key/value/partitioner combinations at
//!   every thread count;
//! * a full job run (map → sharded shuffle → reduce) is identical at every
//!   thread count;
//! * the pipelined schedule (`pipeline_depth = 2`), including a speculative
//!   iteration cancelled by the reducer→mapper feedback channel, delivers the
//!   same final estimate and iteration count as the sequential schedule.
//!
//! The CI thread-matrix job runs this file with `EARL_THREADS` ∈ {1, 2, 4, 8}
//! on a multi-core runner; when the variable is unset, every count is covered
//! in-process.

use earl_core::tasks::{MeanTask, MedianTask};
use earl_core::{EarlConfig, EarlDriver};
use earl_dfs::{Dfs, DfsConfig};
use earl_mapreduce::partition::{HashPartitioner, Partitioner};
use earl_mapreduce::{contrib, run_job, InputSource, JobConf, ShuffleOutput};
use rand::rngs::StdRng;
use rand::Rng;

/// Thread counts under test: the `EARL_THREADS` matrix value when set, the
/// full {1, 2, 4, 8} ladder otherwise.
fn thread_counts() -> Vec<usize> {
    match std::env::var("EARL_THREADS") {
        Ok(v) => vec![v.parse().expect("EARL_THREADS must be a positive integer")],
        Err(_) => vec![1, 2, 4, 8],
    }
}

fn seeded(seed: u64) -> StdRng {
    earl_bootstrap::rng::seeded_rng(seed)
}

fn rand_word(rng: &mut StdRng, max_len: usize) -> String {
    const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789_-";
    let len = rng.gen_range(1..=max_len);
    (0..len)
        .map(|_| ALPHABET[rng.gen_range(0..ALPHABET.len())] as char)
        .collect()
}

/// A deliberately skewed partitioner: everything below the pivot goes to
/// partition 0 — exercises shard imbalance, the case hash partitioning never
/// produces.
struct PivotPartitioner(u64);

impl Partitioner<u64> for PivotPartitioner {
    fn partition(&self, key: &u64, num_partitions: usize) -> usize {
        if *key < self.0 {
            0
        } else {
            (*key % num_partitions as u64) as usize
        }
    }
}

/// Property: sharded shuffle ≡ sequential BTreeMap shuffle over arbitrary
/// key/value/partitioner combinations, at every thread count (32 randomized
/// cases; the case seed reproduces a failure).
#[test]
fn sharded_shuffle_matches_sequential_on_arbitrary_inputs() {
    for case in 0u64..32 {
        let mut rng = seeded(0x5AFE_0000 + case);
        let n = rng.gen_range(0..4_000usize);
        let key_space = rng.gen_range(1..200u64);
        let partitions = rng.gen_range(1..12usize);

        // u64 keys, String values, skewed partitioner.
        let pairs: Vec<(u64, String)> = (0..n)
            .map(|_| (rng.gen_range(0..key_space), rand_word(&mut rng, 12)))
            .collect();
        let pivot = PivotPartitioner(key_space / 2);
        let reference = ShuffleOutput::shuffle(pairs.clone(), partitions, &pivot).into_partitions();
        for &threads in &thread_counts() {
            let sharded =
                ShuffleOutput::shuffle_parallel(pairs.clone(), partitions, &pivot, threads)
                    .into_partitions();
            assert_eq!(sharded, reference, "case {case}, threads {threads}");
        }

        // String keys, f64-bits values, hash partitioner.
        let pairs: Vec<(String, u64)> = (0..n)
            .map(|_| (rand_word(&mut rng, 6), rng.gen_range(0..u64::MAX)))
            .collect();
        let reference =
            ShuffleOutput::shuffle(pairs.clone(), partitions, &HashPartitioner).into_partitions();
        for &threads in &thread_counts() {
            let sharded = ShuffleOutput::shuffle_parallel(
                pairs.clone(),
                partitions,
                &HashPartitioner,
                threads,
            )
            .into_partitions();
            assert_eq!(sharded, reference, "case {case}, threads {threads}");
        }
    }
}

fn test_dfs(nodes: u32, seed: u64) -> Dfs {
    let cluster = earl_cluster::Cluster::builder()
        .nodes(nodes)
        .cost_model(earl_cluster::CostModel::commodity_2012())
        .seed(seed)
        .build()
        .unwrap();
    Dfs::new(
        cluster,
        DfsConfig {
            block_size: 1 << 12,
            replication: 2,
            io_chunk: 256,
        },
    )
    .unwrap()
}

/// A full job through the runner — map, **sharded** shuffle, reduce — is
/// bit-identical at every thread count, including outputs, counters and stats.
#[test]
fn job_with_sharded_shuffle_is_identical_across_thread_counts() {
    let lines: Vec<String> = (0..20_000)
        .map(|i| format!("k{} k{} v-{}", i % 211, i % 13, i % 7))
        .collect();
    let run = |threads: usize| {
        let dfs = test_dfs(4, 3);
        dfs.write_lines("/shuf", &lines).unwrap();
        let conf = JobConf::new("wc", InputSource::Path("/shuf".into()))
            .with_reducers(8)
            .with_parallelism(Some(threads));
        run_job(
            &dfs,
            &conf,
            &contrib::TokenCountMapper,
            &contrib::WordCountReducer,
        )
        .unwrap()
    };
    let reference = run(1);
    for &threads in &thread_counts() {
        let result = run(threads);
        assert_eq!(reference.outputs, result.outputs, "threads {threads}");
        assert_eq!(reference.counters, result.counters, "threads {threads}");
        assert_eq!(reference.stats, result.stats, "threads {threads}");
    }
}

fn driver_report(
    threads: usize,
    pipeline_depth: usize,
    sigma: f64,
    delta: bool,
) -> earl_core::EarlReport {
    let dfs = test_dfs(4, 17);
    earl_workload::DatasetBuilder::new(dfs.clone())
        .build(
            "/data",
            &earl_workload::DatasetSpec::normal(60_000, 500.0, 400.0, 17),
        )
        .unwrap();
    let config = EarlConfig {
        parallelism: Some(threads),
        pipeline_depth,
        sigma,
        delta_maintenance: delta,
        // Start deliberately small so the bound is missed and the loop
        // actually expands — the overlap path needs > 1 iteration.
        bootstraps: Some(40),
        sample_size: Some(500),
        ..EarlConfig::default()
    };
    EarlDriver::new(dfs, config)
        .run("/data", &MeanTask)
        .unwrap()
}

/// A pipelined run whose last speculative iteration is cancelled by the
/// feedback channel delivers the same final estimate, error, sample size and
/// iteration count as the sequential schedule — at every thread count.
#[test]
fn pipelined_run_cancelled_by_feedback_matches_sequential_schedule() {
    // σ = 2% on high-dispersion data needs > 1 iteration, so the pipelined
    // schedule both commits a staged iteration and cancels the final
    // speculative one.
    let sequential = driver_report(1, 1, 0.02, true);
    assert!(
        sequential.iterations >= 2,
        "test needs a multi-iteration run to exercise the overlap (got {})",
        sequential.iterations
    );
    assert!(!sequential.exact);
    for &threads in &thread_counts() {
        let pipelined = driver_report(threads, 2, 0.02, true);
        assert_eq!(sequential.result, pipelined.result, "threads {threads}");
        assert_eq!(
            sequential.error_estimate, pipelined.error_estimate,
            "threads {threads}"
        );
        assert_eq!(
            sequential.sample_size, pipelined.sample_size,
            "threads {threads}"
        );
        assert_eq!(
            sequential.iterations, pipelined.iterations,
            "threads {threads}"
        );
        assert_eq!(
            sequential.sample_fraction, pipelined.sample_fraction,
            "threads {threads}"
        );
    }
}

/// The pipelined schedule itself is bit-identical across thread counts — the
/// full report, including the simulated time/IO accounting of the speculative
/// work, depends only on the seed.
#[test]
fn pipelined_schedule_is_identical_across_thread_counts() {
    let reference = driver_report(1, 2, 0.05, true);
    for &threads in &thread_counts() {
        let report = driver_report(threads, 2, 0.05, true);
        assert_eq!(reference.result, report.result, "threads {threads}");
        assert_eq!(
            reference.error_estimate, report.error_estimate,
            "threads {threads}"
        );
        assert_eq!(
            reference.sample_size, report.sample_size,
            "threads {threads}"
        );
        assert_eq!(reference.iterations, report.iterations, "threads {threads}");
        assert_eq!(reference.sim_time, report.sim_time, "threads {threads}");
        assert_eq!(reference.bytes_read, report.bytes_read, "threads {threads}");
    }
}

/// Non-delta (fresh bootstrap per iteration) pipelining also matches, with a
/// heavier order-statistic task.
#[test]
fn pipelined_median_without_delta_matches_sequential() {
    let dfs = test_dfs(3, 29);
    earl_workload::DatasetBuilder::new(dfs.clone())
        .build(
            "/data",
            &earl_workload::DatasetSpec::normal(30_000, 500.0, 150.0, 29),
        )
        .unwrap();
    let run = |depth: usize| {
        let config = EarlConfig {
            pipeline_depth: depth,
            delta_maintenance: false,
            ..EarlConfig::default()
        };
        EarlDriver::new(dfs.clone(), config)
            .run("/data", &MedianTask)
            .unwrap()
    };
    let sequential = run(1);
    let pipelined = run(2);
    assert_eq!(sequential.result, pipelined.result);
    assert_eq!(sequential.iterations, pipelined.iterations);
    assert_eq!(sequential.error_estimate, pipelined.error_estimate);
}
