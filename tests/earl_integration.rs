//! End-to-end integration tests spanning every crate: workload generation →
//! DFS → sampling → MapReduce → bootstrap → EARL driver.

use earl_cluster::{
    Cluster, CostModel, FailureEvent, FailureSchedule, NodeId, SimDuration, SimInstant,
};
use earl_core::fault::run_despite_failures;
use earl_core::tasks::{CountTask, MeanTask, MedianTask, QuantileTask, SumTask, VarianceTask};
use earl_core::{EarlConfig, EarlDriver, EarlError, SamplingMethod};
use earl_dfs::{Dfs, DfsConfig};
use earl_workload::layout::Layout;
use earl_workload::{DatasetBuilder, DatasetSpec, Distribution};

fn make_dfs(nodes: u32) -> Dfs {
    let cluster = Cluster::builder()
        .nodes(nodes)
        .cost_model(CostModel::commodity_2012())
        .build()
        .unwrap();
    Dfs::new(
        cluster,
        DfsConfig {
            block_size: 1 << 16,
            replication: 2,
            io_chunk: 256,
        },
    )
    .unwrap()
}

#[test]
fn every_builtin_task_meets_its_bound_on_synthetic_ground_truth() {
    let dfs = make_dfs(5);
    let ds = DatasetBuilder::new(dfs.clone())
        .build(
            "/integration/values",
            &DatasetSpec::normal(60_000, 800.0, 120.0, 1),
        )
        .unwrap();
    let driver = EarlDriver::new(dfs, EarlConfig::default());

    // Mean.
    let mean = driver.run("/integration/values", &MeanTask).unwrap();
    assert!(mean.meets_bound());
    assert!(mean.relative_error_vs(ds.true_mean) < 0.05);

    // Median.
    let median = driver.run("/integration/values", &MedianTask).unwrap();
    assert!(median.meets_bound());
    assert!(median.relative_error_vs(ds.true_median) < 0.05);

    // Sum and count are corrected by 1/p.
    let truth_sum: f64 = ds.values.iter().sum();
    let sum = driver.run("/integration/values", &SumTask).unwrap();
    assert!(
        sum.relative_error_vs(truth_sum) < 0.08,
        "sum {} vs {}",
        sum.result,
        truth_sum
    );
    let count = driver.run("/integration/values", &CountTask).unwrap();
    assert!(count.relative_error_vs(ds.values.len() as f64) < 0.08);

    // A tail quantile.
    let q9 = driver
        .run("/integration/values", &QuantileTask::new(0.9))
        .unwrap();
    let mut sorted = ds.values.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let truth_q9 = sorted[(0.9 * (sorted.len() - 1) as f64) as usize];
    assert!(q9.relative_error_vs(truth_q9) < 0.05);

    // Variance (scale-free, no correction).
    let var = driver.run("/integration/values", &VarianceTask).unwrap();
    let truth_var = ds.true_std_dev * ds.true_std_dev;
    assert!(
        var.relative_error_vs(truth_var) < 0.15,
        "variance {} vs {}",
        var.result,
        truth_var
    );
}

#[test]
fn skewed_data_still_respects_the_bound() {
    let dfs = make_dfs(5);
    let spec = DatasetSpec {
        num_records: 50_000,
        distribution: Distribution::LogNormal {
            mu: 3.0,
            sigma: 1.0,
        },
        layout: Layout::Shuffled,
        seed: 2,
        keyed: true,
    };
    let ds = DatasetBuilder::new(dfs.clone())
        .build("/integration/skewed", &spec)
        .unwrap();
    let driver = EarlDriver::new(dfs, EarlConfig::with_sigma(0.05));
    let report = driver.run("/integration/skewed", &MeanTask).unwrap();
    assert!(report.meets_bound());
    assert!(
        report.relative_error_vs(ds.true_mean) < 0.10,
        "skewed mean {} vs truth {}",
        report.result,
        ds.true_mean
    );
    assert!(report.sample_fraction < 0.6);
}

#[test]
fn earl_reads_much_less_data_than_exact_execution_on_large_inputs() {
    let dfs = make_dfs(5);
    DatasetBuilder::new(dfs.clone())
        .build(
            "/integration/large",
            &DatasetSpec::normal(120_000, 100.0, 15.0, 3),
        )
        .unwrap();
    let driver = EarlDriver::new(dfs, EarlConfig::default());
    let approx = driver.run("/integration/large", &MeanTask).unwrap();
    let exact = driver.run_exact("/integration/large", &MeanTask).unwrap();
    assert!(!approx.exact);
    // The default overlap schedule (pipeline_depth: 2) charges the cancelled
    // speculative draw's reads too, so the margin is 3× here; the sequential
    // schedule reads about half as much again.
    assert!(
        approx.bytes_read * 3 < exact.bytes_read,
        "{} vs {}",
        approx.bytes_read,
        exact.bytes_read
    );
    let sequential = EarlDriver::new(
        driver.dfs().clone(),
        EarlConfig {
            pipeline_depth: 1,
            ..EarlConfig::default()
        },
    )
    .run("/integration/large", &MeanTask)
    .unwrap();
    assert!(
        sequential.bytes_read * 4 < exact.bytes_read,
        "{} vs {}",
        sequential.bytes_read,
        exact.bytes_read
    );
    assert_eq!(sequential.result, approx.result);
    assert!((approx.result - exact.result).abs() / exact.result < 0.05);
}

#[test]
fn pre_map_and_post_map_sampling_agree() {
    let dfs = make_dfs(4);
    let ds = DatasetBuilder::new(dfs.clone())
        .build(
            "/integration/sampling",
            &DatasetSpec::uniform(40_000, 0.0, 100.0, 4),
        )
        .unwrap();
    let pre = EarlDriver::new(dfs.clone(), EarlConfig::default())
        .run("/integration/sampling", &MeanTask)
        .unwrap();
    let post = EarlDriver::new(
        dfs,
        EarlConfig {
            sampling: SamplingMethod::PostMap,
            ..EarlConfig::default()
        },
    )
    .run("/integration/sampling", &MeanTask)
    .unwrap();
    // σ bounds the cv of the result distribution, so the realised error can
    // exceed σ by a small factor; 2σ is a comfortable envelope here.
    assert!(pre.relative_error_vs(ds.true_mean) < 0.10);
    assert!(post.relative_error_vs(ds.true_mean) < 0.10);
    assert!((pre.result - post.result).abs() / ds.true_mean < 0.15);
}

#[test]
fn node_failures_during_the_run_do_not_break_the_driver() {
    // A node dies 2 simulated seconds into the run; replication 2 keeps all
    // blocks readable and the driver must still meet its bound.
    let schedule = FailureSchedule::Deterministic(vec![FailureEvent {
        node: NodeId(2),
        at: SimInstant::EPOCH + SimDuration::from_secs(2),
    }]);
    let cluster = Cluster::builder()
        .nodes(4)
        .failure_schedule(schedule)
        .build()
        .unwrap();
    let dfs = Dfs::new(
        cluster,
        DfsConfig {
            block_size: 1 << 15,
            replication: 2,
            io_chunk: 256,
        },
    )
    .unwrap();
    let ds = DatasetBuilder::new(dfs.clone())
        .build(
            "/integration/flaky",
            &DatasetSpec::normal(50_000, 70.0, 10.0, 5),
        )
        .unwrap();
    let driver = EarlDriver::new(dfs.clone(), EarlConfig::default());
    let report = driver.run("/integration/flaky", &MeanTask).unwrap();
    assert!(report.meets_bound());
    assert!(report.relative_error_vs(ds.true_mean) < 0.05);
    assert!(
        !dfs.cluster().failed_nodes().is_empty(),
        "the scheduled failure must have fired"
    );
}

#[test]
fn fault_tolerant_mode_bounds_the_error_after_data_loss() {
    let cluster = Cluster::builder()
        .nodes(4)
        .cost_model(CostModel::free())
        .build()
        .unwrap();
    let dfs = Dfs::new(
        cluster,
        DfsConfig {
            block_size: 4096,
            replication: 1,
            io_chunk: 256,
        },
    )
    .unwrap();
    let ds = DatasetBuilder::new(dfs.clone())
        .build(
            "/integration/lossy",
            &DatasetSpec::normal(30_000, 500.0, 60.0, 6),
        )
        .unwrap();
    dfs.cluster().fail_node(NodeId(3)).unwrap();
    let report = run_despite_failures(
        &dfs,
        "/integration/lossy",
        &MeanTask,
        &EarlConfig::default(),
    )
    .unwrap();
    assert!(report.sample_fraction < 1.0);
    assert!(report.relative_error_vs(ds.true_mean) < 0.05);
    assert!(report.error_estimate > 0.0);
}

#[test]
fn accuracy_not_reached_is_reported_with_a_partial_result() {
    let dfs = make_dfs(3);
    // Tiny iteration budget and an unreachably tight bound.
    DatasetBuilder::new(dfs.clone())
        .build(
            "/integration/impossible",
            &DatasetSpec::normal(50_000, 10.0, 40.0, 7),
        )
        .unwrap();
    let config = EarlConfig {
        sigma: 0.0005,
        max_iterations: 1,
        sample_size: Some(200),
        bootstraps: Some(20),
        ..EarlConfig::default()
    };
    let driver = EarlDriver::new(dfs, config);
    match driver.run("/integration/impossible", &MeanTask) {
        Err(EarlError::AccuracyNotReached(report)) => {
            assert!(report.error_estimate > 0.0005);
            assert!(report.sample_size >= 200);
        }
        other => panic!("expected AccuracyNotReached, got {other:?}"),
    }
}

#[test]
fn simulated_cost_accounting_is_deterministic_across_runs() {
    let run = || {
        let dfs = make_dfs(5);
        DatasetBuilder::new(dfs.clone())
            .build(
                "/integration/deterministic",
                &DatasetSpec::normal(30_000, 500.0, 100.0, 8),
            )
            .unwrap();
        let driver = EarlDriver::new(dfs, EarlConfig::default());
        let report = driver.run("/integration/deterministic", &MeanTask).unwrap();
        (
            report.result,
            report.sim_time,
            report.bytes_read,
            report.sample_size,
        )
    };
    assert_eq!(run(), run());
}
