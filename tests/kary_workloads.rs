//! K-ary linear-form workloads, end to end (PR 5).
//!
//! The ratio-of-linear statistics — weighted mean, ratio of sums, paired
//! covariance and correlation — run through the full EARL driver on the
//! resample-free count-based kernel.  This suite locks the cross-layer
//! contract:
//!
//! * **driver accuracy** — every k-ary task meets its bound against exact
//!   ground truth computed from the written records;
//! * **fault-path equivalence** — an armed (never-firing) failure schedule
//!   runs the same parallel engine with deterministic failure arbitration;
//!   its delivered reports must be bit-identical to the failure-free
//!   streaming-shuffle run, for every k-ary task at every thread count
//!   (previously only scalar tasks were pinned under failures);
//! * **grouped weighted means** — `run_grouped` per-group replicates are
//!   bitwise identical to a standalone weighted bootstrap on the same
//!   `group_seed(seed, key)` stream, reports are thread- and kernel-invariant,
//!   and an all-zero-weight group raises
//!   [`EarlError::DegenerateGroupWeight`] instead of reporting NaN.
//!
//! The CI thread-matrix job runs this file with `EARL_THREADS` ∈ {1, 2, 4, 8};
//! locally the {2, 8} ladder is used.

use std::collections::BTreeMap;

use earl_bootstrap::bootstrap::{BootstrapConfig, BootstrapKernel};
use earl_cluster::{
    Cluster, CostModel, FailureEvent, FailureSchedule, NodeId, SimDuration, SimInstant,
};
use earl_core::grouped::{group_seed, grouped_accuracy, GroupedAggregate, MIN_GROUP_SAMPLE};
use earl_core::tasks::{CorrelationTask, CovarianceTask, RatioTask, WeightedMeanTask};
use earl_core::{EarlConfig, EarlDriver, EarlError};
use earl_dfs::{Dfs, DfsConfig};
use earl_workload::{
    DatasetBuilder, Distribution, GroupedWeightedSpec, PairedSpec, WeightedGroupSpec, WeightedSpec,
};

fn thread_counts() -> Vec<usize> {
    match std::env::var("EARL_THREADS") {
        Ok(v) => vec![v.parse().expect("EARL_THREADS must be a positive integer")],
        Err(_) => vec![2, 8],
    }
}

fn make_dfs(nodes: u32) -> Dfs {
    let cluster = Cluster::builder()
        .nodes(nodes)
        .cost_model(CostModel::commodity_2012())
        .build()
        .unwrap();
    Dfs::new(
        cluster,
        DfsConfig {
            block_size: 1 << 16,
            replication: 2,
            io_chunk: 256,
        },
    )
    .unwrap()
}

/// A DFS whose cluster has an armed failure schedule that never fires — the
/// engine must keep its parallel execution (arbitrating failures at
/// deterministic instants) while the schedule is pending, without any failure
/// actually occurring.
fn make_armed_dfs(nodes: u32) -> Dfs {
    let schedule = FailureSchedule::Deterministic(vec![FailureEvent {
        node: NodeId(0),
        at: SimInstant::EPOCH + SimDuration::from_secs(1_000_000_000),
    }]);
    let cluster = Cluster::builder()
        .nodes(nodes)
        .cost_model(CostModel::commodity_2012())
        .failure_schedule(schedule)
        .build()
        .unwrap();
    Dfs::new(
        cluster,
        DfsConfig {
            block_size: 1 << 16,
            replication: 2,
            io_chunk: 256,
        },
    )
    .unwrap()
}

// ---------------------------------------------------------------------------
// Driver accuracy against exact ground truth
// ---------------------------------------------------------------------------

#[test]
fn ratio_covariance_and_correlation_meet_their_bounds_on_paired_truth() {
    let dfs = make_dfs(4);
    let ds = DatasetBuilder::new(dfs.clone())
        .build_paired("/pairs", &PairedSpec::linear(50_000, 2.5, 40.0, 25.0, 21))
        .unwrap();
    let driver = EarlDriver::new(dfs, EarlConfig::default());

    let ratio = driver.run("/pairs", &RatioTask).unwrap();
    assert!(ratio.meets_bound());
    assert!(
        !ratio.exact,
        "50k pairs at σ=5% must not require exact execution"
    );
    assert!(
        ratio.relative_error_vs(ds.truth.ratio) < 0.05,
        "ratio {} vs truth {}",
        ratio.result,
        ds.truth.ratio
    );

    let cov = driver.run("/pairs", &CovarianceTask).unwrap();
    assert!(cov.meets_bound());
    assert!(
        cov.relative_error_vs(ds.truth.covariance) < 0.15,
        "covariance {} vs truth {}",
        cov.result,
        ds.truth.covariance
    );

    let corr = driver.run("/pairs", &CorrelationTask).unwrap();
    assert!(corr.meets_bound());
    assert!(
        corr.relative_error_vs(ds.truth.correlation) < 0.05,
        "correlation {} vs truth {}",
        corr.result,
        ds.truth.correlation
    );
    // Sample sizes count records (pairs), not flat values.
    assert!(corr.sample_size <= ds.truth.count);
}

#[test]
fn weighted_mean_meets_its_bound_on_weighted_truth() {
    let dfs = make_dfs(4);
    let ds = DatasetBuilder::new(dfs.clone())
        .build_weighted(
            "/weighted",
            &WeightedSpec {
                num_records: 40_000,
                value: Distribution::Normal {
                    mean: 500.0,
                    std_dev: 100.0,
                },
                weight: Distribution::Uniform {
                    low: 0.5,
                    high: 1.5,
                },
                seed: 23,
            },
        )
        .unwrap();
    let report = EarlDriver::new(dfs, EarlConfig::default())
        .run("/weighted", &WeightedMeanTask)
        .unwrap();
    assert!(report.meets_bound());
    assert!(
        report.relative_error_vs(ds.truth.weighted_mean) < 0.05,
        "weighted mean {} vs truth {}",
        report.result,
        ds.truth.weighted_mean
    );
    assert_eq!(
        report.result, report.uncorrected_result,
        "ratio statistics need no 1/p correction"
    );
}

// ---------------------------------------------------------------------------
// Fault-path equivalence: armed schedule ≡ failure-free, bit-identical
// delivered reports on the same parallel engine
// ---------------------------------------------------------------------------

#[test]
fn armed_failure_schedules_deliver_bit_identical_kary_reports() {
    // Thread counts × pipeline depths × every k-ary task: the armed engine
    // (deterministic failure arbitration) and the unarmed fast path must
    // deliver the same report to the last bit.  (A never-firing deterministic
    // event keeps the failure injector armed for the whole run.)
    let build = |dfs: &Dfs| {
        DatasetBuilder::new(dfs.clone())
            .build_paired("/pairs", &PairedSpec::linear(30_000, -1.5, 90.0, 20.0, 31))
            .unwrap();
        DatasetBuilder::new(dfs.clone())
            .build_weighted(
                "/weighted",
                &WeightedSpec {
                    num_records: 30_000,
                    value: Distribution::Normal {
                        mean: 300.0,
                        std_dev: 60.0,
                    },
                    weight: Distribution::Uniform {
                        low: 0.5,
                        high: 1.5,
                    },
                    seed: 33,
                },
            )
            .unwrap();
    };
    for depth in [1usize, 2] {
        for &threads in &thread_counts() {
            let config = EarlConfig {
                pipeline_depth: depth,
                parallelism: Some(threads),
                ..EarlConfig::default()
            };
            let run_one = |dfs: Dfs, path: &str, weighted: bool| {
                build(&dfs);
                let driver = EarlDriver::new(dfs, config);
                if weighted {
                    driver.run(path, &WeightedMeanTask).unwrap()
                } else {
                    driver.run(path, &RatioTask).unwrap()
                }
            };
            for (path, weighted) in [("/pairs", false), ("/weighted", true)] {
                let free = run_one(make_dfs(4), path, weighted);
                let armed = run_one(make_armed_dfs(4), path, weighted);
                assert_eq!(
                    free.result.to_bits(),
                    armed.result.to_bits(),
                    "result (depth {depth}, threads {threads}, {path})"
                );
                assert_eq!(
                    free.uncorrected_result.to_bits(),
                    armed.uncorrected_result.to_bits()
                );
                assert_eq!(
                    free.error_estimate.to_bits(),
                    armed.error_estimate.to_bits(),
                    "error estimate (depth {depth}, threads {threads}, {path})"
                );
                assert_eq!(free.ci_low.to_bits(), armed.ci_low.to_bits());
                assert_eq!(free.ci_high.to_bits(), armed.ci_high.to_bits());
                assert_eq!(free.sample_size, armed.sample_size);
                assert_eq!(free.sample_fraction, armed.sample_fraction);
                assert_eq!(free.bootstraps, armed.bootstraps);
                assert_eq!(free.iterations, armed.iterations);
                assert_eq!(free.exact, armed.exact);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Grouped weighted means
// ---------------------------------------------------------------------------

/// Extracts every group's interleaved (value, weight) buffer the way the
/// grouped driver does, straight from the written file.
fn groups_from_file(dfs: &Dfs, path: &str) -> BTreeMap<String, Vec<f64>> {
    let agg = GroupedAggregate::weighted_mean();
    let lines = dfs.read_all_lines(earl_cluster::Phase::Load, path).unwrap();
    let mut groups: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    for line in &lines {
        if let Some((key, record)) = agg.extract_record(line) {
            groups.entry(key).or_default().extend(record.values());
        }
    }
    groups
}

#[test]
fn grouped_weighted_replicates_match_standalone_bootstraps_bitwise() {
    let dfs = make_dfs(3);
    let spec = GroupedWeightedSpec::normal_groups(4, 800, 100.0, 0.15, 41);
    DatasetBuilder::new(dfs.clone())
        .build_grouped_weighted("/gw", &spec)
        .unwrap();
    let groups = groups_from_file(&dfs, "/gw");
    assert_eq!(groups.len(), 4);
    let agg = GroupedAggregate::weighted_mean();
    let seed = 47u64;
    for &threads in &thread_counts() {
        let cfg = BootstrapConfig::with_resamples(80).with_parallelism(Some(threads));
        let all = grouped_accuracy(seed, &groups, &agg, &cfg).unwrap();
        for (key, result) in &all {
            // The per-group stream is a pure function of (seed, key): the same
            // bootstrap run standalone over the group's records reproduces
            // every replicate bit for bit, whatever other groups exist and
            // however many workers run.
            let standalone = agg
                .bootstrap_group(
                    group_seed(seed, key),
                    &groups[key],
                    &cfg.with_parallelism(Some(1)),
                )
                .unwrap();
            assert_eq!(
                result.replicates, standalone.replicates,
                "group {key}, threads {threads}"
            );
            assert_eq!(result.cv.to_bits(), standalone.cv.to_bits());
        }
    }
}

#[test]
fn run_grouped_weighted_means_meet_per_group_truth() {
    let spec = GroupedWeightedSpec::normal_groups(3, 15_000, 200.0, 0.2, 43);
    let run = |threads: usize, kernel: BootstrapKernel| {
        let dfs = make_dfs(3);
        let ds = DatasetBuilder::new(dfs.clone())
            .build_grouped_weighted("/gw", &spec)
            .unwrap();
        let config = EarlConfig {
            parallelism: Some(threads),
            bootstrap_kernel: kernel,
            ..EarlConfig::default()
        };
        let report = EarlDriver::new(dfs, config)
            .run_grouped("/gw", &GroupedAggregate::weighted_mean())
            .unwrap();
        (report, ds.truth)
    };
    let (report, truth) = run(1, BootstrapKernel::Auto);
    assert!(report.meets_bound());
    assert_eq!(report.groups.len(), 3);
    for g in &report.groups {
        let t = &truth[&g.key];
        assert!(
            (g.result - t.weighted_mean).abs() / t.weighted_mean.abs() < 0.05,
            "group {}: {} vs truth {}",
            g.key,
            g.result,
            t.weighted_mean
        );
        assert!(g.sample_size >= MIN_GROUP_SAMPLE as u64);
    }
    // Thread invariance of the whole grouped report.
    for &threads in &thread_counts() {
        let (parallel, _) = run(threads, BootstrapKernel::Auto);
        assert_eq!(report, parallel, "threads {threads}");
    }
    // Auto is the count-based kernel for the weighted mean (bitwise), and the
    // gather kernel answers the same question within the bound.
    let (count_based, _) = run(1, BootstrapKernel::CountBased);
    assert_eq!(report, count_based, "Auto ≡ CountBased for weighted means");
    let (gather, _) = run(1, BootstrapKernel::Gather);
    assert!(gather.meets_bound());
    for (a, g) in report.groups.iter().zip(&gather.groups) {
        assert!(
            (a.result - g.result).abs() / a.result.abs() < 0.05,
            "group {}: count-based {} vs gather {}",
            a.key,
            a.result,
            g.result
        );
    }
}

#[test]
fn all_zero_group_weight_raises_a_typed_error_not_nan() {
    let dfs = make_dfs(3);
    // Group "dead" carries weight 0 on every record; the others are healthy.
    let mut spec = GroupedWeightedSpec::normal_groups(2, 4_000, 100.0, 0.1, 45);
    spec.groups.push(WeightedGroupSpec {
        key: "dead".into(),
        num_records: 4_000,
        value: Distribution::Normal {
            mean: 50.0,
            std_dev: 5.0,
        },
        weight: Distribution::Normal {
            mean: 0.0,
            std_dev: 0.0,
        },
    });
    let ds = DatasetBuilder::new(dfs.clone())
        .build_grouped_weighted("/gw-dead", &spec)
        .unwrap();
    assert!(ds.truth["dead"].weighted_mean.is_nan());
    match EarlDriver::new(dfs, EarlConfig::default())
        .run_grouped("/gw-dead", &GroupedAggregate::weighted_mean())
    {
        Err(EarlError::DegenerateGroupWeight(key)) => assert_eq!(key, "dead"),
        other => panic!("expected DegenerateGroupWeight, got {other:?}"),
    }
}

#[test]
fn auto_never_routes_a_kary_task_to_the_gather_kernel_in_the_driver() {
    use earl_bootstrap::bootstrap::ResolvedKernel;
    use earl_core::task::TaskEstimator;
    let wm = WeightedMeanTask;
    let ratio = RatioTask;
    let cov = CovarianceTask;
    let corr = CorrelationTask;
    let wm_est = TaskEstimator::new(&wm);
    let ratio_est = TaskEstimator::new(&ratio);
    let cov_est = TaskEstimator::new(&cov);
    let corr_est = TaskEstimator::new(&corr);
    for (name, est) in [
        ("weighted_mean", &wm_est as &dyn earl_bootstrap::Estimator),
        ("ratio", &ratio_est),
        ("covariance", &cov_est),
        ("correlation", &corr_est),
    ] {
        assert_eq!(
            BootstrapKernel::Auto.resolve_for(est),
            ResolvedKernel::CountBased,
            "{name} must never reach the gather kernel under Auto"
        );
    }
    assert_eq!(
        GroupedAggregate::weighted_mean().resolved_kernel(BootstrapKernel::Auto),
        ResolvedKernel::CountBased
    );
}
