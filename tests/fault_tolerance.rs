//! Chaos property suite: fault-tolerant parallel execution (PR 6).
//!
//! The engine no longer falls back to sequential execution when a failure
//! schedule is armed: failures are arbitrated at deterministic sim-instants
//! derived from the task plan, so the outcome of any `(schedule, plan)` pair
//! is a pure function independent of `EARL_THREADS`.  This suite locks that
//! contract end to end:
//!
//! * an armed schedule that never fires delivers reports **bit-identical —
//!   including `sim_time` and `bytes_read` — to an unarmed cluster**, at every
//!   thread count, while the sharded-shuffle counter proves the parallel
//!   engine (not a fallback) handled the job;
//! * a deterministic schedule that *does* fire mid-job produces the same
//!   `JobResult` (outputs, counters, stats, fault log) at every thread count,
//!   under both [`FailurePolicy::Retry`] and [`FailurePolicy::Degrade`];
//! * `Retry` with replication ≥ 2 reproduces the no-failure outputs exactly;
//!   `Degrade` at replication 1 drops the dead node's splits and logs them;
//! * the EARL driver under its default `Degrade` policy survives a mid-run
//!   node death at replication 1: the run returns `Ok`, the confidence
//!   interval brackets the ground truth, and the fault log records the loss;
//! * stochastic schedules draw per `(seed, node, window)` only, so they are
//!   equally thread-invariant and repeatable.
//!
//! Timing of mid-job failures is self-calibrating: a probe run on an unarmed
//! cluster measures the (deterministic) simulated instants of the same write
//! and job, and the real schedule fires inside that window — no magic
//! constants that silently drift out of the job's lifetime.
//!
//! The CI thread-matrix job runs this file with `EARL_THREADS` ∈ {1, 2, 4, 8};
//! locally the {2, 8} ladder is used.

use earl_cluster::{
    Cluster, CostModel, FailureEvent, FailureSchedule, NodeId, SimDuration, SimInstant,
};
use earl_core::fault::run_despite_failures;
use earl_core::tasks::MeanTask;
use earl_core::{EarlConfig, EarlDriver};
use earl_dfs::{Dfs, DfsConfig};
use earl_mapreduce::counters::builtin;
use earl_mapreduce::{
    contrib::{MeanReducer, ValueExtractMapper},
    run_job, FailurePolicy, InputSource, JobConf, JobResult,
};
use earl_workload::{DatasetBuilder, DatasetSpec};

fn thread_counts() -> Vec<usize> {
    match std::env::var("EARL_THREADS") {
        Ok(v) => vec![v.parse().expect("EARL_THREADS must be a positive integer")],
        Err(_) => vec![2, 8],
    }
}

fn make_dfs(nodes: u32, replication: u32, schedule: FailureSchedule) -> Dfs {
    let cluster = Cluster::builder()
        .nodes(nodes)
        .cost_model(CostModel::commodity_2012())
        .failure_schedule(schedule)
        .build()
        .unwrap();
    Dfs::new(
        cluster,
        DfsConfig {
            block_size: 4096,
            replication,
            io_chunk: 256,
        },
    )
    .unwrap()
}

/// A deterministic schedule with one event so far in the future it can never
/// fire — the injector stays armed for the whole run.
fn never_firing() -> FailureSchedule {
    FailureSchedule::Deterministic(vec![FailureEvent {
        node: NodeId(0),
        at: SimInstant::EPOCH + SimDuration::from_secs(1_000_000_000),
    }])
}

fn write_mean_dataset(dfs: &Dfs, records: u64, seed: u64) -> f64 {
    DatasetBuilder::new(dfs.clone())
        .build("/data", &DatasetSpec::normal(records, 500.0, 100.0, seed))
        .unwrap()
        .true_mean
}

/// Runs `work` on an unarmed cluster and returns the simulated instants
/// `(after_write, after_work)` — because the simulation is deterministic, a
/// failure scheduled strictly inside that window is guaranteed to fire while
/// the same workload runs on an identically-configured armed cluster.
fn probe_window(
    nodes: u32,
    replication: u32,
    records: u64,
    seed: u64,
    work: impl Fn(&Dfs),
) -> (SimDuration, SimDuration) {
    let dfs = make_dfs(nodes, replication, FailureSchedule::None);
    write_mean_dataset(&dfs, records, seed);
    let after_write = dfs.cluster().elapsed();
    work(&dfs);
    let after_work = dfs.cluster().elapsed();
    assert!(
        after_work > after_write,
        "probe workload must advance the simulated clock"
    );
    (after_write, after_work)
}

/// An instant `numer/denom` of the way through the probed `(start, end)`
/// window.
fn within(start: SimDuration, end: SimDuration, numer: u64, denom: u64) -> SimInstant {
    let span = end.as_micros() - start.as_micros();
    SimInstant::EPOCH + SimDuration::from_micros(start.as_micros() + span * numer / denom)
}

fn mean_job_conf(policy: FailurePolicy, threads: usize) -> JobConf {
    JobConf::new("mean", InputSource::Path("/data".into()))
        .with_failure_policy(policy)
        .with_parallelism(Some(threads))
}

fn run_mean_job(dfs: &Dfs, policy: FailurePolicy, threads: usize) -> JobResult<f64> {
    run_job(
        dfs,
        &mean_job_conf(policy, threads),
        &ValueExtractMapper,
        &MeanReducer,
    )
    .unwrap()
}

fn assert_job_results_identical(a: &JobResult<f64>, b: &JobResult<f64>, what: &str) {
    assert_eq!(
        a.outputs.iter().map(|v| v.to_bits()).collect::<Vec<u64>>(),
        b.outputs.iter().map(|v| v.to_bits()).collect::<Vec<u64>>(),
        "outputs differ: {what}"
    );
    assert_eq!(a.counters, b.counters, "counters differ: {what}");
    assert_eq!(
        a.stats, b.stats,
        "stats (incl. sim_time, fault log) differ: {what}"
    );
}

// ---------------------------------------------------------------------------
// Armed-but-quiet ≡ unarmed, bit for bit, on the parallel engine
// ---------------------------------------------------------------------------

#[test]
fn armed_never_firing_schedule_is_bit_identical_to_the_unarmed_engine() {
    for threads in thread_counts() {
        let run_one = |schedule: FailureSchedule| {
            let dfs = make_dfs(4, 2, schedule);
            write_mean_dataset(&dfs, 30_000, 41);
            let config = EarlConfig {
                parallelism: Some(threads),
                ..EarlConfig::default()
            };
            EarlDriver::new(dfs, config)
                .run("/data", &MeanTask)
                .unwrap()
        };
        let free = run_one(FailureSchedule::None);
        let armed = run_one(never_firing());
        // Whole-report equality: result, error, CI, sample accounting, AND
        // sim_time / bytes_read — the armed engine must charge exactly what
        // the unarmed engine charges, because it IS the same engine.
        assert_eq!(free, armed, "threads {threads}");
        assert!(
            armed.fault_log.is_none(),
            "no failure fired, nothing to log"
        );
    }
}

#[test]
fn armed_schedule_jobs_go_through_the_streaming_shuffle() {
    // CI gate: an armed (never-firing) schedule must NOT push the job onto
    // any sequential path — the sharded-shuffle counter proves every
    // intermediate record travelled through the map-side streaming shuffle,
    // and the whole JobResult matches the unarmed run bit for bit.
    for threads in thread_counts() {
        let run_one = |schedule: FailureSchedule| {
            let dfs = make_dfs(4, 2, schedule);
            write_mean_dataset(&dfs, 20_000, 42);
            run_mean_job(&dfs, FailurePolicy::retry(), threads)
        };
        let free = run_one(FailureSchedule::None);
        let armed = run_one(never_firing());
        assert!(
            armed.counters.get(builtin::SHARDED_SHUFFLE_RECORDS) > 0,
            "armed-schedule job must stream its shuffle (threads {threads})"
        );
        assert_eq!(
            armed.counters.get(builtin::SHARDED_SHUFFLE_RECORDS),
            armed.stats.shuffle_records
        );
        assert_job_results_identical(
            &free,
            &armed,
            &format!("armed vs unarmed, threads {threads}"),
        );
    }
}

// ---------------------------------------------------------------------------
// Firing deterministic schedules: thread-invariant under both policies
// ---------------------------------------------------------------------------

#[test]
fn firing_schedules_are_thread_invariant_under_every_policy() {
    let (after_write, after_job) = probe_window(4, 2, 25_000, 43, |dfs| {
        run_mean_job(dfs, FailurePolicy::retry(), 2);
    });
    // Fire one node a quarter of the way into the job — squarely inside the
    // map phase.
    let schedule = FailureSchedule::Deterministic(vec![FailureEvent {
        node: NodeId(1),
        at: within(after_write, after_job, 1, 4),
    }]);

    for policy in [
        FailurePolicy::retry(),
        FailurePolicy::Retry {
            max_attempts: 4,
            backoff: SimDuration::from_millis(100),
        },
        FailurePolicy::Degrade,
    ] {
        let mut reference: Option<JobResult<f64>> = None;
        for threads in [1usize].into_iter().chain(thread_counts()) {
            let dfs = make_dfs(4, 2, schedule.clone());
            write_mean_dataset(&dfs, 25_000, 43);
            let result = run_mean_job(&dfs, policy, threads);
            assert!(
                !dfs.cluster().failed_nodes().is_empty(),
                "the scheduled failure must fire ({policy:?}, threads {threads})"
            );
            assert!(
                !result.stats.fault_log.events.is_empty(),
                "the fired event must be logged ({policy:?}, threads {threads})"
            );
            match &reference {
                None => reference = Some(result),
                Some(r) => assert_job_results_identical(
                    r,
                    &result,
                    &format!("{policy:?}, threads {threads} vs 1"),
                ),
            }
        }
    }
}

#[test]
fn retry_with_replication_reproduces_the_no_failure_answer_exactly() {
    let (after_write, after_job) = probe_window(4, 2, 25_000, 44, |dfs| {
        run_mean_job(dfs, FailurePolicy::retry(), 2);
    });
    let schedule = FailureSchedule::Deterministic(vec![FailureEvent {
        node: NodeId(2),
        at: within(after_write, after_job, 1, 3),
    }]);

    for threads in thread_counts() {
        let clean_dfs = make_dfs(4, 2, FailureSchedule::None);
        write_mean_dataset(&clean_dfs, 25_000, 44);
        let clean = run_mean_job(&clean_dfs, FailurePolicy::retry(), threads);

        let lossy_dfs = make_dfs(4, 2, schedule.clone());
        write_mean_dataset(&lossy_dfs, 25_000, 44);
        let recovered = run_mean_job(&lossy_dfs, FailurePolicy::retry(), threads);

        assert!(
            !lossy_dfs.cluster().failed_nodes().is_empty(),
            "the failure must actually fire"
        );
        // Replication 2 means no input data died with the node, so retrying
        // onto survivors reproduces the answer bit for bit.
        assert_eq!(
            clean.outputs[0].to_bits(),
            recovered.outputs[0].to_bits(),
            "threads {threads}"
        );
        assert_eq!(recovered.stats.lost_map_tasks, 0);
        assert_eq!(
            recovered.counters.get(builtin::MAP_INPUT_RECORDS),
            clean.counters.get(builtin::MAP_INPUT_RECORDS),
            "every record is processed despite the failure"
        );
        if recovered.stats.restarted_tasks > 0 {
            assert_eq!(
                recovered.stats.fault_log.task_retries,
                recovered.stats.restarted_tasks
            );
        }
    }
}

#[test]
fn degrade_at_replication_one_drops_the_dead_nodes_splits() {
    let (after_write, after_job) = probe_window(3, 1, 20_000, 45, |dfs| {
        run_mean_job(dfs, FailurePolicy::Degrade, 2);
    });
    let schedule = FailureSchedule::Deterministic(vec![FailureEvent {
        node: NodeId(1),
        at: within(after_write, after_job, 1, 5),
    }]);

    let mut reference: Option<JobResult<f64>> = None;
    for threads in [1usize].into_iter().chain(thread_counts()) {
        let dfs = make_dfs(3, 1, schedule.clone());
        write_mean_dataset(&dfs, 20_000, 45);
        let result = run_mean_job(&dfs, FailurePolicy::Degrade, threads);
        assert!(
            result.stats.lost_map_tasks > 0,
            "a node death early in the map phase must lose splits (threads {threads})"
        );
        assert!(result.stats.surviving_fraction() < 1.0);
        assert_eq!(
            result.counters.get(builtin::LOST_SPLITS),
            result.stats.lost_map_tasks
        );
        assert_eq!(
            result.stats.fault_log.splits_lost,
            result.stats.lost_map_tasks
        );
        // The surviving mean is still in the right ballpark.
        assert!((result.outputs[0] - 500.0).abs() < 50.0);
        match &reference {
            None => reference = Some(result),
            Some(r) => {
                assert_job_results_identical(r, &result, &format!("degrade, threads {threads}"))
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Stochastic schedules: order-free draws, repeatable, thread-invariant
// ---------------------------------------------------------------------------

#[test]
fn stochastic_schedules_are_repeatable_and_thread_invariant() {
    // A rate high enough to matter over a multi-second job; the Degrade
    // policy below absorbs whatever data the draws happen to kill.
    let schedule = FailureSchedule::Stochastic {
        per_node_probability_per_sec: 0.005,
        seed: 0xC4A05,
    };
    let mut reference: Option<(JobResult<f64>, usize)> = None;
    for threads in [1usize].into_iter().chain(thread_counts()) {
        // Run the same stochastic world twice at this thread count: the
        // failure draws are keyed on (seed, node, window) only, so the two
        // runs — and every thread count — see identical failures.
        let mut per_run: Option<JobResult<f64>> = None;
        for run in 0..2 {
            let dfs = make_dfs(4, 2, schedule.clone());
            write_mean_dataset(&dfs, 25_000, 46);
            let result = run_mean_job(&dfs, FailurePolicy::Degrade, threads);
            let failed = dfs.cluster().failed_nodes().len();
            match &per_run {
                None => per_run = Some(result.clone()),
                Some(r) => assert_job_results_identical(
                    r,
                    &result,
                    &format!("repeat run {run}, threads {threads}"),
                ),
            }
            match &reference {
                None => reference = Some((result, failed)),
                Some((r, f)) => {
                    assert_eq!(*f, failed, "failure count differs at threads {threads}");
                    assert_job_results_identical(r, &result, &format!("threads {threads} vs 1"));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The EARL driver survives mid-run node death under its default policy
// ---------------------------------------------------------------------------

#[test]
fn degrade_driver_survives_mid_run_node_death_at_replication_one() {
    // Tight bound + dispersed data force several expansion iterations, so
    // sample draws keep hitting the DFS after the failure fires.
    let config = EarlConfig {
        sigma: 0.02,
        ..EarlConfig::default()
    };
    let truth = {
        let dfs = make_dfs(4, 1, FailureSchedule::None);
        write_mean_dataset(&dfs, 40_000, 47)
    };
    let probe = {
        let dfs = make_dfs(4, 1, FailureSchedule::None);
        write_mean_dataset(&dfs, 40_000, 47);
        let after_write = dfs.cluster().elapsed();
        EarlDriver::new(dfs.clone(), config)
            .run("/data", &MeanTask)
            .unwrap();
        (after_write, dfs.cluster().elapsed())
    };

    for threads in thread_counts() {
        // Node 3 dies two thirds of the way into the run — past the pilot,
        // while sample expansion is still drawing from the DFS.
        let schedule = FailureSchedule::Deterministic(vec![FailureEvent {
            node: NodeId(3),
            at: within(probe.0, probe.1, 2, 3),
        }]);
        let dfs = make_dfs(4, 1, schedule);
        write_mean_dataset(&dfs, 40_000, 47);
        let driver = EarlDriver::new(
            dfs.clone(),
            EarlConfig {
                parallelism: Some(threads),
                ..config
            },
        );
        let report = driver
            .run("/data", &MeanTask)
            .expect("the degrade policy must survive the node death");
        assert!(
            !dfs.cluster().failed_nodes().is_empty(),
            "the scheduled death must fire mid-run"
        );
        let log = report
            .fault_log
            .as_ref()
            .expect("a run that saw a failure must carry a fault log");
        assert!(!log.events.is_empty(), "the event itself is logged");
        assert!(
            log.splits_lost > 0,
            "at replication 1 the death must cost input splits"
        );
        assert!(
            report.ci_low <= truth && truth <= report.ci_high,
            "CI [{}, {}] must bracket the truth {} (threads {threads})",
            report.ci_low,
            report.ci_high,
            truth
        );
        assert!(
            report.relative_error_vs(truth) < 0.05,
            "estimate {} vs truth {truth}",
            report.result
        );
    }
}

#[test]
fn degrade_driver_is_thread_and_depth_invariant_while_failures_fire() {
    // Replication 2: the node death fires but loses no data, so the delivered
    // numbers must match the no-failure run AND be identical at every thread
    // count and pipeline depth.
    let probe = {
        let dfs = make_dfs(4, 2, FailureSchedule::None);
        write_mean_dataset(&dfs, 30_000, 48);
        let after_write = dfs.cluster().elapsed();
        EarlDriver::new(dfs.clone(), EarlConfig::default())
            .run("/data", &MeanTask)
            .unwrap();
        (after_write, dfs.cluster().elapsed())
    };
    let schedule = FailureSchedule::Deterministic(vec![FailureEvent {
        node: NodeId(2),
        at: within(probe.0, probe.1, 1, 2),
    }]);

    for depth in [1usize, 2] {
        let mut reference: Option<earl_core::EarlReport> = None;
        for threads in thread_counts() {
            let dfs = make_dfs(4, 2, schedule.clone());
            write_mean_dataset(&dfs, 30_000, 48);
            let config = EarlConfig {
                parallelism: Some(threads),
                pipeline_depth: depth,
                ..EarlConfig::default()
            };
            let report = EarlDriver::new(dfs.clone(), config)
                .run("/data", &MeanTask)
                .unwrap();
            assert!(
                !dfs.cluster().failed_nodes().is_empty(),
                "the failure must fire (depth {depth}, threads {threads})"
            );
            match &reference {
                None => reference = Some(report),
                Some(r) => {
                    assert_eq!(r.result.to_bits(), report.result.to_bits());
                    assert_eq!(r.error_estimate.to_bits(), report.error_estimate.to_bits());
                    assert_eq!(r.ci_low.to_bits(), report.ci_low.to_bits());
                    assert_eq!(r.ci_high.to_bits(), report.ci_high.to_bits());
                    assert_eq!(r.sample_size, report.sample_size);
                    assert_eq!(r.sample_fraction, report.sample_fraction);
                    assert_eq!(r.iterations, report.iterations);
                    assert_eq!(r.exact, report.exact);
                    assert_eq!(r.fault_log, report.fault_log);
                    assert_eq!(
                        r.sim_time, report.sim_time,
                        "sim accounting is thread-invariant (depth {depth}, threads {threads})"
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// run_despite_failures agrees with the driver's degrade semantics
// ---------------------------------------------------------------------------

#[test]
fn run_despite_failures_and_the_degrading_driver_tell_the_same_story() {
    let truth = {
        let dfs = make_dfs(4, 1, FailureSchedule::None);
        write_mean_dataset(&dfs, 30_000, 49)
    };
    let make_failed_dfs = || {
        let dfs = make_dfs(4, 1, FailureSchedule::None);
        write_mean_dataset(&dfs, 30_000, 49);
        dfs.cluster().fail_node(NodeId(0)).unwrap();
        dfs
    };

    // §3.4 one-shot: read everything that survives, bound the error.
    let oneshot = run_despite_failures(
        &make_failed_dfs(),
        "/data",
        &MeanTask,
        &EarlConfig::default(),
    )
    .unwrap();
    assert!(oneshot.sample_fraction < 1.0);
    assert!(!oneshot.exact);
    assert!(oneshot.error_estimate > 0.0);
    let oneshot_log = oneshot.fault_log.as_ref().expect("loss must be logged");
    assert!(oneshot_log.splits_lost > 0);
    assert!(oneshot.ci_low <= truth && truth <= oneshot.ci_high);

    // The iterative driver under Degrade survives the same world: both
    // accounts agree on the ground truth within their bounds.
    let report = EarlDriver::new(make_failed_dfs(), EarlConfig::default())
        .run("/data", &MeanTask)
        .unwrap();
    assert!(report.relative_error_vs(truth) < 0.05);
    assert!(oneshot.relative_error_vs(report.result) < 0.05);
}
