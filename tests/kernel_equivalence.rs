//! Kernel-equivalence contract of the bootstrap evaluation kernels (PR 3).
//!
//! Three replicate-evaluation kernels can answer the same bootstrap question —
//! gather (materialise + rescan), streaming (accumulator fed straight from
//! sampled indices) and count-based (resample-free multinomial section
//! counts, linear statistics only).  This suite pins their equivalence:
//!
//! * streaming ≡ gather **bit-identically** for single-pass statistics
//!   (mean/sum/count) — both kernels consume the identical `(seed, replicate)`
//!   RNG stream and perform the identical arithmetic in the same order;
//! * streaming ≈ gather within 1e-9 *relative* per replicate for the moment
//!   statistics (variance/stddev) — single-pass shifted Youngs–Cramer versus
//!   two-pass;
//! * count-based reproduces the gather replicate *distribution*'s moments
//!   (replicate mean, standard error, cv) within seeded tolerance — by
//!   construction the kernel matches them exactly in expectation;
//! * every kernel is a pure function of the seed: bit-identical at every
//!   worker count, with `B`-growth preserving the replicate prefix.
//!
//! The CI thread-matrix job runs this file with `EARL_THREADS` ∈ {1, 2, 4, 8}
//! on a multi-core runner; locally the {2, 8} ladder is used.

use earl_bootstrap::bootstrap::{
    bootstrap_distribution, BootstrapConfig, BootstrapKernel, ResolvedKernel,
};
use earl_bootstrap::estimators::{Count, Estimator, Mean, Median, StdDev, Sum, Variance};
use earl_bootstrap::rng::{seeded_rng, standard_normal};
use earl_core::task::TaskEstimator;
use earl_core::tasks::{
    CorrelationTask, CountTask, CovarianceTask, MeanTask, MedianTask, RatioTask, StdDevTask,
    SumTask, VarianceTask, WeightedMeanTask,
};

/// Thread counts under test: the `EARL_THREADS` matrix value when set, the
/// {2, 8} ladder otherwise.  Every property compares against a 1-thread
/// reference run.
fn thread_counts() -> Vec<usize> {
    match std::env::var("EARL_THREADS") {
        Ok(v) => vec![v.parse().expect("EARL_THREADS must be a positive integer")],
        Err(_) => vec![2, 8],
    }
}

fn normal_sample(n: usize, mean: f64, sd: f64, seed: u64) -> Vec<f64> {
    let mut rng = seeded_rng(seed);
    (0..n)
        .map(|_| mean + sd * standard_normal(&mut rng))
        .collect()
}

fn run(
    seed: u64,
    data: &[f64],
    estimator: &dyn Estimator,
    b: usize,
    kernel: BootstrapKernel,
    threads: usize,
) -> earl_bootstrap::BootstrapResult {
    bootstrap_distribution(
        seed,
        data,
        estimator,
        &BootstrapConfig::with_resamples(b)
            .with_kernel(kernel)
            .with_parallelism(Some(threads)),
    )
    .expect("bootstrap")
}

/// Property: for single-pass statistics the streaming kernel is bit-identical
/// to the gather kernel — every replicate, at every thread count, across a
/// spread of seeds, sample sizes and B values.
#[test]
fn streaming_replicates_are_bit_identical_to_gather_for_linear_statistics() {
    for case in 0u64..6 {
        let n = 300 + (case as usize) * 777;
        let b = 20 + (case as usize) * 13;
        let data = normal_sample(n, 40.0, 9.0, 2000 + case);
        for est in [&Mean as &dyn Estimator, &Sum, &Count] {
            let gather = run(case, &data, est, b, BootstrapKernel::Gather, 1);
            for &threads in &thread_counts() {
                let streaming = run(case, &data, est, b, BootstrapKernel::Streaming, threads);
                assert_eq!(
                    gather,
                    streaming,
                    "{} must be bit-identical (case {case}, threads {threads})",
                    Estimator::name(est)
                );
            }
        }
    }
}

/// Property: the single-pass shifted Youngs–Cramer update (streaming) agrees
/// with the two-pass gather evaluation within 1e-9 relative, per replicate,
/// for variance and stddev.
#[test]
fn streaming_moment_replicates_match_gather_within_1e9_relative() {
    for case in 0u64..4 {
        let n = 500 + (case as usize) * 900;
        let data = normal_sample(n, 25.0, 6.0, 3000 + case);
        for est in [&Variance as &dyn Estimator, &StdDev] {
            let gather = run(case, &data, est, 40, BootstrapKernel::Gather, 1);
            for &threads in &thread_counts() {
                let streaming = run(case, &data, est, 40, BootstrapKernel::Streaming, threads);
                assert_eq!(gather.replicates.len(), streaming.replicates.len());
                for (g, s) in gather.replicates.iter().zip(&streaming.replicates) {
                    assert!(
                        ((g - s) / g).abs() < 1e-9,
                        "{}: replicate {g} vs {s} (case {case})",
                        Estimator::name(est)
                    );
                }
            }
        }
    }
}

/// Property: the count-based kernel reproduces the gather kernel's replicate
/// *distribution* moments within seeded tolerance — the same replicate mean,
/// standard error and cv a materialising bootstrap measures, at O(√n) per
/// replicate.  (By construction the kernel's distribution matches the
/// multinomial bootstrap's mean and variance exactly; the tolerance below is
/// pure Monte-Carlo noise at B = 400.)
#[test]
fn count_based_distribution_moments_match_gather_within_seeded_tolerance() {
    for (case, n) in [(0u64, 2_000usize), (1, 8_000), (2, 30_000)] {
        let data = normal_sample(n, 150.0, 35.0, 4000 + case);
        for est in [&Mean as &dyn Estimator, &Sum] {
            let gather = run(case, &data, est, 400, BootstrapKernel::Gather, 1);
            let counts = run(case, &data, est, 400, BootstrapKernel::CountBased, 1);
            assert_eq!(
                counts.point_estimate, gather.point_estimate,
                "the point estimate never depends on the kernel"
            );
            let rel_mean =
                ((counts.replicate_mean - gather.replicate_mean) / gather.replicate_mean).abs();
            assert!(
                rel_mean < 2e-3,
                "{} n={n}: replicate means {} vs {}",
                Estimator::name(est),
                counts.replicate_mean,
                gather.replicate_mean
            );
            let se_ratio = counts.std_error / gather.std_error;
            assert!(
                (0.8..1.25).contains(&se_ratio),
                "{} n={n}: standard errors {} vs {}",
                Estimator::name(est),
                counts.std_error,
                gather.std_error
            );
            let cv_ratio = counts.cv / gather.cv;
            assert!(
                (0.8..1.25).contains(&cv_ratio),
                "{} n={n}: cv {} vs {}",
                Estimator::name(est),
                counts.cv,
                gather.cv
            );
        }
        // Count is the degenerate linear statistic: every replicate is exactly
        // the resample size on both kernels.
        let gather = run(case, &data, &Count, 50, BootstrapKernel::Gather, 1);
        let counts = run(case, &data, &Count, 50, BootstrapKernel::CountBased, 1);
        assert_eq!(gather, counts);
    }
}

/// Property: the count-based kernel is a pure function of the seed — replicate
/// `b` depends only on `(seed, b)`, so results are bit-identical at every
/// thread count and growing B preserves the prefix.
#[test]
fn count_based_kernel_is_thread_invariant_with_prefix_stability() {
    let data = normal_sample(5_000, 60.0, 12.0, 77);
    let reference = run(9, &data, &Mean, 64, BootstrapKernel::CountBased, 1);
    for &threads in &thread_counts() {
        let parallel = run(9, &data, &Mean, 64, BootstrapKernel::CountBased, threads);
        assert_eq!(reference, parallel, "threads = {threads}");
    }
    let grown = run(9, &data, &Mean, 96, BootstrapKernel::CountBased, 1);
    assert_eq!(reference.replicates[..], grown.replicates[..64]);
}

/// Property: `Auto` never routes a linear estimator to the gather kernel —
/// at both the estimator layer and the task layer the driver uses.
#[test]
fn auto_routes_every_linear_statistic_to_the_count_based_kernel() {
    for est in [&Mean as &dyn Estimator, &Sum, &Count] {
        assert_eq!(
            BootstrapKernel::Auto.resolve_for(est),
            ResolvedKernel::CountBased,
            "estimator {}",
            Estimator::name(est)
        );
    }
    assert_eq!(
        BootstrapKernel::Auto.resolve_for(&TaskEstimator::new(&MeanTask)),
        ResolvedKernel::CountBased
    );
    assert_eq!(
        BootstrapKernel::Auto.resolve_for(&TaskEstimator::new(&SumTask)),
        ResolvedKernel::CountBased
    );
    assert_eq!(
        BootstrapKernel::Auto.resolve_for(&TaskEstimator::new(&CountTask)),
        ResolvedKernel::CountBased
    );
    // Second moments stream, order statistics gather.
    assert_eq!(
        BootstrapKernel::Auto.resolve_for(&TaskEstimator::new(&VarianceTask)),
        ResolvedKernel::Streaming
    );
    assert_eq!(
        BootstrapKernel::Auto.resolve_for(&TaskEstimator::new(&StdDevTask)),
        ResolvedKernel::Streaming
    );
    assert_eq!(
        BootstrapKernel::Auto.resolve_for(&TaskEstimator::new(&MedianTask)),
        ResolvedKernel::Gather
    );
    assert_eq!(
        BootstrapKernel::Auto.resolve_for(&Median),
        ResolvedKernel::Gather
    );
}

// ---------------------------------------------------------------------------
// K-ary conformance: the count-based kernel serving ratio-of-linear tasks
// (weighted mean, ratio, covariance, correlation) must reproduce the gather
// kernel's replicate distribution, stay bitwise thread-invariant, and never
// silently degrade to gather under Auto.
// ---------------------------------------------------------------------------

/// Interleaved (x, y) pairs with genuine cross-column correlation and
/// positive columns — every k-ary task is well defined on them.
fn kary_sample(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = seeded_rng(seed);
    (0..n)
        .flat_map(|_| {
            let x = 100.0 + 20.0 * standard_normal(&mut rng);
            let y = 0.6 * x + 30.0 + 10.0 * standard_normal(&mut rng);
            [x, y]
        })
        .collect()
}

struct KaryCase {
    name: &'static str,
    estimator: Box<dyn Estimator>,
}

fn kary_cases() -> Vec<KaryCase> {
    static WEIGHTED_MEAN: WeightedMeanTask = WeightedMeanTask;
    static RATIO: RatioTask = RatioTask;
    static COVARIANCE: CovarianceTask = CovarianceTask;
    static CORRELATION: CorrelationTask = CorrelationTask;
    vec![
        KaryCase {
            name: "weighted_mean",
            estimator: Box::new(TaskEstimator::new(&WEIGHTED_MEAN)),
        },
        KaryCase {
            name: "ratio",
            estimator: Box::new(TaskEstimator::new(&RATIO)),
        },
        KaryCase {
            name: "covariance",
            estimator: Box::new(TaskEstimator::new(&COVARIANCE)),
        },
        KaryCase {
            name: "correlation",
            estimator: Box::new(TaskEstimator::new(&CORRELATION)),
        },
    ]
}

/// Property: for every k-ary task the count-based kernel reproduces the gather
/// kernel's replicate *distribution* moments within seeded tolerance — same
/// replicate mean, standard error and cv, at O(k·√n) per replicate.  The
/// correlation's cv is minuscule (ρ ≈ 0.8 resamples barely move), so its
/// standard-error ratio gets the one looser band.
#[test]
fn kary_count_based_distribution_moments_match_gather_within_seeded_tolerance() {
    for (case, n) in [(0u64, 2_000usize), (1, 8_000)] {
        let data = kary_sample(n, 6000 + case);
        for kc in kary_cases() {
            let est = kc.estimator.as_ref();
            let gather = run(case, &data, est, 400, BootstrapKernel::Gather, 1);
            let counts = run(case, &data, est, 400, BootstrapKernel::CountBased, 1);
            assert_eq!(
                counts.point_estimate, gather.point_estimate,
                "the point estimate never depends on the kernel ({})",
                kc.name
            );
            // Two independent B=400 Monte-Carlo means each wobble by
            // se/√B around the ideal bootstrap expectation; 6 combined
            // standard errors (with a 2e-3 relative floor for the
            // nearly-degenerate statistics) is a seeded-tolerance band that
            // only a genuinely biased kernel escapes.
            let mc_se = gather.std_error / (400f64).sqrt();
            let tolerance = (6.0 * mc_se).max(2e-3 * gather.replicate_mean.abs());
            assert!(
                (counts.replicate_mean - gather.replicate_mean).abs() < tolerance,
                "{} n={n}: replicate means {} vs {} (tolerance {tolerance})",
                kc.name,
                counts.replicate_mean,
                gather.replicate_mean
            );
            let se_ratio = counts.std_error / gather.std_error;
            assert!(
                (0.7..1.4).contains(&se_ratio),
                "{} n={n}: standard errors {} vs {}",
                kc.name,
                counts.std_error,
                gather.std_error
            );
        }
    }
}

/// Property: every k-ary task's count-based bootstrap is a pure function of
/// the seed — bit-identical at every thread count of the `EARL_THREADS`
/// matrix, with `B`-growth preserving the replicate prefix.
#[test]
fn kary_count_based_kernel_is_thread_invariant_with_prefix_stability() {
    let data = kary_sample(3_000, 88);
    for kc in kary_cases() {
        let est = kc.estimator.as_ref();
        let reference = run(17, &data, est, 64, BootstrapKernel::CountBased, 1);
        for &threads in &thread_counts() {
            let parallel = run(17, &data, est, 64, BootstrapKernel::CountBased, threads);
            assert_eq!(reference, parallel, "{} threads = {threads}", kc.name);
        }
        let grown = run(17, &data, est, 96, BootstrapKernel::CountBased, 1);
        assert_eq!(
            reference.replicates[..],
            grown.replicates[..64],
            "{} prefix",
            kc.name
        );
        // The gather kernel resamples whole records and is thread-invariant
        // too (it shares the per-replicate RNG stream contract).
        let gather_ref = run(17, &data, est, 32, BootstrapKernel::Gather, 1);
        for &threads in &thread_counts() {
            let gather_par = run(17, &data, est, 32, BootstrapKernel::Gather, threads);
            assert_eq!(gather_ref, gather_par, "{} gather threads", kc.name);
        }
    }
}

/// Property: `Auto` never routes a k-ary-capable task to the gather kernel —
/// the exact assertion the bench gate enforces, pinned here for every new
/// task at the estimator layer the driver uses.
#[test]
fn auto_routes_every_kary_task_to_the_count_based_kernel() {
    for kc in kary_cases() {
        assert_eq!(
            BootstrapKernel::Auto.resolve_for(kc.estimator.as_ref()),
            ResolvedKernel::CountBased,
            "{} must never silently reach the gather kernel under Auto",
            kc.name
        );
        // Explicitly requesting CountBased holds too; only an explicit Gather
        // request lands on gather.
        assert_eq!(
            BootstrapKernel::CountBased.resolve_for(kc.estimator.as_ref()),
            ResolvedKernel::CountBased
        );
        assert_eq!(
            BootstrapKernel::Gather.resolve_for(kc.estimator.as_ref()),
            ResolvedKernel::Gather
        );
    }
}

/// Property: the full EARL driver delivers identical reports whichever of the
/// schedule variants runs, with the kernel threaded end-to-end — and pinning
/// the kernel to `Gather` still meets the accuracy bound (the kernels answer
/// the same statistical question).
#[test]
fn driver_reports_meet_the_bound_under_every_kernel() {
    use earl_cluster::{Cluster, CostModel};
    use earl_core::{EarlConfig, EarlDriver};
    use earl_dfs::{Dfs, DfsConfig};
    use earl_workload::{DatasetBuilder, DatasetSpec};

    let build = || {
        let cluster = Cluster::builder()
            .nodes(3)
            .cost_model(CostModel::commodity_2012())
            .build()
            .unwrap();
        let dfs = Dfs::new(
            cluster,
            DfsConfig {
                block_size: 1 << 16,
                replication: 2,
                io_chunk: 128,
            },
        )
        .unwrap();
        DatasetBuilder::new(dfs.clone())
            .build("/data", &DatasetSpec::normal(30_000, 500.0, 100.0, 5))
            .unwrap();
        dfs
    };
    for kernel in [
        BootstrapKernel::Auto,
        BootstrapKernel::CountBased,
        BootstrapKernel::Streaming,
        BootstrapKernel::Gather,
    ] {
        for &threads in &thread_counts() {
            let config = EarlConfig {
                bootstrap_kernel: kernel,
                parallelism: Some(threads),
                ..EarlConfig::default()
            };
            let report = EarlDriver::new(build(), config)
                .run("/data", &MeanTask)
                .unwrap();
            assert!(report.meets_bound(), "kernel {kernel:?}");
            assert!(
                (report.result - 500.0).abs() < 15.0,
                "kernel {kernel:?}: result {}",
                report.result
            );
            // Same kernel, any thread count → identical report.
            let reference = EarlDriver::new(
                build(),
                EarlConfig {
                    bootstrap_kernel: kernel,
                    parallelism: Some(1),
                    ..EarlConfig::default()
                },
            )
            .run("/data", &MeanTask)
            .unwrap();
            assert_eq!(reference.result, report.result, "kernel {kernel:?}");
            assert_eq!(
                reference.error_estimate, report.error_estimate,
                "kernel {kernel:?}"
            );
            assert_eq!(reference.sample_size, report.sample_size);
        }
    }
}
