//! Regression pins for the `pipeline_depth` default flip (1 → 2).
//!
//! The sequential schedule (`pipeline_depth: 1`) is the accounting reference
//! of the PR-1 experiment tables: flipping the default must not disturb it.
//! The constants below were recorded from the engine **before** the flip (and
//! before/after the streaming-shuffle refactor, which reproduced them
//! bit-for-bit); `pipeline_depth: 1` must keep reproducing every field —
//! including the simulated clock and DFS byte accounting — exactly.
//!
//! The overlap default itself is pinned more loosely: identical *delivered*
//! results, sim time no less than the sequential schedule's useful work.

use earl_core::tasks::{MeanTask, MedianTask};
use earl_core::{EarlConfig, EarlDriver, EarlReport};
use earl_dfs::{Dfs, DfsConfig};

fn dfs(nodes: u32, seed: u64) -> Dfs {
    let cluster = earl_cluster::Cluster::builder()
        .nodes(nodes)
        .cost_model(earl_cluster::CostModel::commodity_2012())
        .seed(seed)
        .build()
        .unwrap();
    Dfs::new(
        cluster,
        DfsConfig {
            block_size: 1 << 12,
            replication: 2,
            io_chunk: 256,
        },
    )
    .unwrap()
}

fn scenario_a(depth: usize) -> EarlReport {
    let d = dfs(4, 17);
    earl_workload::DatasetBuilder::new(d.clone())
        .build(
            "/data",
            &earl_workload::DatasetSpec::normal(60_000, 500.0, 400.0, 17),
        )
        .unwrap();
    let config = EarlConfig {
        pipeline_depth: depth,
        sigma: 0.02,
        bootstraps: Some(40),
        sample_size: Some(500),
        ..EarlConfig::default()
    };
    EarlDriver::new(d, config).run("/data", &MeanTask).unwrap()
}

/// Scenario A (multi-iteration mean, delta maintenance on) under the
/// sequential schedule reproduces the PR-1-era report bit for bit, including
/// the simulated clock and byte accounting.
#[test]
fn depth_one_reproduces_the_recorded_mean_report_bit_for_bit() {
    let r = scenario_a(1);
    assert_eq!(r.result.to_bits(), 0x407ef936c0bb9b91, "result drifted");
    assert_eq!(
        r.error_estimate.to_bits(),
        0x3f93f947fa7e8df2,
        "error estimate drifted"
    );
    assert_eq!(r.sample_size, 1200);
    assert_eq!(r.iterations, 2);
    assert_eq!(r.sample_fraction.to_bits(), 0x3f947ae147ae147b);
    assert_eq!(r.bootstraps, 40);
    assert_eq!(
        r.sim_time.as_micros(),
        14_459_850,
        "sequential sim-time accounting drifted"
    );
    assert_eq!(r.bytes_read, 310_784, "sequential byte accounting drifted");
}

/// Scenario B (single-iteration median, fresh bootstraps, gather kernel)
/// under the sequential schedule: same pin, different code path.
#[test]
fn depth_one_reproduces_the_recorded_median_report_bit_for_bit() {
    let d = dfs(3, 29);
    earl_workload::DatasetBuilder::new(d.clone())
        .build(
            "/data",
            &earl_workload::DatasetSpec::normal(30_000, 500.0, 150.0, 29),
        )
        .unwrap();
    let config = EarlConfig {
        pipeline_depth: 1,
        delta_maintenance: false,
        ..EarlConfig::default()
    };
    let r = EarlDriver::new(d, config)
        .run("/data", &MedianTask)
        .unwrap();
    assert_eq!(r.result.to_bits(), 0x407f1f04f2e6760f);
    assert_eq!(r.error_estimate.to_bits(), 0x3f9f7d88dbf71af1);
    assert_eq!(r.sample_size, 300);
    assert_eq!(r.iterations, 1);
    assert_eq!(r.sim_time.as_micros(), 5_318_485);
    assert_eq!(r.bytes_read, 77_056);
}

/// The new default really is the overlap schedule, and it delivers the
/// sequential results with the overlap accounting (the speculative map work
/// of the final iteration is charged on top of the sequential schedule's
/// useful work).
#[test]
fn default_depth_is_two_and_delivers_sequential_results() {
    assert_eq!(EarlConfig::default().pipeline_depth, 2);
    let sequential = scenario_a(1);
    let defaulted = {
        let d = dfs(4, 17);
        earl_workload::DatasetBuilder::new(d.clone())
            .build(
                "/data",
                &earl_workload::DatasetSpec::normal(60_000, 500.0, 400.0, 17),
            )
            .unwrap();
        let config = EarlConfig {
            sigma: 0.02,
            bootstraps: Some(40),
            sample_size: Some(500),
            ..EarlConfig::default()
        };
        EarlDriver::new(d, config).run("/data", &MeanTask).unwrap()
    };
    assert_eq!(defaulted.result, sequential.result);
    assert_eq!(defaulted.error_estimate, sequential.error_estimate);
    assert_eq!(defaulted.sample_size, sequential.sample_size);
    assert_eq!(defaulted.iterations, sequential.iterations);
    assert_eq!(defaulted.sample_fraction, sequential.sample_fraction);
    assert!(
        defaulted.sim_time >= sequential.sim_time,
        "overlap accounting charges the speculative map work too"
    );
    assert!(defaulted.bytes_read >= sequential.bytes_read);
}
