//! Integration tests of the substrate stack (cluster + DFS + MapReduce +
//! sampling) independent of the EARL driver.

use earl_cluster::{Cluster, CostModel, Phase};
use earl_dfs::{rebalancer, Dfs, DfsConfig};
use earl_mapreduce::contrib::{
    CountCombiner, MeanReducer, TokenCountMapper, ValueExtractMapper, WordCountReducer,
};
use earl_mapreduce::{run_job, run_job_with_combiner, FailurePolicy, InputSource, JobConf};
use earl_sampling::premap::premap_sample;
use earl_sampling::{PostMapSampler, PreMapSampler, SampleSource};
use earl_workload::{DatasetBuilder, DatasetSpec};
use std::collections::HashMap;

fn make_dfs() -> Dfs {
    let cluster = Cluster::builder()
        .nodes(4)
        .cost_model(CostModel::commodity_2012())
        .build()
        .unwrap();
    Dfs::new(
        cluster,
        DfsConfig {
            block_size: 1 << 14,
            replication: 2,
            io_chunk: 256,
        },
    )
    .unwrap()
}

#[test]
fn word_count_pipeline_matches_an_independent_reference() {
    let dfs = make_dfs();
    let words = ["alpha", "beta", "gamma", "delta"];
    let lines: Vec<String> = (0..2_000)
        .map(|i| {
            format!(
                "{} {} {}",
                words[i % 4],
                words[(i / 2) % 4],
                words[(i / 7) % 4]
            )
        })
        .collect();
    dfs.write_lines("/mr/words", &lines).unwrap();

    // Reference counts computed directly.
    let mut reference: HashMap<String, u64> = HashMap::new();
    for line in &lines {
        for token in line.split_whitespace() {
            *reference.entry(token.to_owned()).or_insert(0) += 1;
        }
    }

    let conf = JobConf::new("wordcount", InputSource::Path("/mr/words".into())).with_reducers(3);
    let plain = run_job(&dfs, &conf, &TokenCountMapper, &WordCountReducer).unwrap();
    let combined = run_job_with_combiner(
        &dfs,
        &conf,
        &TokenCountMapper,
        &WordCountReducer,
        &CountCombiner,
    )
    .unwrap();

    for result in [&plain, &combined] {
        let got: HashMap<String, u64> = result.outputs.iter().cloned().collect();
        assert_eq!(got, reference);
    }
    assert!(
        combined.stats.sim_time <= plain.stats.sim_time,
        "combiner must not slow the job down"
    );
}

#[test]
fn sampling_plus_mapreduce_estimates_the_mean_cheaply() {
    let dfs = make_dfs();
    let ds = DatasetBuilder::new(dfs.clone())
        .build("/mr/values", &DatasetSpec::normal(30_000, 42.0, 6.0, 1))
        .unwrap();

    // Draw a 2% pre-map sample and run the mean job over it in memory.
    let batch = premap_sample(&dfs, "/mr/values", 600, 1).unwrap();
    let conf = JobConf::new("sampled-mean", InputSource::Memory(batch.records.clone()));
    let result = run_job(&dfs, &conf, &ValueExtractMapper, &MeanReducer).unwrap();
    let sample_mean = result.outputs[0];
    assert!((sample_mean - ds.true_mean).abs() / ds.true_mean < 0.05);

    // The sampled pipeline reads a small fraction of the file.
    assert!(batch.bytes_read < dfs.status("/mr/values").unwrap().len / 3);
}

#[test]
fn rebalanced_cluster_preserves_data_and_evens_load() {
    let cluster = Cluster::builder()
        .nodes(4)
        .cost_model(CostModel::free())
        .build()
        .unwrap();
    let dfs = Dfs::new(
        cluster,
        DfsConfig {
            block_size: 1024,
            replication: 1,
            io_chunk: 256,
        },
    )
    .unwrap();
    // Write while two nodes are down to force imbalance, then repair.
    dfs.cluster().fail_node(earl_cluster::NodeId(2)).unwrap();
    dfs.cluster().fail_node(earl_cluster::NodeId(3)).unwrap();
    let lines: Vec<String> = (0..3_000).map(|i| format!("{i}")).collect();
    dfs.write_lines("/mr/skewed", &lines).unwrap();
    dfs.cluster().repair_node(earl_cluster::NodeId(2)).unwrap();
    dfs.cluster().repair_node(earl_cluster::NodeId(3)).unwrap();

    let report = rebalancer::rebalance(&dfs, 0.3).unwrap();
    assert!(report.blocks_moved > 0);
    assert_eq!(
        dfs.read_all_lines(Phase::Load, "/mr/skewed").unwrap(),
        lines
    );

    // After rebalancing, a job over the file still produces the right answer.
    let conf = JobConf::new("mean", InputSource::Path("/mr/skewed".into()));
    let result = run_job(&dfs, &conf, &ValueExtractMapper, &MeanReducer).unwrap();
    assert!((result.outputs[0] - 1499.5).abs() < 1e-9);
}

#[test]
fn samplers_are_uniform_enough_for_downstream_statistics() {
    let dfs = make_dfs();
    let ds = DatasetBuilder::new(dfs.clone())
        .build("/mr/uniformity", &DatasetSpec::uniform(20_000, 0.0, 1.0, 2))
        .unwrap();
    let mut pre = PreMapSampler::new(dfs.clone(), "/mr/uniformity", 3).unwrap();
    let mut post = PostMapSampler::new(dfs, "/mr/uniformity", 3).unwrap();
    for sampler in [&mut pre as &mut dyn SampleSource, &mut post] {
        let batch = sampler.draw(1_000).unwrap();
        let mean: f64 = batch
            .records
            .iter()
            .filter_map(|(_, l)| l.parse::<f64>().ok())
            .sum::<f64>()
            / batch.len() as f64;
        assert!(
            (mean - ds.true_mean).abs() < 0.03,
            "sampler mean {mean} vs {}",
            ds.true_mean
        );
    }
}

#[test]
fn degrade_policy_job_reports_surviving_fraction_after_losing_a_node() {
    let cluster = Cluster::builder()
        .nodes(3)
        .cost_model(CostModel::free())
        .build()
        .unwrap();
    let dfs = Dfs::new(
        cluster,
        DfsConfig {
            block_size: 2048,
            replication: 1,
            io_chunk: 256,
        },
    )
    .unwrap();
    DatasetBuilder::new(dfs.clone())
        .build("/mr/lossy", &DatasetSpec::normal(20_000, 10.0, 1.0, 4))
        .unwrap();
    dfs.cluster().fail_node(earl_cluster::NodeId(1)).unwrap();
    dfs.reconcile_failures();
    let conf = JobConf::new("mean", InputSource::Path("/mr/lossy".into()))
        .with_failure_policy(FailurePolicy::Degrade);
    let result = run_job(&dfs, &conf, &ValueExtractMapper, &MeanReducer).unwrap();
    assert!(result.stats.surviving_fraction() <= 1.0);
    if result.stats.lost_map_tasks > 0 {
        assert!(result.stats.surviving_fraction() < 1.0);
    }
    // The surviving mean is still close to 10.
    assert!((result.outputs[0] - 10.0).abs() < 0.5);
}
