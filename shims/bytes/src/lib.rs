//! Minimal stand-in for the `bytes` crate: a cheaply-cloneable immutable byte
//! buffer backed by `Arc<[u8]>`.

use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Self(Arc::from(&[][..]))
    }

    /// Wraps a static byte slice (copied once into the shared buffer).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Self(Arc::from(bytes))
    }

    /// Buffer length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// A new buffer holding a copy of `self[range]`.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Self {
        use std::ops::Bound;
        let start = match range.start_bound() {
            Bound::Included(&s) => s,
            Bound::Excluded(&s) => s + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&e) => e + 1,
            Bound::Excluded(&e) => e,
            Bound::Unbounded => self.0.len(),
        };
        Self(Arc::from(&self.0[start..end]))
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self(Arc::from(v))
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Self(Arc::from(v))
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Self(Arc::from(s.into_bytes()))
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &*self.0 == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        &*self.0 == *other
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.0.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_views() {
        let b = Bytes::from(vec![1u8, 2, 3, 4]);
        assert_eq!(b.len(), 4);
        assert_eq!(&b[1..3], &[2, 3]);
        assert_eq!(b.slice(1..3), Bytes::from(&[2u8, 3][..]));
        assert_eq!(b.to_vec(), vec![1, 2, 3, 4]);
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::from_static(b"hi").as_ref(), b"hi");
        let c = b.clone();
        assert_eq!(b, c);
    }
}
