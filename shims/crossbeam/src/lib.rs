//! Minimal stand-in for the slice of `crossbeam` this workspace uses.

/// Concurrent queues.
pub mod queue {
    use std::collections::VecDeque;
    use std::sync::Mutex;

    /// An unbounded MPMC FIFO queue with the `crossbeam::queue::SegQueue` API.
    ///
    /// Backed by a mutexed `VecDeque` — contention on the EARL feedback channel
    /// is a handful of posts per iteration, far below where a lock-free
    /// segmented queue would matter.
    #[derive(Debug)]
    pub struct SegQueue<T> {
        inner: Mutex<VecDeque<T>>,
    }

    impl<T> Default for SegQueue<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<T> SegQueue<T> {
        /// Creates an empty queue.
        pub fn new() -> Self {
            Self {
                inner: Mutex::new(VecDeque::new()),
            }
        }

        /// Appends `value` to the back of the queue.
        pub fn push(&self, value: T) {
            self.inner
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push_back(value);
        }

        /// Pops the front element, if any.
        pub fn pop(&self) -> Option<T> {
            self.inner
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .pop_front()
        }

        /// Number of queued elements.
        pub fn len(&self) -> usize {
            self.inner.lock().unwrap_or_else(|e| e.into_inner()).len()
        }

        /// Whether the queue is empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_order() {
            let q = SegQueue::new();
            q.push(1);
            q.push(2);
            assert_eq!(q.len(), 2);
            assert_eq!(q.pop(), Some(1));
            assert_eq!(q.pop(), Some(2));
            assert_eq!(q.pop(), None);
            assert!(q.is_empty());
        }
    }
}
