//! No-op derive macros standing in for `serde_derive`.
//!
//! The workspace's `serde` shim implements `Serialize` / `Deserialize` as
//! blanket marker traits, so the derives have nothing to generate — they exist
//! only so `#[derive(Serialize, Deserialize)]` (and `#[serde(...)]` attributes)
//! parse exactly as with the real crate.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and emits nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and emits nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
