//! Minimal stand-in for the `criterion` benchmarking harness.
//!
//! Implements the subset of the criterion 0.5 API this workspace's benches
//! use — `Criterion`, `BenchmarkGroup`, `BenchmarkId`, `Bencher::iter`,
//! `black_box`, and the `criterion_group!` / `criterion_main!` macros — over a
//! simple adaptive wall-clock timer: each benchmark is warmed up once, then
//! sampled until either `sample_size` samples are collected or a time budget
//! is exhausted. Results (mean / min / max per iteration) are printed to
//! stdout in a stable, grep-friendly format.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement backends (only wall time is provided).
pub mod measurement {
    /// Wall-clock measurement marker.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct WallTime;
}

/// Per-iteration timing statistics of one benchmark.
#[derive(Debug, Clone, Copy)]
pub struct SampleStats {
    /// Mean time per iteration.
    pub mean: Duration,
    /// Fastest observed iteration.
    pub min: Duration,
    /// Slowest observed iteration.
    pub max: Duration,
    /// Number of samples collected.
    pub samples: usize,
}

/// Runs timed iterations of one benchmark routine.
pub struct Bencher {
    sample_size: usize,
    budget: Duration,
    stats: Option<SampleStats>,
}

impl Bencher {
    /// Times `routine`: one warm-up call, then adaptive sampling.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine()); // warm-up
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        let mut max = Duration::ZERO;
        let mut samples = 0usize;
        let started = Instant::now();
        while samples < self.sample_size && (samples < 2 || started.elapsed() < self.budget) {
            let t0 = Instant::now();
            black_box(routine());
            let dt = t0.elapsed();
            total += dt;
            min = min.min(dt);
            max = max.max(dt);
            samples += 1;
        }
        self.stats = Some(SampleStats {
            mean: total / samples.max(1) as u32,
            min,
            max,
            samples,
        });
    }
}

fn run_one(full_name: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        sample_size,
        budget: Duration::from_secs(2),
        stats: None,
    };
    f(&mut bencher);
    match bencher.stats {
        Some(s) => println!(
            "{full_name:<60} time: [mean {:>12?}  min {:>12?}  max {:>12?}] ({} samples)",
            s.mean, s.min, s.max, s.samples
        ),
        None => println!("{full_name:<60} (no iterations executed)"),
    }
}

/// Identifier of one benchmark within a group: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a displayed parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Creates an id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

/// Types usable as a benchmark id (`&str`, `String`, or [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// The rendered id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    filter: Option<String>,
}

impl Criterion {
    /// Creates a driver honouring a substring filter passed on the command
    /// line (`cargo bench -- <filter>`).
    pub fn from_args() -> Self {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'))
            .filter(|a| !a.is_empty());
        Self { filter }
    }

    fn matches(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(
        &mut self,
        name: impl Into<String>,
    ) -> BenchmarkGroup<'_, measurement::WallTime> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
            _measurement: std::marker::PhantomData,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let name = id.into_id();
        if self.matches(&name) {
            run_one(&name, 20, &mut f);
        }
        self
    }
}

/// A group of related benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a, M = measurement::WallTime> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    _measurement: std::marker::PhantomData<M>,
}

impl<M> BenchmarkGroup<'_, M> {
    /// Sets the target number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_id());
        if self.criterion.matches(&full) {
            run_one(&full, self.sample_size, &mut f);
        }
        self
    }

    /// Runs one parameterised benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.id);
        if self.criterion.matches(&full) {
            run_one(&full, self.sample_size, &mut |b| f(b, input));
        }
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Declares a function running the listed benchmarks in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main()` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_collects_samples() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::new("param", 7), &7, |b, &x| b.iter(|| x * 2));
        group.finish();
    }

    #[test]
    fn filter_matching() {
        let c = Criterion {
            filter: Some("abc".into()),
        };
        assert!(c.matches("xx_abc_yy"));
        assert!(!c.matches("def"));
        assert!(Criterion::default().matches("anything"));
    }
}
