//! Minimal, dependency-free stand-in for the `rand` crate API surface used by
//! this workspace.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the small slice of `rand` it actually needs: the [`Rng`] / [`RngCore`] /
//! [`SeedableRng`] traits, a deterministic [`rngs::StdRng`] (xoshiro256++
//! seeded via SplitMix64), uniform range sampling, and the two
//! [`seq::SliceRandom`] methods (`shuffle`, `choose`).
//!
//! Everything is deterministic given a seed; no OS entropy is ever consulted.

/// Core random-number source: a stream of `u64`s.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// An RNG constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Constructs the RNG from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the RNG from a `u64`, expanding it through SplitMix64 —
    /// the construction recommended by the xoshiro authors.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut s = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let x = splitmix64_next(&mut s);
            chunk.copy_from_slice(&x.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// One SplitMix64 step: advances `state` and returns the mixed output.
pub fn splitmix64_next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types samplable uniformly over their whole domain (the `Standard`
/// distribution of real `rand`).
pub trait StandardDist: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardDist for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardDist for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardDist for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardDist for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl StandardDist for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types samplable uniformly from a sub-range.
pub trait UniformSample: Copy + PartialOrd {
    /// Draws a value in `[lo, hi)` (`hi` included when `inclusive`).
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! impl_uniform_uint {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self {
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(inclusive as u64);
                assert!(span != 0 || inclusive, "cannot sample empty range");
                if span == 0 {
                    // Inclusive full-width range: any value is valid.
                    return rng.next_u64() as $t;
                }
                // Lemire's nearly-divisionless bounded sampling (widening multiply).
                let mut x = rng.next_u64();
                let mut m = (x as u128) * (span as u128);
                let mut l = m as u64;
                if l < span {
                    let t = span.wrapping_neg() % span;
                    while l < t {
                        x = rng.next_u64();
                        m = (x as u128) * (span as u128);
                        l = m as u64;
                    }
                }
                lo.wrapping_add((m >> 64) as u64 as $t)
            }
        }
    )*};
}
impl_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_uniform_int {
    ($($t:ty => $u:ty),*) => {$(
        impl UniformSample for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self {
                let ulo = (lo as $u).wrapping_sub(<$t>::MIN as $u);
                let uhi = (hi as $u).wrapping_sub(<$t>::MIN as $u);
                let drawn = <$u as UniformSample>::sample_range(rng, ulo, uhi, inclusive);
                drawn.wrapping_add(<$t>::MIN as $u) as $t
            }
        }
    )*};
}
impl_uniform_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl UniformSample for f64 {
    fn sample_range<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        _inclusive: bool,
    ) -> Self {
        assert!(lo <= hi, "cannot sample empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

impl UniformSample for f32 {
    fn sample_range<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        _inclusive: bool,
    ) -> Self {
        assert!(lo <= hi, "cannot sample empty range");
        lo + f32::sample(rng) * (hi - lo)
    }
}

/// Range arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: UniformSample> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_range(rng, self.start, self.end, false)
    }
}

impl<T: UniformSample> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_range(rng, lo, hi, true)
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the whole domain of `T`.
    fn gen<T: StandardDist>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, B>(&mut self, range: B) -> T
    where
        T: UniformSample,
        B: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic RNG: xoshiro256++.
    ///
    /// Small (32 bytes of state), fast, allocation-free to construct, and
    /// constructible from a `u64` via SplitMix64 expansion — which is exactly
    /// what the per-replicate bootstrap streams need.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let x = self.next_u64();
                chunk.copy_from_slice(&x.to_le_bytes()[..chunk.len()]);
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            if s == [0; 4] {
                // The all-zero state is a fixed point of xoshiro; remap it.
                let mut sm = 0x9E37_79B9_7F4A_7C15u64;
                for word in &mut s {
                    *word = super::splitmix64_next(&mut sm);
                }
            }
            Self { s }
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, UniformSample};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns one uniformly chosen element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = usize::sample_range(&mut *rng, 0, i, true);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(usize::sample_range(&mut *rng, 0, self.len(), false))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_interval_and_ranges_are_bounded() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let u = rng.gen_range(3usize..17);
            assert!((3..17).contains(&u));
            let v = rng.gen_range(0u64..=5);
            assert!(v <= 5);
            let s = rng.gen_range(-10i64..10);
            assert!((-10..10).contains(&s));
            let x = rng.gen_range(-2.5f64..2.5);
            assert!((-2.5..2.5).contains(&x));
        }
    }

    #[test]
    fn range_mean_is_centred() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 100_000;
        let sum: u64 = (0..n).map(|_| rng.gen_range(0u64..10)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 4.5).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn shuffle_and_choose() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn works_through_dyn_like_generics() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(4);
        let x = draw(&mut rng);
        assert!((0.0..1.0).contains(&x));
    }
}
