//! Minimal stand-in for the `serde` facade.
//!
//! The build environment has no crates.io access and nothing in the workspace
//! serialises through serde at runtime (reports are formatted by hand), so
//! `Serialize` / `Deserialize` are blanket marker traits and the derives are
//! no-ops. Swapping the real serde back in later is a one-line manifest change.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait satisfied by every type (real serde: serialisable types).
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker trait satisfied by every type (real serde: deserialisable types).
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker trait mirroring `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
impl<T: ?Sized> DeserializeOwned for T {}

/// Namespace mirroring `serde::de`.
pub mod de {
    pub use super::{Deserialize, DeserializeOwned};
}

/// Namespace mirroring `serde::ser`.
pub mod ser {
    pub use super::Serialize;
}
