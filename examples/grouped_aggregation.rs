//! Grouped per-key aggregation with per-group error bounds, plus a
//! categorical proportion — the two workloads beyond plain numeric lines.
//!
//! ```text
//! cargo run --example grouped_aggregation
//! ```
//!
//! Part 1 runs `SELECT key, AVG(value) … GROUP BY key` through the EARL
//! driver: the MapReduce job shuffles string keys to multiple reducers through
//! the map-side streaming shuffle, and the accuracy-estimation stage runs one
//! bootstrap per group (each on its own deterministic `(seed, key)` RNG
//! stream) until **every** group's cv meets σ.  Part 2 estimates the share of
//! one category in a label column — a proportion is the mean of indicator
//! values, so it runs on the resample-free count-based kernel.

use earl_cluster::Cluster;
use earl_core::tasks::ProportionTask;
use earl_core::{EarlConfig, EarlDriver, GroupedAggregate};
use earl_dfs::{Dfs, DfsConfig};
use earl_workload::{CategoricalSpec, DatasetBuilder, GroupedSpec};

fn main() {
    let cluster = Cluster::with_nodes(5);
    let dfs = Dfs::new(
        cluster,
        DfsConfig {
            block_size: 1 << 16,
            replication: 2,
            io_chunk: 256,
        },
    )
    .expect("dfs config is valid");
    let builder = DatasetBuilder::new(dfs.clone());

    // ---- Part 1: grouped per-key means ------------------------------------
    // Six groups with different means (g0 ≈ 100 … g5 ≈ 600), 20k records
    // each, interleaved on disk so uniform sampling sees every group.
    let spec = GroupedSpec::normal_groups(6, 20_000, 100.0, 0.25, 42);
    let grouped = builder
        .build_grouped("/grouped/sales", &spec)
        .expect("grouped dataset builds");
    println!(
        "wrote {} grouped records across {} groups\n",
        spec.total_records(),
        grouped.truth.len()
    );

    let driver = EarlDriver::new(dfs.clone(), EarlConfig::default());
    let report = driver
        .run_grouped("/grouped/sales", &GroupedAggregate::mean())
        .expect("grouped run meets the bound");
    println!("{report}");
    for group in &report.groups {
        let truth = grouped.truth[&group.key].mean;
        println!(
            "  {}: estimate {:.3} vs truth {:.3} ({:+.2}% off, cv {:.4})",
            group.key,
            group.result,
            truth,
            100.0 * (group.result - truth) / truth,
            group.error_estimate,
        );
    }

    // ---- Part 2: categorical proportion -----------------------------------
    let cat_spec = CategoricalSpec {
        categories: vec![
            ("checkout".into(), 0.45),
            ("browse".into(), 0.35),
            ("refund".into(), 0.20),
        ],
        num_records: 120_000,
        seed: 7,
    };
    let categorical = builder
        .build_categorical("/grouped/events", &cat_spec)
        .expect("categorical dataset builds");

    let task = ProportionTask::new("refund");
    let report = driver
        .run("/grouped/events", &task)
        .expect("proportion run meets the bound");
    let truth = categorical.true_proportion("refund");
    println!(
        "\nproportion of `refund` events: {:.4} (truth {:.4}) from a {:.2}% sample, cv {:.4}",
        report.result,
        truth,
        100.0 * report.sample_fraction,
        report.error_estimate
    );
    // Appendix-A cross-check: the z-based normal approximation agrees on the
    // error scale.
    let z = ProportionTask::z_estimate(report.result, report.sample_size).expect("valid estimate");
    println!(
        "appendix-A z-estimate: cv {:.4} (bootstrap cv {:.4})",
        z.cv(),
        report.error_estimate
    );
}
