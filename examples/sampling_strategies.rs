//! Comparing the sampling strategies of §3.3 on a clustered disk layout.
//!
//! ```text
//! cargo run --example sampling_strategies
//! ```
//!
//! Pre-map sampling, post-map sampling, naive block sampling and the two-file
//! sampler are run over the same file — written *sorted by value*, the layout
//! that breaks block sampling — and their estimates of the mean are compared.

use earl_cluster::{Cluster, Phase};
use earl_dfs::{Dfs, DfsConfig};
use earl_sampling::block::block_sample;
use earl_sampling::twofile::TwoFileSampler;
use earl_sampling::{PostMapSampler, PreMapSampler, SampleSource};
use earl_workload::layout::Layout;
use earl_workload::{DatasetBuilder, DatasetSpec};

fn mean_of(records: &[(u64, String)]) -> f64 {
    let values: Vec<f64> = records.iter().filter_map(|(_, l)| l.parse().ok()).collect();
    values.iter().sum::<f64>() / values.len().max(1) as f64
}

fn main() {
    let cluster = Cluster::with_nodes(4);
    let dfs = Dfs::new(
        cluster,
        DfsConfig {
            block_size: 1 << 14,
            replication: 2,
            io_chunk: 256,
        },
    )
    .expect("dfs config");

    // 40,000 uniform values written in ascending order — clustered on disk.
    let spec =
        DatasetSpec::uniform(40_000, 0.0, 1_000.0, 5).with_layout(Layout::ClusteredAscending);
    let dataset = DatasetBuilder::new(dfs.clone())
        .build("/clustered/values", &spec)
        .expect("dataset");
    println!(
        "true mean = {:.3} (clustered-on-disk layout)\n",
        dataset.true_mean
    );
    let sample_size = 400;

    // Pre-map sampling: random lines straight from the splits.
    dfs.cluster().reset_accounting();
    let mut premap = PreMapSampler::new(dfs.clone(), "/clustered/values", 1).expect("premap");
    let batch = premap.draw(sample_size).expect("premap draw");
    println!(
        "pre-map  : mean {:>8.3}  ({} records, {} bytes read, {} sim time)",
        mean_of(&batch.records),
        batch.len(),
        batch.bytes_read,
        dfs.cluster().elapsed()
    );

    // Post-map sampling: full scan, then exact without-replacement draws.
    dfs.cluster().reset_accounting();
    let mut postmap = PostMapSampler::new(dfs.clone(), "/clustered/values", 1).expect("postmap");
    let batch = postmap.draw(sample_size).expect("postmap draw");
    println!(
        "post-map : mean {:>8.3}  ({} records, {} bytes read, {} sim time)",
        mean_of(&batch.records),
        batch.len(),
        batch.bytes_read,
        dfs.cluster().elapsed()
    );

    // Naive block sampling: one random split — badly biased on this layout.
    dfs.cluster().reset_accounting();
    let batch = block_sample(&dfs, "/clustered/values", 1 << 14, 1, 1).expect("block sample");
    println!(
        "block    : mean {:>8.3}  ({} records, {} bytes read, {} sim time)   <-- biased by clustering",
        mean_of(&batch.records),
        batch.len(),
        batch.bytes_read,
        dfs.cluster().elapsed()
    );

    // Two-file (ARHASH-style) sampler with half the file memory-resident.
    dfs.cluster().reset_accounting();
    let mut twofile =
        TwoFileSampler::new(dfs.clone(), "/clustered/values", 0.5, 1).expect("two-file");
    let batch = twofile.draw(sample_size).expect("two-file draw");
    println!(
        "two-file : mean {:>8.3}  ({} records, {} memory hits, {} disk seeks)",
        mean_of(&batch.records),
        batch.len(),
        twofile.stats().memory_hits,
        twofile.stats().disk_seeks
    );

    let load = dfs.cluster().metrics().snapshot().phase(Phase::Load);
    println!(
        "\ncumulative Load-phase bytes read this run: {}",
        load.disk_bytes_read
    );
}
