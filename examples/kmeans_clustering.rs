//! Approximate K-Means on a sample vs exact MapReduce K-Means (Fig. 7).
//!
//! ```text
//! cargo run --example kmeans_clustering
//! ```
//!
//! Generates a Gaussian-mixture point cloud with known centroids, clusters it
//! with EARL's sample-based K-Means and with the exact per-iteration MapReduce
//! K-Means, and compares both against the generative truth.

use earl_cluster::Cluster;
use earl_core::tasks::{
    approximate_kmeans, centroid_match_error, exact_kmeans_mapreduce, KmeansConfig,
};
use earl_core::EarlConfig;
use earl_dfs::{Dfs, DfsConfig};
use earl_workload::{KmeansDataset, KmeansSpec};

fn main() {
    let cluster = Cluster::with_nodes(5);
    let dfs = Dfs::new(
        cluster,
        DfsConfig {
            block_size: 1 << 17,
            replication: 2,
            io_chunk: 1024,
        },
    )
    .expect("dfs config");

    let spec = KmeansSpec {
        num_points: 30_000,
        k: 6,
        dims: 2,
        cluster_std_dev: 2.0,
        centroid_spread: 300.0,
        seed: 11,
    };
    let dataset = KmeansDataset::generate(&dfs, "/kmeans/points", &spec).expect("point cloud");
    println!(
        "generated {} points around {} true centroids",
        spec.num_points, spec.k
    );

    let kconfig = KmeansConfig {
        k: 6,
        max_iterations: 20,
        ..Default::default()
    };

    // EARL: K-Means on an adaptively sized sample.
    dfs.cluster().reset_accounting();
    let earl_config = EarlConfig {
        sigma: 0.05,
        bootstraps: Some(8),
        ..EarlConfig::default()
    };
    let approx =
        approximate_kmeans(&dfs, "/kmeans/points", &earl_config, &kconfig).expect("approx kmeans");
    println!(
        "\nEARL  : {} of {} points sampled, cost cv {:.4}, {} simulated time",
        approx.sample_size, approx.population, approx.cost_cv, approx.sim_time
    );
    println!(
        "        centroid error vs truth: {:.2}% of spread",
        centroid_match_error(&approx.model.centroids, &dataset.true_centroids) * 100.0
    );

    // Stock Hadoop: one full MapReduce job per Lloyd iteration.
    dfs.cluster().reset_accounting();
    let (exact_model, exact_time) =
        exact_kmeans_mapreduce(&dfs, "/kmeans/points", &kconfig).expect("exact");
    println!(
        "\nHadoop: full scans for {} Lloyd iterations, {} simulated time",
        exact_model.iterations, exact_time
    );
    println!(
        "        centroid error vs truth: {:.2}% of spread",
        centroid_match_error(&exact_model.centroids, &dataset.true_centroids) * 100.0
    );

    println!(
        "\nspeed-up from sampling: {:.1}x",
        exact_time.as_secs_f64() / approx.sim_time.as_secs_f64()
    );
}
