//! The resident service end to end: admit concurrent jobs with different
//! priorities, watch one job's progressive early results arrive iteration by
//! iteration, cancel another mid-ladder, and replay a recorded job log
//! standalone to show the bit-identical determinism contract.
//!
//! ```sh
//! cargo run --release --example resident_service
//! ```

use earl::core::EarlConfig;
use earl::mapreduce::TaskSpec;
use earl::serve::{
    replay, DatasetDef, DatasetRegistry, EarlService, JobRequest, Priority, ServeError,
    ServiceConfig,
};
use earl::workload::DatasetSpec;

fn main() {
    // A dataset with real spread (cv ≈ 0.8) so the accuracy ladder needs
    // several iterations — that's what makes early results worth streaming.
    let mut registry = DatasetRegistry::new();
    registry.register(
        "spread",
        DatasetDef::new(4, "/spread", DatasetSpec::normal(60_000, 500.0, 400.0, 21)),
    );
    let service = EarlService::new(registry.clone(), ServiceConfig::default());

    let ladder = EarlConfig {
        sigma: 0.02,
        bootstraps: Some(60),
        sample_size: Some(700),
        ..EarlConfig::default()
    };

    // Job 1: watch the progressive stream.
    let watched = service
        .admit(
            JobRequest::new(TaskSpec::named("mean"), "spread", ladder)
                .with_priority(Priority::High),
        )
        .expect("admitted");
    println!("progressive delivery for {}:", watched.id());
    while let Some(update) = watched.next_update() {
        println!(
            "  iter {}: estimate {:.3}  cv {:.4}  ({:.2}% sampled, B = {})",
            update.iteration,
            update.estimate,
            update.cv,
            update.sample_fraction * 100.0,
            update.bootstraps,
        );
    }
    let watched_outcome = watched.wait().expect("service alive");
    let report = watched_outcome.result.expect("bound met");
    println!(
        "final: {:.3} ± cv {:.4} from a {:.2}% sample in {} iteration(s)\n",
        report.result,
        report.error_estimate,
        report.sample_fraction * 100.0,
        report.iterations
    );

    // Job 2: cancel mid-ladder; the partial report for committed work comes
    // back instead of nothing.
    let cancelled = service
        .admit(JobRequest::new(TaskSpec::named("median"), "spread", ladder))
        .expect("admitted");
    let first = cancelled.next_update().expect("one update");
    println!(
        "cancelling {} after iteration {} (cv was {:.4})...",
        cancelled.id(),
        first.iteration,
        first.cv
    );
    cancelled.cancel();
    match cancelled.wait().expect("service alive").result {
        Err(ServeError::Cancelled(partial)) => println!(
            "  partial result: {:.3} ± cv {:.4} from {} iteration(s)\n",
            partial.result, partial.error_estimate, partial.iterations
        ),
        Ok(report) => println!(
            "  bound already met before the cancel landed: {:.3}\n",
            report.result
        ),
        Err(e) => panic!("unexpected: {e}"),
    }

    // Determinism: replay the watched job's recorded message stream with no
    // service at all — same bits.
    let replayed = replay(&watched_outcome.log, &registry).expect("replayable");
    assert_eq!(replayed, report, "replay must be bit-identical");
    println!(
        "replayed {} standalone from its log: bit-identical ({} events recorded)",
        watched_outcome.log.job_id,
        watched_outcome.log.events.len()
    );
}
