//! Ratio-of-linear statistics — weighted means, ratios, correlation — running
//! resample-free on the k-ary count-based kernel.
//!
//! ```text
//! cargo run --example weighted_ratio
//! ```
//!
//! Part 1 estimates a revenue-per-unit ratio (`Σrevenue / Σunits`) over
//! `revenue<TAB>units` lines.  Part 2 runs a grouped weighted mean
//! (`SELECT key, SUM(v·w)/SUM(w) … GROUP BY key`) over
//! `key<TAB>value<TAB>weight` lines.  Part 3 estimates the correlation of an
//! `x<TAB>y` column pair.  None of these statistics is linear in the
//! single-sum sense, but each is a smooth combiner of a tuple of per-record
//! linear sums — so under the default `Auto` kernel their accuracy-estimation
//! bootstraps never materialise a resample: one multinomial count draw per
//! replicate evaluates all k section-sums at once (O(k·√n) per replicate
//! instead of O(n)).

use earl_cluster::Cluster;
use earl_core::tasks::{CorrelationTask, RatioTask};
use earl_core::{EarlConfig, EarlDriver, GroupedAggregate};
use earl_dfs::{Dfs, DfsConfig};
use earl_workload::{DatasetBuilder, Distribution, GroupedWeightedSpec, PairedSpec};

fn main() {
    let cluster = Cluster::with_nodes(5);
    let dfs = Dfs::new(
        cluster,
        DfsConfig {
            block_size: 1 << 16,
            replication: 2,
            io_chunk: 256,
        },
    )
    .expect("dfs config is valid");
    let builder = DatasetBuilder::new(dfs.clone());
    let driver = EarlDriver::new(dfs.clone(), EarlConfig::default());

    // ---- Part 1: revenue per unit (a ratio of sums) -----------------------
    let sales = builder
        .build_paired(
            "/kary/sales",
            &PairedSpec {
                num_records: 80_000,
                x: Distribution::LogNormal {
                    mu: 3.0,
                    sigma: 0.6,
                },
                slope: 0.05,
                intercept: 1.0,
                noise_sd: 0.5,
                seed: 7,
            },
        )
        .expect("paired dataset builds");
    let report = driver
        .run("/kary/sales", &RatioTask)
        .expect("ratio meets the bound");
    println!(
        "revenue/unit ≈ {:.4} (cv {:.4}, true {:.4}) from a {:.1}% sample\n",
        report.result,
        report.error_estimate,
        sales.truth.ratio,
        report.sample_fraction * 100.0
    );

    // ---- Part 2: grouped weighted means -----------------------------------
    let spec = GroupedWeightedSpec::normal_groups(4, 25_000, 150.0, 0.2, 11);
    let grouped = builder
        .build_grouped_weighted("/kary/weighted", &spec)
        .expect("grouped weighted dataset builds");
    let grouped_report = driver
        .run_grouped("/kary/weighted", &GroupedAggregate::weighted_mean())
        .expect("every group meets the bound");
    println!("{grouped_report}");
    for g in &grouped_report.groups {
        let truth = grouped.truth[&g.key].weighted_mean;
        println!(
            "  {}: estimated {:.3} vs true {:.3} ({:+.2}%)",
            g.key,
            g.result,
            truth,
            (g.result - truth) / truth * 100.0
        );
    }
    println!();

    // ---- Part 3: correlation of a column pair -----------------------------
    let pairs = builder
        .build_paired(
            "/kary/pairs",
            &PairedSpec::linear(60_000, 1.8, 12.0, 30.0, 13),
        )
        .expect("paired dataset builds");
    let corr = driver
        .run("/kary/pairs", &CorrelationTask)
        .expect("correlation meets the bound");
    println!(
        "correlation ≈ {:.4} (cv {:.4}, true {:.4}); whole (x, y) records were \
         resampled — pairs are never split",
        corr.result, corr.error_estimate, pairs.truth.correlation
    );
}
