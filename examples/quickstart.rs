//! Quickstart: compute an approximate mean with a 5% error bound.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! This walks through the full EARL pipeline of the paper's Figure 1: build a
//! (simulated) 5-node cluster and distributed file system, write a data set,
//! and ask EARL for the mean with a bounded error — comparing cost and answer
//! against the exact "stock Hadoop" execution.

use earl_cluster::Cluster;
use earl_core::tasks::MeanTask;
use earl_core::{EarlConfig, EarlDriver};
use earl_dfs::{Dfs, DfsConfig};
use earl_workload::{DatasetBuilder, DatasetSpec};

fn main() {
    // 1. A 5-node cluster (the paper's setup) with the default commodity cost
    //    model, and an HDFS-like file system on top of it.
    let cluster = Cluster::with_nodes(5);
    let dfs = Dfs::new(
        cluster,
        DfsConfig {
            block_size: 1 << 16,
            replication: 2,
            io_chunk: 256,
        },
    )
    .expect("dfs config is valid");

    // 2. A synthetic data set with known ground truth: 100,000 normal values.
    let dataset = DatasetBuilder::new(dfs.clone())
        .build(
            "/quickstart/values",
            &DatasetSpec::normal(100_000, 500.0, 100.0, 42),
        )
        .expect("dataset builds");
    println!(
        "wrote {} records, true mean = {:.4}",
        dataset.values.len(),
        dataset.true_mean
    );

    // 3. Ask EARL for the mean, accurate to within 5%.
    let driver = EarlDriver::new(
        dfs,
        EarlConfig {
            sigma: 0.05,
            ..EarlConfig::default()
        },
    );
    let approx = driver
        .run("/quickstart/values", &MeanTask)
        .expect("approximate run succeeds");
    println!("\n--- EARL (early approximate result) ---\n{approx}");

    // 4. Compare against the exact stock-Hadoop-style execution.
    let exact = driver
        .run_exact("/quickstart/values", &MeanTask)
        .expect("exact run succeeds");
    println!("--- stock Hadoop (exact) ---\n{exact}");

    println!(
        "relative error vs ground truth: {:.4}%  (bound was {:.1}%)",
        approx.relative_error_vs(dataset.true_mean) * 100.0,
        approx.target_sigma * 100.0
    );
    println!(
        "data read: {} bytes (EARL) vs {} bytes (exact) — {:.1}x less",
        approx.bytes_read,
        exact.bytes_read,
        exact.bytes_read as f64 / approx.bytes_read.max(1) as f64
    );
}
