//! Approximate completion despite node failures (§3.4 of the paper).
//!
//! ```text
//! cargo run --example fault_tolerant_aggregation
//! ```
//!
//! Stock Hadoop reacts to node failures with task restarts; EARL instead
//! treats the surviving data as a sample and attaches a bootstrap error bound
//! to the answer.  This example kills two of four nodes (with replication 1 so
//! data is genuinely lost) and shows both behaviours.

use earl_cluster::{Cluster, NodeId};
use earl_core::fault::run_despite_failures;
use earl_core::tasks::MeanTask;
use earl_core::EarlConfig;
use earl_dfs::{Dfs, DfsConfig};
use earl_mapreduce::{contrib, FailurePolicy, InputSource, JobConf};
use earl_workload::{DatasetBuilder, DatasetSpec};

fn main() {
    let cluster = Cluster::with_nodes(4);
    // Replication 1: losing a node genuinely loses data (worst case for Hadoop).
    let dfs = Dfs::new(
        cluster,
        DfsConfig {
            block_size: 1 << 14,
            replication: 1,
            io_chunk: 256,
        },
    )
    .expect("dfs config");
    let dataset = DatasetBuilder::new(dfs.clone())
        .build(
            "/sensors/readings",
            &DatasetSpec::normal(60_000, 250.0, 40.0, 3),
        )
        .expect("dataset");
    println!(
        "true mean = {:.4} over {} records",
        dataset.true_mean,
        dataset.values.len()
    );

    // Disaster strikes: half the cluster goes down.
    dfs.cluster().fail_node(NodeId(0)).expect("fail node 0");
    dfs.cluster().fail_node(NodeId(1)).expect("fail node 1");
    let orphaned = dfs.reconcile_failures();
    println!(
        "nodes 0 and 1 failed; {} blocks lost, {:.1}% of the file still readable",
        orphaned.len(),
        dfs.readable_fraction("/sensors/readings")
            .expect("fraction")
            * 100.0
    );

    // EARL: answer from the surviving data, with an error estimate.
    let report = run_despite_failures(&dfs, "/sensors/readings", &MeanTask, &EarlConfig::default())
        .expect("fault-tolerant run");
    println!("\n--- EARL fault-tolerant approximate result ---\n{report}");
    println!(
        "relative error vs ground truth: {:.3}%",
        report.relative_error_vs(dataset.true_mean) * 100.0
    );

    // The same survival at the MapReduce level with the Degrade policy: the
    // job completes, reporting how many map tasks were lost.
    let conf = JobConf::new(
        "mean-after-failure",
        InputSource::Path("/sensors/readings".into()),
    )
    .with_failure_policy(FailurePolicy::Degrade);
    let job = earl_mapreduce::run_job(
        &dfs,
        &conf,
        &contrib::ValueExtractMapper,
        &contrib::MeanReducer,
    )
    .expect("MR job completes despite failures");
    println!(
        "MapReduce job with Degrade policy: {} of {} map tasks survived, mean of survivors = {:.4}",
        job.stats.map_tasks - job.stats.lost_map_tasks,
        job.stats.map_tasks,
        job.outputs.first().copied().unwrap_or(f64::NAN)
    );
    println!(
        "fault log: {} split(s) lost, {} record(s) salvaged",
        job.stats.fault_log.splits_lost, job.stats.fault_log.records_salvaged
    );
}
