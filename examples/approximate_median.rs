//! Approximate median with bootstrap error bounds (the paper's Fig. 6 workload).
//!
//! ```text
//! cargo run --example approximate_median
//! ```
//!
//! The median has no simple closed-form error estimate (and the jackknife
//! famously fails for it), which is exactly why EARL relies on the bootstrap.
//! This example runs the median both with and without delta maintenance to
//! show the resample-reuse accounting, and demonstrates a custom quantile task.

use earl_cluster::Cluster;
use earl_core::tasks::{MedianTask, QuantileTask};
use earl_core::{EarlConfig, EarlDriver};
use earl_dfs::{Dfs, DfsConfig};
use earl_workload::layout::Layout;
use earl_workload::{DatasetBuilder, DatasetSpec, Distribution};

fn main() {
    let cluster = Cluster::with_nodes(5);
    let dfs = Dfs::new(
        cluster,
        DfsConfig {
            block_size: 1 << 16,
            replication: 2,
            io_chunk: 256,
        },
    )
    .expect("dfs config");

    // A right-skewed (log-normal) data set: the mean is a poor summary, the
    // median is what an analyst would actually ask for.
    let spec = DatasetSpec {
        num_records: 80_000,
        distribution: Distribution::LogNormal {
            mu: 4.0,
            sigma: 0.8,
        },
        layout: Layout::Shuffled,
        seed: 7,
        keyed: false,
    };
    let dataset = DatasetBuilder::new(dfs.clone())
        .build("/median/latencies", &spec)
        .expect("dataset");
    println!(
        "true median = {:.3}, true mean = {:.3}",
        dataset.true_median, dataset.true_mean
    );

    for delta_maintenance in [true, false] {
        let config = EarlConfig {
            sigma: 0.05,
            delta_maintenance,
            ..EarlConfig::default()
        };
        let driver = EarlDriver::new(dfs.clone(), config);
        let report = driver
            .run("/median/latencies", &MedianTask)
            .expect("median run");
        println!("\n--- approximate median (delta maintenance: {delta_maintenance}) ---\n{report}");
        println!(
            "relative error vs true median: {:.3}%",
            report.relative_error_vs(dataset.true_median) * 100.0
        );
    }

    // Tail quantiles work exactly the same way — here the 95th percentile.
    let driver = EarlDriver::new(
        dfs,
        EarlConfig {
            sigma: 0.05,
            ..EarlConfig::default()
        },
    );
    let p95 = driver
        .run("/median/latencies", &QuantileTask::new(0.95))
        .expect("p95 run");
    println!("--- approximate 95th percentile ---\n{p95}");
}
