//! Error type for the cluster substrate.

use std::fmt;

use crate::node::NodeId;

/// Errors raised by the simulated cluster.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// A node id referenced a node that does not exist.
    UnknownNode(NodeId),
    /// An operation targeted a node that is failed or decommissioned.
    NodeUnavailable(NodeId),
    /// No node in the cluster is available to serve the request.
    NoAvailableNodes,
    /// The cluster was configured with invalid parameters.
    InvalidConfig(String),
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::UnknownNode(id) => write!(f, "unknown node {id}"),
            ClusterError::NodeUnavailable(id) => write!(f, "node {id} is unavailable"),
            ClusterError::NoAvailableNodes => write!(f, "no available nodes in the cluster"),
            ClusterError::InvalidConfig(msg) => write!(f, "invalid cluster configuration: {msg}"),
        }
    }
}

impl std::error::Error for ClusterError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            ClusterError::UnknownNode(NodeId(2)).to_string(),
            "unknown node node-2"
        );
        assert!(ClusterError::NodeUnavailable(NodeId(0))
            .to_string()
            .contains("unavailable"));
        assert!(ClusterError::NoAvailableNodes
            .to_string()
            .contains("no available"));
        assert!(ClusterError::InvalidConfig("bad".into())
            .to_string()
            .contains("bad"));
    }
}
