//! # earl-cluster
//!
//! Deterministic single-process simulation of a commodity cluster, used as the
//! substrate for the EARL reproduction (Laptev, Zeng, Zaniolo — VLDB 2012).
//!
//! The paper ran on a 5-node Hadoop cluster; this crate replaces the physical
//! cluster with an explicit, deterministic cost model so that "processing time"
//! becomes a pure function of the work performed (bytes scanned from disk, bytes
//! moved over the network, records processed by CPUs).  All higher layers
//! (`earl-dfs`, `earl-mapreduce`, EARL itself) charge their work against a
//! [`Cluster`], and experiments read the accumulated simulated time from it.
//!
//! ## Components
//!
//! * [`SimClock`] — a monotonically advancing simulated clock (microsecond
//!   resolution).
//! * [`CostModel`] — per-operation costs (disk seek, sequential scan, network
//!   transfer, per-record CPU) with presets mirroring commodity 2012 hardware.
//! * [`Node`] / [`Cluster`] — the machines, their disks and task slots.
//! * [`FailureInjector`] — deterministic and stochastic node-failure schedules
//!   (used for the fault-tolerance experiments of §3.4 of the paper).
//! * [`Metrics`] — counters for bytes/records/tasks, split by phase.
//!
//! The simulation is deliberately single-threaded at the simulation layer:
//! determinism (same seed → same simulated time and same results) is a core
//! requirement for reproducible experiments, so the cluster advances time
//! analytically rather than by racing real threads.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod clock;
pub mod cluster;
pub mod cost;
pub mod error;
pub mod failure;
pub mod metrics;
pub mod node;

pub use clock::{SimClock, SimDuration, SimInstant};
pub use cluster::{Cluster, ClusterBuilder, FailurePollingPause};
pub use cost::{CostModel, CostModelBuilder};
pub use error::ClusterError;
pub use failure::{FailureEvent, FailureInjector, FailureSchedule, FaultLog};
pub use metrics::{Metrics, MetricsSnapshot, Phase};
pub use node::{Node, NodeId, NodeState};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, ClusterError>;
