//! Simulated time.
//!
//! All "processing time" measurements in the reproduction are expressed in
//! simulated microseconds accumulated on a [`SimClock`].  The clock only ever
//! moves forward and is advanced explicitly by the cost-charging code in
//! [`crate::cluster::Cluster`], which keeps every experiment deterministic.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// A span of simulated time, stored in microseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration {
    micros: u64,
}

impl SimDuration {
    /// A zero-length duration.
    pub const ZERO: SimDuration = SimDuration { micros: 0 };

    /// Creates a duration from microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        Self { micros }
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        Self {
            micros: millis * 1_000,
        }
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        Self {
            micros: secs * 1_000_000,
        }
    }

    /// Creates a duration from fractional seconds, saturating at zero for
    /// negative or non-finite inputs.
    pub fn from_secs_f64(secs: f64) -> Self {
        if !secs.is_finite() || secs <= 0.0 {
            return Self::ZERO;
        }
        Self {
            micros: (secs * 1_000_000.0).round() as u64,
        }
    }

    /// The duration in microseconds.
    pub const fn as_micros(self) -> u64 {
        self.micros
    }

    /// The duration in (truncated) milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.micros / 1_000
    }

    /// The duration in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.micros as f64 / 1_000_000.0
    }

    /// Saturating addition.
    pub fn saturating_add(self, rhs: SimDuration) -> SimDuration {
        SimDuration {
            micros: self.micros.saturating_add(rhs.micros),
        }
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration {
            micros: self.micros.saturating_sub(rhs.micros),
        }
    }

    /// Multiplies the duration by a non-negative scalar.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * factor)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        self.saturating_add(rhs)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        self.saturating_sub(rhs)
    }
}

impl std::iter::Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, |acc, d| acc + d)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let secs = self.as_secs_f64();
        if secs >= 1.0 {
            write!(f, "{secs:.3}s")
        } else if self.micros >= 1_000 {
            write!(f, "{:.3}ms", self.micros as f64 / 1_000.0)
        } else {
            write!(f, "{}us", self.micros)
        }
    }
}

/// A point in simulated time (microseconds since cluster start).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimInstant {
    micros: u64,
}

impl SimInstant {
    /// The cluster epoch (t = 0).
    pub const EPOCH: SimInstant = SimInstant { micros: 0 };

    /// Microseconds since the epoch.
    pub const fn as_micros(self) -> u64 {
        self.micros
    }

    /// The duration elapsed since an earlier instant (zero if `earlier` is later).
    pub fn duration_since(self, earlier: SimInstant) -> SimDuration {
        SimDuration::from_micros(self.micros.saturating_sub(earlier.micros))
    }
}

impl Add<SimDuration> for SimInstant {
    type Output = SimInstant;
    fn add(self, rhs: SimDuration) -> SimInstant {
        SimInstant {
            micros: self.micros.saturating_add(rhs.as_micros()),
        }
    }
}

/// A monotonically advancing simulated clock.
///
/// The clock is shared (behind a mutex) between the cluster facade and any
/// component that needs to read the current simulated time; only the cluster
/// advances it.
#[derive(Debug, Default)]
pub struct SimClock {
    now: Mutex<SimInstant>,
}

impl SimClock {
    /// Creates a clock positioned at the epoch.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current simulated instant.
    pub fn now(&self) -> SimInstant {
        *self.now.lock()
    }

    /// Advances the clock by `d` and returns the new instant.
    pub fn advance(&self, d: SimDuration) -> SimInstant {
        let mut now = self.now.lock();
        *now = *now + d;
        *now
    }

    /// Advances the clock to `instant` if it is in the future; otherwise leaves
    /// it unchanged.  Returns the (possibly unchanged) current instant.
    pub fn advance_to(&self, instant: SimInstant) -> SimInstant {
        let mut now = self.now.lock();
        if instant > *now {
            *now = instant;
        }
        *now
    }

    /// Total elapsed simulated time since the epoch.
    pub fn elapsed(&self) -> SimDuration {
        self.now().duration_since(SimInstant::EPOCH)
    }

    /// Resets the clock to the epoch (used between experiment repetitions).
    pub fn reset(&self) {
        *self.now.lock() = SimInstant::EPOCH;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_conversions_round_trip() {
        assert_eq!(SimDuration::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimDuration::from_secs(2).as_millis(), 2_000);
        let d = SimDuration::from_secs_f64(1.5);
        assert_eq!(d.as_micros(), 1_500_000);
        assert!((d.as_secs_f64() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn from_secs_f64_rejects_garbage() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::ZERO);
    }

    #[test]
    fn duration_arithmetic() {
        let a = SimDuration::from_micros(10);
        let b = SimDuration::from_micros(4);
        assert_eq!((a + b).as_micros(), 14);
        assert_eq!((a - b).as_micros(), 6);
        assert_eq!((b - a).as_micros(), 0, "subtraction saturates");
        assert_eq!(a.mul_f64(2.5).as_micros(), 25);
        let total: SimDuration = vec![a, b, a].into_iter().sum();
        assert_eq!(total.as_micros(), 24);
    }

    #[test]
    fn clock_is_monotonic() {
        let clock = SimClock::new();
        assert_eq!(clock.now(), SimInstant::EPOCH);
        let t1 = clock.advance(SimDuration::from_micros(100));
        assert_eq!(t1.as_micros(), 100);
        // advance_to in the past is a no-op
        let t2 = clock.advance_to(SimInstant::EPOCH);
        assert_eq!(t2.as_micros(), 100);
        let t3 = clock.advance_to(SimInstant::EPOCH + SimDuration::from_micros(500));
        assert_eq!(t3.as_micros(), 500);
        assert_eq!(clock.elapsed().as_micros(), 500);
        clock.reset();
        assert_eq!(clock.now(), SimInstant::EPOCH);
    }

    #[test]
    fn instant_duration_since() {
        let a = SimInstant::EPOCH + SimDuration::from_micros(50);
        let b = SimInstant::EPOCH + SimDuration::from_micros(80);
        assert_eq!(b.duration_since(a).as_micros(), 30);
        assert_eq!(a.duration_since(b).as_micros(), 0);
    }

    #[test]
    fn display_formats_reasonably() {
        assert_eq!(SimDuration::from_micros(12).to_string(), "12us");
        assert_eq!(SimDuration::from_micros(1_500).to_string(), "1.500ms");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
    }
}
