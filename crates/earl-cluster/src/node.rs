//! Cluster nodes.
//!
//! A [`Node`] models one commodity machine: an identifier, a number of task
//! slots (map/reduce slots in Hadoop terms), a disk with a capacity, and a
//! health state.  Nodes do not own data directly — block placement lives in
//! `earl-dfs` — but they account for how many bytes have been stored on them so
//! the rebalancer and locality-aware scheduler can make the same decisions the
//! paper's Hadoop deployment would.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a node within a cluster (dense, zero-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The numeric index of the node.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node-{}", self.0)
    }
}

/// Health state of a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeState {
    /// The node is up and may run tasks and serve blocks.
    Up,
    /// The node has failed; its blocks and in-flight tasks are lost until the
    /// node is repaired.
    Failed,
    /// The node has been administratively decommissioned.
    Decommissioned,
}

impl NodeState {
    /// Whether the node can currently serve I/O and run tasks.
    pub fn is_available(self) -> bool {
        matches!(self, NodeState::Up)
    }
}

/// A single simulated machine.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Node {
    id: NodeId,
    state: NodeState,
    task_slots: u32,
    disk_capacity_bytes: u64,
    stored_bytes: u64,
    /// Number of tasks executed on this node over its lifetime.
    tasks_run: u64,
    /// Number of times this node has failed.
    failures: u64,
}

impl Node {
    /// Creates a healthy node with the given slot count and disk capacity.
    pub fn new(id: NodeId, task_slots: u32, disk_capacity_bytes: u64) -> Self {
        Self {
            id,
            state: NodeState::Up,
            task_slots: task_slots.max(1),
            disk_capacity_bytes,
            stored_bytes: 0,
            tasks_run: 0,
            failures: 0,
        }
    }

    /// The node identifier.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The current health state.
    pub fn state(&self) -> NodeState {
        self.state
    }

    /// Whether the node can serve I/O and run tasks.
    pub fn is_available(&self) -> bool {
        self.state.is_available()
    }

    /// Number of concurrent task slots.
    pub fn task_slots(&self) -> u32 {
        self.task_slots
    }

    /// Disk capacity in bytes.
    pub fn disk_capacity_bytes(&self) -> u64 {
        self.disk_capacity_bytes
    }

    /// Bytes of block data currently stored on the node.
    pub fn stored_bytes(&self) -> u64 {
        self.stored_bytes
    }

    /// Fraction of the disk currently used (0.0–1.0, may exceed 1.0 if
    /// over-committed).
    pub fn disk_utilisation(&self) -> f64 {
        if self.disk_capacity_bytes == 0 {
            return 0.0;
        }
        self.stored_bytes as f64 / self.disk_capacity_bytes as f64
    }

    /// Lifetime number of tasks run.
    pub fn tasks_run(&self) -> u64 {
        self.tasks_run
    }

    /// Lifetime number of failures.
    pub fn failures(&self) -> u64 {
        self.failures
    }

    /// Records that `bytes` of block data were placed on this node.
    pub(crate) fn add_stored(&mut self, bytes: u64) {
        self.stored_bytes = self.stored_bytes.saturating_add(bytes);
    }

    /// Records that `bytes` of block data were removed from this node.
    pub(crate) fn remove_stored(&mut self, bytes: u64) {
        self.stored_bytes = self.stored_bytes.saturating_sub(bytes);
    }

    /// Records a task execution.
    pub(crate) fn record_task(&mut self) {
        self.tasks_run += 1;
    }

    /// Marks the node as failed.  Stored bytes are considered lost.
    pub(crate) fn fail(&mut self) {
        if self.state == NodeState::Up {
            self.state = NodeState::Failed;
            self.failures += 1;
        }
    }

    /// Repairs a failed node, bringing it back empty.
    pub(crate) fn repair(&mut self) {
        if self.state == NodeState::Failed {
            self.state = NodeState::Up;
            self.stored_bytes = 0;
        }
    }

    /// Decommissions the node.
    pub(crate) fn decommission(&mut self) {
        self.state = NodeState::Decommissioned;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node() -> Node {
        Node::new(NodeId(3), 2, 1_000)
    }

    #[test]
    fn new_node_is_up_and_empty() {
        let n = node();
        assert_eq!(n.id(), NodeId(3));
        assert!(n.is_available());
        assert_eq!(n.stored_bytes(), 0);
        assert_eq!(n.disk_utilisation(), 0.0);
        assert_eq!(n.task_slots(), 2);
    }

    #[test]
    fn slots_are_at_least_one() {
        let n = Node::new(NodeId(0), 0, 10);
        assert_eq!(n.task_slots(), 1);
    }

    #[test]
    fn storage_accounting() {
        let mut n = node();
        n.add_stored(600);
        assert_eq!(n.stored_bytes(), 600);
        assert!((n.disk_utilisation() - 0.6).abs() < 1e-12);
        n.remove_stored(1_000); // saturates
        assert_eq!(n.stored_bytes(), 0);
    }

    #[test]
    fn failure_and_repair_cycle() {
        let mut n = node();
        n.add_stored(100);
        n.fail();
        assert_eq!(n.state(), NodeState::Failed);
        assert!(!n.is_available());
        assert_eq!(n.failures(), 1);
        // failing again while failed does not double count
        n.fail();
        assert_eq!(n.failures(), 1);
        n.repair();
        assert!(n.is_available());
        assert_eq!(n.stored_bytes(), 0, "repair brings the node back empty");
    }

    #[test]
    fn decommissioned_node_is_unavailable() {
        let mut n = node();
        n.decommission();
        assert_eq!(n.state(), NodeState::Decommissioned);
        assert!(!n.is_available());
        // repair does not resurrect a decommissioned node
        n.repair();
        assert_eq!(n.state(), NodeState::Decommissioned);
    }

    #[test]
    fn zero_capacity_utilisation_is_zero() {
        let n = Node::new(NodeId(1), 1, 0);
        assert_eq!(n.disk_utilisation(), 0.0);
    }

    #[test]
    fn node_id_display() {
        assert_eq!(NodeId(7).to_string(), "node-7");
        assert_eq!(NodeId(7).index(), 7);
    }
}
