//! Work accounting.
//!
//! Everything the simulated cluster does is recorded in a [`Metrics`] registry,
//! tagged with the [`Phase`] of execution it belongs to.  The experiment
//! harness reads these counters to report, e.g., "bytes scanned by stock Hadoop
//! vs bytes scanned by EARL" alongside the simulated processing times.

use std::collections::BTreeMap;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::clock::SimDuration;

/// Execution phases used to attribute work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Phase {
    /// Reading input data from the DFS (including sampling reads).
    Load,
    /// Running user map functions.
    Map,
    /// Sorting and moving intermediate data.
    Shuffle,
    /// Running user reduce functions.
    Reduce,
    /// Bootstrap resampling and accuracy estimation (EARL's AES).
    AccuracyEstimation,
    /// Writing output back to the DFS.
    Output,
    /// Anything else (job setup, bookkeeping).
    Other,
}

impl Phase {
    /// All phases in a stable order.
    pub const ALL: [Phase; 7] = [
        Phase::Load,
        Phase::Map,
        Phase::Shuffle,
        Phase::Reduce,
        Phase::AccuracyEstimation,
        Phase::Output,
        Phase::Other,
    ];
}

/// Counters for a single phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseCounters {
    /// Bytes read from disk.
    pub disk_bytes_read: u64,
    /// Bytes written to disk.
    pub disk_bytes_written: u64,
    /// Bytes transferred over the network.
    pub net_bytes: u64,
    /// Records processed.
    pub records: u64,
    /// Simulated time spent, in microseconds.
    pub sim_time_micros: u64,
}

impl PhaseCounters {
    fn merge(&mut self, other: &PhaseCounters) {
        self.disk_bytes_read += other.disk_bytes_read;
        self.disk_bytes_written += other.disk_bytes_written;
        self.net_bytes += other.net_bytes;
        self.records += other.records;
        self.sim_time_micros += other.sim_time_micros;
    }
}

/// An immutable snapshot of all counters.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Per-phase counters.
    pub phases: BTreeMap<Phase, PhaseCounters>,
    /// Number of tasks started.
    pub tasks_started: u64,
    /// Number of tasks restarted because of failures.
    pub tasks_restarted: u64,
    /// Number of jobs run.
    pub jobs_run: u64,
}

impl MetricsSnapshot {
    /// Total bytes read from disk across all phases.
    pub fn total_disk_bytes_read(&self) -> u64 {
        self.phases.values().map(|c| c.disk_bytes_read).sum()
    }

    /// Total bytes moved over the network across all phases.
    pub fn total_net_bytes(&self) -> u64 {
        self.phases.values().map(|c| c.net_bytes).sum()
    }

    /// Total records processed across all phases.
    pub fn total_records(&self) -> u64 {
        self.phases.values().map(|c| c.records).sum()
    }

    /// Total simulated time attributed across all phases.
    pub fn total_sim_time(&self) -> SimDuration {
        SimDuration::from_micros(self.phases.values().map(|c| c.sim_time_micros).sum())
    }

    /// Counters for one phase (zeroes if the phase never ran).
    pub fn phase(&self, phase: Phase) -> PhaseCounters {
        self.phases.get(&phase).copied().unwrap_or_default()
    }
}

/// Thread-safe metrics registry.
#[derive(Debug, Default)]
pub struct Metrics {
    inner: Mutex<MetricsSnapshot>,
}

impl Metrics {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records disk reads in a phase.
    pub fn record_disk_read(&self, phase: Phase, bytes: u64, time: SimDuration) {
        let mut inner = self.inner.lock();
        let c = inner.phases.entry(phase).or_default();
        c.disk_bytes_read += bytes;
        c.sim_time_micros += time.as_micros();
    }

    /// Records disk writes in a phase.
    pub fn record_disk_write(&self, phase: Phase, bytes: u64, time: SimDuration) {
        let mut inner = self.inner.lock();
        let c = inner.phases.entry(phase).or_default();
        c.disk_bytes_written += bytes;
        c.sim_time_micros += time.as_micros();
    }

    /// Records a network transfer in a phase.
    pub fn record_net(&self, phase: Phase, bytes: u64, time: SimDuration) {
        let mut inner = self.inner.lock();
        let c = inner.phases.entry(phase).or_default();
        c.net_bytes += bytes;
        c.sim_time_micros += time.as_micros();
    }

    /// Records CPU work over `records` records in a phase.
    pub fn record_cpu(&self, phase: Phase, records: u64, time: SimDuration) {
        let mut inner = self.inner.lock();
        let c = inner.phases.entry(phase).or_default();
        c.records += records;
        c.sim_time_micros += time.as_micros();
    }

    /// Records pure simulated time (no bytes/records) in a phase.
    pub fn record_time(&self, phase: Phase, time: SimDuration) {
        let mut inner = self.inner.lock();
        inner.phases.entry(phase).or_default().sim_time_micros += time.as_micros();
    }

    /// Records that a task started.
    pub fn record_task_start(&self) {
        self.inner.lock().tasks_started += 1;
    }

    /// Records that a task had to be restarted after a failure.
    pub fn record_task_restart(&self) {
        self.inner.lock().tasks_restarted += 1;
    }

    /// Records a job execution.
    pub fn record_job(&self) {
        self.inner.lock().jobs_run += 1;
    }

    /// Returns a snapshot of all counters.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.inner.lock().clone()
    }

    /// Resets all counters to zero.
    pub fn reset(&self) {
        *self.inner.lock() = MetricsSnapshot::default();
    }

    /// Merges another snapshot into this registry (used to fold per-job metrics
    /// into experiment-level totals).
    pub fn merge_snapshot(&self, other: &MetricsSnapshot) {
        let mut inner = self.inner.lock();
        for (phase, counters) in &other.phases {
            inner.phases.entry(*phase).or_default().merge(counters);
        }
        inner.tasks_started += other.tasks_started;
        inner.tasks_restarted += other.tasks_restarted;
        inner.jobs_run += other.jobs_run;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_phase() {
        let m = Metrics::new();
        m.record_disk_read(Phase::Load, 100, SimDuration::from_micros(5));
        m.record_disk_read(Phase::Load, 50, SimDuration::from_micros(2));
        m.record_cpu(Phase::Map, 10, SimDuration::from_micros(1));
        let snap = m.snapshot();
        assert_eq!(snap.phase(Phase::Load).disk_bytes_read, 150);
        assert_eq!(snap.phase(Phase::Load).sim_time_micros, 7);
        assert_eq!(snap.phase(Phase::Map).records, 10);
        assert_eq!(snap.total_disk_bytes_read(), 150);
        assert_eq!(snap.total_records(), 10);
        assert_eq!(snap.total_sim_time().as_micros(), 8);
    }

    #[test]
    fn missing_phase_is_zero() {
        let snap = Metrics::new().snapshot();
        assert_eq!(snap.phase(Phase::Reduce), PhaseCounters::default());
    }

    #[test]
    fn task_and_job_counters() {
        let m = Metrics::new();
        m.record_task_start();
        m.record_task_start();
        m.record_task_restart();
        m.record_job();
        let snap = m.snapshot();
        assert_eq!(snap.tasks_started, 2);
        assert_eq!(snap.tasks_restarted, 1);
        assert_eq!(snap.jobs_run, 1);
    }

    #[test]
    fn reset_clears_everything() {
        let m = Metrics::new();
        m.record_net(Phase::Shuffle, 10, SimDuration::from_micros(1));
        m.reset();
        assert_eq!(m.snapshot(), MetricsSnapshot::default());
    }

    #[test]
    fn merge_snapshot_folds_counters() {
        let a = Metrics::new();
        a.record_disk_write(Phase::Output, 10, SimDuration::from_micros(1));
        a.record_job();
        let b = Metrics::new();
        b.record_disk_write(Phase::Output, 5, SimDuration::from_micros(2));
        b.record_task_start();
        a.merge_snapshot(&b.snapshot());
        let snap = a.snapshot();
        assert_eq!(snap.phase(Phase::Output).disk_bytes_written, 15);
        assert_eq!(snap.phase(Phase::Output).sim_time_micros, 3);
        assert_eq!(snap.jobs_run, 1);
        assert_eq!(snap.tasks_started, 1);
    }

    #[test]
    fn all_phases_constant_is_exhaustive_enough() {
        // Sanity: the ALL list contains distinct phases.
        let mut set = std::collections::BTreeSet::new();
        for p in Phase::ALL {
            set.insert(p);
        }
        assert_eq!(set.len(), Phase::ALL.len());
    }
}
