//! The cluster facade.
//!
//! A [`Cluster`] bundles the nodes, the simulated clock, the cost model, the
//! metrics registry and the failure injector.  Higher layers never advance the
//! clock themselves; they call the `charge_*` methods which compute the cost of
//! an operation, advance the clock, and record metrics in one step.
//!
//! ## Parallelism model
//!
//! Hadoop overlaps work across nodes.  Rather than simulating a full event
//! queue, the cluster exposes [`Cluster::charge_parallel`], which charges the
//! *maximum* of a set of per-node durations (the makespan) — the same
//! first-order model the paper uses when reasoning about why sampling reduces
//! response time (the job finishes when its slowest wave of tasks finishes).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::clock::{SimClock, SimDuration, SimInstant};
use crate::cost::CostModel;
use crate::error::ClusterError;
use crate::failure::{FailureEvent, FailureInjector, FailureSchedule};
use crate::metrics::{Metrics, Phase};
use crate::node::{Node, NodeId, NodeState};
use crate::Result;

/// Shared handle to a simulated cluster.
///
/// The handle is cheaply cloneable (`Arc` internally) so the DFS, the MapReduce
/// engine and the EARL driver can all charge work against the same cluster.
#[derive(Debug, Clone)]
pub struct Cluster {
    inner: Arc<ClusterInner>,
}

#[derive(Debug)]
struct ClusterInner {
    nodes: RwLock<Vec<Node>>,
    clock: SimClock,
    cost: CostModel,
    metrics: Metrics,
    failures: parking_lot::Mutex<FailureInjector>,
    rng: parking_lot::Mutex<StdRng>,
    /// Depth of [`Cluster::suppress_failure_polling`] guards currently alive.
    /// While non-zero, `charge_*` calls do not implicitly poll the injector —
    /// the engine arbitrates failures explicitly at deterministic instants.
    poll_suppressed: AtomicUsize,
}

/// RAII guard returned by [`Cluster::suppress_failure_polling`]: while alive,
/// `charge_*` calls advance the clock and metrics but do **not** poll the
/// failure injector.  Dropping the guard re-enables implicit polling; the
/// holder is expected to arbitrate the covered window explicitly via
/// [`Cluster::arbitrate_failures_at`].
#[derive(Debug)]
#[must_use = "polling resumes when the guard is dropped"]
pub struct FailurePollingPause {
    inner: Arc<ClusterInner>,
}

impl Drop for FailurePollingPause {
    fn drop(&mut self) {
        self.inner.poll_suppressed.fetch_sub(1, Ordering::SeqCst);
    }
}

impl Cluster {
    /// Starts building a cluster.
    pub fn builder() -> ClusterBuilder {
        ClusterBuilder::default()
    }

    /// Convenience constructor: `n` healthy nodes, 2 task slots each, the
    /// commodity cost model and no failures.  Matches the paper's 5-node setup
    /// when called with `n = 5`.
    pub fn with_nodes(n: u32) -> Self {
        Self::builder()
            .nodes(n)
            .build()
            .expect("default cluster config is valid")
    }

    /// A single-node cluster with a free cost model, for unit tests.
    pub fn for_tests() -> Self {
        Self::builder()
            .nodes(1)
            .cost_model(CostModel::free())
            .build()
            .expect("valid test cluster")
    }

    // ----- topology -------------------------------------------------------

    /// Number of nodes (including failed ones).
    pub fn num_nodes(&self) -> usize {
        self.inner.nodes.read().len()
    }

    /// Ids of nodes currently able to run tasks / serve blocks.
    pub fn available_nodes(&self) -> Vec<NodeId> {
        self.inner
            .nodes
            .read()
            .iter()
            .filter(|n| n.is_available())
            .map(|n| n.id())
            .collect()
    }

    /// Total number of task slots across available nodes.
    pub fn total_task_slots(&self) -> u32 {
        self.inner
            .nodes
            .read()
            .iter()
            .filter(|n| n.is_available())
            .map(|n| n.task_slots())
            .sum()
    }

    /// Snapshot of a node.
    pub fn node(&self, id: NodeId) -> Result<Node> {
        self.inner
            .nodes
            .read()
            .get(id.index())
            .cloned()
            .ok_or(ClusterError::UnknownNode(id))
    }

    /// Snapshot of all nodes.
    pub fn nodes(&self) -> Vec<Node> {
        self.inner.nodes.read().clone()
    }

    /// Returns an available node chosen uniformly at random (used for block
    /// placement and non-local task assignment).
    pub fn random_available_node(&self) -> Result<NodeId> {
        let available = self.available_nodes();
        if available.is_empty() {
            return Err(ClusterError::NoAvailableNodes);
        }
        let mut rng = self.inner.rng.lock();
        Ok(*available.choose(&mut *rng).expect("non-empty"))
    }

    /// Returns the available node with the least stored data (used by the
    /// rebalancer and for balanced block placement).
    pub fn least_loaded_node(&self) -> Result<NodeId> {
        self.inner
            .nodes
            .read()
            .iter()
            .filter(|n| n.is_available())
            .min_by_key(|n| n.stored_bytes())
            .map(|n| n.id())
            .ok_or(ClusterError::NoAvailableNodes)
    }

    /// Draws a uniform random value in `[0, 1)` from the cluster RNG.  The DFS
    /// and samplers use this so an entire experiment is reproducible from the
    /// cluster seed.
    pub fn random_f64(&self) -> f64 {
        self.inner.rng.lock().gen::<f64>()
    }

    /// Draws a uniform random integer in `[0, bound)` from the cluster RNG.
    pub fn random_below(&self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        self.inner.rng.lock().gen_range(0..bound)
    }

    // ----- storage accounting (used by the DFS) ----------------------------

    /// Records that `bytes` of block data were placed on `node`.
    pub fn record_block_stored(&self, node: NodeId, bytes: u64) -> Result<()> {
        let mut nodes = self.inner.nodes.write();
        let n = nodes
            .get_mut(node.index())
            .ok_or(ClusterError::UnknownNode(node))?;
        if !n.is_available() {
            return Err(ClusterError::NodeUnavailable(node));
        }
        n.add_stored(bytes);
        Ok(())
    }

    /// Records that `bytes` of block data were removed from `node`.
    pub fn record_block_removed(&self, node: NodeId, bytes: u64) -> Result<()> {
        let mut nodes = self.inner.nodes.write();
        let n = nodes
            .get_mut(node.index())
            .ok_or(ClusterError::UnknownNode(node))?;
        n.remove_stored(bytes);
        Ok(())
    }

    /// Records that a task ran on `node`.
    pub fn record_task_on(&self, node: NodeId) -> Result<()> {
        let mut nodes = self.inner.nodes.write();
        let n = nodes
            .get_mut(node.index())
            .ok_or(ClusterError::UnknownNode(node))?;
        if !n.is_available() {
            return Err(ClusterError::NodeUnavailable(node));
        }
        n.record_task();
        self.inner.metrics.record_task_start();
        Ok(())
    }

    // ----- time / cost charging -------------------------------------------

    /// The cost model in effect.
    pub fn cost_model(&self) -> &CostModel {
        &self.inner.cost
    }

    /// Current simulated time.
    pub fn now(&self) -> SimInstant {
        self.inner.clock.now()
    }

    /// Total elapsed simulated time.
    pub fn elapsed(&self) -> SimDuration {
        self.inner.clock.elapsed()
    }

    /// The metrics registry.
    pub fn metrics(&self) -> &Metrics {
        &self.inner.metrics
    }

    /// Charges a sequential disk read of `bytes` bytes in `phase`.
    pub fn charge_disk_read(&self, phase: Phase, bytes: u64) -> SimDuration {
        let cost = self.inner.cost.disk_read(bytes);
        self.inner.clock.advance(cost);
        self.inner.metrics.record_disk_read(phase, bytes, cost);
        self.poll_failures();
        cost
    }

    /// Charges a random disk seek followed by a read of `bytes` bytes.
    pub fn charge_disk_seek_read(&self, phase: Phase, bytes: u64) -> SimDuration {
        let cost = self.inner.cost.disk_seek + self.inner.cost.disk_read(bytes);
        self.inner.clock.advance(cost);
        self.inner.metrics.record_disk_read(phase, bytes, cost);
        self.poll_failures();
        cost
    }

    /// Charges a sequential disk write of `bytes` bytes in `phase`.
    pub fn charge_disk_write(&self, phase: Phase, bytes: u64) -> SimDuration {
        let cost = self.inner.cost.disk_write(bytes);
        self.inner.clock.advance(cost);
        self.inner.metrics.record_disk_write(phase, bytes, cost);
        self.poll_failures();
        cost
    }

    /// Charges a network transfer of `bytes` bytes between `from` and `to`
    /// (free if they are the same node).
    pub fn charge_net_transfer(
        &self,
        phase: Phase,
        from: NodeId,
        to: NodeId,
        bytes: u64,
    ) -> SimDuration {
        if from == to {
            return SimDuration::ZERO;
        }
        let cost = self.inner.cost.net_transfer(bytes);
        self.inner.clock.advance(cost);
        self.inner.metrics.record_net(phase, bytes, cost);
        self.poll_failures();
        cost
    }

    /// Charges CPU work for `records` map-records.
    pub fn charge_map_cpu(&self, records: u64, heavy: bool) -> SimDuration {
        let cost = self.inner.cost.map_cpu(records, heavy);
        self.inner.clock.advance(cost);
        self.inner.metrics.record_cpu(Phase::Map, records, cost);
        self.poll_failures();
        cost
    }

    /// Charges CPU work for `records` reduce-records in the given phase
    /// (reduce work may be attributed to [`Phase::AccuracyEstimation`] when it
    /// is bootstrap recomputation rather than the user's job proper).
    pub fn charge_reduce_cpu(&self, phase: Phase, records: u64, heavy: bool) -> SimDuration {
        let cost = self.inner.cost.reduce_cpu(records, heavy);
        self.inner.clock.advance(cost);
        self.inner.metrics.record_cpu(phase, records, cost);
        self.poll_failures();
        cost
    }

    /// Charges sort CPU work for `records` records during the shuffle.
    pub fn charge_sort(&self, records: u64) -> SimDuration {
        let cost = self.inner.cost.sort_cpu(records);
        self.inner.clock.advance(cost);
        self.inner.metrics.record_cpu(Phase::Shuffle, records, cost);
        self.poll_failures();
        cost
    }

    /// Charges the fixed start-up cost of one task.
    pub fn charge_task_startup(&self) -> SimDuration {
        let cost = self.inner.cost.task_startup;
        self.inner.clock.advance(cost);
        self.inner.metrics.record_time(Phase::Other, cost);
        self.poll_failures();
        cost
    }

    /// Charges the fixed start-up cost of one job.
    pub fn charge_job_startup(&self) -> SimDuration {
        let cost = self.inner.cost.job_startup;
        self.inner.clock.advance(cost);
        self.inner.metrics.record_time(Phase::Other, cost);
        self.inner.metrics.record_job();
        self.poll_failures();
        cost
    }

    /// Charges a set of durations that execute *in parallel* on different
    /// nodes: the clock advances by the maximum (makespan) but the metrics
    /// record the per-phase attribution passed in `attributed`.
    ///
    /// Returns the makespan.
    pub fn charge_parallel(&self, phase: Phase, durations: &[SimDuration]) -> SimDuration {
        let makespan = durations.iter().copied().max().unwrap_or(SimDuration::ZERO);
        self.inner.clock.advance(makespan);
        self.inner.metrics.record_time(phase, makespan);
        self.poll_failures();
        makespan
    }

    /// Records that a task was restarted due to a failure.
    pub fn record_task_restart(&self) {
        self.inner.metrics.record_task_restart();
    }

    // ----- failures ---------------------------------------------------------

    /// Fails a node immediately (administrative action or test hook).
    pub fn fail_node(&self, id: NodeId) -> Result<()> {
        let mut nodes = self.inner.nodes.write();
        let n = nodes
            .get_mut(id.index())
            .ok_or(ClusterError::UnknownNode(id))?;
        n.fail();
        Ok(())
    }

    /// Reports a node failure observed *outside* the failure injector — the
    /// hook real transports use when a worker process dies (heartbeat timeout
    /// or connection reset on its socket, `earl-net`).  The node is failed
    /// immediately and a [`FailureEvent`] stamped with the current simulated
    /// instant joins the injector's fired list, so the existing observability
    /// chain ([`Self::failure_events`] → job fault logs → `EarlReport`)
    /// records the death exactly like a scheduled one.  Reporting the same
    /// node twice is idempotent for the event list; the returned event is the
    /// one recorded (or previously recorded at the same instant).
    pub fn report_external_failure(&self, id: NodeId) -> Result<FailureEvent> {
        let event = FailureEvent {
            node: id,
            at: self.now(),
        };
        self.fail_node(id)?;
        self.inner.failures.lock().record_external(event);
        Ok(event)
    }

    /// Returns a node previously reported dead back to service — the hook
    /// real transports use when a dead worker redials, re-handshakes and is
    /// re-provisioned (`earl-net` worker rejoin).  The node is repaired in
    /// place (it comes back empty, exactly like [`Self::repair_node`]) and
    /// immediately rejoins [`Self::available_nodes`], so the next phase's
    /// planning picks it back up.  No fault-log entry is written: the *death*
    /// was the observable event, and recovery restores capacity without
    /// rewriting history.  Recovering a decommissioned node leaves it out of
    /// service; recovering a healthy node is a no-op.
    pub fn report_recovery(&self, id: NodeId) -> Result<()> {
        self.repair_node(id)
    }

    /// Administratively decommissions a node: it stops serving blocks and
    /// running tasks and cannot be repaired back into service.
    pub fn decommission_node(&self, id: NodeId) -> Result<()> {
        let mut nodes = self.inner.nodes.write();
        let n = nodes
            .get_mut(id.index())
            .ok_or(ClusterError::UnknownNode(id))?;
        n.decommission();
        Ok(())
    }

    /// Repairs a failed node (it comes back empty).
    pub fn repair_node(&self, id: NodeId) -> Result<()> {
        let mut nodes = self.inner.nodes.write();
        let n = nodes
            .get_mut(id.index())
            .ok_or(ClusterError::UnknownNode(id))?;
        n.repair();
        Ok(())
    }

    /// Whether the failure injector can still fail nodes in the future.
    /// `false` means node availability is stable for the rest of the run.
    pub fn failure_injection_pending(&self) -> bool {
        self.inner.failures.lock().may_fail()
    }

    /// Nodes that have failed so far.
    pub fn failed_nodes(&self) -> Vec<NodeId> {
        self.inner
            .nodes
            .read()
            .iter()
            .filter(|n| n.state() == NodeState::Failed)
            .map(|n| n.id())
            .collect()
    }

    /// All failure events the injector has fired so far.
    pub fn failure_events(&self) -> Vec<FailureEvent> {
        self.inner.failures.lock().fired_events().to_vec()
    }

    /// Pauses implicit failure polling for the lifetime of the returned
    /// guard.  Parallel phases hold this while worker threads charge costs,
    /// so failures are never decided by execution interleaving; the phase
    /// then calls [`Self::arbitrate_failures_at`] at plan-derived instants.
    pub fn suppress_failure_polling(&self) -> FailurePollingPause {
        self.inner.poll_suppressed.fetch_add(1, Ordering::SeqCst);
        FailurePollingPause {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Polls the injector at an explicit instant `at` (which may run ahead of
    /// the charged clock), fails the returned nodes, and reports the events.
    /// Unlike the implicit polling in `charge_*`, this works even while a
    /// [`FailurePollingPause`] is held — it *is* the replacement for the
    /// suppressed polls.  The injector's poll window is monotonic, so calling
    /// this with non-decreasing instants partitions time deterministically.
    pub fn arbitrate_failures_at(&self, at: SimInstant) -> Vec<FailureEvent> {
        let available = self.available_nodes();
        if available.is_empty() {
            return Vec::new();
        }
        let fired = self.inner.failures.lock().poll(at, &available);
        if !fired.is_empty() {
            let mut nodes = self.inner.nodes.write();
            for ev in &fired {
                if let Some(n) = nodes.get_mut(ev.node.index()) {
                    n.fail();
                }
            }
        }
        fired
    }

    fn poll_failures(&self) {
        if self.inner.poll_suppressed.load(Ordering::SeqCst) > 0 {
            return;
        }
        let now = self.inner.clock.now();
        let available = self.available_nodes();
        if available.is_empty() {
            return;
        }
        let newly_failed = self.inner.failures.lock().poll(now, &available);
        if newly_failed.is_empty() {
            return;
        }
        let mut nodes = self.inner.nodes.write();
        for ev in newly_failed {
            if let Some(n) = nodes.get_mut(ev.node.index()) {
                n.fail();
            }
        }
    }

    /// Resets the clock and metrics (node states and storage are preserved).
    /// Used between repetitions of an experiment on the same data.
    pub fn reset_accounting(&self) {
        self.inner.clock.reset();
        self.inner.metrics.reset();
    }
}

/// Builder for [`Cluster`].
#[derive(Debug)]
pub struct ClusterBuilder {
    num_nodes: u32,
    task_slots: u32,
    disk_capacity_bytes: u64,
    cost: CostModel,
    failure_schedule: FailureSchedule,
    seed: u64,
}

impl Default for ClusterBuilder {
    fn default() -> Self {
        Self {
            num_nodes: 5,
            task_slots: 2,
            disk_capacity_bytes: 320 * 1024 * 1024 * 1024, // paper: 320 GB-class disks
            cost: CostModel::commodity_2012(),
            failure_schedule: FailureSchedule::None,
            seed: 0xEA71,
        }
    }
}

impl ClusterBuilder {
    /// Sets the number of nodes.
    pub fn nodes(mut self, n: u32) -> Self {
        self.num_nodes = n;
        self
    }

    /// Sets the number of task slots per node.
    pub fn task_slots(mut self, slots: u32) -> Self {
        self.task_slots = slots;
        self
    }

    /// Sets the per-node disk capacity in bytes.
    pub fn disk_capacity_bytes(mut self, bytes: u64) -> Self {
        self.disk_capacity_bytes = bytes;
        self
    }

    /// Sets the cost model.
    pub fn cost_model(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Sets the failure schedule.
    pub fn failure_schedule(mut self, schedule: FailureSchedule) -> Self {
        self.failure_schedule = schedule;
        self
    }

    /// Sets the seed for the cluster RNG (block placement, sampling decisions).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builds the cluster.
    pub fn build(self) -> Result<Cluster> {
        if self.num_nodes == 0 {
            return Err(ClusterError::InvalidConfig(
                "a cluster needs at least one node".into(),
            ));
        }
        let nodes = (0..self.num_nodes)
            .map(|i| Node::new(NodeId(i), self.task_slots, self.disk_capacity_bytes))
            .collect();
        Ok(Cluster {
            inner: Arc::new(ClusterInner {
                nodes: RwLock::new(nodes),
                clock: SimClock::new(),
                cost: self.cost,
                metrics: Metrics::new(),
                failures: parking_lot::Mutex::new(FailureInjector::new(self.failure_schedule)),
                rng: parking_lot::Mutex::new(StdRng::seed_from_u64(self.seed)),
                poll_suppressed: AtomicUsize::new(0),
            }),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failure::FailureEvent;

    #[test]
    fn builder_rejects_empty_cluster() {
        assert!(matches!(
            Cluster::builder().nodes(0).build(),
            Err(ClusterError::InvalidConfig(_))
        ));
    }

    #[test]
    fn default_cluster_matches_paper_setup() {
        let c = Cluster::with_nodes(5);
        assert_eq!(c.num_nodes(), 5);
        assert_eq!(c.available_nodes().len(), 5);
        assert_eq!(c.total_task_slots(), 10);
    }

    #[test]
    fn charging_advances_clock_and_metrics() {
        let c = Cluster::with_nodes(2);
        let before = c.now();
        let cost = c.charge_disk_read(Phase::Load, 90 * 1024 * 1024);
        assert!(cost > SimDuration::ZERO);
        assert!(c.now() > before);
        let snap = c.metrics().snapshot();
        assert_eq!(snap.phase(Phase::Load).disk_bytes_read, 90 * 1024 * 1024);
    }

    #[test]
    fn intra_node_transfer_is_free() {
        let c = Cluster::with_nodes(2);
        assert_eq!(
            c.charge_net_transfer(Phase::Shuffle, NodeId(0), NodeId(0), 1 << 20),
            SimDuration::ZERO
        );
        assert!(
            c.charge_net_transfer(Phase::Shuffle, NodeId(0), NodeId(1), 1 << 20)
                > SimDuration::ZERO
        );
    }

    #[test]
    fn parallel_charge_uses_makespan() {
        let c = Cluster::for_tests();
        let d = c.charge_parallel(
            Phase::Map,
            &[
                SimDuration::from_micros(5),
                SimDuration::from_micros(20),
                SimDuration::from_micros(1),
            ],
        );
        assert_eq!(d.as_micros(), 20);
        assert_eq!(c.elapsed().as_micros(), 20);
    }

    #[test]
    fn storage_accounting_and_least_loaded() {
        let c = Cluster::with_nodes(3);
        c.record_block_stored(NodeId(0), 100).unwrap();
        c.record_block_stored(NodeId(1), 50).unwrap();
        assert_eq!(c.least_loaded_node().unwrap(), NodeId(2));
        c.record_block_removed(NodeId(0), 100).unwrap();
        assert_eq!(c.node(NodeId(0)).unwrap().stored_bytes(), 0);
    }

    #[test]
    fn failed_node_rejects_storage_and_tasks() {
        let c = Cluster::with_nodes(2);
        c.fail_node(NodeId(1)).unwrap();
        assert_eq!(c.available_nodes(), vec![NodeId(0)]);
        assert!(matches!(
            c.record_block_stored(NodeId(1), 10),
            Err(ClusterError::NodeUnavailable(_))
        ));
        assert!(matches!(
            c.record_task_on(NodeId(1)),
            Err(ClusterError::NodeUnavailable(_))
        ));
        c.repair_node(NodeId(1)).unwrap();
        assert_eq!(c.available_nodes().len(), 2);
    }

    #[test]
    fn reported_recovery_restores_service_but_keeps_the_death_on_record() {
        let c = Cluster::with_nodes(3);
        c.report_external_failure(NodeId(1)).unwrap();
        assert_eq!(c.available_nodes(), vec![NodeId(0), NodeId(2)]);
        assert_eq!(c.failure_events().len(), 1);

        c.report_recovery(NodeId(1)).unwrap();
        assert_eq!(c.available_nodes().len(), 3, "the node is back in service");
        assert_eq!(
            c.failure_events().len(),
            1,
            "recovery must not rewrite the failure history"
        );
        // Recovering a healthy node is a no-op; decommissioned nodes stay out.
        c.report_recovery(NodeId(0)).unwrap();
        assert_eq!(c.available_nodes().len(), 3);
        c.decommission_node(NodeId(2)).unwrap();
        c.report_recovery(NodeId(2)).unwrap();
        assert_eq!(c.available_nodes(), vec![NodeId(0), NodeId(1)]);
    }

    #[test]
    fn scheduled_failure_fires_as_time_is_charged() {
        let schedule = FailureSchedule::Deterministic(vec![FailureEvent {
            node: NodeId(1),
            at: SimInstant::EPOCH + SimDuration::from_millis(500),
        }]);
        let c = Cluster::builder()
            .nodes(3)
            .failure_schedule(schedule)
            .build()
            .unwrap();
        // Charge enough disk time to pass 500ms.
        c.charge_disk_read(Phase::Load, 200 * 1024 * 1024);
        assert!(c.elapsed() > SimDuration::from_millis(500));
        assert_eq!(c.failed_nodes(), vec![NodeId(1)]);
    }

    #[test]
    fn suppressed_polling_defers_failures_to_explicit_arbitration() {
        let schedule = FailureSchedule::Deterministic(vec![FailureEvent {
            node: NodeId(1),
            at: SimInstant::EPOCH + SimDuration::from_millis(500),
        }]);
        let c = Cluster::builder()
            .nodes(3)
            .failure_schedule(schedule)
            .build()
            .unwrap();
        {
            let _pause = c.suppress_failure_polling();
            c.charge_disk_read(Phase::Load, 200 * 1024 * 1024);
            assert!(c.elapsed() > SimDuration::from_millis(500));
            assert!(
                c.failed_nodes().is_empty(),
                "implicit polling is paused while the guard is held"
            );
        }
        let fired = c.arbitrate_failures_at(c.now());
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].node, NodeId(1));
        assert_eq!(c.failed_nodes(), vec![NodeId(1)]);
        assert_eq!(c.failure_events(), fired);
    }

    #[test]
    fn arbitration_may_run_ahead_of_the_charged_clock() {
        let schedule = FailureSchedule::Deterministic(vec![FailureEvent {
            node: NodeId(2),
            at: SimInstant::EPOCH + SimDuration::from_secs(10),
        }]);
        let c = Cluster::builder()
            .nodes(3)
            .failure_schedule(schedule)
            .build()
            .unwrap();
        // Arbitrating at an estimated boundary beyond the charged clock fires
        // the event; the later implicit poll at the (smaller) real clock must
        // not rewind the injector's window.
        let fired = c.arbitrate_failures_at(SimInstant::EPOCH + SimDuration::from_secs(11));
        assert_eq!(fired.len(), 1);
        c.charge_disk_read(Phase::Load, 1 << 20);
        assert_eq!(c.failed_nodes(), vec![NodeId(2)]);
        assert!(!c.failure_injection_pending());
    }

    #[test]
    fn unknown_node_errors() {
        let c = Cluster::with_nodes(1);
        assert!(matches!(
            c.node(NodeId(9)),
            Err(ClusterError::UnknownNode(_))
        ));
        assert!(matches!(
            c.fail_node(NodeId(9)),
            Err(ClusterError::UnknownNode(_))
        ));
    }

    #[test]
    fn random_helpers_are_bounded() {
        let c = Cluster::with_nodes(2);
        for _ in 0..100 {
            let x = c.random_f64();
            assert!((0.0..1.0).contains(&x));
            assert!(c.random_below(10) < 10);
        }
        assert_eq!(c.random_below(0), 0);
    }

    #[test]
    fn reset_accounting_clears_time_but_keeps_nodes() {
        let c = Cluster::with_nodes(2);
        c.record_block_stored(NodeId(0), 42).unwrap();
        c.charge_disk_read(Phase::Load, 1 << 20);
        c.reset_accounting();
        assert_eq!(c.elapsed(), SimDuration::ZERO);
        assert_eq!(c.metrics().snapshot().total_disk_bytes_read(), 0);
        assert_eq!(c.node(NodeId(0)).unwrap().stored_bytes(), 42);
    }

    #[test]
    fn decommissioned_node_cannot_be_repaired() {
        let c = Cluster::with_nodes(2);
        c.decommission_node(NodeId(0)).unwrap();
        assert_eq!(c.available_nodes(), vec![NodeId(1)]);
        c.repair_node(NodeId(0)).unwrap();
        assert_eq!(c.available_nodes(), vec![NodeId(1)]);
    }

    #[test]
    fn no_available_nodes_error() {
        let c = Cluster::with_nodes(1);
        c.fail_node(NodeId(0)).unwrap();
        assert!(matches!(
            c.random_available_node(),
            Err(ClusterError::NoAvailableNodes)
        ));
        assert!(matches!(
            c.least_loaded_node(),
            Err(ClusterError::NoAvailableNodes)
        ));
    }
}
