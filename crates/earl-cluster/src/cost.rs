//! Cost model for the simulated cluster.
//!
//! The EARL paper reports wall-clock processing times measured on a 5-node
//! cluster of 2008-era commodity machines (Core 2 Duo E8400, spinning disks,
//! 1 GbE).  The reproduction substitutes a deterministic cost model: every byte
//! scanned from disk, byte shipped across the network, and record processed by
//! a mapper/reducer is charged a fixed cost.  The absolute constants are chosen
//! to be in the ballpark of the paper's hardware so the *shapes* of the
//! time-vs-data-size figures match; they are configurable so experiments can
//! explore other regimes.

use serde::{Deserialize, Serialize};

use crate::clock::SimDuration;

const MIB: f64 = 1024.0 * 1024.0;

/// Per-operation cost constants used to convert work into simulated time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Cost of a random disk seek.
    pub disk_seek: SimDuration,
    /// Sequential disk read throughput, bytes per second.
    pub disk_read_bytes_per_sec: f64,
    /// Sequential disk write throughput, bytes per second.
    pub disk_write_bytes_per_sec: f64,
    /// Network throughput between two nodes, bytes per second.
    pub net_bytes_per_sec: f64,
    /// Fixed per-message network latency.
    pub net_latency: SimDuration,
    /// CPU cost to process a single record in a map function.
    pub cpu_per_map_record: SimDuration,
    /// CPU cost to process a single record in a reduce function.
    pub cpu_per_reduce_record: SimDuration,
    /// CPU cost per record for sorting/merging during the shuffle.
    pub cpu_per_sort_record: SimDuration,
    /// Fixed cost of launching a task (JVM start-up in Hadoop terms).
    pub task_startup: SimDuration,
    /// Fixed cost of launching a job (job submission, split computation, ...).
    pub job_startup: SimDuration,
    /// Multiplier applied to CPU costs for "heavy" user functions
    /// (e.g. a K-Means iteration costs more per record than a sum).
    pub heavy_cpu_factor: f64,
}

impl CostModel {
    /// Cost model resembling the paper's 2008-era commodity nodes:
    /// ~90 MB/s sequential disk reads, 1 GbE network, ~10 ms seeks, and JVM-like
    /// task start-up costs of a few hundred milliseconds.
    pub fn commodity_2012() -> Self {
        Self {
            disk_seek: SimDuration::from_millis(10),
            disk_read_bytes_per_sec: 90.0 * MIB,
            disk_write_bytes_per_sec: 70.0 * MIB,
            net_bytes_per_sec: 110.0 * MIB,
            net_latency: SimDuration::from_micros(200),
            cpu_per_map_record: SimDuration::from_micros(2),
            cpu_per_reduce_record: SimDuration::from_micros(2),
            cpu_per_sort_record: SimDuration::from_micros(1),
            task_startup: SimDuration::from_millis(400),
            job_startup: SimDuration::from_millis(1_500),
            heavy_cpu_factor: 8.0,
        }
    }

    /// A cost model with all costs set to zero.  Useful in unit tests that only
    /// care about functional behaviour.
    pub fn free() -> Self {
        Self {
            disk_seek: SimDuration::ZERO,
            disk_read_bytes_per_sec: f64::INFINITY,
            disk_write_bytes_per_sec: f64::INFINITY,
            net_bytes_per_sec: f64::INFINITY,
            net_latency: SimDuration::ZERO,
            cpu_per_map_record: SimDuration::ZERO,
            cpu_per_reduce_record: SimDuration::ZERO,
            cpu_per_sort_record: SimDuration::ZERO,
            task_startup: SimDuration::ZERO,
            job_startup: SimDuration::ZERO,
            heavy_cpu_factor: 1.0,
        }
    }

    /// Starts a builder initialised to [`CostModel::commodity_2012`].
    pub fn builder() -> CostModelBuilder {
        CostModelBuilder {
            model: Self::commodity_2012(),
        }
    }

    /// Time to sequentially read `bytes` bytes from one disk.
    pub fn disk_read(&self, bytes: u64) -> SimDuration {
        Self::throughput_cost(bytes, self.disk_read_bytes_per_sec)
    }

    /// Time to sequentially write `bytes` bytes to one disk.
    pub fn disk_write(&self, bytes: u64) -> SimDuration {
        Self::throughput_cost(bytes, self.disk_write_bytes_per_sec)
    }

    /// Time to transfer `bytes` bytes between two distinct nodes (latency +
    /// throughput).  Transfers within a node are free.
    pub fn net_transfer(&self, bytes: u64) -> SimDuration {
        self.net_latency + Self::throughput_cost(bytes, self.net_bytes_per_sec)
    }

    /// CPU time for `records` map invocations, scaled by `heavy` if the user
    /// function is flagged as heavy.
    pub fn map_cpu(&self, records: u64, heavy: bool) -> SimDuration {
        let base = self.cpu_per_map_record.mul_f64(records as f64);
        if heavy {
            base.mul_f64(self.heavy_cpu_factor)
        } else {
            base
        }
    }

    /// CPU time for `records` reduce invocations.
    pub fn reduce_cpu(&self, records: u64, heavy: bool) -> SimDuration {
        let base = self.cpu_per_reduce_record.mul_f64(records as f64);
        if heavy {
            base.mul_f64(self.heavy_cpu_factor)
        } else {
            base
        }
    }

    /// CPU time to sort `records` records (charged as n·log₂(n) comparisons at
    /// the per-sort-record cost).
    pub fn sort_cpu(&self, records: u64) -> SimDuration {
        if records <= 1 {
            return SimDuration::ZERO;
        }
        let n = records as f64;
        self.cpu_per_sort_record.mul_f64(n * n.log2() / 16.0)
    }

    fn throughput_cost(bytes: u64, bytes_per_sec: f64) -> SimDuration {
        if bytes == 0 || !bytes_per_sec.is_finite() || bytes_per_sec <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_secs_f64(bytes as f64 / bytes_per_sec)
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::commodity_2012()
    }
}

/// Fluent builder for [`CostModel`].
#[derive(Debug, Clone)]
pub struct CostModelBuilder {
    model: CostModel,
}

impl CostModelBuilder {
    /// Sets the random-seek cost.
    pub fn disk_seek(mut self, d: SimDuration) -> Self {
        self.model.disk_seek = d;
        self
    }

    /// Sets the sequential-read throughput in MiB/s.
    pub fn disk_read_mib_per_sec(mut self, mib_per_sec: f64) -> Self {
        self.model.disk_read_bytes_per_sec = mib_per_sec * MIB;
        self
    }

    /// Sets the sequential-write throughput in MiB/s.
    pub fn disk_write_mib_per_sec(mut self, mib_per_sec: f64) -> Self {
        self.model.disk_write_bytes_per_sec = mib_per_sec * MIB;
        self
    }

    /// Sets the network throughput in MiB/s.
    pub fn net_mib_per_sec(mut self, mib_per_sec: f64) -> Self {
        self.model.net_bytes_per_sec = mib_per_sec * MIB;
        self
    }

    /// Sets the per-record map CPU cost.
    pub fn cpu_per_map_record(mut self, d: SimDuration) -> Self {
        self.model.cpu_per_map_record = d;
        self
    }

    /// Sets the per-record reduce CPU cost.
    pub fn cpu_per_reduce_record(mut self, d: SimDuration) -> Self {
        self.model.cpu_per_reduce_record = d;
        self
    }

    /// Sets the fixed per-task start-up cost.
    pub fn task_startup(mut self, d: SimDuration) -> Self {
        self.model.task_startup = d;
        self
    }

    /// Sets the fixed per-job start-up cost.
    pub fn job_startup(mut self, d: SimDuration) -> Self {
        self.model.job_startup = d;
        self
    }

    /// Sets the heavy-function CPU multiplier.
    pub fn heavy_cpu_factor(mut self, factor: f64) -> Self {
        self.model.heavy_cpu_factor = factor.max(1.0);
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> CostModel {
        self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disk_read_scales_linearly() {
        let m = CostModel::commodity_2012();
        let one = m.disk_read(MIB as u64);
        let ten = m.disk_read(10 * MIB as u64);
        let ratio = ten.as_secs_f64() / one.as_secs_f64();
        assert!((ratio - 10.0).abs() < 0.01, "ratio was {ratio}");
    }

    #[test]
    fn free_model_charges_nothing() {
        let m = CostModel::free();
        assert_eq!(m.disk_read(1 << 30), SimDuration::ZERO);
        assert_eq!(m.net_transfer(1 << 30), SimDuration::ZERO);
        assert_eq!(m.map_cpu(1_000_000, true), SimDuration::ZERO);
        assert_eq!(m.sort_cpu(1_000_000), SimDuration::ZERO);
    }

    #[test]
    fn heavy_factor_multiplies_cpu() {
        let m = CostModel::commodity_2012();
        let light = m.map_cpu(1000, false);
        let heavy = m.map_cpu(1000, true);
        let ratio = heavy.as_secs_f64() / light.as_secs_f64();
        assert!((ratio - m.heavy_cpu_factor).abs() < 0.05);
    }

    #[test]
    fn sort_cost_is_superlinear() {
        let m = CostModel::commodity_2012();
        let small = m.sort_cpu(1_000);
        let large = m.sort_cpu(1_000_000);
        assert!(large.as_micros() > 1000 * small.as_micros() / 2);
        assert_eq!(m.sort_cpu(1), SimDuration::ZERO);
    }

    #[test]
    fn builder_overrides_fields() {
        let m = CostModel::builder()
            .disk_read_mib_per_sec(200.0)
            .task_startup(SimDuration::from_millis(1))
            .heavy_cpu_factor(0.5) // clamped to 1.0
            .build();
        assert!((m.disk_read_bytes_per_sec - 200.0 * MIB).abs() < 1.0);
        assert_eq!(m.task_startup, SimDuration::from_millis(1));
        assert_eq!(m.heavy_cpu_factor, 1.0);
    }

    #[test]
    fn zero_bytes_cost_latency_only() {
        let m = CostModel::commodity_2012();
        assert_eq!(m.disk_read(0), SimDuration::ZERO);
        assert_eq!(m.net_transfer(0), m.net_latency);
    }
}
