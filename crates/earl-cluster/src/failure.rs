//! Node-failure injection.
//!
//! §3.4 of the EARL paper argues that when an approximate answer is acceptable,
//! node failures need not trigger task restarts: the surviving sample still
//! yields a result with a quantified error.  To reproduce those experiments the
//! cluster supports two kinds of failure schedules:
//!
//! * **Deterministic** — "fail node 3 at t = 10 s" (used by integration tests
//!   so outcomes are exactly reproducible), and
//! * **Stochastic** — an annualised disk-failure rate in the spirit of the
//!   Schroeder & Gibson numbers cited by the paper (≈3 % of disks per year),
//!   driven by seeded per-node randomness.
//!
//! Determinism contract: every draw the stochastic arm makes is a pure
//! function of `(seed, node, window)` — there is no shared RNG stream, so the
//! outcome for a node does not depend on how many other nodes were polled
//! before it, nor on the order of `available_nodes`.  Combined with the
//! engine's policy of polling only at deterministic sim-instants, a schedule
//! produces the same failures at every thread count.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::clock::{SimDuration, SimInstant};
use crate::node::NodeId;

/// A single scheduled failure event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FailureEvent {
    /// The node that fails.
    pub node: NodeId,
    /// The simulated instant at which it fails.
    pub at: SimInstant,
}

/// A failure schedule: either a fixed list of events or a stochastic rate.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum FailureSchedule {
    /// No failures ever occur.
    None,
    /// The given events occur at their scheduled times.
    Deterministic(Vec<FailureEvent>),
    /// Each available node fails independently with probability
    /// `per_node_probability_per_sec` per simulated second.
    Stochastic {
        /// Per-node failure probability per simulated second.
        per_node_probability_per_sec: f64,
        /// RNG seed so runs are reproducible.
        seed: u64,
    },
}

impl FailureSchedule {
    /// Builds a stochastic schedule from an annualised failure rate (e.g. 0.03
    /// for the "3 % of disks fail per year" figure the paper cites).
    pub fn from_annual_rate(annual_rate: f64, seed: u64) -> Self {
        const SECONDS_PER_YEAR: f64 = 365.25 * 24.0 * 3600.0;
        FailureSchedule::Stochastic {
            per_node_probability_per_sec: (annual_rate.max(0.0)) / SECONDS_PER_YEAR,
            seed,
        }
    }
}

/// What one job survived: the failure events that struck it, how it recovered,
/// and what the recovery cost.  Threaded through `JobStats`, the job counters,
/// and `EarlReport` so a degraded answer says *what* it survived.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultLog {
    /// Failure events observed while the job (or run) was executing.
    pub events: Vec<FailureEvent>,
    /// Task attempts re-planned onto surviving nodes (`Retry`, or the
    /// always-retried driver-memory/reduce tasks under `Degrade`).
    pub task_retries: u64,
    /// Input splits abandoned because their data was lost (`Degrade`, §3.4).
    pub splits_lost: u64,
    /// Records from tasks that had already completed when a failure struck and
    /// were kept instead of being re-computed.
    pub records_salvaged: u64,
    /// Total simulated back-off charged before retry rounds.
    pub backoff: SimDuration,
}

impl FaultLog {
    /// True when nothing failure-related happened.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
            && self.task_retries == 0
            && self.splits_lost == 0
            && self.records_salvaged == 0
            && self.backoff == SimDuration::ZERO
    }

    /// Records `events`, skipping any already present (arbitration and
    /// post-hoc sweeps can observe the same firing).
    pub fn record_events(&mut self, events: &[FailureEvent]) {
        for ev in events {
            if !self.events.contains(ev) {
                self.events.push(*ev);
            }
        }
    }

    /// Folds another log into this one (numeric fields add, events dedup).
    pub fn merge(&mut self, other: &FaultLog) {
        self.record_events(&other.events);
        self.task_retries += other.task_retries;
        self.splits_lost += other.splits_lost;
        self.records_salvaged += other.records_salvaged;
        self.backoff += other.backoff;
    }
}

/// Stateful injector that decides which nodes fail as simulated time advances.
#[derive(Debug)]
pub struct FailureInjector {
    schedule: FailureSchedule,
    last_checked: SimInstant,
    fired: Vec<FailureEvent>,
    /// Deterministic arm: `fired_index[i]` marks `events[i]` as consumed —
    /// O(1) dedup instead of rescanning `fired` per event.
    fired_index: Vec<bool>,
    fired_count: usize,
}

/// One independent draw keyed on `(seed, node, window)`: mixes the inputs
/// through splitmix64-style finalisers so nearby windows and node ids land in
/// unrelated RNG streams.
fn window_draw(seed: u64, node: NodeId, window_start: SimInstant, now: SimInstant) -> f64 {
    fn splitmix(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    let a = splitmix(seed ^ 0xEA12_0001);
    let b = splitmix(a ^ u64::from(node.0));
    let c = splitmix(b ^ window_start.duration_since(SimInstant::EPOCH).as_micros());
    let d = splitmix(c ^ now.duration_since(SimInstant::EPOCH).as_micros());
    StdRng::seed_from_u64(d).gen::<f64>()
}

impl FailureInjector {
    /// Creates an injector for the given schedule.
    pub fn new(schedule: FailureSchedule) -> Self {
        let fired_index = match &schedule {
            FailureSchedule::Deterministic(events) => vec![false; events.len()],
            _ => Vec::new(),
        };
        Self {
            schedule,
            last_checked: SimInstant::EPOCH,
            fired: Vec::new(),
            fired_index,
            fired_count: 0,
        }
    }

    /// Creates an injector that never fails anything.
    pub fn none() -> Self {
        Self::new(FailureSchedule::None)
    }

    /// Advances the injector to `now` and returns the events (among
    /// `available_nodes`) that fire in the interval `(last_checked, now]`.
    ///
    /// Polling is monotonic: a `now` at or before `last_checked` returns
    /// nothing and does **not** rewind the window, so arbitration at
    /// estimated task boundaries (which may run ahead of the charged clock)
    /// composes with later implicit polls without double-covering a window.
    /// Same-window events are delivered in `(timestamp, schedule-index)`
    /// order so multi-failure windows are reproducible.
    pub fn poll(&mut self, now: SimInstant, available_nodes: &[NodeId]) -> Vec<FailureEvent> {
        if now <= self.last_checked {
            return Vec::new();
        }
        let window_start = self.last_checked;
        self.last_checked = now;
        match &self.schedule {
            FailureSchedule::None => Vec::new(),
            FailureSchedule::Deterministic(events) => {
                let mut due: Vec<usize> = (0..events.len())
                    .filter(|&i| {
                        !self.fired_index[i] && events[i].at > window_start && events[i].at <= now
                    })
                    .collect();
                due.sort_by_key(|&i| (events[i].at, i));
                let mut failed = Vec::new();
                for i in due {
                    self.fired_index[i] = true;
                    self.fired_count += 1;
                    self.fired.push(events[i]);
                    if available_nodes.contains(&events[i].node) {
                        failed.push(events[i]);
                    }
                }
                failed
            }
            FailureSchedule::Stochastic {
                per_node_probability_per_sec,
                seed,
            } => {
                let window = now.duration_since(window_start);
                let secs = window.as_secs_f64();
                if secs <= 0.0 {
                    return Vec::new();
                }
                // P(survive window) = (1 - p)^secs; fail otherwise.  Each
                // node's draw is an independent function of (seed, node,
                // window) — see the module-level determinism contract.
                let p_window = 1.0 - (1.0 - per_node_probability_per_sec).powf(secs);
                let mut failed = Vec::new();
                let mut order: Vec<NodeId> = available_nodes.to_vec();
                order.sort_by_key(|n| n.0);
                for node in order {
                    if window_draw(*seed, node, window_start, now) < p_window {
                        let ev = FailureEvent { node, at: now };
                        failed.push(ev);
                        self.fired.push(ev);
                    }
                }
                failed
            }
        }
    }

    /// Whether this injector can still fail nodes in the future.  `false`
    /// guarantees no failure will ever fire again, so the engine may skip
    /// failure arbitration entirely.
    pub fn may_fail(&self) -> bool {
        match &self.schedule {
            FailureSchedule::None => false,
            FailureSchedule::Deterministic(events) => self.fired_count < events.len(),
            FailureSchedule::Stochastic {
                per_node_probability_per_sec,
                ..
            } => *per_node_probability_per_sec > 0.0,
        }
    }

    /// All failure events that have fired so far.
    pub fn fired_events(&self) -> &[FailureEvent] {
        &self.fired
    }

    /// Records a failure that was observed *outside* the schedule — e.g. a
    /// real remote worker process dying, detected by a heartbeat timeout on
    /// its connection (`earl-net`).  The event joins the fired list so every
    /// consumer of [`fired_events`](Self::fired_events) (job fault logs, the
    /// driver's end-of-run sweep) sees externally reported deaths exactly
    /// like scheduled ones.  The schedule itself is untouched: `may_fail`
    /// still answers for the *injector's* future only.
    pub fn record_external(&mut self, event: FailureEvent) {
        if !self.fired.contains(&event) {
            self.fired.push(event);
        }
    }

    /// The schedule driving this injector.
    pub fn schedule(&self) -> &FailureSchedule {
        &self.schedule
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nodes(n: u32) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    fn failed_nodes(events: Vec<FailureEvent>) -> Vec<NodeId> {
        events.into_iter().map(|ev| ev.node).collect()
    }

    #[test]
    fn none_schedule_never_fails() {
        let mut inj = FailureInjector::none();
        let failed = inj.poll(SimInstant::EPOCH + SimDuration::from_secs(1_000), &nodes(5));
        assert!(failed.is_empty());
        assert!(inj.fired_events().is_empty());
    }

    #[test]
    fn deterministic_schedule_fires_once_in_window() {
        let ev = FailureEvent {
            node: NodeId(2),
            at: SimInstant::EPOCH + SimDuration::from_secs(10),
        };
        let mut inj = FailureInjector::new(FailureSchedule::Deterministic(vec![ev]));
        // before the event: nothing
        assert!(inj
            .poll(SimInstant::EPOCH + SimDuration::from_secs(5), &nodes(5))
            .is_empty());
        // window containing the event: node 2 fails
        let failed = inj.poll(SimInstant::EPOCH + SimDuration::from_secs(15), &nodes(5));
        assert_eq!(failed_nodes(failed), vec![NodeId(2)]);
        // later polls do not re-fire
        assert!(inj
            .poll(SimInstant::EPOCH + SimDuration::from_secs(30), &nodes(5))
            .is_empty());
        assert_eq!(inj.fired_events().len(), 1);
        assert!(!inj.may_fail());
    }

    #[test]
    fn deterministic_event_on_unavailable_node_is_consumed_silently() {
        let ev = FailureEvent {
            node: NodeId(9),
            at: SimInstant::EPOCH + SimDuration::from_secs(1),
        };
        let mut inj = FailureInjector::new(FailureSchedule::Deterministic(vec![ev]));
        let failed = inj.poll(SimInstant::EPOCH + SimDuration::from_secs(2), &nodes(3));
        assert!(failed.is_empty());
        assert_eq!(
            inj.fired_events().len(),
            1,
            "event is consumed even if node already gone"
        );
    }

    #[test]
    fn same_window_events_are_delivered_in_timestamp_order() {
        // Scheduled out of order; a single poll covering both must deliver
        // them sorted by (timestamp, index).
        let early = FailureEvent {
            node: NodeId(1),
            at: SimInstant::EPOCH + SimDuration::from_secs(3),
        };
        let late = FailureEvent {
            node: NodeId(2),
            at: SimInstant::EPOCH + SimDuration::from_secs(7),
        };
        let mut inj = FailureInjector::new(FailureSchedule::Deterministic(vec![late, early]));
        let failed = inj.poll(SimInstant::EPOCH + SimDuration::from_secs(10), &nodes(5));
        assert_eq!(failed, vec![early, late]);
        assert_eq!(inj.fired_events(), &[early, late]);
    }

    #[test]
    fn polling_backwards_is_a_no_op() {
        let ev = FailureEvent {
            node: NodeId(0),
            at: SimInstant::EPOCH + SimDuration::from_secs(8),
        };
        let mut inj = FailureInjector::new(FailureSchedule::Deterministic(vec![ev]));
        // Arbitration runs ahead of the charged clock…
        assert!(inj
            .poll(SimInstant::EPOCH + SimDuration::from_secs(5), &nodes(3))
            .is_empty());
        // …then an implicit poll at an earlier instant must not rewind the
        // window (which would re-cover (0, 5] and change outcomes).
        assert!(inj
            .poll(SimInstant::EPOCH + SimDuration::from_secs(2), &nodes(3))
            .is_empty());
        let failed = inj.poll(SimInstant::EPOCH + SimDuration::from_secs(9), &nodes(3));
        assert_eq!(failed_nodes(failed), vec![NodeId(0)]);
    }

    #[test]
    fn stochastic_high_rate_fails_quickly_and_is_deterministic_per_seed() {
        let schedule = FailureSchedule::Stochastic {
            per_node_probability_per_sec: 0.5,
            seed: 7,
        };
        let mut a = FailureInjector::new(schedule.clone());
        let mut b = FailureInjector::new(schedule);
        let t = SimInstant::EPOCH + SimDuration::from_secs(10);
        let fa = a.poll(t, &nodes(20));
        let fb = b.poll(t, &nodes(20));
        assert_eq!(fa, fb, "same seed must produce the same failures");
        assert!(
            !fa.is_empty(),
            "with p=0.5/s over 10s nearly every node should fail"
        );
    }

    #[test]
    fn stochastic_draws_do_not_depend_on_the_node_set_or_its_order() {
        // The same (seed, node, window) must produce the same outcome whether
        // the node is polled alone, among others, or in a different order —
        // the satellite fix for the shared-RNG-stream order dependence.
        let schedule = FailureSchedule::Stochastic {
            per_node_probability_per_sec: 0.2,
            seed: 42,
        };
        let t = SimInstant::EPOCH + SimDuration::from_secs(5);
        let all = FailureInjector::new(schedule.clone()).poll(t, &nodes(12));
        let reversed = {
            let mut order: Vec<NodeId> = nodes(12);
            order.reverse();
            FailureInjector::new(schedule.clone()).poll(t, &order)
        };
        assert_eq!(all, reversed, "iteration order must not matter");
        for node in nodes(12) {
            let solo = FailureInjector::new(schedule.clone()).poll(t, &[node]);
            let in_all = all.iter().any(|ev| ev.node == node);
            assert_eq!(
                !solo.is_empty(),
                in_all,
                "node {node:?} outcome must not depend on which other nodes were polled"
            );
        }
    }

    #[test]
    fn stochastic_zero_window_fails_nothing() {
        let mut inj = FailureInjector::new(FailureSchedule::Stochastic {
            per_node_probability_per_sec: 1.0,
            seed: 1,
        });
        assert!(inj.poll(SimInstant::EPOCH, &nodes(5)).is_empty());
    }

    #[test]
    fn annual_rate_conversion_is_tiny_per_second() {
        if let FailureSchedule::Stochastic {
            per_node_probability_per_sec,
            ..
        } = FailureSchedule::from_annual_rate(0.03, 1)
        {
            assert!(per_node_probability_per_sec > 0.0);
            assert!(per_node_probability_per_sec < 1e-8);
        } else {
            panic!("expected stochastic schedule");
        }
    }

    #[test]
    fn fault_log_merges_and_dedups_events() {
        let ev = FailureEvent {
            node: NodeId(1),
            at: SimInstant::EPOCH + SimDuration::from_secs(1),
        };
        let mut a = FaultLog::default();
        assert!(a.is_empty());
        a.record_events(&[ev]);
        a.task_retries = 2;
        let mut b = FaultLog {
            events: vec![ev],
            splits_lost: 3,
            backoff: SimDuration::from_millis(10),
            ..FaultLog::default()
        };
        b.merge(&a);
        assert_eq!(b.events, vec![ev], "duplicate events collapse");
        assert_eq!(b.task_retries, 2);
        assert_eq!(b.splits_lost, 3);
        assert_eq!(b.backoff, SimDuration::from_millis(10));
        assert!(!b.is_empty());
    }
}
