//! Node-failure injection.
//!
//! §3.4 of the EARL paper argues that when an approximate answer is acceptable,
//! node failures need not trigger task restarts: the surviving sample still
//! yields a result with a quantified error.  To reproduce those experiments the
//! cluster supports two kinds of failure schedules:
//!
//! * **Deterministic** — "fail node 3 at t = 10 s" (used by integration tests
//!   so outcomes are exactly reproducible), and
//! * **Stochastic** — an annualised disk-failure rate in the spirit of the
//!   Schroeder & Gibson numbers cited by the paper (≈3 % of disks per year),
//!   driven by a seeded RNG.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::clock::SimInstant;
use crate::node::NodeId;

#[cfg(test)]
use crate::clock::SimDuration;

/// A single scheduled failure event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FailureEvent {
    /// The node that fails.
    pub node: NodeId,
    /// The simulated instant at which it fails.
    pub at: SimInstant,
}

/// A failure schedule: either a fixed list of events or a stochastic rate.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum FailureSchedule {
    /// No failures ever occur.
    None,
    /// The given events occur at their scheduled times.
    Deterministic(Vec<FailureEvent>),
    /// Each available node fails independently with probability
    /// `per_node_probability_per_sec` per simulated second.
    Stochastic {
        /// Per-node failure probability per simulated second.
        per_node_probability_per_sec: f64,
        /// RNG seed so runs are reproducible.
        seed: u64,
    },
}

impl FailureSchedule {
    /// Builds a stochastic schedule from an annualised failure rate (e.g. 0.03
    /// for the "3 % of disks fail per year" figure the paper cites).
    pub fn from_annual_rate(annual_rate: f64, seed: u64) -> Self {
        const SECONDS_PER_YEAR: f64 = 365.25 * 24.0 * 3600.0;
        FailureSchedule::Stochastic {
            per_node_probability_per_sec: (annual_rate.max(0.0)) / SECONDS_PER_YEAR,
            seed,
        }
    }
}

/// Stateful injector that decides which nodes fail as simulated time advances.
#[derive(Debug)]
pub struct FailureInjector {
    schedule: FailureSchedule,
    rng: StdRng,
    last_checked: SimInstant,
    fired: Vec<FailureEvent>,
}

impl FailureInjector {
    /// Creates an injector for the given schedule.
    pub fn new(schedule: FailureSchedule) -> Self {
        let seed = match &schedule {
            FailureSchedule::Stochastic { seed, .. } => *seed,
            _ => 0,
        };
        Self {
            schedule,
            rng: StdRng::seed_from_u64(seed),
            last_checked: SimInstant::EPOCH,
            fired: Vec::new(),
        }
    }

    /// Creates an injector that never fails anything.
    pub fn none() -> Self {
        Self::new(FailureSchedule::None)
    }

    /// Advances the injector to `now` and returns the nodes (among
    /// `available_nodes`) that fail in the interval `(last_checked, now]`.
    pub fn poll(&mut self, now: SimInstant, available_nodes: &[NodeId]) -> Vec<NodeId> {
        let window_start = self.last_checked;
        self.last_checked = now;
        match &self.schedule {
            FailureSchedule::None => Vec::new(),
            FailureSchedule::Deterministic(events) => {
                let mut failed = Vec::new();
                for ev in events {
                    let already = self.fired.iter().any(|f| f == ev);
                    if !already && ev.at > window_start && ev.at <= now {
                        if available_nodes.contains(&ev.node) {
                            failed.push(ev.node);
                        }
                        self.fired.push(*ev);
                    }
                }
                failed
            }
            FailureSchedule::Stochastic {
                per_node_probability_per_sec,
                ..
            } => {
                let window = now.duration_since(window_start);
                let secs = window.as_secs_f64();
                if secs <= 0.0 {
                    return Vec::new();
                }
                // P(survive window) = (1 - p)^secs; fail otherwise.
                let p_window = 1.0 - (1.0 - per_node_probability_per_sec).powf(secs);
                let mut failed = Vec::new();
                for &node in available_nodes {
                    if self.rng.gen::<f64>() < p_window {
                        failed.push(node);
                        self.fired.push(FailureEvent { node, at: now });
                    }
                }
                failed
            }
        }
    }

    /// Whether this injector can still fail nodes in the future.  `false`
    /// guarantees no failure will ever fire again — the condition under which
    /// the MapReduce engine may run tasks concurrently without losing the
    /// deterministic failure semantics of the sequential schedule.
    pub fn may_fail(&self) -> bool {
        match &self.schedule {
            FailureSchedule::None => false,
            FailureSchedule::Deterministic(events) => {
                events.iter().any(|ev| !self.fired.iter().any(|f| f == ev))
            }
            FailureSchedule::Stochastic {
                per_node_probability_per_sec,
                ..
            } => *per_node_probability_per_sec > 0.0,
        }
    }

    /// All failure events that have fired so far.
    pub fn fired_events(&self) -> &[FailureEvent] {
        &self.fired
    }

    /// The schedule driving this injector.
    pub fn schedule(&self) -> &FailureSchedule {
        &self.schedule
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nodes(n: u32) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    #[test]
    fn none_schedule_never_fails() {
        let mut inj = FailureInjector::none();
        let failed = inj.poll(SimInstant::EPOCH + SimDuration::from_secs(1_000), &nodes(5));
        assert!(failed.is_empty());
        assert!(inj.fired_events().is_empty());
    }

    #[test]
    fn deterministic_schedule_fires_once_in_window() {
        let ev = FailureEvent {
            node: NodeId(2),
            at: SimInstant::EPOCH + SimDuration::from_secs(10),
        };
        let mut inj = FailureInjector::new(FailureSchedule::Deterministic(vec![ev]));
        // before the event: nothing
        assert!(inj
            .poll(SimInstant::EPOCH + SimDuration::from_secs(5), &nodes(5))
            .is_empty());
        // window containing the event: node 2 fails
        let failed = inj.poll(SimInstant::EPOCH + SimDuration::from_secs(15), &nodes(5));
        assert_eq!(failed, vec![NodeId(2)]);
        // later polls do not re-fire
        assert!(inj
            .poll(SimInstant::EPOCH + SimDuration::from_secs(30), &nodes(5))
            .is_empty());
        assert_eq!(inj.fired_events().len(), 1);
    }

    #[test]
    fn deterministic_event_on_unavailable_node_is_consumed_silently() {
        let ev = FailureEvent {
            node: NodeId(9),
            at: SimInstant::EPOCH + SimDuration::from_secs(1),
        };
        let mut inj = FailureInjector::new(FailureSchedule::Deterministic(vec![ev]));
        let failed = inj.poll(SimInstant::EPOCH + SimDuration::from_secs(2), &nodes(3));
        assert!(failed.is_empty());
        assert_eq!(
            inj.fired_events().len(),
            1,
            "event is consumed even if node already gone"
        );
    }

    #[test]
    fn stochastic_high_rate_fails_quickly_and_is_deterministic_per_seed() {
        let schedule = FailureSchedule::Stochastic {
            per_node_probability_per_sec: 0.5,
            seed: 7,
        };
        let mut a = FailureInjector::new(schedule.clone());
        let mut b = FailureInjector::new(schedule);
        let t = SimInstant::EPOCH + SimDuration::from_secs(10);
        let fa = a.poll(t, &nodes(20));
        let fb = b.poll(t, &nodes(20));
        assert_eq!(fa, fb, "same seed must produce the same failures");
        assert!(
            !fa.is_empty(),
            "with p=0.5/s over 10s nearly every node should fail"
        );
    }

    #[test]
    fn stochastic_zero_window_fails_nothing() {
        let mut inj = FailureInjector::new(FailureSchedule::Stochastic {
            per_node_probability_per_sec: 1.0,
            seed: 1,
        });
        assert!(inj.poll(SimInstant::EPOCH, &nodes(5)).is_empty());
    }

    #[test]
    fn annual_rate_conversion_is_tiny_per_second() {
        if let FailureSchedule::Stochastic {
            per_node_probability_per_sec,
            ..
        } = FailureSchedule::from_annual_rate(0.03, 1)
        {
            assert!(per_node_probability_per_sec > 0.0);
            assert!(per_node_probability_per_sec < 1e-8);
        } else {
            panic!("expected stochastic schedule");
        }
    }
}
