//! # earl-core — the Early Accurate Result Library
//!
//! A from-scratch Rust reproduction of **EARL** (Laptev, Zeng, Zaniolo.
//! *Early Accurate Results for Advanced Analytics on MapReduce*, VLDB 2012):
//! a non-parametric extension of a MapReduce system that returns early
//! approximate results for arbitrary analytical jobs together with reliable,
//! bootstrap-based error estimates.
//!
//! ## How it works (paper §2–§4)
//!
//! 1. A uniform sample `s` of `n` records (`n ≪ N`) is drawn from the input
//!    using pre-map or post-map sampling ([`earl_sampling`]).
//! 2. The user's job is evaluated on `s` and on `B` bootstrap resamples of `s`,
//!    producing a *result distribution* ([`earl_bootstrap`]).
//! 3. The Accuracy Estimation Stage ([`aes`]) derives the coefficient of
//!    variation (cv) of that distribution.  If it exceeds the user's error
//!    bound σ, the sample is expanded by Δs and the process repeats — reusing
//!    previous work through delta maintenance.
//! 4. `B` and `n` are not guessed: they are estimated empirically by the SSABE
//!    procedure on a small pilot sample, and EARL falls back to exact execution
//!    whenever `B·n ≥ N`.
//!
//! ## Entry points
//!
//! * [`EarlDriver`] — run any [`EarlTask`] (mean, sum, median, quantiles,
//!   variance, count, or your own) with an error bound.
//! * [`tasks::kmeans`] — approximate K-Means (the paper's advanced-mining
//!   example, Fig. 7) plus the exact MapReduce baseline.
//! * [`fault`] — approximate completion despite node failures (§3.4).
//!
//! ```
//! use earl_cluster::Cluster;
//! use earl_dfs::{Dfs, DfsConfig};
//! use earl_core::{EarlConfig, EarlDriver, tasks::MeanTask};
//!
//! // A 5-node simulated cluster with a small file of numbers.
//! let dfs = Dfs::new(Cluster::with_nodes(5), DfsConfig::small_blocks(4096)).unwrap();
//! dfs.write_lines("/numbers", (0..20_000).map(|i| format!("{}", i % 1000))).unwrap();
//!
//! let driver = EarlDriver::new(dfs, EarlConfig { sigma: 0.05, ..EarlConfig::default() });
//! let report = driver.run("/numbers", &MeanTask).unwrap();
//! assert!(report.error_estimate <= 0.05 + 1e-9);
//! assert!(report.sample_fraction <= 1.0);
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod aes;
pub mod config;
pub mod driver;
pub mod error;
pub mod fault;
pub mod grouped;
pub mod progress;
pub mod report;
pub mod task;
pub mod tasks;

pub use aes::{AccuracyEstimationStage, AesReport};
pub use config::{EarlConfig, SamplingMethod};
pub use driver::EarlDriver;
pub use error::EarlError;
pub use grouped::{GroupReport, GroupedAggregate, GroupedEarlReport, GroupedStat};
pub use progress::{EarlUpdate, Progress};
pub use report::EarlReport;
pub use task::{EarlTask, TaskEstimator};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, EarlError>;
