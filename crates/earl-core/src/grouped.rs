//! Grouped per-key EARL workloads: per-group aggregates with per-group error
//! bounds.
//!
//! The scalar [`EarlTask`] interface computes **one**
//! statistic over all extracted values.  Real analytics queries group first
//! (`SELECT key, AVG(value) … GROUP BY key`); this module opens that workload
//! for EARL:
//!
//! * [`GroupedAggregate`] extracts `(key, value)` pairs from `key<TAB>value`
//!   lines and evaluates one of [`GroupedStat`] per group;
//! * the MapReduce job runs with **string keys over multiple reducers**, so the
//!   map-side streaming shuffle genuinely routes groups to shards;
//! * the accuracy-estimation stage runs **one bootstrap per group**, each on
//!   its own deterministic RNG stream — [`group_seed`] derives the stream from
//!   `(config.seed, key)` alone, so a group's replicate sequence is identical
//!   no matter which other groups exist, how the sample grew, or how many
//!   worker threads run (pin: `tests/grouped_workloads.rs`);
//! * linear per-group statistics (all three of [`GroupedStat`]) run on the
//!   resample-free count-based kernel under [`BootstrapKernel::Auto`], exactly
//!   like their scalar counterparts.
//!
//! The iterative loop mirrors the scalar driver — sample → grouped job → per-
//! group AES → expand — and terminates when **every** group's cv meets σ.

use std::collections::BTreeMap;

use earl_bootstrap::bootstrap::{
    bootstrap_distribution, BootstrapConfig, BootstrapResult, LinearSections, ResolvedKernel,
};
use earl_bootstrap::rng::derive_seed;
use earl_bootstrap::BootstrapKernel;
use earl_cluster::{Phase, SimDuration};
use earl_dfs::DfsPath;
use earl_mapreduce::{
    ErrorReport, InputSource, JobConf, MapContext, Mapper, PipelinedSession, ReduceContext, Reducer,
};
use serde::{Deserialize, Serialize};

use crate::config::SamplingMethod;
use crate::driver::EarlDriver;
use crate::error::EarlError;
use crate::task::{EarlTask, TaskEstimator};
use crate::tasks::{CountTask, MeanTask, SumTask, WeightedMeanTask};
use crate::Result;
use earl_sampling::{PostMapSampler, PreMapSampler, SampleSource};

/// Sub-seed stream of the grouped accuracy-estimation stage (disjoint from the
/// scalar driver's SSABE/delta/fresh streams).
const GROUPED_STREAM: u64 = 32;

/// Bootstraps per group when neither the config nor SSABE supplies a count.
/// (SSABE's `B`-search targets one scalar statistic; running it per group
/// would cost more than the bootstraps it saves, so the grouped driver uses a
/// fixed default instead.)
const DEFAULT_GROUPED_BOOTSTRAPS: usize = 100;

/// A group observed with fewer records than this never counts as converged,
/// whatever its bootstrap cv says: a handful of (or identical) values
/// bootstraps to cv ≈ 0 while the real estimation error is unbounded, so the
/// loop keeps expanding until every observed group clears the floor (or the
/// data is exhausted / the run degenerates to exact).
pub const MIN_GROUP_SAMPLE: usize = 30;

/// The per-group statistic of a [`GroupedAggregate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GroupedStat {
    /// Per-group arithmetic mean (scale-free, no correction).
    Mean,
    /// Per-group sum, corrected by `1/p`.
    Sum,
    /// Per-group record count, corrected by `1/p`.
    Count,
    /// Per-group weighted mean `Σwx / Σw` over `key<TAB>value<TAB>weight`
    /// lines (scale-free: both sums shrink by the same `p`).  A k-ary linear
    /// statistic — its per-group bootstraps run resample-free under `Auto`,
    /// and every kernel resamples whole `(value, weight)` records.
    WeightedMean,
}

/// The deterministic RNG seed of one group's accuracy-estimation bootstrap:
/// a function of `(seed, key)` only.  FNV-1a folds the key bytes into the
/// `GROUPED_STREAM` sub-seed space, so every group gets an independent
/// `(group_seed, replicate)` stream — the same stream a standalone
/// [`bootstrap_distribution`] call over that group's values would consume.
pub fn group_seed(seed: u64, key: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in key.bytes() {
        h = (h ^ u64::from(byte)).wrapping_mul(0x0000_0100_0000_01B3);
    }
    derive_seed(derive_seed(seed, GROUPED_STREAM), h)
}

/// A grouped per-key aggregate workload: `SELECT key, stat(value) GROUP BY
/// key` over `key<TAB>value` lines, with a bootstrap error bound per group.
#[derive(Debug, Clone, Copy)]
pub struct GroupedAggregate {
    stat: GroupedStat,
}

impl GroupedAggregate {
    /// A grouped aggregate computing `stat` per group.
    pub fn new(stat: GroupedStat) -> Self {
        Self { stat }
    }

    /// Per-group mean.
    pub fn mean() -> Self {
        Self::new(GroupedStat::Mean)
    }

    /// Per-group sum.
    pub fn sum() -> Self {
        Self::new(GroupedStat::Sum)
    }

    /// Per-group count.
    pub fn count() -> Self {
        Self::new(GroupedStat::Count)
    }

    /// Per-group weighted mean over `key<TAB>value<TAB>weight` lines.
    pub fn weighted_mean() -> Self {
        Self::new(GroupedStat::WeightedMean)
    }

    /// The statistic computed per group.
    pub fn stat(&self) -> GroupedStat {
        self.stat
    }

    /// Task name used in reports and job names.
    pub fn name(&self) -> &'static str {
        match self.stat {
            GroupedStat::Mean => "grouped-mean",
            GroupedStat::Sum => "grouped-sum",
            GroupedStat::Count => "grouped-count",
            GroupedStat::WeightedMean => "grouped-weighted-mean",
        }
    }

    /// Values per record in a group's flat value buffer: 1 for the scalar
    /// statistics, 2 (`value`, `weight` interleaved) for the weighted mean.
    pub fn value_stride(&self) -> usize {
        match self.stat {
            GroupedStat::WeightedMean => 2,
            _ => 1,
        }
    }

    /// Parses one `key<TAB>value` line into its `(key, value)` pair, or `None`
    /// for lines without a key or (except for `Count`) without a parsable
    /// numeric value.  `Count` only needs the key: every keyed record counts
    /// as `1.0`.  For the weighted mean (a two-column record) this returns the
    /// *value* column only — use [`extract_record`](Self::extract_record),
    /// which every engine path does, to get the full record.
    pub fn extract(&self, line: &str) -> Option<(String, f64)> {
        let (key, record) = self.extract_record(line)?;
        Some((key, record.values()[0]))
    }

    /// Parses one line into its key and full record (`value_stride()`
    /// components, all-or-nothing).  `key<TAB>value` for the scalar
    /// statistics, `key<TAB>value<TAB>weight` for the weighted mean.
    pub fn extract_record(&self, line: &str) -> Option<(String, GroupedRecord)> {
        let (key, rest) = line.split_once('\t')?;
        if key.is_empty() {
            return None;
        }
        let record = match self.stat {
            GroupedStat::Count => GroupedRecord::scalar(1.0),
            GroupedStat::WeightedMean => {
                let mut fields = rest.rsplit('\t');
                let weight: f64 = fields.next()?.trim().parse().ok()?;
                let value: f64 = fields.next()?.trim().parse().ok()?;
                GroupedRecord::pair(value, weight)
            }
            _ => GroupedRecord::scalar(rest.rsplit('\t').next()?.trim().parse().ok()?),
        };
        Some((key.to_owned(), record))
    }

    /// Evaluates the statistic over one group's (flat, possibly interleaved)
    /// values.
    pub fn evaluate(&self, values: &[f64]) -> f64 {
        match self.stat {
            GroupedStat::Mean => MeanTask.evaluate(values),
            GroupedStat::Sum => SumTask.evaluate(values),
            GroupedStat::Count => CountTask.evaluate(values),
            GroupedStat::WeightedMean => WeightedMeanTask.evaluate(values),
        }
    }

    /// Corrects a per-group result computed from a fraction `p` of the data —
    /// the same `correct()` semantics as the scalar tasks (mean and weighted
    /// mean are scale-free, sum and count scale by `1/p`).
    pub fn correct(&self, result: f64, p: f64) -> f64 {
        match self.stat {
            GroupedStat::Mean => MeanTask.correct(result, p),
            GroupedStat::Sum => SumTask.correct(result, p),
            GroupedStat::Count => CountTask.correct(result, p),
            GroupedStat::WeightedMean => WeightedMeanTask.correct(result, p),
        }
    }

    /// Runs the statistic's bootstrap over one group's values.  All four
    /// statistics declare a (unary or k-ary) linear form, so
    /// `BootstrapKernel::Auto` resolves them to the resample-free count-based
    /// kernel.
    pub fn bootstrap_group(
        &self,
        seed: u64,
        values: &[f64],
        config: &BootstrapConfig,
    ) -> Result<BootstrapResult> {
        match self.stat {
            GroupedStat::Mean => {
                bootstrap_distribution(seed, values, &TaskEstimator::new(&MeanTask), config)
            }
            GroupedStat::Sum => {
                bootstrap_distribution(seed, values, &TaskEstimator::new(&SumTask), config)
            }
            GroupedStat::Count => {
                bootstrap_distribution(seed, values, &TaskEstimator::new(&CountTask), config)
            }
            GroupedStat::WeightedMean => {
                bootstrap_distribution(seed, values, &TaskEstimator::new(&WeightedMeanTask), config)
            }
        }
        .map_err(EarlError::Stats)
    }

    /// The kernel the statistic's AES resolves to under `kernel` — used for
    /// deterministic work accounting (all four statistics resolve `Auto` to
    /// `CountBased`).
    pub fn resolved_kernel(&self, kernel: BootstrapKernel) -> ResolvedKernel {
        match self.stat {
            GroupedStat::Mean => kernel.resolve_for(&TaskEstimator::new(&MeanTask)),
            GroupedStat::Sum => kernel.resolve_for(&TaskEstimator::new(&SumTask)),
            GroupedStat::Count => kernel.resolve_for(&TaskEstimator::new(&CountTask)),
            GroupedStat::WeightedMean => kernel.resolve_for(&TaskEstimator::new(&WeightedMeanTask)),
        }
    }
}

/// One extracted grouped record: up to two value components (the weighted
/// mean's `(value, weight)` pair), pushed into the group's flat buffer in
/// order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroupedRecord {
    buf: [f64; 2],
    len: usize,
}

impl GroupedRecord {
    fn scalar(value: f64) -> Self {
        Self {
            buf: [value, 0.0],
            len: 1,
        }
    }

    fn pair(value: f64, weight: f64) -> Self {
        Self {
            buf: [value, weight],
            len: 2,
        }
    }

    /// The record's components, in emission order.
    pub fn values(&self) -> &[f64] {
        &self.buf[..self.len]
    }
}

/// A [`Mapper`] emitting `(key, value)` pairs for a [`GroupedAggregate`] —
/// string keys over multiple reducers, the shape the map-side streaming
/// shuffle shards.
pub struct GroupedTaskMapper<'a> {
    agg: &'a GroupedAggregate,
}

impl<'a> GroupedTaskMapper<'a> {
    /// Wraps an aggregate.
    pub fn new(agg: &'a GroupedAggregate) -> Self {
        Self { agg }
    }
}

impl Mapper for GroupedTaskMapper<'_> {
    type OutKey = String;
    type OutValue = f64;
    fn map(&self, _offset: u64, line: &str, ctx: &mut MapContext<String, f64>) {
        if let Some((key, record)) = self.agg.extract_record(line) {
            // Multi-column records emit every component in order under the
            // same key; per-key emission order survives the shuffle, so the
            // reducer sees whole records back to back.
            let components = record.values();
            for value in &components[..components.len() - 1] {
                ctx.emit(key.clone(), *value);
            }
            ctx.emit(key, components[components.len() - 1]);
        }
    }
}

/// A [`Reducer`] evaluating a [`GroupedAggregate`] per key, emitting
/// `(key, statistic)` output records.
pub struct GroupedTaskReducer<'a> {
    agg: &'a GroupedAggregate,
}

impl<'a> GroupedTaskReducer<'a> {
    /// Wraps an aggregate.
    pub fn new(agg: &'a GroupedAggregate) -> Self {
        Self { agg }
    }
}

impl Reducer for GroupedTaskReducer<'_> {
    type InKey = String;
    type InValue = f64;
    type Output = (String, f64);
    fn reduce(&self, key: &String, values: &[f64], ctx: &mut ReduceContext<(String, f64)>) {
        ctx.emit((key.clone(), self.agg.evaluate(values)));
    }
}

/// Runs one bootstrap per group over `groups` (sorted key order), each on its
/// own [`group_seed`] RNG stream.  This is **the** per-group accuracy stage
/// the grouped driver executes — exposed so the equivalence suite can replay
/// any single group through a standalone [`bootstrap_distribution`] call and
/// demand bitwise-identical results.
pub fn grouped_accuracy(
    seed: u64,
    groups: &BTreeMap<String, Vec<f64>>,
    agg: &GroupedAggregate,
    config: &BootstrapConfig,
) -> Result<Vec<(String, BootstrapResult)>> {
    groups
        .iter()
        .map(|(key, values)| {
            let result = agg.bootstrap_group(group_seed(seed, key), values, config)?;
            Ok((key.clone(), result))
        })
        .collect()
}

/// The report of one group inside a [`GroupedEarlReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupReport {
    /// The group key.
    pub key: String,
    /// The corrected per-group result.
    pub result: f64,
    /// The result before `correct()` was applied.
    pub uncorrected_result: f64,
    /// cv of the group's bootstrap result distribution (0 when exact).
    pub error_estimate: f64,
    /// 95 % percentile confidence interval (corrected).
    pub ci_low: f64,
    /// Upper end of the interval.
    pub ci_high: f64,
    /// Sampled records contributing to this group.
    pub sample_size: u64,
}

/// The report of a grouped EARL run: one entry per group plus the run-level
/// accounting of the scalar [`EarlReport`](crate::report::EarlReport).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupedEarlReport {
    /// Name of the grouped task.
    pub task: String,
    /// Per-group results in sorted key order.
    pub groups: Vec<GroupReport>,
    /// The error bound σ each group must satisfy.
    pub target_sigma: f64,
    /// Total records in the final sample (across all groups).
    pub sample_size: u64,
    /// Records in the full data set.
    pub population: u64,
    /// `drawn / population` — the `p` used for result correction.
    pub sample_fraction: f64,
    /// Bootstraps per group.
    pub bootstraps: usize,
    /// Sample-expansion iterations performed.
    pub iterations: usize,
    /// Whether the run degenerated to exact evaluation of the whole data set.
    pub exact: bool,
    /// Simulated processing time of the whole run.
    pub sim_time: SimDuration,
    /// Bytes read from the DFS during the run.
    pub bytes_read: u64,
}

impl GroupedEarlReport {
    /// Whether **every** group's error estimate satisfies the bound — with at
    /// least [`MIN_GROUP_SAMPLE`] records behind it (a near-empty group's
    /// cv ≈ 0 is an artifact, not accuracy).  Exact runs trivially qualify.
    pub fn meets_bound(&self) -> bool {
        self.exact
            || self.groups.iter().all(|g| {
                g.sample_size >= MIN_GROUP_SAMPLE as u64
                    && g.error_estimate.is_finite()
                    && g.error_estimate <= self.target_sigma + 1e-12
            })
    }

    /// The report of one group, if present.
    pub fn group(&self, key: &str) -> Option<&GroupReport> {
        self.groups.iter().find(|g| g.key == key)
    }

    /// The largest per-group cv (`NAN`-free groups only; `INFINITY` if any
    /// group's cv is not finite).
    pub fn worst_cv(&self) -> f64 {
        self.groups
            .iter()
            .map(|g| {
                if g.error_estimate.is_finite() {
                    g.error_estimate
                } else {
                    f64::INFINITY
                }
            })
            .fold(0.0, f64::max)
    }
}

impl std::fmt::Display for GroupedEarlReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "EARL grouped report for `{}`: {} group(s), σ = {:.4}{}",
            self.task,
            self.groups.len(),
            self.target_sigma,
            if self.exact { " (exact)" } else { "" }
        )?;
        for g in &self.groups {
            writeln!(
                f,
                "  {:<12} {:>14.6}  cv {:.4}  95% CI [{:.4}, {:.4}]  n = {}",
                g.key, g.result, g.error_estimate, g.ci_low, g.ci_high, g.sample_size
            )?;
        }
        writeln!(
            f,
            "  sample {} of {} records ({:.3}%) in {} iteration(s), B = {} per group",
            self.sample_size,
            self.population,
            self.sample_fraction * 100.0,
            self.iterations,
            self.bootstraps
        )?;
        writeln!(f, "  simulated time: {}", self.sim_time)
    }
}

enum GroupedSampler {
    Pre(PreMapSampler),
    Post(PostMapSampler),
}

impl GroupedSampler {
    fn draw(&mut self, count: usize) -> Result<earl_sampling::SampleBatch> {
        Ok(match self {
            GroupedSampler::Pre(s) => s.draw(count)?,
            GroupedSampler::Post(s) => s.draw(count)?,
        })
    }

    fn drawn(&self) -> u64 {
        match self {
            GroupedSampler::Pre(s) => s.drawn(),
            GroupedSampler::Post(s) => s.drawn(),
        }
    }
}

impl EarlDriver {
    /// Runs a grouped per-key aggregate over `path` with early approximation:
    /// the sample expands until **every** group's bootstrap cv meets σ.
    ///
    /// Differences from the scalar [`run`](Self::run): `B` comes from
    /// `config.bootstraps` (default 100 per group — SSABE's scalar `B`-search
    /// does not transfer to many groups), the accuracy stage runs one
    /// bootstrap per group, each on the deterministic [`group_seed`] stream,
    /// and the loop always follows the **sequential schedule**
    /// (`pipeline_depth` is ignored here: the per-group AES has no single
    /// speculative iteration to cancel yet — see ROADMAP).  Returns
    /// [`EarlError::GroupedAccuracyNotReached`] carrying the partial report
    /// when some group cannot meet the bound within the iteration budget.
    ///
    /// Caveats inherent to sampling by record: the report covers **observed**
    /// groups only (a key never drawn cannot appear), and a group counts as
    /// converged only once at least [`MIN_GROUP_SAMPLE`] of its records are in
    /// the sample — a one-record group bootstraps to cv = 0 while its real
    /// error is unbounded.
    pub fn run_grouped(
        &self,
        path: impl Into<DfsPath>,
        agg: &GroupedAggregate,
    ) -> Result<GroupedEarlReport> {
        let config = self.config();
        config.validate()?;
        let path = path.into();
        let dfs = self.dfs().clone();
        let status = dfs.status(path.clone())?;
        let population = status.num_records.unwrap_or(0);
        if population == 0 {
            return Err(EarlError::NoUsableRecords);
        }
        let cluster = dfs.cluster().clone();
        let start_time = cluster.elapsed();
        let start_bytes = cluster.metrics().snapshot().total_disk_bytes_read();

        let mut sampler = match config.sampling {
            SamplingMethod::PreMap => {
                GroupedSampler::Pre(PreMapSampler::new(dfs.clone(), path.clone(), config.seed)?)
            }
            SamplingMethod::PostMap => {
                GroupedSampler::Post(PostMapSampler::new(dfs.clone(), path.clone(), config.seed)?)
            }
        };

        // ---- pilot -----------------------------------------------------------
        let pilot_target = ((population as f64 * config.pilot_fraction).ceil() as u64)
            .max(config.min_pilot)
            .min(population) as usize;
        let pilot = sampler.draw(pilot_target)?;
        let mut records: Vec<(u64, String)> = pilot.records;
        // Group buffers are flat interleaved samples: `stride` consecutive
        // values per record (1 for the scalar stats, 2 for the weighted mean).
        let stride = agg.value_stride();
        let mut groups: BTreeMap<String, Vec<f64>> = BTreeMap::new();
        let extend_groups = |groups: &mut BTreeMap<String, Vec<f64>>, batch: &[(u64, String)]| {
            for (_, line) in batch {
                if let Some((key, record)) = agg.extract_record(line) {
                    groups.entry(key).or_default().extend(record.values());
                }
            }
        };
        extend_groups(&mut groups, &records);
        if groups.is_empty() {
            return Err(EarlError::NoUsableRecords);
        }

        let bootstraps = config.bootstraps.unwrap_or(DEFAULT_GROUPED_BOOTSTRAPS);
        let bcfg = BootstrapConfig::with_resamples(bootstraps)
            .with_parallelism(config.parallelism)
            .with_kernel(config.bootstrap_kernel);
        let aes = crate::aes::AccuracyEstimationStage::new(config.sigma);
        let resolved = agg.resolved_kernel(config.bootstrap_kernel);
        let mapper = GroupedTaskMapper::new(agg);
        let reducer = GroupedTaskReducer::new(agg);
        let mut session = PipelinedSession::new(dfs.clone());
        let feedback = session.feedback();

        let mut target_n = config
            .sample_size
            .unwrap_or(records.len() as u64)
            .min(population)
            .max(1);
        let mut iterations = 0usize;
        let mut exhausted = false;
        let mut exact = false;
        let mut engine_results: BTreeMap<String, f64> = BTreeMap::new();
        let mut group_bootstraps: Vec<(String, BootstrapResult)> = Vec::new();

        while iterations < config.max_iterations {
            iterations += 1;

            // Expand the sample up to the current target.
            let needed = target_n.saturating_sub(records.len() as u64) as usize;
            if needed > 0 {
                let batch = sampler.draw(needed)?;
                if batch.is_empty() {
                    exhausted = true;
                } else {
                    extend_groups(&mut groups, &batch.records);
                    records.extend(batch.records);
                }
            }

            // Run the grouped job through the engine: string keys, multiple
            // reducers — the map-side streaming shuffle routes each group's
            // pairs to its shard.  The reducer count depends only on the data
            // (never on the thread count), keeping results thread-invariant.
            let conf = JobConf::new(
                format!("earl-{}", agg.name()),
                InputSource::Memory(records.clone()),
            )
            .with_reducers(groups.len().clamp(1, 8))
            .with_failure_policy(config.failure_policy)
            .with_parallelism(config.parallelism);
            let job = session.run_iteration(&conf, &mapper, &reducer)?;
            engine_results = job.outputs.into_iter().collect();

            // ---- per-group accuracy estimation ------------------------------
            group_bootstraps = grouped_accuracy(config.seed, &groups, agg, &bcfg)?;
            let aes_records: u64 = groups
                .values()
                .map(|values| {
                    let n = values.len() / stride;
                    match resolved {
                        ResolvedKernel::CountBased => {
                            (n + bootstraps * LinearSections::section_count(n)) as u64
                        }
                        _ => (bootstraps * n) as u64,
                    }
                })
                .sum();
            cluster.charge_reduce_cpu(Phase::AccuracyEstimation, aes_records, false);

            // The worst per-group cv is posted on the reducer→mapper channel —
            // the §3.3 termination signal, observable via
            // `session.latest_error()` (this sequential loop, like the scalar
            // driver's sequential schedule, applies the bound predicate
            // directly below rather than reading the channel back).
            let worst = group_bootstraps
                .iter()
                .map(|(_, b)| {
                    if b.cv.is_finite() {
                        b.cv
                    } else {
                        f64::INFINITY
                    }
                })
                .fold(0.0, f64::max);
            feedback.post(ErrorReport {
                reducer: 0,
                error: worst,
                timestamp: cluster.now(),
            });

            if records.len() as u64 >= population {
                exact = true;
                break;
            }
            // A group converges only with a usable sample behind it: tiny
            // groups report cv ≈ 0 (identical replicates) while their real
            // error is unbounded.
            let all_met = group_bootstraps.iter().all(|(key, b)| {
                groups[key].len() / stride >= MIN_GROUP_SAMPLE && aes.meets_bound(b.cv)
            });
            if all_met || exhausted {
                break;
            }
            target_n =
                (((records.len() as f64) * config.expansion_factor).ceil() as u64).min(population);
        }

        // ---- report ----------------------------------------------------------
        let sampled_fraction = (sampler.drawn() as f64 / population as f64).clamp(0.0, 1.0);
        let group_reports: Vec<GroupReport> = group_bootstraps
            .iter()
            .map(|(key, bootstrap)| {
                // The engine's reduce output and the local evaluation are the
                // same function over the same values in the same order.
                let point = engine_results
                    .get(key)
                    .copied()
                    .unwrap_or(bootstrap.point_estimate);
                debug_assert_eq!(point.to_bits(), bootstrap.point_estimate.to_bits());
                let (lo, hi) = bootstrap.percentile_ci(0.05);
                let n = groups
                    .get(key)
                    .map(|v| (v.len() / stride) as u64)
                    .unwrap_or(0);
                if exact {
                    GroupReport {
                        key: key.clone(),
                        result: point,
                        uncorrected_result: point,
                        error_estimate: 0.0,
                        ci_low: point,
                        ci_high: point,
                        sample_size: n,
                    }
                } else {
                    GroupReport {
                        key: key.clone(),
                        result: agg.correct(point, sampled_fraction),
                        uncorrected_result: point,
                        error_estimate: bootstrap.cv,
                        ci_low: agg.correct(lo, sampled_fraction),
                        ci_high: agg.correct(hi, sampled_fraction),
                        sample_size: n,
                    }
                }
            })
            .collect();

        // A weighted group whose weights sum to zero has no defined statistic:
        // surface a typed error instead of a NaN result the caller would have
        // to sniff out of the report (the bound predicate would also wave an
        // exact run's NaN through).
        if agg.stat() == GroupedStat::WeightedMean {
            if let Some(g) = group_reports
                .iter()
                .find(|g| !g.uncorrected_result.is_finite())
            {
                return Err(EarlError::DegenerateGroupWeight(g.key.clone()));
            }
        }

        let report = GroupedEarlReport {
            task: agg.name().to_owned(),
            groups: group_reports,
            target_sigma: config.sigma,
            sample_size: records.len() as u64,
            population,
            sample_fraction: if exact { 1.0 } else { sampled_fraction },
            bootstraps,
            iterations,
            exact,
            sim_time: cluster.elapsed() - start_time,
            bytes_read: cluster.metrics().snapshot().total_disk_bytes_read() - start_bytes,
        };
        if report.meets_bound() {
            Ok(report)
        } else {
            Err(EarlError::GroupedAccuracyNotReached(Box::new(report)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extract_parses_keyed_lines() {
        let mean = GroupedAggregate::mean();
        assert_eq!(mean.extract("a\t2.5"), Some(("a".into(), 2.5)));
        assert_eq!(mean.extract("a\tx\t-1"), Some(("a".into(), -1.0)));
        assert_eq!(mean.extract("noseparator"), None);
        assert_eq!(mean.extract("\t3.0"), None, "empty key is unusable");
        assert_eq!(mean.extract("a\tnot-a-number"), None);
        let count = GroupedAggregate::count();
        assert_eq!(count.extract("a\twhatever"), Some(("a".into(), 1.0)));
    }

    #[test]
    fn evaluate_and_correct_dispatch_to_the_scalar_tasks() {
        let values = [1.0, 2.0, 3.0];
        assert_eq!(GroupedAggregate::mean().evaluate(&values), 2.0);
        assert_eq!(GroupedAggregate::sum().evaluate(&values), 6.0);
        assert_eq!(GroupedAggregate::count().evaluate(&values), 3.0);
        assert_eq!(GroupedAggregate::mean().correct(2.0, 0.1), 2.0);
        assert_eq!(GroupedAggregate::sum().correct(6.0, 0.1), 60.0);
        assert_eq!(GroupedAggregate::count().correct(3.0, 0.5), 6.0);
    }

    #[test]
    fn all_grouped_stats_resolve_auto_to_count_based() {
        for agg in [
            GroupedAggregate::mean(),
            GroupedAggregate::sum(),
            GroupedAggregate::count(),
        ] {
            assert_eq!(
                agg.resolved_kernel(BootstrapKernel::Auto),
                ResolvedKernel::CountBased,
                "{} must run resample-free under Auto",
                agg.name()
            );
        }
    }

    #[test]
    fn weighted_mean_extracts_value_weight_records() {
        let wm = GroupedAggregate::weighted_mean();
        assert_eq!(wm.value_stride(), 2);
        let (key, record) = wm.extract_record("a\t10.0\t2.0").unwrap();
        assert_eq!(key, "a");
        assert_eq!(record.values(), &[10.0, 2.0]);
        // Missing weight column → no record at all.
        assert_eq!(wm.extract_record("a\t10.0"), None);
        assert_eq!(wm.extract_record("a\tx\t2.0"), None);
        assert_eq!(wm.extract_record("\t1\t2"), None, "empty key is unusable");
        // Scalar extract surfaces the value column for compatibility.
        assert_eq!(wm.extract("a\t10.0\t2.0"), Some(("a".into(), 10.0)));
        // Scalar stats keep their stride and extraction unchanged.
        assert_eq!(GroupedAggregate::mean().value_stride(), 1);
        let (_, rec) = GroupedAggregate::mean().extract_record("a\t2.5").unwrap();
        assert_eq!(rec.values(), &[2.5]);
    }

    #[test]
    fn weighted_mean_evaluates_and_corrects() {
        let wm = GroupedAggregate::weighted_mean();
        // (10, w1), (20, w3): (10 + 60) / 4 = 17.5.
        let interleaved = [10.0, 1.0, 20.0, 3.0];
        assert_eq!(wm.evaluate(&interleaved), 17.5);
        assert_eq!(
            wm.correct(17.5, 0.01),
            17.5,
            "ratio statistics are scale-free"
        );
        assert!(
            wm.evaluate(&[5.0, 0.0]).is_nan(),
            "zero weight sum is undefined"
        );
        assert_eq!(
            wm.resolved_kernel(BootstrapKernel::Auto),
            ResolvedKernel::CountBased,
            "weighted mean must run resample-free under Auto"
        );
    }

    #[test]
    fn group_seed_is_a_pure_function_of_seed_and_key() {
        assert_eq!(group_seed(7, "alpha"), group_seed(7, "alpha"));
        assert_ne!(group_seed(7, "alpha"), group_seed(7, "beta"));
        assert_ne!(group_seed(7, "alpha"), group_seed(8, "alpha"));
    }

    #[test]
    fn grouped_accuracy_uses_one_stream_per_group() {
        let mut groups = BTreeMap::new();
        groups.insert("a".to_owned(), (1..=200).map(f64::from).collect::<Vec<_>>());
        groups.insert("b".to_owned(), (1..=300).map(f64::from).collect::<Vec<_>>());
        let agg = GroupedAggregate::mean();
        let cfg = BootstrapConfig::with_resamples(50);
        let all = grouped_accuracy(9, &groups, &agg, &cfg).unwrap();
        assert_eq!(all.len(), 2);
        // Each group reproduces bitwise as a standalone bootstrap on its own
        // (seed, replicate) stream — independent of the other groups.
        for (key, result) in &all {
            let standalone = agg
                .bootstrap_group(group_seed(9, key), &groups[key], &cfg)
                .unwrap();
            assert_eq!(result.replicates, standalone.replicates, "group {key}");
            assert_eq!(result.cv.to_bits(), standalone.cv.to_bits());
        }
        // Dropping a group changes nothing for the others.
        groups.remove("b");
        let only_a = grouped_accuracy(9, &groups, &agg, &cfg).unwrap();
        assert_eq!(only_a[0].1.replicates, all[0].1.replicates);
    }
}
