//! Progressive early-result delivery: per-iteration snapshots and cooperative
//! cancellation.
//!
//! The paper's whole point is *early* results — the error bound tightens
//! iteration by iteration, and a caller should see each improvement as it
//! lands rather than only the final report.  [`EarlUpdate`] is one such
//! snapshot, built from the same Accuracy Estimation Stage output the driver
//! uses for its stopping decision (so it costs no extra simulated work), and
//! handed to the observer passed to
//! [`EarlDriver::run_with_progress`](crate::EarlDriver::run_with_progress) at
//! every iteration boundary.
//!
//! The observer's return value doubles as the cancellation point: returning
//! [`Progress::Cancel`] stops the ladder *at that boundary* — never
//! mid-iteration — and the driver returns
//! [`EarlError::Cancelled`](crate::EarlError::Cancelled) carrying the partial
//! report for the work already committed.  Because both the snapshots and the
//! cancellation point are pure functions of the iteration ladder, a run that
//! records its observer's verdicts can be *replayed* bit-identically — the
//! contract `earl-serve`'s deterministic replay harness is built on.

use serde::{Deserialize, Serialize};

/// One progressive result snapshot, pushed to the observer after each EARL
/// iteration's Accuracy Estimation Stage.  Fields mirror the corresponding
/// [`EarlReport`](crate::EarlReport) fields at that point in the ladder.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EarlUpdate {
    /// 1-based index of the iteration this snapshot summarises.
    pub iteration: usize,
    /// Current estimate, bias-corrected for the sampling fraction.
    pub estimate: f64,
    /// Current estimate without the finite-population correction.
    pub uncorrected: f64,
    /// Coefficient of variation achieved so far (the paper's error measure).
    pub cv: f64,
    /// Lower bound of the 95% bootstrap percentile confidence interval.
    pub ci_low: f64,
    /// Upper bound of the 95% bootstrap percentile confidence interval.
    pub ci_high: f64,
    /// Records sampled so far.
    pub sample_size: u64,
    /// Fraction of the population committed so far, in `[0, 1]`.
    pub sample_fraction: f64,
    /// Bootstrap replicates behind this snapshot's error estimate.
    pub bootstraps: usize,
}

/// An observer's verdict at an iteration boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Progress {
    /// Keep iterating (the default — plain [`EarlDriver::run`] behaves as if
    /// every boundary answered this).
    ///
    /// [`EarlDriver::run`]: crate::EarlDriver::run
    #[default]
    Continue,
    /// Stop at this boundary: the driver abandons further expansion and
    /// returns [`EarlError::Cancelled`](crate::EarlError::Cancelled) with the
    /// partial report.  Snapshots whose bound is already met, or whose sample
    /// is exhausted, complete normally — cancellation never discards a result
    /// that is already final.
    Cancel,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn progress_defaults_to_continue() {
        assert_eq!(Progress::default(), Progress::Continue);
    }

    #[test]
    fn update_is_comparable_and_clonable() {
        let update = EarlUpdate {
            iteration: 2,
            estimate: 500.25,
            uncorrected: 499.75,
            cv: 0.031,
            ci_low: 480.0,
            ci_high: 520.0,
            sample_size: 4096,
            sample_fraction: 0.041,
            bootstraps: 100,
        };
        assert_eq!(update.clone(), update);
    }
}
