//! Fault-tolerant approximate completion (§3.4).
//!
//! Stock Hadoop reacts to node failures with data re-replication and task
//! restarts.  EARL's observation: if the user accepts an approximate answer,
//! the records that survive on live nodes *are* a sample, and the Accuracy
//! Estimation Stage can bound the error of the answer computed from them — no
//! restarts needed.  (The surviving data is a uniform sample of the input only
//! insofar as block placement is value-independent, which the DFS re-balancer
//! guarantees for the synthetic workloads used here; the same caveat applies to
//! the paper.)

use earl_bootstrap::bootstrap::{bootstrap_distribution, BootstrapConfig};
use earl_cluster::{FaultLog, Phase};
use earl_dfs::{Dfs, DfsPath};

use crate::config::EarlConfig;
use crate::error::EarlError;
use crate::report::EarlReport;
use crate::task::{EarlTask, TaskEstimator};
use crate::Result;

/// Computes `task` over whatever fraction of `path` is still readable after
/// node failures, and attaches a bootstrap error estimate to the result
/// instead of restarting anything.
pub fn run_despite_failures<T: EarlTask>(
    dfs: &Dfs,
    path: impl Into<DfsPath>,
    task: &T,
    config: &EarlConfig,
) -> Result<EarlReport> {
    config.validate()?;
    let path = path.into();
    let cluster = dfs.cluster().clone();
    let start_time = cluster.elapsed();
    let start_bytes = cluster.metrics().snapshot().total_disk_bytes_read();

    // Bring DFS metadata in sync with whatever has failed so far.
    dfs.reconcile_failures();
    let status = dfs.status(path.clone())?;
    let population = status.num_records.unwrap_or(0);
    if population == 0 {
        return Err(EarlError::NoUsableRecords);
    }

    // Read every split that still has a live replica; skip the rest.  The
    // surviving sample is extracted record by record (all-or-nothing), so
    // multi-column tasks keep whole records — `surviving` holds
    // `record_stride()` consecutive values per usable line.
    let stride = task.record_stride().max(1);
    let mut surviving: Vec<f64> = Vec::new();
    let mut lost_splits = 0usize;
    let splits = dfs.default_splits(path.clone())?;
    for split in splits {
        let mut reader = dfs.open_split(split, Phase::Load);
        match reader.read_all() {
            Ok(lines) => {
                for (_, line) in &lines {
                    task.extract_record(line, &mut surviving);
                }
            }
            Err(_) => lost_splits += 1,
        }
    }
    if surviving.is_empty() {
        return Err(EarlError::NoUsableRecords);
    }
    let surviving_records = (surviving.len() / stride) as u64;

    // Treat the surviving records as the sample and estimate the error.
    let p = (surviving_records as f64 / population as f64).clamp(0.0, 1.0);
    let bootstraps = config.bootstraps.unwrap_or(30).max(2);
    let estimator = TaskEstimator::new(task);
    let bootstrap_config = BootstrapConfig::with_resamples(bootstraps)
        .with_parallelism(config.parallelism)
        .with_kernel(config.bootstrap_kernel);
    let bootstrap = bootstrap_distribution(config.seed, &surviving, &estimator, &bootstrap_config)
        .map_err(EarlError::Stats)?;
    cluster.charge_reduce_cpu(
        Phase::AccuracyEstimation,
        bootstraps as u64 * surviving_records,
        task.is_heavy(),
    );

    let exact = lost_splits == 0 && surviving_records >= population;
    let (ci_low, ci_high) = bootstrap.percentile_ci(0.05);
    let fault_log = FaultLog {
        events: cluster.failure_events(),
        splits_lost: lost_splits as u64,
        ..FaultLog::default()
    };
    Ok(EarlReport {
        task: task.name().to_owned(),
        result: task.correct(bootstrap.point_estimate, p),
        uncorrected_result: bootstrap.point_estimate,
        error_estimate: if exact { 0.0 } else { bootstrap.cv },
        target_sigma: config.sigma,
        ci_low: task.correct(ci_low, p),
        ci_high: task.correct(ci_high, p),
        sample_size: surviving_records,
        population,
        sample_fraction: p,
        bootstraps,
        iterations: 1,
        exact,
        sim_time: cluster.elapsed() - start_time,
        bytes_read: cluster.metrics().snapshot().total_disk_bytes_read() - start_bytes,
        resample_work: None,
        fault_log: (!fault_log.is_empty()).then_some(fault_log),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tasks::MeanTask;
    use earl_cluster::{Cluster, CostModel, NodeId};
    use earl_dfs::DfsConfig;
    use earl_workload::{DatasetBuilder, DatasetSpec};

    fn setup(replication: u32) -> (Dfs, f64) {
        let cluster = Cluster::builder()
            .nodes(4)
            .cost_model(CostModel::free())
            .build()
            .unwrap();
        let dfs = Dfs::new(
            cluster,
            DfsConfig {
                block_size: 2048,
                replication,
                io_chunk: 256,
            },
        )
        .unwrap();
        let ds = DatasetBuilder::new(dfs.clone())
            .build("/ft", &DatasetSpec::normal(20_000, 100.0, 20.0, 1))
            .unwrap();
        (dfs, ds.true_mean)
    }

    #[test]
    fn no_failures_gives_the_exact_answer() {
        let (dfs, truth) = setup(2);
        let report = run_despite_failures(&dfs, "/ft", &MeanTask, &EarlConfig::default()).unwrap();
        assert!(report.exact);
        assert_eq!(report.sample_fraction, 1.0);
        assert!((report.result - truth).abs() / truth < 1e-9);
    }

    #[test]
    fn node_failure_with_replication_one_still_yields_a_bounded_answer() {
        // Replication 1 so a failure genuinely loses data.
        let (dfs, truth) = setup(1);
        dfs.cluster().fail_node(NodeId(0)).unwrap();
        dfs.cluster().fail_node(NodeId(1)).unwrap();
        let report = run_despite_failures(&dfs, "/ft", &MeanTask, &EarlConfig::default()).unwrap();
        assert!(
            report.sample_fraction < 1.0,
            "some data must have been lost"
        );
        assert!(report.sample_fraction > 0.0);
        assert!(!report.exact);
        assert!(report.error_estimate > 0.0);
        // The answer from the surviving half is still close to the truth, and
        // the bootstrap error bound brackets the discrepancy.
        let rel = (report.result - truth).abs() / truth;
        assert!(rel < 0.05, "mean from surviving data off by {rel}");
        assert!(report.ci_low < truth && truth < report.ci_high);
        let log = report.fault_log.expect("data loss must be logged");
        assert!(log.splits_lost > 0);
    }

    #[test]
    fn the_configured_bootstrap_kernel_is_respected() {
        use earl_bootstrap::BootstrapKernel;
        let (dfs, _) = setup(1);
        dfs.cluster().fail_node(NodeId(0)).unwrap();
        dfs.cluster().fail_node(NodeId(1)).unwrap();
        let with_kernel = |kernel| {
            let config = EarlConfig {
                bootstrap_kernel: kernel,
                ..EarlConfig::default()
            };
            run_despite_failures(&dfs, "/ft", &MeanTask, &config).unwrap()
        };
        let gather = with_kernel(BootstrapKernel::Gather);
        let counts = with_kernel(BootstrapKernel::CountBased);
        let auto = with_kernel(BootstrapKernel::Auto);
        // The kernels draw replicates from different RNG streams, so on lossy
        // data their error estimates must differ bit-for-bit — which pins that
        // `config.bootstrap_kernel` actually reaches the bootstrap (it used to
        // be silently ignored here).
        assert_ne!(gather.error_estimate, counts.error_estimate);
        // `Auto` resolves the mean to the count-based kernel.
        assert_eq!(auto.error_estimate, counts.error_estimate);
        assert_eq!(auto.result, counts.result);
    }

    #[test]
    fn losing_everything_is_an_error() {
        let (dfs, _) = setup(1);
        for node in dfs.cluster().available_nodes() {
            dfs.cluster().fail_node(node).unwrap();
        }
        assert!(matches!(
            run_despite_failures(&dfs, "/ft", &MeanTask, &EarlConfig::default()),
            Err(EarlError::NoUsableRecords) | Err(EarlError::Dfs(_))
        ));
    }

    #[test]
    fn missing_file_errors() {
        let (dfs, _) = setup(2);
        assert!(run_despite_failures(&dfs, "/missing", &MeanTask, &EarlConfig::default()).is_err());
    }
}
