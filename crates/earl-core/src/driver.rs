//! The EARL driver: the iterative sample → estimate → expand loop of Figure 1.
//!
//! One [`EarlDriver::run`] call performs the whole pipeline the paper
//! describes:
//!
//! 1. draw a small pilot sample and run **SSABE** to pick the number of
//!    bootstraps `B` and the sample size `n` (§3.2), falling back to exact
//!    execution when `B·n ≥ N`;
//! 2. draw the sample (pre-map or post-map, §3.3) and run the user's task on
//!    it through the MapReduce engine (reusing tasks across iterations as the
//!    pipelined extension of §2.1 does);
//! 3. run the **Accuracy Estimation Stage** over `B` resamples — maintained
//!    incrementally via delta maintenance (§4.1) when enabled — and compare the
//!    cv against σ;
//! 4. expand the sample and repeat until the bound is met, the data is
//!    exhausted, or the iteration budget runs out.

use std::sync::Arc;

use earl_bootstrap::bootstrap::{
    bootstrap_distribution_via, BootstrapConfig, BootstrapResult, BuiltSections, LinearSections,
    ResolvedKernel, SectionEvaluator,
};
use earl_bootstrap::delta::{IncrementalBootstrap, SketchConfig};
use earl_bootstrap::rng::derive_seed;
use earl_bootstrap::ssabe::{Ssabe, SsabeConfig};
use earl_bootstrap::Estimator;
use earl_cluster::{FaultLog, Phase};
use earl_dfs::{Dfs, DfsError, DfsPath};
use earl_mapreduce::transport::default_transport;
use earl_mapreduce::{
    ErrorReport, InputSource, JobConf, MapContext, Mapper, MrError, PendingIteration,
    PipelinedSession, ReduceContext, Reducer, RemoteSectionsRequest, SectionSummary, TaskSpec,
    TaskTransport,
};
use earl_sampling::SamplingError;

/// Sub-seed stream of the SSABE pilot estimation.
const SSABE_STREAM: u64 = 1;
/// Sub-seed stream of the delta-maintained resamples.
const DELTA_STREAM: u64 = 2;
/// Sub-seed stream base of per-iteration fresh bootstraps (non-delta mode).
const FRESH_STREAM: u64 = 16;

use crate::aes::AccuracyEstimationStage;
use crate::config::{EarlConfig, SamplingMethod};
use crate::error::EarlError;
use crate::progress::{EarlUpdate, Progress};
use crate::report::EarlReport;
use crate::task::{EarlTask, TaskEstimator};
use crate::Result;
use earl_sampling::{PostMapSampler, PreMapSampler, SampleSource};

/// A [`Mapper`] that extracts a task's values from raw input lines.
pub struct TaskMapper<'a, T: EarlTask> {
    task: &'a T,
}

impl<'a, T: EarlTask> TaskMapper<'a, T> {
    /// Wraps a task.
    pub fn new(task: &'a T) -> Self {
        Self { task }
    }
}

impl<T: EarlTask> Mapper for TaskMapper<'_, T> {
    type OutKey = u32;
    type OutValue = f64;
    fn map(&self, _offset: u64, line: &str, ctx: &mut MapContext<u32, f64>) {
        if self.task.record_stride() == 1 {
            if let Some(value) = self.task.extract(line) {
                ctx.emit(0, value);
            }
        } else {
            // Multi-column record: emit every column in order.  Emission order
            // is preserved per key through the (deterministic) shuffle, so the
            // reducer sees whole records back to back.  The scratch buffer is
            // thread-local — one allocation per worker, not one per line.
            thread_local! {
                static RECORD: std::cell::RefCell<Vec<f64>> =
                    const { std::cell::RefCell::new(Vec::new()) };
            }
            RECORD.with(|cell| {
                let mut record = cell.borrow_mut();
                record.clear();
                if self.task.extract_record(line, &mut record) {
                    for &value in record.iter() {
                        ctx.emit(0, value);
                    }
                }
            });
        }
    }
    fn is_heavy(&self) -> bool {
        self.task.is_heavy()
    }
    fn remote_spec(&self) -> Option<TaskSpec> {
        self.task.wire_spec()
    }
}

/// A [`Reducer`] that evaluates a task over all values of its key.
pub struct TaskReducer<'a, T: EarlTask> {
    task: &'a T,
}

impl<'a, T: EarlTask> TaskReducer<'a, T> {
    /// Wraps a task.
    pub fn new(task: &'a T) -> Self {
        Self { task }
    }
}

impl<T: EarlTask> Reducer for TaskReducer<'_, T> {
    type InKey = u32;
    type InValue = f64;
    type Output = f64;
    fn reduce(&self, _key: &u32, values: &[f64], ctx: &mut ReduceContext<f64>) {
        ctx.emit(self.task.evaluate(values));
    }
    fn is_heavy(&self) -> bool {
        self.task.is_heavy()
    }
    fn remote_spec(&self) -> Option<TaskSpec> {
        self.task.wire_spec()
    }
}

/// The staged speculative iteration of the pipelined schedule (§2.1): its
/// sample batch has been drawn and its **map phase** has already run —
/// overlapped with the previous iteration's accuracy estimation — but nothing
/// is committed to the driver's sample state yet.  The feedback channel either
/// commits it (shuffle + reduce run, records/values extended) or cancels it.
struct Staged {
    pending: PendingIteration<u32, f64>,
    batch_records: Vec<(u64, String)>,
    delta_values: Vec<f64>,
    /// `sampler.drawn()` right after this iteration's draw — committed to the
    /// reported sample fraction only if the iteration itself commits.
    drawn_after: u64,
    exhausted: bool,
}

/// The pure computation of one iteration's accuracy-estimation stage: a
/// resample-free count-based bootstrap for linear tasks, a fresh Monte-Carlo
/// bootstrap, or a delta-maintained resample update (§4.1).  Returns the
/// bootstrap result plus the number of resample items touched.  The function
/// never touches the simulated clock — the caller charges the returned work —
/// so the pipelined schedule can run it concurrently with the next iteration's
/// map phase without racing on the cluster accounting.
///
/// Kernel routing: when `config.bootstrap_kernel` resolves the task to the
/// count-based kernel (linear and k-ary-linear statistics under `Auto`), the
/// fresh bootstrap path is taken even with delta maintenance enabled — one
/// O(n) section-build scan plus O(√n) per replicate per iteration is strictly
/// cheaper than maintaining materialised resamples (whose per-iteration
/// *evaluation* alone is O(B·n)), so there is no state worth maintaining.
/// Multi-column tasks (record stride > 1) always take the fresh path too:
/// the maintained-resample structure adds and deletes individual *values*,
/// which would split a record's columns apart.
/// `evaluator` optionally offloads count-based replicate batches (e.g. to
/// remote workers holding the provisioned section summary); a conforming
/// evaluator is bit-identical to local evaluation, so the result — and the
/// work accounting below, which is defined by the *statistic*, not by where
/// it ran — is unchanged.
#[allow(clippy::too_many_arguments)]
fn accuracy_stage<T: EarlTask>(
    config: &EarlConfig,
    estimator: &TaskEstimator<'_, T>,
    values: &[f64],
    delta_values: &[f64],
    bootstraps: usize,
    iteration: usize,
    incremental: &mut Option<IncrementalBootstrap>,
    evaluator: Option<&SectionEvaluator>,
) -> Result<(BootstrapResult, u64)> {
    let resolved = config.bootstrap_kernel.resolve_for(estimator);
    let stride = estimator.record_stride().max(1);
    if config.delta_maintenance && resolved != ResolvedKernel::CountBased && stride == 1 {
        match incremental.as_mut() {
            None => {
                let ib = IncrementalBootstrap::new(
                    derive_seed(config.seed, DELTA_STREAM),
                    values,
                    bootstraps,
                    SketchConfig::default(),
                )
                .map_err(EarlError::Stats)?
                .with_parallelism(config.parallelism)
                .with_kernel(config.bootstrap_kernel);
                let touched = (bootstraps * values.len()) as u64;
                let result = ib.evaluate(estimator);
                *incremental = Some(ib);
                Ok((result, touched))
            }
            Some(ib) => {
                let touched = if delta_values.is_empty() {
                    0
                } else {
                    ib.expand(delta_values)
                        .map_err(EarlError::Stats)?
                        .items_touched
                };
                Ok((ib.evaluate(estimator), touched))
            }
        }
    } else {
        let result = bootstrap_distribution_via(
            derive_seed(config.seed, FRESH_STREAM + iteration as u64),
            values,
            estimator,
            &BootstrapConfig::with_resamples(bootstraps)
                .with_parallelism(config.parallelism)
                .with_kernel(config.bootstrap_kernel),
            evaluator,
        )
        .map_err(EarlError::Stats)?;
        // Work is accounted in records (identical to values for stride 1).
        let records = values.len() / stride;
        let touched = match resolved {
            // The count-based kernel scans the sample once to build the
            // section summaries, then touches one summary per section per
            // replicate — the O(n + √n·B) accounting the roadmap targets.
            ResolvedKernel::CountBased => {
                (records + bootstraps * LinearSections::section_count(records)) as u64
            }
            _ => (bootstraps * records) as u64,
        };
        Ok((result, touched))
    }
}

/// Converts a locally built section summary into its wire-transferable form.
///
/// The forms themselves (function pointers) never travel: workers rebuild
/// them from the task spec.  K-ary Cholesky factors are packed as the lower
/// triangle in row-major order, the layout `SectionSummary::Kary` documents.
fn wire_summary(sections: &BuiltSections) -> SectionSummary {
    match sections {
        BuiltSections::Linear(s, _) => SectionSummary::Linear {
            total_items: s.total_items(),
            sections: s.parts().collect(),
        },
        BuiltSections::Kary(s, _) => {
            let arity = s.arity();
            SectionSummary::Kary {
                stride: s.stride() as u32,
                arity: arity as u32,
                total_records: s.total_records(),
                sections: s
                    .parts()
                    .map(|(len, mean, chol)| {
                        let mut packed = Vec::with_capacity(arity * (arity + 1) / 2);
                        for (i, row) in chol.iter().enumerate().take(arity) {
                            packed.extend_from_slice(&row[..=i]);
                        }
                        (len, mean[..arity].to_vec(), packed)
                    })
                    .collect(),
            }
        }
    }
}

/// Content address of a section summary: FNV-1a over every count and f64 bit
/// pattern.  This is the `version` of the `(path, version)` identity the
/// transport uses to decide whether workers already hold the summary — a
/// B-growth loop reusing one summary ships it exactly once, while a new
/// iteration's summary (different sample) re-provisions.
fn summary_version(summary: &SectionSummary) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    let mut mix = |word: u64| {
        for byte in word.to_le_bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(PRIME);
        }
    };
    match summary {
        SectionSummary::Linear {
            total_items,
            sections,
        } => {
            mix(0);
            mix(*total_items);
            for (len, mean, sd) in sections {
                mix(*len);
                mix(mean.to_bits());
                mix(sd.to_bits());
            }
        }
        SectionSummary::Kary {
            stride,
            arity,
            total_records,
            sections,
        } => {
            mix(1);
            mix(*stride as u64);
            mix(*arity as u64);
            mix(*total_records);
            for (len, means, chol) in sections {
                mix(*len);
                for v in means.iter().chain(chol.iter()) {
                    mix(v.to_bits());
                }
            }
        }
    }
    hash
}

enum Sampler {
    Pre(PreMapSampler),
    Post(PostMapSampler),
}

impl Sampler {
    fn draw(&mut self, count: usize) -> crate::Result<earl_sampling::SampleBatch> {
        let batch = match self {
            Sampler::Pre(s) => s.draw(count)?,
            Sampler::Post(s) => s.draw(count)?,
        };
        Ok(batch)
    }

    fn drawn(&self) -> u64 {
        match self {
            Sampler::Pre(s) => s.drawn(),
            Sampler::Post(s) => s.drawn(),
        }
    }
}

/// One sample expansion: up to `needed` freshly drawn records plus their
/// extracted task values.  `exhausted` is set when the sampler cannot produce
/// more records — whatever was drawn so far is effectively the whole usable
/// population.  Shared by the sequential schedule, the pipelined commit path
/// and the speculative draw, so exhaustion/extraction semantics cannot drift
/// between them.
struct DrawnBatch {
    records: Vec<(u64, String)>,
    values: Vec<f64>,
    exhausted: bool,
}

/// Whether an error means *input data died with a node* — the one condition
/// the degrade policy (§3.4) absorbs instead of propagating.
fn is_data_loss(err: &EarlError) -> bool {
    matches!(
        err,
        EarlError::Dfs(DfsError::BlockUnavailable(_))
            | EarlError::MapReduce(MrError::Dfs(DfsError::BlockUnavailable(_)))
            | EarlError::Sampling(SamplingError::Dfs(DfsError::BlockUnavailable(_)))
    )
}

/// [`draw_batch`], degrading on data loss: under [`FailurePolicy::Degrade`] a
/// sample draw that hits blocks lost to a node failure does not abort the run
/// — the DFS metadata is re-synced (dropping the dead node's splits from the
/// file, so redraws touch only survivors), the loss is logged, and the draw is
/// retried against the surviving data; what comes back remains a uniform
/// sample of what survived, and the accuracy-estimation stage prices it
/// (§3.4).  If loss strikes again after the re-sync the sample is treated as
/// exhausted at its current size.  Under `Retry` the error propagates
/// unchanged.
///
/// [`FailurePolicy::Degrade`]: earl_mapreduce::FailurePolicy::Degrade
fn draw_degrading<T: EarlTask>(
    dfs: &Dfs,
    config: &EarlConfig,
    sampler: &mut Sampler,
    task: &T,
    needed: usize,
    fault_log: &mut FaultLog,
) -> Result<DrawnBatch> {
    let mut reconciled = false;
    loop {
        match draw_batch(sampler, task, needed) {
            Err(err) if config.failure_policy.is_degrade() && is_data_loss(&err) => {
                if reconciled {
                    // Loss persists even after re-syncing metadata: stop
                    // growing the sample and let the bound widen.
                    return Ok(DrawnBatch {
                        records: Vec::new(),
                        values: Vec::new(),
                        exhausted: true,
                    });
                }
                let orphaned = dfs.reconcile_failures();
                fault_log.splits_lost += orphaned.len().max(1) as u64;
                reconciled = true;
            }
            other => return other,
        }
    }
}

fn draw_batch<T: EarlTask>(sampler: &mut Sampler, task: &T, needed: usize) -> Result<DrawnBatch> {
    let mut out = DrawnBatch {
        records: Vec::new(),
        values: Vec::new(),
        exhausted: false,
    };
    if needed == 0 {
        return Ok(out);
    }
    let batch = sampler.draw(needed)?;
    if batch.is_empty() {
        out.exhausted = true;
    } else {
        for (_, line) in &batch.records {
            // All-or-nothing per record: multi-column tasks never leave the
            // flat sample mid-record.
            task.extract_record(line, &mut out.values);
        }
        out.records = batch.records;
    }
    Ok(out)
}

/// The EARL driver.
#[derive(Debug, Clone)]
pub struct EarlDriver {
    dfs: Dfs,
    config: EarlConfig,
    transport: Arc<dyn TaskTransport>,
}

impl EarlDriver {
    /// Creates a driver over the given DFS.  The configuration is validated on
    /// each run.  Tasks execute in-process; use [`EarlDriver::with_transport`]
    /// to ship wire-portable tasks to real worker processes instead.
    pub fn new(dfs: Dfs, config: EarlConfig) -> Self {
        Self {
            dfs,
            config,
            transport: default_transport(),
        }
    }

    /// Points the driver's per-iteration jobs at a task transport (e.g.
    /// `earl-net`'s `TcpTransport` over real worker processes).  All planning,
    /// sampling and cost accounting stay with this driver; only the user
    /// compute of wire-portable tasks moves — reports are bit-identical to the
    /// in-process engine.
    pub fn with_transport(mut self, transport: Arc<dyn TaskTransport>) -> Self {
        self.transport = transport;
        self
    }

    /// The DFS this driver operates on.
    pub fn dfs(&self) -> &Dfs {
        &self.dfs
    }

    /// The configuration in effect.
    pub fn config(&self) -> &EarlConfig {
        &self.config
    }

    /// Under the degrade policy, writes off data that died with failed nodes:
    /// re-syncs DFS metadata (so later reads touch only survivors) and logs
    /// the orphaned splits.  A no-op under `Retry` or while every node lives,
    /// so a run that never sees a failure is bit-identical to one on an
    /// unarmed cluster.
    fn write_off_losses(&self, fault_log: &mut FaultLog) {
        if self.config.failure_policy.is_degrade() && !self.dfs.cluster().failed_nodes().is_empty()
        {
            fault_log.splits_lost += self.dfs.reconcile_failures().len() as u64;
        }
    }

    /// Runs `task` over `path` with early approximation, returning a report
    /// whose error estimate satisfies the configured bound σ.
    ///
    /// Falls back to exact execution (like stock Hadoop) when the SSABE
    /// estimate says sampling will not pay off.  Returns
    /// [`EarlError::AccuracyNotReached`] carrying the partial report when the
    /// bound cannot be met within the iteration budget.
    pub fn run<T: EarlTask>(&self, path: impl Into<DfsPath>, task: &T) -> Result<EarlReport> {
        self.run_with_progress(path, task, &mut |_| Progress::Continue)
    }

    /// [`run`](Self::run) with progressive early-result delivery — the paper's
    /// headline behaviour exposed as an API.  `observer` receives one
    /// [`EarlUpdate`] snapshot at every iteration boundary (after that
    /// iteration's Accuracy Estimation Stage, including the final one), built
    /// from the same AES output the stopping rule reads, so delivery costs no
    /// extra simulated work.  Returning [`Progress::Cancel`] stops the ladder
    /// at that boundary: the driver abandons further expansion and returns
    /// [`EarlError::Cancelled`] carrying the partial report for the committed
    /// work.  A boundary whose bound is already met (or whose sample is
    /// exhausted or exact) completes normally even if the observer answers
    /// `Cancel` — cancellation never discards an already-final result.
    ///
    /// Determinism: the observer cannot perturb the run — snapshots are pure
    /// functions of the ladder, and for any fixed sequence of observer
    /// verdicts the result (including `sim_time` and byte counters) is
    /// bit-identical across thread counts and across re-runs.  An observer
    /// that always answers [`Progress::Continue`] yields exactly
    /// [`run`](Self::run)'s report.
    pub fn run_with_progress<T: EarlTask>(
        &self,
        path: impl Into<DfsPath>,
        task: &T,
        observer: &mut dyn FnMut(EarlUpdate) -> Progress,
    ) -> Result<EarlReport> {
        self.config.validate()?;
        let path = path.into();
        let status = self.dfs.status(path.clone())?;
        let population = status.num_records.unwrap_or(0);
        if population == 0 {
            return Err(EarlError::NoUsableRecords);
        }
        let cluster = self.dfs.cluster().clone();
        let start_time = cluster.elapsed();
        let start_bytes = cluster.metrics().snapshot().total_disk_bytes_read();
        // Failure events that fire from here on (including via implicit polls
        // during sampling or job charges) belong to this run's fault log.
        let events_seen = cluster.failure_events().len();
        let mut fault_log = FaultLog::default();
        let seed = self.config.seed;

        // ---- sampler --------------------------------------------------------
        // Under the degrade policy the pre-map sampler treats probes into
        // failure-orphaned blocks as misses: draws stay uniform over whatever
        // data survives (§3.4) instead of aborting the run.
        let mut sampler = match self.config.sampling {
            SamplingMethod::PreMap => Sampler::Pre(
                PreMapSampler::new(self.dfs.clone(), path.clone(), self.config.seed)?
                    .skip_unavailable(self.config.failure_policy.is_degrade()),
            ),
            SamplingMethod::PostMap => Sampler::Post(PostMapSampler::new(
                self.dfs.clone(),
                path.clone(),
                self.config.seed,
            )?),
        };

        // ---- pilot + SSABE (phase 1, run in local mode) ----------------------
        let pilot_target = ((population as f64 * self.config.pilot_fraction).ceil() as u64)
            .max(self.config.min_pilot)
            .min(population) as usize;
        // Even the pilot survives data loss under the degrade policy: a
        // cluster that lost nodes *before* the run starts (the §3.4 scenario)
        // writes the loss off up front and draws the pilot from survivors.
        self.write_off_losses(&mut fault_log);
        let pilot_batch = match sampler.draw(pilot_target) {
            Err(err) if self.config.failure_policy.is_degrade() && is_data_loss(&err) => {
                let orphaned = self.dfs.reconcile_failures();
                fault_log.splits_lost += orphaned.len().max(1) as u64;
                sampler.draw(pilot_target)?
            }
            other => other?,
        };
        let mut records: Vec<(u64, String)> = pilot_batch.records;
        // `values` is the flat extracted sample: `stride` consecutive values
        // per usable record.  All sample-size arithmetic below counts records
        // (`values.len() / stride`), which for scalar tasks is values.len().
        let stride = task.record_stride().max(1);
        let mut values: Vec<f64> = Vec::new();
        for (_, line) in &records {
            task.extract_record(line, &mut values);
        }
        if values.is_empty() {
            return Err(EarlError::NoUsableRecords);
        }

        let estimator = TaskEstimator::new(task);

        // ---- remote section evaluator ---------------------------------------
        // Count-based bootstrap replicates can run on remote workers: the
        // transport ships the O(√n) section summary once per version, and
        // every batch thereafter carries only `(task, path, seed, B-range,
        // size)`.  Gated on `pipeline_depth <= 1`: under the pipelined
        // schedule AES overlaps the speculative map phase, and interleaving
        // section calls with map calls would make per-worker call indices
        // race-dependent — breaking the deterministic per-(worker, call)
        // fault plans the chaos suite scripts.  A declined or failed remote
        // batch falls back to local evaluation inside the bootstrap, which is
        // bit-identical either way.
        let section_evaluator: Option<Arc<SectionEvaluator>> = match task.wire_spec() {
            Some(spec) if !self.transport.is_local() && self.config.pipeline_depth <= 1 => {
                let transport = self.transport.clone();
                let sections_path = format!("{}#sections", path.as_str());
                let max_attempts = self.config.failure_policy.max_attempts().max(1);
                Some(Arc::new(
                    move |sections: &BuiltSections,
                          seed: u64,
                          b_start: u64,
                          b_count: u64,
                          size: usize| {
                        let summary = wire_summary(sections);
                        let outcome = transport
                            .remote_sections(&RemoteSectionsRequest {
                                spec: &spec,
                                path: &sections_path,
                                version: summary_version(&summary),
                                summary: &summary,
                                seed,
                                b_start,
                                b_count,
                                size: size as u64,
                                max_attempts,
                            })
                            .ok()?;
                        // `retries` is deliberately dropped: a conforming
                        // remote evaluation is content-identical to local, so
                        // fault-free remote reports stay bit-identical to
                        // in-process ones; worker deaths still reach the
                        // simulation through the transport's own reporting.
                        (outcome.replicates.len() as u64 == b_count).then_some(outcome.replicates)
                    },
                ))
            }
            _ => None,
        };

        let (bootstraps, target_n, worthwhile) =
            match (self.config.bootstraps, self.config.sample_size) {
                (Some(b), Some(n)) => (b, n.min(population), (b as u64) * n < population),
                _ => {
                    let ssabe_config = SsabeConfig {
                        parallelism: self.config.parallelism,
                        kernel: self.config.bootstrap_kernel,
                        ..SsabeConfig::new(self.config.sigma, self.config.tau)
                    };
                    let mut ssabe = Ssabe::new(ssabe_config).map_err(EarlError::Stats)?;
                    if let Some(evaluator) = &section_evaluator {
                        ssabe = ssabe.with_evaluator(evaluator.clone());
                    }
                    match ssabe.estimate(
                        derive_seed(seed, SSABE_STREAM),
                        &values,
                        &estimator,
                        population,
                    ) {
                        Ok(est) => {
                            // SSABE runs in local mode on one machine: charge its
                            // resampling CPU to the accuracy-estimation phase
                            // (per-replicate cost depends on the kernel the
                            // pilot bootstraps resolved to; the count-based
                            // kernel additionally pays one O(n) section-build
                            // scan of the pilot).
                            let pilot_records = values.len() / stride;
                            let aes_pilot_cost =
                                match self.config.bootstrap_kernel.resolve_for(&estimator) {
                                    ResolvedKernel::CountBased => {
                                        pilot_records
                                            + est.b * LinearSections::section_count(pilot_records)
                                    }
                                    _ => est.b * pilot_records,
                                };
                            cluster.charge_reduce_cpu(
                                Phase::AccuracyEstimation,
                                aes_pilot_cost as u64,
                                task.is_heavy(),
                            );
                            let b = self.config.bootstraps.unwrap_or(est.b);
                            let n = self.config.sample_size.unwrap_or(est.n).min(population);
                            (b, n, est.worthwhile)
                        }
                        // Pilot too small for the ladder fit (tiny files): sampling
                        // will not pay off anyway.
                        Err(_) => (30, population, false),
                    }
                }
            };

        if !worthwhile {
            return self.run_exact(path, task);
        }

        // ---- iterative approximation -----------------------------------------
        let aes = AccuracyEstimationStage::new(self.config.sigma);
        let mut session = PipelinedSession::new(self.dfs.clone());
        let feedback = session.feedback();
        let mut incremental: Option<IncrementalBootstrap> = None;
        let mut target_n = target_n.max(1);
        let mut iterations = 0usize;
        let mut last_bootstrap: Option<BootstrapResult> = None;
        let mut exact = false;
        let mut exhausted = false;
        let mut cancelled = false;
        let mapper = TaskMapper::new(task);
        let reducer = TaskReducer::new(task);
        // Records drawn by the *delivered* schedule: a speculative draw that is
        // cancelled must not count towards the reported sample fraction.
        let mut committed_drawn = sampler.drawn();

        if self.config.pipeline_depth <= 1 {
            // ---- sequential schedule: sample → job → AES, back to back ------
            while iterations < self.config.max_iterations {
                iterations += 1;
                // A node may have died during the previous iteration's
                // charges: write the loss off before expanding the sample.
                self.write_off_losses(&mut fault_log);

                // Expand the sample up to the current target (record counts).
                let needed = target_n.saturating_sub((values.len() / stride) as u64) as usize;
                let drawn = draw_degrading(
                    &self.dfs,
                    &self.config,
                    &mut sampler,
                    task,
                    needed,
                    &mut fault_log,
                )?;
                exhausted |= drawn.exhausted;
                let delta_values = drawn.values;
                records.extend(drawn.records);
                values.extend(delta_values.iter().copied());

                // Run the user's job on the current sample through the
                // MapReduce engine (tasks are reused across iterations —
                // pipelining §2.1).
                let conf = JobConf::new(
                    format!("earl-{}", task.name()),
                    InputSource::Memory(records.clone()),
                )
                .with_failure_policy(self.config.failure_policy)
                .with_parallelism(self.config.parallelism)
                .with_transport(self.transport.clone())
                .with_source_path(path.clone());
                let job = session.run_iteration(&conf, &mapper, &reducer)?;
                fault_log.merge(&job.stats.fault_log);

                // Accuracy estimation stage.
                let (bootstrap_result, aes_records) = accuracy_stage(
                    &self.config,
                    &estimator,
                    &values,
                    &delta_values,
                    bootstraps,
                    iterations,
                    &mut incremental,
                    section_evaluator.as_deref(),
                )?;
                cluster.charge_reduce_cpu(Phase::AccuracyEstimation, aes_records, task.is_heavy());

                // Post the error on the reducer→mapper feedback channel (§3.3).
                feedback.post(ErrorReport {
                    reducer: 0,
                    error: bootstrap_result.cv,
                    timestamp: cluster.now(),
                });

                let cv = bootstrap_result.cv;
                let update_fraction = (sampler.drawn() as f64 / population as f64).clamp(0.0, 1.0);
                let snapshot = aes.summarise(
                    task,
                    &bootstrap_result,
                    update_fraction,
                    values.len() / stride,
                );
                last_bootstrap = Some(bootstrap_result);
                let cancel_requested = observer(EarlUpdate {
                    iteration: iterations,
                    estimate: snapshot.corrected_result,
                    uncorrected: snapshot.result,
                    cv: snapshot.cv,
                    ci_low: snapshot.ci.0,
                    ci_high: snapshot.ci.1,
                    sample_size: (values.len() / stride) as u64,
                    sample_fraction: update_fraction,
                    bootstraps: snapshot.bootstraps,
                }) == Progress::Cancel;

                if (values.len() / stride) as u64 >= population {
                    exact = true;
                    break;
                }
                if aes.meets_bound(cv) || exhausted {
                    break;
                }
                if cancel_requested {
                    cancelled = true;
                    break;
                }
                // Expand and try again.
                let next =
                    (((values.len() / stride) as f64) * self.config.expansion_factor).ceil() as u64;
                target_n = next.min(population);
            }
            committed_drawn = sampler.drawn();
        } else {
            // ---- pipelined schedule: AES of iteration i overlaps the sample
            // draw + map phase of iteration i+1 (§2.1).  The speculative
            // iteration is staged — nothing committed — until the feedback
            // channel rules on iteration i's error estimate: bound met cancels
            // it before its reduce phase, otherwise it commits and only its
            // shuffle + reduce remain to run.  Delivered results (estimate,
            // error, sample size, iteration count) are identical to the
            // sequential schedule; the speculative map work is charged to the
            // simulated clock and discarded on the final iteration.
            let mut staged: Option<Staged> = None;
            while iterations < self.config.max_iterations {
                iterations += 1;
                self.write_off_losses(&mut fault_log);

                // ---- commit this iteration's sample + job -------------------
                let delta_values: Vec<f64> = match staged.take() {
                    Some(s) => {
                        records.extend(s.batch_records);
                        values.extend(s.delta_values.iter().copied());
                        committed_drawn = s.drawn_after;
                        exhausted |= s.exhausted;
                        // The map phase already ran during the previous AES;
                        // only shuffle + reduce are left.
                        let job = session.complete_iteration(s.pending, &reducer)?;
                        fault_log.merge(&job.stats.fault_log);
                        s.delta_values
                    }
                    None => {
                        let needed =
                            target_n.saturating_sub((values.len() / stride) as u64) as usize;
                        let drawn = draw_degrading(
                            &self.dfs,
                            &self.config,
                            &mut sampler,
                            task,
                            needed,
                            &mut fault_log,
                        )?;
                        exhausted |= drawn.exhausted;
                        let delta_values = drawn.values;
                        records.extend(drawn.records);
                        values.extend(delta_values.iter().copied());
                        committed_drawn = sampler.drawn();
                        let conf = JobConf::new(
                            format!("earl-{}", task.name()),
                            InputSource::Memory(records.clone()),
                        )
                        .with_failure_policy(self.config.failure_policy)
                        .with_parallelism(self.config.parallelism)
                        .with_transport(self.transport.clone())
                        .with_source_path(path.clone());
                        let job = session.run_iteration(&conf, &mapper, &reducer)?;
                        fault_log.merge(&job.stats.fault_log);
                        delta_values
                    }
                };

                // ---- AES of iteration i ∥ draw + map of iteration i+1 -------
                let sample_records = (values.len() / stride) as u64;
                let next_target = (((sample_records as f64) * self.config.expansion_factor).ceil()
                    as u64)
                    .min(population);
                let speculate = !exhausted
                    && sample_records < population
                    && iterations < self.config.max_iterations;
                let needed = next_target.saturating_sub(sample_records) as usize;

                let (aes_out, spec_out) = std::thread::scope(|scope| {
                    let config = &self.config;
                    let estimator_ref = &estimator;
                    let values_ref = &values;
                    let delta_ref = &delta_values;
                    let incremental_ref = &mut incremental;
                    // The accuracy stage is pure (the caller charges its work
                    // below, at a deterministic point), so running it off-thread
                    // cannot perturb the simulated accounting.
                    let aes_handle = scope.spawn(move || {
                        accuracy_stage(
                            config,
                            estimator_ref,
                            values_ref,
                            delta_ref,
                            bootstraps,
                            iterations,
                            incremental_ref,
                            // The depth gate above means no evaluator exists
                            // on this schedule: remote section calls may not
                            // interleave with the concurrent speculative map.
                            None,
                        )
                    });
                    let spec_out: Result<Option<Staged>> = if speculate {
                        (|| {
                            let drawn = draw_degrading(
                                &self.dfs,
                                &self.config,
                                &mut sampler,
                                task,
                                needed,
                                &mut fault_log,
                            )?;
                            let mut spec_records = records.clone();
                            spec_records.extend(drawn.records.iter().cloned());
                            let conf = JobConf::new(
                                format!("earl-{}", task.name()),
                                InputSource::Memory(spec_records),
                            )
                            .with_failure_policy(self.config.failure_policy)
                            .with_parallelism(self.config.parallelism)
                            .with_transport(self.transport.clone())
                            .with_source_path(path.clone());
                            let pending = session.begin_iteration(&conf, &mapper)?;
                            Ok(Some(Staged {
                                pending,
                                batch_records: drawn.records,
                                delta_values: drawn.values,
                                drawn_after: sampler.drawn(),
                                exhausted: drawn.exhausted,
                            }))
                        })()
                    } else {
                        Ok(None)
                    };
                    (
                        aes_handle.join().expect("accuracy stage thread panicked"),
                        spec_out,
                    )
                });
                let (bootstrap_result, aes_records) = aes_out?;
                let speculative = spec_out?;
                cluster.charge_reduce_cpu(Phase::AccuracyEstimation, aes_records, task.is_heavy());

                // Post the error on the reducer→mapper feedback channel (§3.3).
                feedback.post(ErrorReport {
                    reducer: 0,
                    error: bootstrap_result.cv,
                    timestamp: cluster.now(),
                });
                let update_fraction = (committed_drawn as f64 / population as f64).clamp(0.0, 1.0);
                let snapshot = aes.summarise(
                    task,
                    &bootstrap_result,
                    update_fraction,
                    values.len() / stride,
                );
                last_bootstrap = Some(bootstrap_result);
                let cancel_requested = observer(EarlUpdate {
                    iteration: iterations,
                    estimate: snapshot.corrected_result,
                    uncorrected: snapshot.result,
                    cv: snapshot.cv,
                    ci_low: snapshot.ci.0,
                    ci_high: snapshot.ci.1,
                    sample_size: (values.len() / stride) as u64,
                    sample_fraction: update_fraction,
                    bootstraps: snapshot.bootstraps,
                }) == Progress::Cancel;

                if (values.len() / stride) as u64 >= population {
                    exact = true;
                    if let Some(s) = speculative {
                        fault_log.merge(&session.cancel_iteration(s.pending).fault_log);
                    }
                    break;
                }
                // The feedback channel — not a driver-local — carries the
                // error estimate that cancels the speculative iteration when
                // the bound is met (§2.1/§3.3); the bound predicate itself is
                // the AES's, the same one the sequential schedule applies.
                let channel_says_stop = session
                    .latest_error()
                    .map(|cv| aes.meets_bound(cv))
                    .unwrap_or(false);
                if channel_says_stop || exhausted {
                    if let Some(s) = speculative {
                        fault_log.merge(&session.cancel_iteration(s.pending).fault_log);
                    }
                    break;
                }
                if cancel_requested {
                    // Cooperative cancellation at the iteration boundary: the
                    // staged speculative iteration is abandoned exactly like a
                    // met bound would abandon it.
                    if let Some(s) = speculative {
                        fault_log.merge(&session.cancel_iteration(s.pending).fault_log);
                    }
                    cancelled = true;
                    break;
                }
                target_n = next_target;
                staged = speculative;
            }
        }

        // ---- report ----------------------------------------------------------
        // A death during the final iteration's charges still counts: write off
        // whatever it orphaned before closing the books.
        self.write_off_losses(&mut fault_log);
        // Sweep events that fired during the run into the log (some fire via
        // implicit polls the job-level logs never see, e.g. during sampling).
        let all_events = cluster.failure_events();
        if all_events.len() > events_seen {
            fault_log.record_events(&all_events[events_seen..]);
        }
        let bootstrap_result = last_bootstrap.ok_or(EarlError::NoUsableRecords)?;
        let sampled_fraction = (committed_drawn as f64 / population as f64).clamp(0.0, 1.0);
        let aes_report = aes.summarise(
            task,
            &bootstrap_result,
            sampled_fraction,
            values.len() / stride,
        );
        let report = EarlReport {
            task: task.name().to_owned(),
            result: if exact {
                task.evaluate(&values)
            } else {
                aes_report.corrected_result
            },
            uncorrected_result: aes_report.result,
            error_estimate: if exact { 0.0 } else { aes_report.cv },
            target_sigma: self.config.sigma,
            ci_low: aes_report.ci.0,
            ci_high: aes_report.ci.1,
            sample_size: (values.len() / stride) as u64,
            population,
            sample_fraction: sampled_fraction,
            bootstraps: aes_report.bootstraps,
            iterations,
            exact,
            sim_time: cluster.elapsed() - start_time,
            bytes_read: cluster.metrics().snapshot().total_disk_bytes_read() - start_bytes,
            resample_work: incremental.as_ref().map(|ib| ib.work()),
            fault_log: (!fault_log.is_empty()).then_some(fault_log),
        };
        if cancelled {
            // The observer stopped the ladder: hand back the partial report —
            // everything committed up to the cancellation boundary — through
            // the distinct cancellation error.
            return Err(EarlError::Cancelled(Box::new(report)));
        }
        if report.meets_bound() {
            Ok(report)
        } else if self.config.failure_policy.is_degrade()
            && report
                .fault_log
                .as_ref()
                .is_some_and(|log| log.splits_lost > 0)
        {
            // Input data genuinely died with a node and the degrade policy is
            // in force (§3.4): the widened error estimate over the surviving
            // sample IS the answer — the caller reads the achieved accuracy
            // from the report instead of the run aborting.
            Ok(report)
        } else {
            Err(EarlError::AccuracyNotReached(Box::new(report)))
        }
    }

    /// Runs `task` exactly over the full data set through the MapReduce engine
    /// — the "stock Hadoop" baseline of the paper's experiments.
    pub fn run_exact<T: EarlTask>(&self, path: impl Into<DfsPath>, task: &T) -> Result<EarlReport> {
        self.config.validate()?;
        let path = path.into();
        let status = self.dfs.status(path.clone())?;
        let population = status.num_records.unwrap_or(0);
        let cluster = self.dfs.cluster().clone();
        let start_time = cluster.elapsed();
        let start_bytes = cluster.metrics().snapshot().total_disk_bytes_read();

        let conf = JobConf::new(format!("exact-{}", task.name()), InputSource::Path(path))
            .with_failure_policy(self.config.failure_policy)
            .with_parallelism(self.config.parallelism);
        let mapper = TaskMapper::new(task);
        let reducer = TaskReducer::new(task);
        let result = earl_mapreduce::run_job(&self.dfs, &conf, &mapper, &reducer)?;
        let value = result
            .outputs
            .first()
            .copied()
            .ok_or(EarlError::NoUsableRecords)?;

        Ok(EarlReport {
            task: task.name().to_owned(),
            result: value,
            uncorrected_result: value,
            error_estimate: 0.0,
            target_sigma: self.config.sigma,
            ci_low: value,
            ci_high: value,
            sample_size: result.stats.map_input_records,
            population,
            sample_fraction: 1.0,
            bootstraps: 0,
            iterations: 1,
            exact: true,
            sim_time: cluster.elapsed() - start_time,
            bytes_read: cluster.metrics().snapshot().total_disk_bytes_read() - start_bytes,
            resample_work: None,
            fault_log: (!result.stats.fault_log.is_empty()).then(|| result.stats.fault_log.clone()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tasks::{MeanTask, MedianTask, SumTask};
    use earl_cluster::{Cluster, CostModel};
    use earl_dfs::DfsConfig;
    use earl_workload::{DatasetBuilder, DatasetSpec};

    fn dfs(nodes: u32) -> Dfs {
        let cluster = Cluster::builder()
            .nodes(nodes)
            .cost_model(CostModel::commodity_2012())
            .build()
            .unwrap();
        Dfs::new(
            cluster,
            DfsConfig {
                block_size: 1 << 16,
                replication: 2,
                io_chunk: 128,
            },
        )
        .unwrap()
    }

    fn build(dfs: &Dfs, records: u64, seed: u64) -> earl_workload::dataset::GeneratedDataset {
        DatasetBuilder::new(dfs.clone())
            .build("/data", &DatasetSpec::normal(records, 500.0, 100.0, seed))
            .unwrap()
    }

    #[test]
    fn approximate_mean_meets_the_bound_and_is_accurate() {
        let dfs = dfs(5);
        let ds = build(&dfs, 50_000, 1);
        let driver = EarlDriver::new(dfs, EarlConfig::default());
        let report = driver.run("/data", &MeanTask).unwrap();
        assert!(
            !report.exact,
            "50k records at σ=5% must not require exact execution"
        );
        assert!(report.meets_bound());
        assert!(
            report.sample_fraction < 0.25,
            "sample fraction {} should be small",
            report.sample_fraction
        );
        assert!(
            report.relative_error_vs(ds.true_mean) < 0.05,
            "result {} vs truth {}",
            report.result,
            ds.true_mean
        );
        assert!(report.bootstraps >= 5);
        assert!(report.sim_time > earl_cluster::SimDuration::ZERO);
        assert!(report.bytes_read > 0);
    }

    #[test]
    fn approximate_is_much_cheaper_than_exact() {
        let dfs = dfs(5);
        build(&dfs, 50_000, 2);
        let driver = EarlDriver::new(dfs.clone(), EarlConfig::default());

        let approx = driver.run("/data", &MeanTask).unwrap();
        let exact = driver.run_exact("/data", &MeanTask).unwrap();
        assert!(exact.exact);
        assert!(
            approx.bytes_read < exact.bytes_read / 2,
            "sampling must read far less: {} vs {}",
            approx.bytes_read,
            exact.bytes_read
        );
        // The answers agree to within the error bound.  (The *time* crossover —
        // EARL only wins on sufficiently large inputs, Fig. 5 — is exercised by
        // the integration tests and the fig5 experiment, not on this tiny file.)
        assert!((approx.result - exact.result).abs() / exact.result < 0.05);
    }

    #[test]
    fn tiny_dataset_falls_back_to_exact_execution() {
        let dfs = dfs(2);
        // High dispersion (cv = 0.8) so the SSABE-estimated B·n exceeds the
        // 300 available records and sampling cannot pay off.
        let ds = DatasetBuilder::new(dfs.clone())
            .build("/data", &DatasetSpec::normal(300, 500.0, 400.0, 3))
            .unwrap();
        let driver = EarlDriver::new(dfs, EarlConfig::default());
        let report = driver.run("/data", &MeanTask).unwrap();
        assert!(report.exact, "B·n ≥ N for a 300-record file");
        assert_eq!(report.sample_fraction, 1.0);
        assert!((report.result - ds.true_mean).abs() < 1e-9);
        assert_eq!(report.error_estimate, 0.0);
    }

    #[test]
    fn sum_task_is_corrected_to_population_scale() {
        let dfs = dfs(3);
        let ds = build(&dfs, 40_000, 4);
        let truth: f64 = ds.values.iter().sum();
        let driver = EarlDriver::new(dfs, EarlConfig::default());
        let report = driver.run("/data", &SumTask).unwrap();
        assert!(
            report.relative_error_vs(truth) < 0.08,
            "corrected sum {} vs truth {truth}",
            report.result
        );
        assert!(
            report.result > report.uncorrected_result,
            "sum must be scaled up by 1/p"
        );
    }

    #[test]
    fn median_works_with_and_without_delta_maintenance() {
        let dfs = dfs(3);
        let ds = build(&dfs, 30_000, 5);
        for delta in [true, false] {
            let config = EarlConfig {
                delta_maintenance: delta,
                ..EarlConfig::default()
            };
            let driver = EarlDriver::new(dfs.clone(), config);
            let report = driver.run("/data", &MedianTask).unwrap();
            assert!(report.meets_bound());
            assert!(
                report.relative_error_vs(ds.true_median) < 0.05,
                "median {} vs truth {} (delta={delta})",
                report.result,
                ds.true_median
            );
            assert_eq!(report.resample_work.is_some(), delta);
        }
    }

    #[test]
    fn tighter_bounds_need_bigger_samples() {
        let dfs = dfs(3);
        // High dispersion so that σ = 1% genuinely needs more than the pilot.
        DatasetBuilder::new(dfs.clone())
            .build("/data", &DatasetSpec::normal(60_000, 500.0, 400.0, 6))
            .unwrap();
        let loose = EarlDriver::new(dfs.clone(), EarlConfig::with_sigma(0.10))
            .run("/data", &MeanTask)
            .unwrap();
        let tight = EarlDriver::new(dfs, EarlConfig::with_sigma(0.01))
            .run("/data", &MeanTask)
            .unwrap();
        assert!(
            tight.sample_size > loose.sample_size,
            "σ=1% sample {} must exceed σ=10% sample {}",
            tight.sample_size,
            loose.sample_size
        );
    }

    #[test]
    fn post_map_sampling_also_works() {
        let dfs = dfs(3);
        let ds = build(&dfs, 20_000, 7);
        let config = EarlConfig {
            sampling: SamplingMethod::PostMap,
            ..EarlConfig::default()
        };
        let driver = EarlDriver::new(dfs, config);
        let report = driver.run("/data", &MeanTask).unwrap();
        assert!(report.meets_bound());
        assert!(report.relative_error_vs(ds.true_mean) < 0.05);
    }

    #[test]
    fn fixed_b_and_n_override_ssabe() {
        let dfs = dfs(3);
        build(&dfs, 20_000, 8);
        let config = EarlConfig {
            bootstraps: Some(12),
            sample_size: Some(1_000),
            ..EarlConfig::default()
        };
        let driver = EarlDriver::new(dfs, config);
        let report = driver.run("/data", &MeanTask).unwrap();
        assert_eq!(report.bootstraps, 12);
        assert!(report.sample_size >= 1_000);
    }

    #[test]
    fn missing_file_and_unparsable_data_error() {
        let dfs = dfs(2);
        let driver = EarlDriver::new(dfs.clone(), EarlConfig::default());
        assert!(matches!(
            driver.run("/missing", &MeanTask),
            Err(EarlError::Dfs(_))
        ));
        dfs.write_lines("/text", (0..1000).map(|i| format!("word-{i}")))
            .unwrap();
        assert!(matches!(
            driver.run("/text", &MeanTask),
            Err(EarlError::NoUsableRecords)
        ));
        let invalid = EarlDriver::new(
            dfs,
            EarlConfig {
                sigma: 2.0,
                ..EarlConfig::default()
            },
        );
        assert!(matches!(
            invalid.run("/text", &MeanTask),
            Err(EarlError::InvalidConfig(_))
        ));
    }

    #[test]
    fn pipelined_schedule_delivers_the_sequential_results() {
        // Multiple expansion iterations (high dispersion + tight bound) so the
        // overlap path commits at least one staged iteration AND cancels the
        // final speculative one; both delta modes.
        for (delta, sigma) in [(true, 0.02), (false, 0.02), (true, 0.05)] {
            let run = |depth: usize| {
                let dfs = dfs(4);
                build_spread(&dfs, 60_000, 21);
                let config = EarlConfig {
                    pipeline_depth: depth,
                    delta_maintenance: delta,
                    sigma,
                    ..EarlConfig::default()
                };
                EarlDriver::new(dfs, config)
                    .run("/data", &MeanTask)
                    .unwrap()
            };
            let sequential = run(1);
            let pipelined = run(2);
            assert_eq!(sequential.result, pipelined.result, "delta={delta}");
            assert_eq!(sequential.error_estimate, pipelined.error_estimate);
            assert_eq!(sequential.sample_size, pipelined.sample_size);
            assert_eq!(sequential.iterations, pipelined.iterations);
            assert_eq!(sequential.sample_fraction, pipelined.sample_fraction);
            assert_eq!(sequential.bootstraps, pipelined.bootstraps);
            assert_eq!(sequential.exact, pipelined.exact);
        }
    }

    fn build_spread(dfs: &Dfs, records: u64, seed: u64) {
        DatasetBuilder::new(dfs.clone())
            .build("/data", &DatasetSpec::normal(records, 500.0, 400.0, seed))
            .unwrap();
    }

    /// A configuration that *must* expand through several iterations: the
    /// fixed starting sample (just above the pilot's 600 records) is far too
    /// small for σ at this dispersion, so the ladder doubles its way up —
    /// deterministically, at every thread count.
    fn multi_iteration_config(depth: usize) -> EarlConfig {
        EarlConfig {
            pipeline_depth: depth,
            sigma: 0.02,
            bootstraps: Some(60),
            sample_size: Some(700),
            ..EarlConfig::default()
        }
    }

    #[test]
    fn noop_observer_is_bit_identical_to_run() {
        for depth in [1usize, 2] {
            let make = || {
                let dfs = dfs(4);
                build_spread(&dfs, 60_000, 21);
                EarlDriver::new(dfs, multi_iteration_config(depth))
            };
            let plain = make().run("/data", &MeanTask).unwrap();
            let observed = make()
                .run_with_progress("/data", &MeanTask, &mut |_| Progress::Continue)
                .unwrap();
            assert_eq!(plain, observed, "depth {depth}");
        }
    }

    #[test]
    fn progress_updates_are_delivered_each_iteration_and_match_the_report() {
        for depth in [1usize, 2] {
            let dfs = dfs(4);
            build_spread(&dfs, 60_000, 21);
            let driver = EarlDriver::new(dfs, multi_iteration_config(depth));
            let mut updates: Vec<EarlUpdate> = Vec::new();
            let report = driver
                .run_with_progress("/data", &MeanTask, &mut |u| {
                    updates.push(u);
                    Progress::Continue
                })
                .unwrap();
            assert!(
                updates.len() >= 2,
                "multi-iteration workload must deliver ≥2 updates, got {} (depth {depth})",
                updates.len()
            );
            assert_eq!(updates.len(), report.iterations, "one update per iteration");
            for (i, u) in updates.iter().enumerate() {
                assert_eq!(u.iteration, i + 1, "iterations are 1-based and monotone");
            }
            let last = updates.last().unwrap();
            assert_eq!(last.cv, report.error_estimate);
            assert_eq!(last.sample_size, report.sample_size);
            assert_eq!(last.sample_fraction, report.sample_fraction);
            assert_eq!(last.estimate, report.result);
            assert_eq!(last.ci_low, report.ci_low);
            assert_eq!(last.ci_high, report.ci_high);
        }
    }

    #[test]
    fn cancel_at_the_first_boundary_returns_the_partial_report() {
        for depth in [1usize, 2] {
            let dfs = dfs(4);
            build_spread(&dfs, 60_000, 21);
            let driver = EarlDriver::new(dfs, multi_iteration_config(depth));
            let mut seen = 0usize;
            let err = driver
                .run_with_progress("/data", &MeanTask, &mut |_| {
                    seen += 1;
                    Progress::Cancel
                })
                .unwrap_err();
            assert_eq!(seen, 1, "cancel stops the ladder at the first boundary");
            match err {
                EarlError::Cancelled(report) => {
                    assert_eq!(report.iterations, 1, "depth {depth}");
                    assert!(!report.exact);
                    assert!(report.sample_size > 0);
                    assert!(
                        report.error_estimate > 0.02,
                        "a run worth cancelling had not met its bound yet"
                    );
                }
                other => panic!("expected Cancelled, got {other:?}"),
            }
        }
    }

    #[test]
    fn deeper_pipelines_behave_as_depth_two() {
        let run = |depth: usize| {
            let dfs = dfs(3);
            build(&dfs, 30_000, 23);
            let config = EarlConfig {
                pipeline_depth: depth,
                ..EarlConfig::default()
            };
            EarlDriver::new(dfs, config)
                .run("/data", &MeanTask)
                .unwrap()
        };
        let two = run(2);
        let eight = run(8);
        assert_eq!(two.result, eight.result);
        assert_eq!(two.iterations, eight.iterations);
        assert_eq!(two.sim_time, eight.sim_time, "depth > 2 adds no lookahead");
    }

    #[test]
    fn reports_are_deterministic_for_a_fixed_seed() {
        let make = || {
            let dfs = dfs(3);
            build(&dfs, 20_000, 11);
            EarlDriver::new(dfs, EarlConfig::default())
                .run("/data", &MeanTask)
                .unwrap()
        };
        let a = make();
        let b = make();
        assert_eq!(a.result, b.result);
        assert_eq!(a.sample_size, b.sample_size);
        assert_eq!(a.error_estimate, b.error_estimate);
    }
}
