//! The [`EarlTask`] abstraction: the paper's extended reduce interface.
//!
//! EARL extends the MapReduce reduce phase with a finer-grained interface
//! (§2.1) of four methods:
//!
//! * `initialize()` — reduce a set of values into a *state*;
//! * `update()` — merge another state (or new values) into an existing state,
//!   enabling incremental processing as the sample grows;
//! * `finalize()` — turn the state into the current result;
//! * `correct()` — adjust a result computed from a `p`-fraction sample so it
//!   refers to the full data set (e.g. a SUM must be scaled by `1/p`; a MEAN
//!   needs no correction).
//!
//! Tasks also know how to extract their input values from raw record lines, so
//! the same task can be run by the sampling driver or by an exact MapReduce
//! job.

use earl_bootstrap::{Accumulator, Estimator, KaryForm, LinearForm};

/// A user analytics task in EARL's incremental-reduce form.
pub trait EarlTask: Send + Sync {
    /// The intermediate state produced by `initialize` and consumed by
    /// `finalize`.
    type State: Clone + Send + Sync;

    /// Short task name used in reports.
    fn name(&self) -> &'static str;

    /// Parses one input line into a value contributing to this task, or `None`
    /// if the line carries nothing relevant.  The default takes the last
    /// tab-separated field and parses it as `f64`.
    fn extract(&self, line: &str) -> Option<f64> {
        line.rsplit('\t').next().and_then(|f| f.trim().parse().ok())
    }

    /// Parses one input line into its full record — [`record_stride`](Self::record_stride)
    /// consecutive values appended to `out` — returning whether the line
    /// carried a record.  Multi-column tasks (weighted mean, ratios, paired
    /// statistics) override this to push all of a record's columns in order,
    /// **all or nothing**, so the flat sample stays a whole number of records.
    /// The default delegates to [`extract`](Self::extract) for scalar tasks.
    fn extract_record(&self, line: &str, out: &mut Vec<f64>) -> bool {
        match self.extract(line) {
            Some(value) => {
                out.push(value);
                true
            }
            None => false,
        }
    }

    /// Reduces a set of values into a state.
    fn initialize(&self, values: &[f64]) -> Self::State;

    /// Merges `other` into `state` (used for incremental/partial processing).
    fn update(&self, state: &mut Self::State, other: &Self::State);

    /// Computes the current result from a state.
    fn finalize(&self, state: &Self::State) -> f64;

    /// Corrects a result computed from a fraction `p` of the data (0 < p ≤ 1).
    /// The default is the identity — correct for scale-free statistics such as
    /// the mean, median or variance.
    fn correct(&self, result: f64, p: f64) -> f64 {
        let _ = p;
        result
    }

    /// Whether evaluating the task is CPU-heavy (propagated to the cost model).
    fn is_heavy(&self) -> bool {
        false
    }

    /// The task's linear form `θ = g(Σ wᵢ·xᵢ, Σ wᵢ)`, if its statistic is
    /// linear.  Declaring one opts the task into the resample-free
    /// count-based bootstrap kernel; the contract is `evaluate(values) ==
    /// form.finalize(Σ values, values.len())` for every value multiset.
    fn linear_form(&self) -> Option<LinearForm> {
        None
    }

    /// A streaming accumulator replaying `evaluate` in one pass over `(value,
    /// weight)` pairs, if the task supports one — opting the task into the
    /// gather-free streaming bootstrap kernel.
    fn streaming_accumulator(&self) -> Option<Box<dyn Accumulator>> {
        None
    }

    /// The task's k-ary linear form `θ = g(Σφ₁(r), …, Σφ_k(r), m)`, if the
    /// statistic is an aggregate of per-record linear sums (weighted mean,
    /// ratio, covariance, correlation, slope).  Declaring one opts the task
    /// into the resample-free count-based kernel and makes every kernel
    /// resample whole records of [`record_stride`](Self::record_stride)(Self::record_stride)
    /// columns.
    fn kary_form(&self) -> Option<KaryForm> {
        None
    }

    /// Values per logical record in the flat extracted sample (1 for scalar
    /// tasks; the interleave width for multi-column tasks).
    fn record_stride(&self) -> usize {
        self.kary_form().map(|f| f.stride()).unwrap_or(1)
    }

    /// Convenience: evaluate the task end-to-end on a slice of values.
    fn evaluate(&self, values: &[f64]) -> f64 {
        self.finalize(&self.initialize(values))
    }

    /// A wire-portable spec of this task for remote (multi-process) execution,
    /// or `None` (the default) to always run in-process.  A task may declare
    /// one when a remote worker can reconstruct it from the spec's name and
    /// numeric parameters alone *and* its map/reduce behaviour is exactly the
    /// standard scalar pipeline (extract each line's value, evaluate the value
    /// multiset) with no custom counters or side effects — the registry in
    /// `earl-net` is the authoritative list.
    fn wire_spec(&self) -> Option<earl_mapreduce::TaskSpec> {
        None
    }
}

/// Adapts an [`EarlTask`] into an [`earl_bootstrap::Estimator`], so the
/// bootstrap machinery can evaluate the user's job on resamples — the core of
/// the Accuracy Estimation Stage.
pub struct TaskEstimator<'a, T: EarlTask> {
    task: &'a T,
}

impl<'a, T: EarlTask> TaskEstimator<'a, T> {
    /// Wraps a task.
    pub fn new(task: &'a T) -> Self {
        Self { task }
    }
}

impl<T: EarlTask> Estimator for TaskEstimator<'_, T> {
    fn estimate(&self, data: &[f64]) -> f64 {
        self.task.evaluate(data)
    }
    fn name(&self) -> &'static str {
        self.task.name()
    }
    fn accumulator(&self) -> Option<Box<dyn Accumulator>> {
        self.task.streaming_accumulator()
    }
    fn linear_form(&self) -> Option<LinearForm> {
        self.task.linear_form()
    }
    fn kary_form(&self) -> Option<KaryForm> {
        self.task.kary_form()
    }
    fn record_stride(&self) -> usize {
        self.task.record_stride()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tasks::{MeanTask, SumTask};

    #[test]
    fn default_extract_parses_plain_and_keyed_lines() {
        let task = MeanTask;
        assert_eq!(task.extract("3.5"), Some(3.5));
        assert_eq!(task.extract("key\t7.25"), Some(7.25));
        assert_eq!(task.extract("a\tb\t-2"), Some(-2.0));
        assert_eq!(task.extract("junk"), None);
    }

    #[test]
    fn evaluate_composes_initialize_and_finalize() {
        assert_eq!(MeanTask.evaluate(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(SumTask.evaluate(&[1.0, 2.0, 3.0]), 6.0);
    }

    #[test]
    fn task_estimator_adapts_to_the_bootstrap_interface() {
        let task = MeanTask;
        let est = TaskEstimator::new(&task);
        assert_eq!(est.estimate(&[2.0, 4.0]), 3.0);
        assert_eq!(Estimator::name(&est), "mean");
    }

    #[test]
    fn default_correct_is_identity() {
        assert_eq!(MeanTask.correct(42.0, 0.01), 42.0);
    }
}
