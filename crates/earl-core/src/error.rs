//! Error type for the EARL library.

use std::fmt;

use earl_bootstrap::StatsError;
use earl_dfs::DfsError;
use earl_mapreduce::MrError;
use earl_sampling::SamplingError;

/// Errors raised by EARL.
#[derive(Debug, Clone, PartialEq)]
pub enum EarlError {
    /// The underlying DFS reported an error.
    Dfs(DfsError),
    /// The MapReduce engine reported an error.
    MapReduce(MrError),
    /// A sampler reported an error.
    Sampling(SamplingError),
    /// The statistics layer reported an error.
    Stats(StatsError),
    /// The configuration is invalid.
    InvalidConfig(String),
    /// The input contained no parsable records for the task.
    NoUsableRecords,
    /// The requested accuracy could not be reached within the configured
    /// iteration budget; the partial report is attached.
    AccuracyNotReached(Box<crate::report::EarlReport>),
    /// A grouped run could not bring every group's error under the bound
    /// within the iteration budget; the partial per-group report is attached.
    GroupedAccuracyNotReached(Box<crate::grouped::GroupedEarlReport>),
    /// A weighted grouped statistic was undefined for the named group — its
    /// observed weights sum to zero — so the run cannot report a number for
    /// it (a NaN result would otherwise slip through the bound predicate).
    DegenerateGroupWeight(String),
    /// The run's progress observer requested cancellation at an iteration
    /// boundary; the partial report at the moment of cancellation is attached
    /// (every progressive update delivered so far remains valid).
    Cancelled(Box<crate::report::EarlReport>),
}

impl fmt::Display for EarlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EarlError::Dfs(e) => write!(f, "dfs error: {e}"),
            EarlError::MapReduce(e) => write!(f, "mapreduce error: {e}"),
            EarlError::Sampling(e) => write!(f, "sampling error: {e}"),
            EarlError::Stats(e) => write!(f, "statistics error: {e}"),
            EarlError::InvalidConfig(msg) => write!(f, "invalid EARL configuration: {msg}"),
            EarlError::NoUsableRecords => write!(f, "no records could be parsed for this task"),
            EarlError::AccuracyNotReached(report) => write!(
                f,
                "requested error bound {} not reached (achieved {:.4} with a {:.1}% sample)",
                report.target_sigma,
                report.error_estimate,
                report.sample_fraction * 100.0
            ),
            EarlError::GroupedAccuracyNotReached(report) => write!(
                f,
                "requested error bound {} not reached by every group (worst cv {:.4} across {} groups, {:.1}% sample)",
                report.target_sigma,
                report.worst_cv(),
                report.groups.len(),
                report.sample_fraction * 100.0
            ),
            EarlError::DegenerateGroupWeight(key) => write!(
                f,
                "group `{key}` has a degenerate (all-zero) weight sum — its weighted statistic is undefined"
            ),
            EarlError::Cancelled(report) => write!(
                f,
                "run cancelled after iteration {} (cv {:.4} with a {:.1}% sample)",
                report.iterations,
                report.error_estimate,
                report.sample_fraction * 100.0
            ),
        }
    }
}

impl std::error::Error for EarlError {}

impl From<DfsError> for EarlError {
    fn from(e: DfsError) -> Self {
        EarlError::Dfs(e)
    }
}

impl From<MrError> for EarlError {
    fn from(e: MrError) -> Self {
        EarlError::MapReduce(e)
    }
}

impl From<SamplingError> for EarlError {
    fn from(e: SamplingError) -> Self {
        EarlError::Sampling(e)
    }
}

impl From<StatsError> for EarlError {
    fn from(e: StatsError) -> Self {
        EarlError::Stats(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: EarlError = DfsError::FileNotFound("/x".into()).into();
        assert!(e.to_string().contains("/x"));
        let e: EarlError = MrError::ClusterLost.into();
        assert!(e.to_string().contains("mapreduce"));
        let e: EarlError = SamplingError::InvalidConfig("p".into()).into();
        assert!(e.to_string().contains("sampling"));
        let e: EarlError = StatsError::EmptySample.into();
        assert!(e.to_string().contains("statistics"));
        assert!(EarlError::NoUsableRecords.to_string().contains("parsed"));
        assert!(EarlError::InvalidConfig("sigma".into())
            .to_string()
            .contains("sigma"));
    }
}
