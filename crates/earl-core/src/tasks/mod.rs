//! Built-in analytics tasks.
//!
//! These cover the statistics used in the paper's evaluation — mean (Fig. 5),
//! median (Fig. 6), K-Means (Fig. 7) — plus the other aggregates the EARL
//! programming interface is designed around (sum and count with `1/p`
//! correction, quantiles, variance, extrema).

pub mod basic;
pub mod categorical;
pub mod kary;
pub mod kmeans;
pub mod moments;
pub mod order;

pub use basic::{CountTask, MeanTask, SumTask};
pub use categorical::ProportionTask;
pub use kary::{CorrelationTask, CovarianceTask, PairState, RatioTask, WeightedMeanTask};
pub use kmeans::{
    approximate_kmeans, centroid_match_error, exact_kmeans_mapreduce, lloyd, parse_point,
    ApproxKmeansReport, KmeansConfig, KmeansModel,
};
pub use moments::{StdDevTask, VarianceTask};
pub use order::{MaxTask, MedianTask, MinTask, QuantileTask};
