//! Categorical proportions (Appendix A of the paper).
//!
//! For categorical attributes the statistic of interest is the proportion of
//! records in a target category.  A proportion is the **mean of indicator
//! values** (1 for a match, 0 otherwise), so it is linear — under
//! [`BootstrapKernel::Auto`](earl_bootstrap::BootstrapKernel) the accuracy
//! estimation runs on the resample-free count-based kernel, and the whole
//! early-termination loop of the scalar driver applies unchanged.
//!
//! The paper's Appendix A estimates the proportion's accuracy with the normal
//! approximation (`p̂ ± z·√(p̂(1−p̂)/n)`) instead of the bootstrap;
//! [`ProportionTask::z_estimate`] exposes that route via
//! [`earl_bootstrap::categorical::ProportionEstimate`] so the two error
//! estimates can be cross-checked (the equivalence suite does).

use earl_bootstrap::categorical::ProportionEstimate;
use earl_bootstrap::estimators::{self, Estimator};
use earl_bootstrap::{Accumulator, LinearForm, StatsError};

use crate::task::EarlTask;
use crate::tasks::basic::SumState;

/// The proportion of records whose categorical field equals a target label.
///
/// Lines are `label` or `key<TAB>…<TAB>label`; the last tab-separated field is
/// the category.  Empty lines carry nothing.
#[derive(Debug, Clone)]
pub struct ProportionTask {
    target: String,
}

impl ProportionTask {
    /// A proportion task counting records whose category equals `target`.
    pub fn new(target: impl Into<String>) -> Self {
        Self {
            target: target.into(),
        }
    }

    /// The target category label.
    pub fn target(&self) -> &str {
        &self.target
    }

    /// The Appendix-A normal-approximation estimate for a proportion `p_hat`
    /// observed on `n` records — the z-based accuracy route the paper uses for
    /// categorical data, for cross-checking against the bootstrap cv.
    pub fn z_estimate(p_hat: f64, n: u64) -> Result<ProportionEstimate, StatsError> {
        let successes = (p_hat * n as f64).round().clamp(0.0, n as f64) as u64;
        ProportionEstimate::new(successes, n)
    }
}

impl EarlTask for ProportionTask {
    type State = SumState;

    fn name(&self) -> &'static str {
        "proportion"
    }

    /// `1.0` when the line's last field equals the target category, `0.0` for
    /// any other non-empty line.
    fn extract(&self, line: &str) -> Option<f64> {
        let label = line.rsplit('\t').next()?.trim();
        if label.is_empty() {
            return None;
        }
        Some(if label == self.target { 1.0 } else { 0.0 })
    }

    fn initialize(&self, values: &[f64]) -> SumState {
        SumState {
            count: values.len() as u64,
            sum: values.iter().sum(),
        }
    }

    fn update(&self, state: &mut SumState, other: &SumState) {
        state.count += other.count;
        state.sum += other.sum;
    }

    fn finalize(&self, state: &SumState) -> f64 {
        if state.count == 0 {
            f64::NAN
        } else {
            state.sum / state.count as f64
        }
    }

    // A proportion is the mean of indicators: scale-free (no correction) and
    // linear — Auto routes its AES to the resample-free count-based kernel.
    fn linear_form(&self) -> Option<LinearForm> {
        estimators::Mean.linear_form()
    }

    fn streaming_accumulator(&self) -> Option<Box<dyn Accumulator>> {
        estimators::Mean.accumulator()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskEstimator;
    use earl_bootstrap::bootstrap::{BootstrapKernel, ResolvedKernel};

    #[test]
    fn extract_maps_labels_to_indicators() {
        let task = ProportionTask::new("red");
        assert_eq!(task.extract("red"), Some(1.0));
        assert_eq!(task.extract("blue"), Some(0.0));
        assert_eq!(task.extract("k42\tred"), Some(1.0));
        assert_eq!(task.extract("k42\t0.5\tgreen"), Some(0.0));
        assert_eq!(task.extract("   "), None);
        assert_eq!(task.extract(""), None);
    }

    #[test]
    fn evaluate_is_the_indicator_mean_and_needs_no_correction() {
        let task = ProportionTask::new("x");
        let values = [1.0, 0.0, 0.0, 1.0];
        assert_eq!(task.evaluate(&values), 0.5);
        assert_eq!(task.correct(0.5, 0.01), 0.5, "proportions are scale-free");
        assert!(task.evaluate(&[]).is_nan());
    }

    #[test]
    fn auto_routes_the_proportion_to_the_count_based_kernel() {
        let task = ProportionTask::new("x");
        let estimator = TaskEstimator::new(&task);
        assert_eq!(
            BootstrapKernel::Auto.resolve_for(&estimator),
            ResolvedKernel::CountBased
        );
    }

    #[test]
    fn z_estimate_matches_the_categorical_module() {
        let est = ProportionTask::z_estimate(0.25, 400).unwrap();
        assert_eq!(est.successes, 100);
        assert!((est.p_hat - 0.25).abs() < 1e-12);
        assert!((est.std_error - (0.25f64 * 0.75 / 400.0).sqrt()).abs() < 1e-12);
        assert!(ProportionTask::z_estimate(0.5, 0).is_err());
    }
}
