//! Order statistics: median, quantiles, extrema.
//!
//! These are exactly the statistics for which no simple closed-form error
//! estimate exists — the paper's motivation for bootstrap-based accuracy
//! estimation (the jackknife famously fails for the median).  Their state is a
//! value buffer: `update()` concatenates buffers, `finalize()` sorts once.

use crate::task::EarlTask;

/// Mergeable buffer state for order statistics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BufferState {
    values: Vec<f64>,
}

impl BufferState {
    /// The buffered values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

fn quantile_of(values: &[f64], q: f64) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let pos = q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        sorted[lo] * (1.0 - (pos - lo as f64)) + sorted[hi] * (pos - lo as f64)
    }
}

macro_rules! buffer_task {
    ($(#[$doc:meta])* $name:ident, $task_name:literal, |$state:ident| $finalize:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, Default)]
        pub struct $name;

        impl EarlTask for $name {
            type State = BufferState;
            fn name(&self) -> &'static str {
                $task_name
            }
            fn initialize(&self, values: &[f64]) -> BufferState {
                BufferState { values: values.to_vec() }
            }
            fn update(&self, state: &mut BufferState, other: &BufferState) {
                state.values.extend_from_slice(&other.values);
            }
            fn finalize(&self, $state: &BufferState) -> f64 {
                $finalize
            }
            fn wire_spec(&self) -> Option<earl_mapreduce::TaskSpec> {
                Some(earl_mapreduce::TaskSpec::named($task_name))
            }
        }
    };
}

buffer_task!(
    /// The median (Fig. 6's workload).
    MedianTask,
    "median",
    |state| quantile_of(&state.values, 0.5)
);

buffer_task!(
    /// The minimum value.
    MinTask,
    "min",
    |state| state.values.iter().copied().fold(f64::NAN, |a, x| if a.is_nan() || x < a { x } else { a })
);

buffer_task!(
    /// The maximum value.
    MaxTask,
    "max",
    |state| state.values.iter().copied().fold(f64::NAN, |a, x| if a.is_nan() || x > a { x } else { a })
);

/// An arbitrary `q`-quantile.
#[derive(Debug, Clone, Copy)]
pub struct QuantileTask {
    q: f64,
}

impl QuantileTask {
    /// Creates a quantile task; `q` is clamped to `[0, 1]`.
    pub fn new(q: f64) -> Self {
        Self {
            q: q.clamp(0.0, 1.0),
        }
    }

    /// The quantile level.
    pub fn q(&self) -> f64 {
        self.q
    }
}

impl EarlTask for QuantileTask {
    type State = BufferState;
    fn name(&self) -> &'static str {
        "quantile"
    }
    fn initialize(&self, values: &[f64]) -> BufferState {
        BufferState {
            values: values.to_vec(),
        }
    }
    fn update(&self, state: &mut BufferState, other: &BufferState) {
        state.values.extend_from_slice(&other.values);
    }
    fn finalize(&self, state: &BufferState) -> f64 {
        quantile_of(&state.values, self.q)
    }
    fn wire_spec(&self) -> Option<earl_mapreduce::TaskSpec> {
        Some(earl_mapreduce::TaskSpec {
            name: "quantile".to_owned(),
            params: vec![self.q],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_and_quantiles() {
        let values = [9.0, 1.0, 5.0, 3.0, 7.0];
        assert_eq!(MedianTask.evaluate(&values), 5.0);
        assert_eq!(QuantileTask::new(0.0).evaluate(&values), 1.0);
        assert_eq!(QuantileTask::new(1.0).evaluate(&values), 9.0);
        assert_eq!(QuantileTask::new(0.5).evaluate(&values), 5.0);
        assert_eq!(QuantileTask::new(2.0).q(), 1.0);
        assert!(MedianTask.evaluate(&[]).is_nan());
    }

    #[test]
    fn extremes() {
        let values = [4.0, -2.0, 10.0];
        assert_eq!(MinTask.evaluate(&values), -2.0);
        assert_eq!(MaxTask.evaluate(&values), 10.0);
        assert!(MinTask.evaluate(&[]).is_nan());
    }

    #[test]
    fn update_concatenates_buffers() {
        let task = MedianTask;
        let mut state = task.initialize(&[1.0, 2.0]);
        let other = task.initialize(&[3.0, 4.0, 100.0]);
        task.update(&mut state, &other);
        assert_eq!(state.values().len(), 5);
        assert_eq!(task.finalize(&state), 3.0);
    }

    #[test]
    fn order_tasks_are_not_corrected() {
        assert_eq!(MedianTask.correct(42.0, 0.01), 42.0);
        assert_eq!(MaxTask.correct(7.0, 0.5), 7.0);
    }
}
