//! Sum-like tasks: mean, sum and count.
//!
//! These tasks have compact mergeable states (count + sum), which makes their
//! `update()` path truly incremental — the property the paper's
//! initialize/update/finalize/correct interface is designed for.  SUM and COUNT
//! are the canonical examples of tasks that *need* the `correct()` hook: a
//! value computed from a `p`-fraction sample must be scaled by `1/p`.

use earl_bootstrap::estimators::{self, Estimator};
use earl_bootstrap::{Accumulator, LinearForm};
use serde::{Deserialize, Serialize};

use crate::task::EarlTask;

/// Mergeable (count, sum) state shared by the sum-like tasks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SumState {
    /// Number of values absorbed.
    pub count: u64,
    /// Sum of the values absorbed.
    pub sum: f64,
}

impl SumState {
    fn from_values(values: &[f64]) -> Self {
        Self {
            count: values.len() as u64,
            sum: values.iter().sum(),
        }
    }

    fn merge(&mut self, other: &SumState) {
        self.count += other.count;
        self.sum += other.sum;
    }
}

/// The arithmetic mean.  Scale-free: no correction needed.
#[derive(Debug, Clone, Copy, Default)]
pub struct MeanTask;

impl EarlTask for MeanTask {
    type State = SumState;
    fn name(&self) -> &'static str {
        "mean"
    }
    fn initialize(&self, values: &[f64]) -> SumState {
        SumState::from_values(values)
    }
    fn update(&self, state: &mut SumState, other: &SumState) {
        state.merge(other);
    }
    fn finalize(&self, state: &SumState) -> f64 {
        if state.count == 0 {
            f64::NAN
        } else {
            state.sum / state.count as f64
        }
    }
    // The mean is linear: the same arithmetic as the estimator-side `Mean`,
    // so the accuracy-estimation bootstrap can run resample-free.
    fn linear_form(&self) -> Option<LinearForm> {
        estimators::Mean.linear_form()
    }
    fn streaming_accumulator(&self) -> Option<Box<dyn Accumulator>> {
        estimators::Mean.accumulator()
    }
    fn wire_spec(&self) -> Option<earl_mapreduce::TaskSpec> {
        Some(earl_mapreduce::TaskSpec::named("mean"))
    }
}

/// The sum of all values.  Requires the `1/p` correction the paper uses as its
/// running example for `correct()`.
#[derive(Debug, Clone, Copy, Default)]
pub struct SumTask;

impl EarlTask for SumTask {
    type State = SumState;
    fn name(&self) -> &'static str {
        "sum"
    }
    fn initialize(&self, values: &[f64]) -> SumState {
        SumState::from_values(values)
    }
    fn update(&self, state: &mut SumState, other: &SumState) {
        state.merge(other);
    }
    fn finalize(&self, state: &SumState) -> f64 {
        state.sum
    }
    fn correct(&self, result: f64, p: f64) -> f64 {
        if p > 0.0 {
            result / p
        } else {
            result
        }
    }
    fn linear_form(&self) -> Option<LinearForm> {
        estimators::Sum.linear_form()
    }
    fn streaming_accumulator(&self) -> Option<Box<dyn Accumulator>> {
        estimators::Sum.accumulator()
    }
    fn wire_spec(&self) -> Option<earl_mapreduce::TaskSpec> {
        Some(earl_mapreduce::TaskSpec::named("sum"))
    }
}

/// The number of records.  Also corrected by `1/p`.
#[derive(Debug, Clone, Copy, Default)]
pub struct CountTask;

impl EarlTask for CountTask {
    type State = SumState;
    fn name(&self) -> &'static str {
        "count"
    }
    fn extract(&self, line: &str) -> Option<f64> {
        // Every non-empty line counts as one record regardless of content.
        if line.trim().is_empty() {
            None
        } else {
            Some(1.0)
        }
    }
    fn initialize(&self, values: &[f64]) -> SumState {
        SumState::from_values(values)
    }
    fn update(&self, state: &mut SumState, other: &SumState) {
        state.merge(other);
    }
    fn finalize(&self, state: &SumState) -> f64 {
        state.count as f64
    }
    fn correct(&self, result: f64, p: f64) -> f64 {
        if p > 0.0 {
            result / p
        } else {
            result
        }
    }
    fn linear_form(&self) -> Option<LinearForm> {
        estimators::Count.linear_form()
    }
    fn streaming_accumulator(&self) -> Option<Box<dyn Accumulator>> {
        estimators::Count.accumulator()
    }
    fn wire_spec(&self) -> Option<earl_mapreduce::TaskSpec> {
        Some(earl_mapreduce::TaskSpec::named("count"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_is_incremental_and_scale_free() {
        let task = MeanTask;
        let mut state = task.initialize(&[1.0, 2.0]);
        let more = task.initialize(&[3.0, 4.0, 5.0]);
        task.update(&mut state, &more);
        assert_eq!(task.finalize(&state), 3.0);
        assert_eq!(task.correct(3.0, 0.01), 3.0, "mean needs no correction");
        assert!(task.finalize(&task.initialize(&[])).is_nan());
    }

    #[test]
    fn sum_and_count_are_corrected_by_one_over_p() {
        let sum = SumTask;
        assert_eq!(sum.evaluate(&[1.0, 2.0, 3.0]), 6.0);
        assert_eq!(sum.correct(6.0, 0.01), 600.0);
        assert_eq!(
            sum.correct(6.0, 0.0),
            6.0,
            "degenerate p leaves the value alone"
        );

        let count = CountTask;
        assert_eq!(count.evaluate(&[9.0, 9.0, 9.0, 9.0]), 4.0);
        assert_eq!(count.correct(4.0, 0.25), 16.0);
        assert_eq!(count.extract("anything"), Some(1.0));
        assert_eq!(count.extract("   "), None);
    }

    #[test]
    fn incremental_update_matches_batch_evaluation() {
        let task = SumTask;
        let values: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let batch = task.evaluate(&values);
        let mut state = task.initialize(&values[..30]);
        let s2 = task.initialize(&values[30..70]);
        let s3 = task.initialize(&values[70..]);
        task.update(&mut state, &s2);
        task.update(&mut state, &s3);
        assert_eq!(task.finalize(&state), batch);
    }
}
