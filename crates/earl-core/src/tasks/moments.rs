//! Second-moment tasks: variance and standard deviation.
//!
//! Their state is a mergeable moment accumulator (count, mean, M2) à la
//! Chan/Welford, so `update()` is O(1) regardless of how many values each
//! partial state absorbed.

use earl_bootstrap::estimators::{self, Estimator};
use earl_bootstrap::{Accumulator, StreamingStats};

use crate::task::EarlTask;

fn stats_from(values: &[f64]) -> StreamingStats {
    let mut s = StreamingStats::new();
    for &v in values {
        s.push(v);
    }
    s
}

/// The unbiased sample variance.
#[derive(Debug, Clone, Copy, Default)]
pub struct VarianceTask;

impl EarlTask for VarianceTask {
    type State = StreamingStats;
    fn name(&self) -> &'static str {
        "variance"
    }
    fn initialize(&self, values: &[f64]) -> StreamingStats {
        stats_from(values)
    }
    fn update(&self, state: &mut StreamingStats, other: &StreamingStats) {
        state.merge(other);
    }
    fn finalize(&self, state: &StreamingStats) -> f64 {
        state.variance()
    }
    // Second moments are not linear, but they are single-pass: the streaming
    // bootstrap kernel applies (Welford), the count-based one does not.
    fn streaming_accumulator(&self) -> Option<Box<dyn Accumulator>> {
        estimators::Variance.accumulator()
    }
    fn wire_spec(&self) -> Option<earl_mapreduce::TaskSpec> {
        Some(earl_mapreduce::TaskSpec::named("variance"))
    }
}

/// The sample standard deviation.
#[derive(Debug, Clone, Copy, Default)]
pub struct StdDevTask;

impl EarlTask for StdDevTask {
    type State = StreamingStats;
    fn name(&self) -> &'static str {
        "stddev"
    }
    fn initialize(&self, values: &[f64]) -> StreamingStats {
        stats_from(values)
    }
    fn update(&self, state: &mut StreamingStats, other: &StreamingStats) {
        state.merge(other);
    }
    fn finalize(&self, state: &StreamingStats) -> f64 {
        state.std_dev()
    }
    fn streaming_accumulator(&self) -> Option<Box<dyn Accumulator>> {
        estimators::StdDev.accumulator()
    }
    fn wire_spec(&self) -> Option<earl_mapreduce::TaskSpec> {
        Some(earl_mapreduce::TaskSpec::named("stddev"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DATA: [f64; 8] = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];

    #[test]
    fn variance_matches_direct_computation() {
        assert!((VarianceTask.evaluate(&DATA) - 32.0 / 7.0).abs() < 1e-12);
        assert!((StdDevTask.evaluate(&DATA) - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert!(VarianceTask.evaluate(&[1.0]).is_nan());
    }

    #[test]
    fn partial_states_merge_to_the_batch_answer() {
        let task = VarianceTask;
        let batch = task.evaluate(&DATA);
        let mut state = task.initialize(&DATA[..3]);
        let other = task.initialize(&DATA[3..]);
        task.update(&mut state, &other);
        assert!((task.finalize(&state) - batch).abs() < 1e-12);
    }

    #[test]
    fn scale_free_statistics_are_not_corrected() {
        assert_eq!(VarianceTask.correct(5.0, 0.1), 5.0);
        assert_eq!(StdDevTask.correct(5.0, 0.1), 5.0);
    }
}
