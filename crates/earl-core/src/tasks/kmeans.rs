//! K-Means: the paper's advanced-mining showcase (Fig. 7).
//!
//! Two implementations are provided:
//!
//! * [`exact_kmeans_mapreduce`] — the stock-Hadoop baseline: each Lloyd
//!   iteration is a full MapReduce job over the entire data set (map: assign
//!   each point to its nearest centroid; reduce: average each cluster's
//!   points).
//! * [`approximate_kmeans`] — the EARL version: Lloyd runs on a uniform sample
//!   of the points, and the bootstrap estimates the stability (cv) of the
//!   per-point within-cluster cost; the sample expands until the cv satisfies
//!   the error bound.  The paper notes this speeds K-Means up both because the
//!   input is smaller and because K-Means converges faster on smaller data.

use earl_bootstrap::estimators::coefficient_of_variation;
use earl_bootstrap::rng::sample_indices_with_replacement;
use earl_cluster::{Phase, SimDuration};
use earl_dfs::{Dfs, DfsPath};
use earl_mapreduce::{InputSource, JobConf, MapContext, Mapper, ReduceContext, Reducer};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::config::EarlConfig;
use crate::error::EarlError;
use crate::Result;
use earl_sampling::{PreMapSampler, SampleSource};

/// Configuration of a K-Means run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KmeansConfig {
    /// Number of clusters.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iterations: usize,
    /// Convergence tolerance on total centroid movement.
    pub tolerance: f64,
    /// Seed for centroid initialisation.
    pub seed: u64,
    /// Number of random restarts; the model with the lowest within-cluster cost
    /// is kept.  The paper notes K-Means "is typically restarted from many
    /// initial positions" because it converges to local optima.
    pub restarts: usize,
}

impl Default for KmeansConfig {
    fn default() -> Self {
        Self {
            k: 8,
            max_iterations: 20,
            tolerance: 1e-3,
            seed: 0x4B,
            restarts: 3,
        }
    }
}

/// A fitted K-Means model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KmeansModel {
    /// The fitted centroids.
    pub centroids: Vec<Vec<f64>>,
    /// Total within-cluster sum of squares over the points it was fitted on.
    pub wcss: f64,
    /// Lloyd iterations performed.
    pub iterations: usize,
}

impl KmeansModel {
    /// Mean within-cluster cost per point (scale-free across sample sizes).
    pub fn cost_per_point(&self, num_points: usize) -> f64 {
        if num_points == 0 {
            f64::NAN
        } else {
            self.wcss / num_points as f64
        }
    }
}

/// Report of an approximate (EARL) K-Means run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ApproxKmeansReport {
    /// The fitted model.
    pub model: KmeansModel,
    /// Coefficient of variation of the per-point cost across bootstrap
    /// resamples — EARL's error estimate for the clustering.
    pub cost_cv: f64,
    /// Points in the final sample.
    pub sample_size: u64,
    /// Points in the full data set.
    pub population: u64,
    /// Sample-expansion iterations.
    pub iterations: usize,
    /// Simulated time of the run.
    pub sim_time: SimDuration,
}

fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

fn nearest_centroid(point: &[f64], centroids: &[Vec<f64>]) -> (usize, f64) {
    let mut best = (0usize, f64::INFINITY);
    for (i, c) in centroids.iter().enumerate() {
        let d = squared_distance(point, c);
        if d < best.1 {
            best = (i, d);
        }
    }
    best
}

/// k-means++ seeding: the first centroid is a uniformly random point, each
/// subsequent centroid is drawn with probability proportional to its squared
/// distance from the nearest already-chosen centroid.
fn kmeans_plus_plus_init(points: &[Vec<f64>], k: usize, rng: &mut StdRng) -> Vec<Vec<f64>> {
    use rand::Rng;
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    centroids.push(points[rng.gen_range(0..points.len())].clone());
    while centroids.len() < k {
        let distances: Vec<f64> = points
            .iter()
            .map(|p| nearest_centroid(p, &centroids).1)
            .collect();
        let total: f64 = distances.iter().sum();
        let chosen = if total <= 0.0 {
            rng.gen_range(0..points.len())
        } else {
            let mut target = rng.gen::<f64>() * total;
            let mut idx = 0;
            for (i, d) in distances.iter().enumerate() {
                target -= d;
                if target <= 0.0 {
                    idx = i;
                    break;
                }
            }
            idx
        };
        centroids.push(points[chosen].clone());
    }
    centroids
}

/// Lloyd's algorithm over in-memory points with k-means++ seeding and
/// `restarts` random restarts (keeping the lowest-cost model).
pub fn lloyd(points: &[Vec<f64>], config: &KmeansConfig) -> Result<KmeansModel> {
    if points.is_empty() {
        return Err(EarlError::NoUsableRecords);
    }
    if config.k == 0 || config.k > points.len() {
        return Err(EarlError::InvalidConfig(format!(
            "k = {} must be in [1, number of points = {}]",
            config.k,
            points.len()
        )));
    }
    let restarts = config.restarts.max(1);
    let mut best: Option<KmeansModel> = None;
    for restart in 0..restarts {
        let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(restart as u64));
        let model = lloyd_once(points, config, &mut rng);
        if best.as_ref().is_none_or(|b| model.wcss < b.wcss) {
            best = Some(model);
        }
    }
    Ok(best.expect("at least one restart ran"))
}

fn lloyd_once(points: &[Vec<f64>], config: &KmeansConfig, rng: &mut StdRng) -> KmeansModel {
    let dims = points[0].len();
    let mut centroids = kmeans_plus_plus_init(points, config.k, rng);
    let mut iterations = 0;
    loop {
        iterations += 1;
        let mut sums = vec![vec![0.0; dims]; config.k];
        let mut counts = vec![0usize; config.k];
        let mut wcss = 0.0;
        for point in points {
            let (idx, d) = nearest_centroid(point, &centroids);
            wcss += d;
            counts[idx] += 1;
            for (s, v) in sums[idx].iter_mut().zip(point) {
                *s += v;
            }
        }
        let mut movement = 0.0;
        for i in 0..config.k {
            if counts[i] == 0 {
                continue; // empty cluster keeps its centroid
            }
            let new: Vec<f64> = sums[i].iter().map(|s| s / counts[i] as f64).collect();
            movement += squared_distance(&new, &centroids[i]).sqrt();
            centroids[i] = new;
        }
        if movement < config.tolerance || iterations >= config.max_iterations {
            return KmeansModel {
                centroids,
                wcss,
                iterations,
            };
        }
    }
}

/// Parses a point from a line of whitespace-separated coordinates.
pub fn parse_point(line: &str) -> Option<Vec<f64>> {
    let coords: Option<Vec<f64>> = line.split_whitespace().map(|t| t.parse().ok()).collect();
    coords.filter(|c| !c.is_empty())
}

/// How far each `truth` centroid is from its nearest `found` centroid, as a
/// fraction of the overall centroid spread — the "within 5 % of the optimal"
/// measure the paper reports for Fig. 7.
pub fn centroid_match_error(found: &[Vec<f64>], truth: &[Vec<f64>]) -> f64 {
    if truth.is_empty() || found.is_empty() {
        return f64::NAN;
    }
    let spread = {
        let mut max = 0.0f64;
        for a in truth {
            for b in truth {
                max = max.max(squared_distance(a, b).sqrt());
            }
        }
        max.max(1e-12)
    };
    let total: f64 = truth
        .iter()
        .map(|t| {
            found
                .iter()
                .map(|f| squared_distance(t, f).sqrt())
                .fold(f64::INFINITY, f64::min)
        })
        .sum();
    total / truth.len() as f64 / spread
}

// ---------------------------------------------------------------------------
// Exact MapReduce K-Means (stock Hadoop baseline)
// ---------------------------------------------------------------------------

struct AssignMapper {
    centroids: Vec<Vec<f64>>,
}

impl Mapper for AssignMapper {
    type OutKey = u32;
    type OutValue = (Vec<f64>, u64);
    fn map(&self, _offset: u64, line: &str, ctx: &mut MapContext<u32, (Vec<f64>, u64)>) {
        if let Some(point) = parse_point(line) {
            let (idx, _) = nearest_centroid(&point, &self.centroids);
            ctx.emit(idx as u32, (point, 1));
        }
    }
    fn is_heavy(&self) -> bool {
        true
    }
}

struct RecomputeReducer;

impl Reducer for RecomputeReducer {
    type InKey = u32;
    type InValue = (Vec<f64>, u64);
    type Output = (u32, Vec<f64>);
    fn reduce(
        &self,
        key: &u32,
        values: &[(Vec<f64>, u64)],
        ctx: &mut ReduceContext<(u32, Vec<f64>)>,
    ) {
        let dims = values.first().map(|(p, _)| p.len()).unwrap_or(0);
        let mut sum = vec![0.0; dims];
        let mut count = 0u64;
        for (point, c) in values {
            for (s, v) in sum.iter_mut().zip(point) {
                *s += v;
            }
            count += c;
        }
        if count > 0 {
            ctx.emit((*key, sum.into_iter().map(|s| s / count as f64).collect()));
        }
    }
    fn is_heavy(&self) -> bool {
        true
    }
}

/// Runs exact K-Means over the whole file, one MapReduce job per Lloyd
/// iteration — the behaviour of stock Hadoop in Fig. 7.  Returns the model and
/// the simulated time spent.
pub fn exact_kmeans_mapreduce(
    dfs: &Dfs,
    path: impl Into<DfsPath>,
    config: &KmeansConfig,
) -> Result<(KmeansModel, SimDuration)> {
    let path = path.into();
    let cluster = dfs.cluster().clone();
    let start = cluster.elapsed();

    // Initial centroids: k-means++ seeding over a small pre-map sample of the
    // points (sample-based seeding is standard practice for MapReduce K-Means).
    let seed_count = (config.k * 25).max(200);
    let seed_batch =
        earl_sampling::premap::premap_sample(dfs, path.clone(), seed_count, config.seed)?;
    let seed_points: Vec<Vec<f64>> = seed_batch
        .records
        .iter()
        .filter_map(|(_, l)| parse_point(l))
        .collect();
    if seed_points.len() < config.k {
        return Err(EarlError::InvalidConfig(format!(
            "could not draw {} initial centroids from {path}",
            config.k
        )));
    }
    let mut init_rng = StdRng::seed_from_u64(config.seed);
    let mut centroids = kmeans_plus_plus_init(&seed_points, config.k, &mut init_rng);

    let mut iterations = 0;
    loop {
        iterations += 1;
        let conf = JobConf::new(
            format!("kmeans-iter-{iterations}"),
            InputSource::Path(path.clone()),
        );
        let mapper = AssignMapper {
            centroids: centroids.clone(),
        };
        let result = earl_mapreduce::run_job(dfs, &conf, &mapper, &RecomputeReducer)?;
        let mut movement = 0.0;
        for (idx, new_centroid) in result.outputs {
            let idx = idx as usize;
            if idx < centroids.len() {
                movement += squared_distance(&new_centroid, &centroids[idx]).sqrt();
                centroids[idx] = new_centroid;
            }
        }
        if movement < config.tolerance || iterations >= config.max_iterations {
            break;
        }
    }

    // Final WCSS pass (one more scan, as stock Hadoop would do to score the model).
    let conf = JobConf::new("kmeans-score", InputSource::Path(path.clone()));
    let scorer = WcssMapper {
        centroids: centroids.clone(),
    };
    let score = earl_mapreduce::run_job(dfs, &conf, &scorer, &SumReducer)?;
    let wcss = score.outputs.first().copied().unwrap_or(f64::NAN);
    Ok((
        KmeansModel {
            centroids,
            wcss,
            iterations,
        },
        cluster.elapsed() - start,
    ))
}

struct WcssMapper {
    centroids: Vec<Vec<f64>>,
}

impl Mapper for WcssMapper {
    type OutKey = u32;
    type OutValue = f64;
    fn map(&self, _offset: u64, line: &str, ctx: &mut MapContext<u32, f64>) {
        if let Some(point) = parse_point(line) {
            ctx.emit(0, nearest_centroid(&point, &self.centroids).1);
        }
    }
    fn is_heavy(&self) -> bool {
        true
    }
}

struct SumReducer;

impl Reducer for SumReducer {
    type InKey = u32;
    type InValue = f64;
    type Output = f64;
    fn reduce(&self, _key: &u32, values: &[f64], ctx: &mut ReduceContext<f64>) {
        ctx.emit(values.iter().sum());
    }
}

// ---------------------------------------------------------------------------
// Approximate (EARL) K-Means
// ---------------------------------------------------------------------------

/// Runs K-Means on a uniform sample of the points, expanding the sample until
/// the bootstrap cv of the per-point cost meets the error bound in
/// `earl_config.sigma`.
pub fn approximate_kmeans(
    dfs: &Dfs,
    path: impl Into<DfsPath>,
    earl_config: &EarlConfig,
    kmeans_config: &KmeansConfig,
) -> Result<ApproxKmeansReport> {
    earl_config.validate()?;
    let path = path.into();
    let status = dfs.status(path.clone())?;
    let population = status.num_records.unwrap_or(0);
    if population == 0 {
        return Err(EarlError::NoUsableRecords);
    }
    let cluster = dfs.cluster().clone();
    let start = cluster.elapsed();
    let mut rng = StdRng::seed_from_u64(earl_config.seed);

    let mut sampler = PreMapSampler::new(dfs.clone(), path, earl_config.seed)?;
    let bootstraps = earl_config.bootstraps.unwrap_or(10).max(2);
    let mut target = earl_config
        .sample_size
        .unwrap_or_else(|| {
            ((population as f64 * 0.02).ceil() as u64).max(earl_config.min_pilot * 2)
        })
        .min(population);

    let mut points: Vec<Vec<f64>> = Vec::new();
    let mut iterations = 0;
    let mut model;
    let mut cost_cv;
    loop {
        iterations += 1;
        if (points.len() as u64) < target {
            let batch = sampler.draw((target - points.len() as u64) as usize)?;
            points.extend(batch.records.iter().filter_map(|(_, l)| parse_point(l)));
        }
        if points.is_empty() {
            return Err(EarlError::NoUsableRecords);
        }
        // Fit on the sample; charge the clustering work as heavy reduce CPU.
        model = lloyd(&points, kmeans_config)?;
        cluster.charge_reduce_cpu(
            Phase::Reduce,
            (points.len() * model.iterations) as u64,
            true,
        );

        // Bootstrap the per-point cost to estimate the clustering's stability.
        let costs: Vec<f64> = (0..bootstraps)
            .map(|_| {
                let idx = sample_indices_with_replacement(&mut rng, points.len(), points.len());
                let resample: Vec<Vec<f64>> = idx.into_iter().map(|i| points[i].clone()).collect();
                lloyd(&resample, kmeans_config).map(|m| m.cost_per_point(resample.len()))
            })
            .collect::<Result<Vec<f64>>>()?;
        cluster.charge_reduce_cpu(
            Phase::AccuracyEstimation,
            (bootstraps * points.len()) as u64,
            true,
        );
        cost_cv = coefficient_of_variation(&costs);

        let done = (cost_cv.is_finite() && cost_cv <= earl_config.sigma)
            || points.len() as u64 >= population
            || iterations >= earl_config.max_iterations;
        if done {
            return Ok(ApproxKmeansReport {
                model,
                cost_cv,
                sample_size: points.len() as u64,
                population,
                iterations,
                sim_time: cluster.elapsed() - start,
            });
        }
        target =
            ((points.len() as f64 * earl_config.expansion_factor).ceil() as u64).min(population);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use earl_cluster::{Cluster, CostModel};
    use earl_dfs::DfsConfig;
    use earl_workload::{KmeansDataset, KmeansSpec};

    fn kmeans_dfs(points: u64, k: usize, seed: u64) -> (Dfs, KmeansDataset) {
        let cluster = Cluster::builder()
            .nodes(5)
            .cost_model(CostModel::commodity_2012())
            .build()
            .unwrap();
        let dfs = Dfs::new(
            cluster,
            DfsConfig {
                block_size: 1 << 17,
                replication: 2,
                io_chunk: 1024,
            },
        )
        .unwrap();
        let spec = KmeansSpec {
            num_points: points,
            k,
            dims: 2,
            cluster_std_dev: 1.5,
            centroid_spread: 200.0,
            seed,
        };
        let ds = KmeansDataset::generate(&dfs, "/points", &spec).unwrap();
        (dfs, ds)
    }

    #[test]
    fn lloyd_recovers_well_separated_clusters() {
        let (_, ds) = kmeans_dfs(2_000, 4, 1);
        let model = lloyd(
            &ds.points,
            &KmeansConfig {
                k: 4,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(model.centroids.len(), 4);
        let err = centroid_match_error(&model.centroids, &ds.true_centroids);
        assert!(
            err < 0.05,
            "centroid error {err} should be under 5% of the spread"
        );
        assert!(model.wcss > 0.0);
        assert!(model.iterations >= 1);
    }

    #[test]
    fn lloyd_validates_inputs() {
        assert!(lloyd(&[], &KmeansConfig::default()).is_err());
        let points = vec![vec![0.0, 0.0], vec![1.0, 1.0]];
        assert!(lloyd(
            &points,
            &KmeansConfig {
                k: 5,
                ..Default::default()
            }
        )
        .is_err());
        assert!(lloyd(
            &points,
            &KmeansConfig {
                k: 0,
                ..Default::default()
            }
        )
        .is_err());
        let ok = lloyd(
            &points,
            &KmeansConfig {
                k: 2,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(ok.wcss < 1e-9, "2 points, 2 clusters → zero cost");
    }

    #[test]
    fn approximate_kmeans_matches_truth_and_beats_exact_on_time() {
        let (dfs, ds) = kmeans_dfs(20_000, 4, 2);
        let kconfig = KmeansConfig {
            k: 4,
            max_iterations: 15,
            ..Default::default()
        };
        let earl_config = EarlConfig {
            sigma: 0.05,
            bootstraps: Some(8),
            ..EarlConfig::default()
        };

        dfs.cluster().reset_accounting();
        let approx = approximate_kmeans(&dfs, "/points", &earl_config, &kconfig).unwrap();
        let approx_time = approx.sim_time;

        dfs.cluster().reset_accounting();
        let (exact_model, exact_time) = exact_kmeans_mapreduce(&dfs, "/points", &kconfig).unwrap();

        // Both find the generative centroids...
        let approx_err = centroid_match_error(&approx.model.centroids, &ds.true_centroids);
        let exact_err = centroid_match_error(&exact_model.centroids, &ds.true_centroids);
        assert!(
            approx_err < 0.05,
            "EARL centroids within 5% of optimal (got {approx_err})"
        );
        assert!(exact_err < 0.05);
        // ...but EARL does it on a fraction of the data and much faster.
        assert!(approx.sample_size < approx.population / 2);
        assert!(
            approx_time < exact_time,
            "approximate {} must be faster than exact {}",
            approx_time,
            exact_time
        );
        assert!(approx.cost_cv.is_finite());
    }

    #[test]
    fn parse_point_and_match_error_edges() {
        assert_eq!(parse_point("1.0 2.0 3.0"), Some(vec![1.0, 2.0, 3.0]));
        assert_eq!(parse_point("1.0 x"), None);
        assert_eq!(parse_point(""), None);
        assert!(centroid_match_error(&[], &[vec![0.0]]).is_nan());
        let c = vec![vec![0.0, 0.0], vec![10.0, 10.0]];
        assert!(centroid_match_error(&c, &c) < 1e-12);
    }

    #[test]
    fn empty_file_is_rejected() {
        let cluster = Cluster::for_tests();
        let dfs = Dfs::new(cluster, DfsConfig::small_blocks(1024)).unwrap();
        dfs.write_lines("/empty", std::iter::empty::<String>())
            .unwrap_or_else(|_| {
                // writing an empty file may legitimately fail; create a file with a
                // blank line instead so the path exists
                dfs.write_lines("/empty", [""]).unwrap()
            });
        let err = approximate_kmeans(
            &dfs,
            "/empty",
            &EarlConfig::default(),
            &KmeansConfig::default(),
        );
        assert!(err.is_err());
    }
}
