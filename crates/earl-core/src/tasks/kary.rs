//! Ratio-of-linear tasks: weighted mean, ratio of sums, paired covariance and
//! Pearson correlation.
//!
//! These statistics are not linear in the single-sum sense, but each is a
//! smooth combiner of a *tuple* of per-record linear sums — the k-ary linear
//! forms of [`earl_bootstrap::KaryForm`].  Declaring the form routes their
//! accuracy-estimation bootstraps to the resample-free count-based kernel
//! under [`BootstrapKernel::Auto`](earl_bootstrap::BootstrapKernel), exactly
//! like Mean/Sum/Count before them, and makes every kernel resample **whole
//! records** so a pair's columns are never split.
//!
//! Input lines carry two columns: the task takes the *last two* tab-separated
//! fields of a line, so `value<TAB>weight`, `x<TAB>y` and
//! `key<TAB>x<TAB>y` all parse.  A line whose two columns do not both parse
//! contributes nothing (all-or-nothing extraction keeps the flat sample a
//! whole number of records).
//!
//! All four statistics are **scale-free under sampling** — numerator and
//! denominator sums shrink by the same factor `p`, covariance/correlation are
//! per-record moments — so `correct()` stays the identity.

use earl_bootstrap::estimators::{
    Estimator, PairedCorrelation, PairedCovariance, Ratio, WeightedMean,
};
use earl_bootstrap::KaryForm;
use serde::{Deserialize, Serialize};

use crate::task::EarlTask;

/// Parses the last two tab-separated fields of `line` as `(f64, f64)`.
fn extract_pair(line: &str) -> Option<(f64, f64)> {
    let mut fields = line.rsplit('\t');
    let second: f64 = fields.next()?.trim().parse().ok()?;
    let first: f64 = fields.next()?.trim().parse().ok()?;
    Some((first, second))
}

/// Mergeable state of the pair tasks: component sums plus the record count —
/// the same sums the k-ary combiner consumes, so `update()` is exact
/// incremental merging.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PairState {
    /// Number of records absorbed.
    pub records: u64,
    /// Component sums (first `arity` slots meaningful).
    pub sums: [f64; earl_bootstrap::MAX_KARY_COMPONENTS],
}

fn init_state(form: &KaryForm, values: &[f64]) -> PairState {
    let mut state = PairState::default();
    let mut scratch = [0.0; earl_bootstrap::MAX_KARY_COMPONENTS];
    for record in values.chunks_exact(form.stride()) {
        form.components_of(record, &mut scratch);
        for (sum, component) in state.sums.iter_mut().zip(&scratch).take(form.arity()) {
            *sum += component;
        }
        state.records += 1;
    }
    state
}

fn merge_state(state: &mut PairState, other: &PairState) {
    state.records += other.records;
    for c in 0..state.sums.len() {
        state.sums[c] += other.sums[c];
    }
}

macro_rules! pair_task {
    ($(#[$doc:meta])* $task:ident, $estimator:ty, $name:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, Default)]
        pub struct $task;

        impl EarlTask for $task {
            type State = PairState;

            fn name(&self) -> &'static str {
                $name
            }

            /// The record's *first* column (the value / numerator / x), for
            /// callers that want one representative number per line — the
            /// same convention as
            /// [`GroupedAggregate::extract`](crate::grouped::GroupedAggregate).
            /// Engine paths always use
            /// [`extract_record`](EarlTask::extract_record), which carries the
            /// whole record.
            fn extract(&self, line: &str) -> Option<f64> {
                extract_pair(line).map(|(a, _)| a)
            }

            fn extract_record(&self, line: &str, out: &mut Vec<f64>) -> bool {
                match extract_pair(line) {
                    Some((a, b)) => {
                        out.push(a);
                        out.push(b);
                        true
                    }
                    None => false,
                }
            }

            fn initialize(&self, values: &[f64]) -> PairState {
                init_state(&self.kary_form().expect("pair tasks declare a form"), values)
            }

            fn update(&self, state: &mut PairState, other: &PairState) {
                merge_state(state, other);
            }

            fn finalize(&self, state: &PairState) -> f64 {
                self.kary_form()
                    .expect("pair tasks declare a form")
                    .combine(&state.sums, state.records as f64)
            }

            fn kary_form(&self) -> Option<KaryForm> {
                Estimator::kary_form(&<$estimator>::default())
            }
        }
    };
}

pair_task!(
    /// The weighted mean `Σwx / Σw` over `value<TAB>weight` lines.
    ///
    /// The canonical grouped-analytics aggregate (`SUM(price*qty)/SUM(qty)`).
    /// All-zero weights leave the statistic undefined (`NaN`); the grouped
    /// driver turns that into
    /// [`EarlError::DegenerateGroupWeight`](crate::EarlError) instead of
    /// reporting a NaN result.
    WeightedMeanTask,
    WeightedMean,
    "weighted_mean"
);

pair_task!(
    /// The ratio of sums `Σa / Σb` over `numerator<TAB>denominator` lines
    /// (revenue per click, bytes per request, …).
    RatioTask,
    Ratio,
    "ratio"
);

pair_task!(
    /// The sample covariance (n−1 denominator) over `x<TAB>y` lines.
    CovarianceTask,
    PairedCovariance,
    "covariance"
);

pair_task!(
    /// Pearson correlation over `x<TAB>y` lines — the paper's §3.3 example of
    /// a structure-capturing statistic sampling still serves.
    CorrelationTask,
    PairedCorrelation,
    "correlation"
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskEstimator;
    use earl_bootstrap::bootstrap::{BootstrapKernel, ResolvedKernel};

    #[test]
    fn extraction_takes_the_last_two_columns_all_or_nothing() {
        let task = RatioTask;
        let mut out = Vec::new();
        assert!(task.extract_record("3.0\t1.5", &mut out));
        assert!(task.extract_record("key\t4.0\t2.0", &mut out));
        assert_eq!(out, vec![3.0, 1.5, 4.0, 2.0]);
        // One parsable column is not a record: nothing is pushed.
        assert!(!task.extract_record("junk\t2.0", &mut out));
        assert!(!task.extract_record("5.0", &mut out));
        assert!(!task.extract_record("", &mut out));
        assert_eq!(out.len(), 4, "failed extractions must push nothing");
        assert_eq!(task.record_stride(), 2);
    }

    #[test]
    fn evaluate_matches_the_estimators() {
        let pairs: Vec<f64> = (1..=30)
            .flat_map(|i| [i as f64, 1.0 + (i % 5) as f64])
            .collect();
        let wm = WeightedMeanTask.evaluate(&pairs);
        let wm_ref = earl_bootstrap::estimators::WeightedMean.estimate(&pairs);
        assert!(((wm - wm_ref) / wm_ref).abs() < 1e-12, "{wm} vs {wm_ref}");
        let ratio = RatioTask.evaluate(&pairs);
        let ratio_ref = earl_bootstrap::estimators::Ratio.estimate(&pairs);
        assert!(
            ((ratio - ratio_ref) / ratio_ref).abs() < 1e-12,
            "{ratio} vs {ratio_ref}"
        );
        // Covariance/correlation finalize from raw sums; the estimators use
        // centered arithmetic — equality is to reassociation error (on data
        // whose covariance is well away from zero).
        let sloped: Vec<f64> = (1..=30)
            .flat_map(|i| [i as f64, 2.0 * i as f64 + (i % 3) as f64])
            .collect();
        let cov = CovarianceTask.evaluate(&sloped);
        let cov_ref = earl_bootstrap::estimators::PairedCovariance.estimate(&sloped);
        assert!(
            ((cov - cov_ref) / cov_ref).abs() < 1e-9,
            "{cov} vs {cov_ref}"
        );
        let corr = CorrelationTask.evaluate(&sloped);
        let corr_ref = earl_bootstrap::estimators::PairedCorrelation.estimate(&sloped);
        assert!(
            ((corr - corr_ref) / corr_ref).abs() < 1e-9,
            "{corr} vs {corr_ref}"
        );
    }

    #[test]
    fn update_merges_exactly() {
        let pairs: Vec<f64> = (1..=40).flat_map(|i| [i as f64, (i * i) as f64]).collect();
        let task = WeightedMeanTask;
        let batch = task.evaluate(&pairs);
        let mut state = task.initialize(&pairs[..20]);
        let rest = task.initialize(&pairs[20..]);
        task.update(&mut state, &rest);
        assert_eq!(task.finalize(&state).to_bits(), batch.to_bits());
    }

    #[test]
    fn auto_routes_every_pair_task_to_the_count_based_kernel() {
        let wm = WeightedMeanTask;
        let ratio = RatioTask;
        let cov = CovarianceTask;
        let corr = CorrelationTask;
        let wm_est = TaskEstimator::new(&wm);
        let ratio_est = TaskEstimator::new(&ratio);
        let cov_est = TaskEstimator::new(&cov);
        let corr_est = TaskEstimator::new(&corr);
        for (name, est) in [
            ("weighted_mean", &wm_est as &dyn earl_bootstrap::Estimator),
            ("ratio", &ratio_est),
            ("covariance", &cov_est),
            ("correlation", &corr_est),
        ] {
            assert_eq!(
                BootstrapKernel::Auto.resolve_for(est),
                ResolvedKernel::CountBased,
                "{name} must run resample-free under Auto"
            );
            assert_eq!(est.record_stride(), 2, "{name}");
        }
    }

    #[test]
    fn pair_tasks_are_scale_free() {
        assert_eq!(WeightedMeanTask.correct(17.5, 0.01), 17.5);
        assert_eq!(RatioTask.correct(0.5, 0.25), 0.5);
        assert_eq!(CovarianceTask.correct(3.0, 0.1), 3.0);
        assert_eq!(CorrelationTask.correct(0.9, 0.1), 0.9);
    }

    #[test]
    fn degenerate_inputs_finalize_to_nan() {
        assert!(WeightedMeanTask.evaluate(&[]).is_nan());
        assert!(WeightedMeanTask.evaluate(&[5.0, 0.0, 9.0, 0.0]).is_nan());
        assert!(RatioTask.evaluate(&[1.0, 0.0]).is_nan());
        assert!(CovarianceTask.evaluate(&[1.0, 2.0]).is_nan());
        assert!(CorrelationTask.evaluate(&[1.0, 2.0, 1.0, 3.0]).is_nan());
    }
}
