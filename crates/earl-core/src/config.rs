//! EARL configuration.
//!
//! The knobs mirror the symbols of Table 1 in the paper:
//!
//! | Symbol | Meaning                                   | Field                       |
//! |--------|-------------------------------------------|-----------------------------|
//! | σ      | user desired error bound                  | [`EarlConfig::sigma`]       |
//! | τ      | error accuracy (stability of cv)          | [`EarlConfig::tau`]         |
//! | B      | number of bootstraps                      | [`EarlConfig::bootstraps`]  |
//! | n      | sample size                               | [`EarlConfig::sample_size`] |
//! | p      | percentage of the data contained in a sample | [`EarlConfig::pilot_fraction`] (pilot) / reported per run |
//! | N      | total data size                           | read from the DFS file      |

use earl_bootstrap::BootstrapKernel;
use earl_mapreduce::FailurePolicy;
use serde::{Deserialize, Serialize};

use crate::error::EarlError;
use crate::Result;

/// Which sampling technique feeds the EARL driver (§3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SamplingMethod {
    /// Pre-map sampling: random lines drawn straight from the input splits;
    /// fastest load times, approximate key/value accounting.
    #[default]
    PreMap,
    /// Post-map sampling: one full scan, then exact without-replacement draws;
    /// slower loading, exact accounting for result correction.
    PostMap,
}

/// Configuration of an EARL run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EarlConfig {
    /// The user's desired error bound σ on the coefficient of variation of the
    /// result distribution.  The paper's experiments use 0.05 ("results are
    /// accurate to within 5 % of the true answer").
    pub sigma: f64,
    /// The τ threshold used when estimating the number of bootstraps.
    pub tau: f64,
    /// Fraction of the data used for the SSABE pilot (paper: p = 0.01 "gives
    /// robust results").
    pub pilot_fraction: f64,
    /// Minimum pilot size in records (so tiny files still get a usable pilot).
    pub min_pilot: u64,
    /// Fixed number of bootstraps; `None` lets SSABE choose.
    pub bootstraps: Option<usize>,
    /// Fixed initial sample size; `None` lets SSABE choose.
    pub sample_size: Option<u64>,
    /// Maximum number of sample-expansion iterations before giving up.
    pub max_iterations: usize,
    /// Multiplier applied to the sample size when an expansion is needed.
    pub expansion_factor: f64,
    /// Sampling technique.
    pub sampling: SamplingMethod,
    /// Whether inter-iteration delta maintenance is used to update resamples
    /// incrementally (§4.1) instead of redrawing them.  Applies to estimators
    /// that need materialised resamples; when `bootstrap_kernel` resolves a
    /// task to the resample-free count-based kernel (linear statistics under
    /// `Auto`), that kernel supersedes delta maintenance — re-evaluating every
    /// replicate from O(√n) section counts is cheaper than maintaining
    /// resamples at all.
    pub delta_maintenance: bool,
    /// Replicate-evaluation kernel for the accuracy-estimation bootstraps and
    /// the SSABE pilot (see [`BootstrapKernel`]).  `Auto` (default) picks per
    /// task: resample-free count-based for linear statistics (mean, sum,
    /// count), gather-free streaming when the task exposes an accumulator
    /// (variance, stddev), gather otherwise (median, quantiles).  Every
    /// kernel is deterministic given the seed at any thread count.
    pub bootstrap_kernel: BootstrapKernel,
    /// What the MapReduce jobs launched by the driver do when a node fails
    /// mid-task.  The EARL default is [`FailurePolicy::Degrade`] (§3.4): lost
    /// input splits are dropped, the effective sample shrinks, and the
    /// accuracy-estimation stage widens the error estimate accordingly —
    /// surviving records are still a random sample of the data.  Use
    /// [`FailurePolicy::Retry`] (or [`FailurePolicy::retry`]) for stock
    /// Hadoop-style recovery that re-runs lost tasks on survivors.
    pub failure_policy: FailurePolicy,
    /// RNG seed controlling sampling and resampling.
    pub seed: u64,
    /// Worker threads used for bootstrap replicate evaluation and MapReduce
    /// task execution (`None` = one per available core).  Any value produces
    /// bit-identical results; the knob only trades wall-clock time.
    pub parallelism: Option<usize>,
    /// Iteration-stage overlap of the EARL loop.  `2` (the default) overlaps
    /// the accuracy-estimation stage of iteration *i* with the sample draw +
    /// map phase of iteration *i+1*; the reducer→mapper feedback channel
    /// (§3.3) cancels the speculative iteration before its reduce phase when
    /// the error bound is met.  `1` runs the sequential schedule: sample →
    /// map/reduce → accuracy estimation, strictly back to back.  The delivered
    /// result (estimate, error, sample size, iteration count) is identical at
    /// every depth and thread count; only the simulated time/IO accounting
    /// differs by the speculative map work that is charged and then discarded
    /// on the final iteration (`tests/pipeline_depth_default.rs` pins the
    /// depth-1 accounting bit-for-bit).  Values above 2 behave as 2: accuracy
    /// estimation of iteration *i+1* cannot start before its sample is
    /// committed, so one iteration of lookahead is the maximum the dependence
    /// structure allows.
    pub pipeline_depth: usize,
}

impl Default for EarlConfig {
    fn default() -> Self {
        Self {
            sigma: 0.05,
            tau: 0.01,
            pilot_fraction: 0.01,
            min_pilot: 256,
            bootstraps: None,
            sample_size: None,
            max_iterations: 10,
            expansion_factor: 2.0,
            sampling: SamplingMethod::PreMap,
            delta_maintenance: true,
            bootstrap_kernel: BootstrapKernel::Auto,
            failure_policy: FailurePolicy::Degrade,
            seed: 0xEA21,
            parallelism: None,
            pipeline_depth: 2,
        }
    }
}

impl EarlConfig {
    /// A configuration with the given error bound and all other knobs at their
    /// defaults.
    pub fn with_sigma(sigma: f64) -> Self {
        Self {
            sigma,
            ..Self::default()
        }
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<()> {
        if !(self.sigma > 0.0 && self.sigma < 1.0) {
            return Err(EarlError::InvalidConfig("sigma must be in (0, 1)".into()));
        }
        if self.tau <= 0.0 || self.tau.is_nan() {
            return Err(EarlError::InvalidConfig("tau must be > 0".into()));
        }
        if !(self.pilot_fraction > 0.0 && self.pilot_fraction <= 1.0) {
            return Err(EarlError::InvalidConfig(
                "pilot_fraction must be in (0, 1]".into(),
            ));
        }
        if self.max_iterations == 0 {
            return Err(EarlError::InvalidConfig(
                "max_iterations must be ≥ 1".into(),
            ));
        }
        if self.expansion_factor <= 1.0 || self.expansion_factor.is_nan() {
            return Err(EarlError::InvalidConfig(
                "expansion_factor must be > 1".into(),
            ));
        }
        if let Some(b) = self.bootstraps {
            if b < 2 {
                return Err(EarlError::InvalidConfig("bootstraps must be ≥ 2".into()));
            }
        }
        if self.pipeline_depth == 0 {
            return Err(EarlError::InvalidConfig(
                "pipeline_depth must be ≥ 1 (1 = sequential schedule)".into(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_the_papers_experiments() {
        let c = EarlConfig::default();
        assert_eq!(c.sigma, 0.05);
        assert_eq!(c.pilot_fraction, 0.01);
        assert_eq!(c.sampling, SamplingMethod::PreMap);
        assert!(c.delta_maintenance);
        assert_eq!(
            c.bootstrap_kernel,
            BootstrapKernel::Auto,
            "default picks the fastest kernel each task supports"
        );
        assert_eq!(c.parallelism, None, "default is one worker per core");
        assert_eq!(
            c.failure_policy,
            FailurePolicy::Degrade,
            "EARL degrades gracefully on node failure (§3.4) instead of retrying"
        );
        assert_eq!(
            c.pipeline_depth, 2,
            "default overlaps AES i with the map phase of i+1"
        );
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_rejects_bad_values() {
        assert!(EarlConfig {
            sigma: 0.0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(EarlConfig {
            sigma: 1.5,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(EarlConfig {
            tau: 0.0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(EarlConfig {
            pilot_fraction: 0.0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(EarlConfig {
            pilot_fraction: 1.5,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(EarlConfig {
            max_iterations: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(EarlConfig {
            expansion_factor: 1.0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(EarlConfig {
            bootstraps: Some(1),
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(EarlConfig {
            bootstraps: Some(30),
            ..Default::default()
        }
        .validate()
        .is_ok());
        assert!(EarlConfig {
            pipeline_depth: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(EarlConfig {
            pipeline_depth: 2,
            ..Default::default()
        }
        .validate()
        .is_ok());
        assert!(EarlConfig::with_sigma(0.02).validate().is_ok());
    }
}
