//! The Accuracy Estimation Stage (AES, §3.1).
//!
//! The AES takes the current sample, re-evaluates the user's task on `B`
//! bootstrap resamples, and summarises the resulting *result distribution*
//! into the error measure EARL reports: the coefficient of variation.  It is
//! deliberately independent of how the resamples were produced — the driver
//! feeds it either fresh Monte-Carlo resamples or delta-maintained ones.

use earl_bootstrap::bootstrap::{bootstrap_distribution, BootstrapConfig, BootstrapResult};
use serde::{Deserialize, Serialize};

use crate::task::{EarlTask, TaskEstimator};
use crate::Result;

/// The AES output for one iteration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AesReport {
    /// The task evaluated on the current sample.
    pub result: f64,
    /// The result corrected for the sampled fraction `p`.
    pub corrected_result: f64,
    /// Coefficient of variation of the result distribution.
    pub cv: f64,
    /// Standard error of the result distribution.
    pub std_error: f64,
    /// 95 % percentile confidence interval (corrected for `p`).
    pub ci: (f64, f64),
    /// Number of resamples used.
    pub bootstraps: usize,
    /// Sample size the estimate is based on.
    pub sample_size: usize,
}

/// The accuracy estimation stage.
#[derive(Debug, Clone, Copy)]
pub struct AccuracyEstimationStage {
    sigma: f64,
}

impl AccuracyEstimationStage {
    /// Creates an AES targeting the error bound `sigma`.
    pub fn new(sigma: f64) -> Self {
        Self { sigma }
    }

    /// The target error bound.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Whether an achieved cv satisfies the bound.
    pub fn meets_bound(&self, cv: f64) -> bool {
        cv.is_finite() && cv <= self.sigma + 1e-12
    }

    /// Runs a fresh Monte-Carlo bootstrap of `task` over `sample` and
    /// summarises it.  `p` is the sampled fraction used for result correction;
    /// `bootstrap` carries the resample count, worker-thread count (`None` =
    /// all cores) and the replicate-evaluation kernel
    /// ([`earl_bootstrap::BootstrapKernel`]; `Auto` picks the fastest one the
    /// task supports).  Any worker count gives bit-identical results for a
    /// fixed kernel.
    pub fn estimate<T: EarlTask>(
        &self,
        seed: u64,
        task: &T,
        sample: &[f64],
        p: f64,
        bootstrap: &BootstrapConfig,
    ) -> Result<AesReport> {
        let estimator = TaskEstimator::new(task);
        let result = bootstrap_distribution(seed, sample, &estimator, bootstrap)?;
        Ok(self.summarise(task, &result, p, sample.len()))
    }

    /// Summarises an already-computed bootstrap result (e.g. one produced by
    /// the delta-maintained resamples) into an [`AesReport`].
    pub fn summarise<T: EarlTask>(
        &self,
        task: &T,
        bootstrap: &BootstrapResult,
        p: f64,
        sample_size: usize,
    ) -> AesReport {
        let (lo, hi) = bootstrap.percentile_ci(0.05);
        AesReport {
            result: bootstrap.point_estimate,
            corrected_result: task.correct(bootstrap.point_estimate, p),
            cv: bootstrap.cv,
            std_error: bootstrap.std_error,
            ci: (task.correct(lo, p), task.correct(hi, p)),
            bootstraps: bootstrap.replicates.len(),
            sample_size,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tasks::{MeanTask, MedianTask, SumTask};
    use earl_bootstrap::rng::{seeded_rng, standard_normal};

    fn sample(n: usize, mean: f64, sd: f64, seed: u64) -> Vec<f64> {
        let mut rng = seeded_rng(seed);
        (0..n)
            .map(|_| mean + sd * standard_normal(&mut rng))
            .collect()
    }

    #[test]
    fn estimate_reports_cv_and_corrected_result() {
        let aes = AccuracyEstimationStage::new(0.05);
        let data = sample(1_000, 200.0, 20.0, 1);
        let report = aes
            .estimate(
                2,
                &MeanTask,
                &data,
                0.01,
                &BootstrapConfig::with_resamples(40),
            )
            .unwrap();
        assert_eq!(report.bootstraps, 40);
        assert_eq!(report.sample_size, 1_000);
        assert!((report.result - 200.0).abs() < 3.0);
        assert_eq!(
            report.result, report.corrected_result,
            "mean needs no correction"
        );
        assert!(report.cv < 0.01, "cv of the mean of 1000 points is tiny");
        assert!(aes.meets_bound(report.cv));
        assert!(report.ci.0 < report.result && report.result < report.ci.1);
    }

    #[test]
    fn sum_task_is_scaled_by_one_over_p() {
        let aes = AccuracyEstimationStage::new(0.05);
        let data = sample(500, 10.0, 1.0, 3);
        let report = aes
            .estimate(
                4,
                &SumTask,
                &data,
                0.1,
                &BootstrapConfig::with_resamples(30),
            )
            .unwrap();
        assert!((report.corrected_result - report.result * 10.0).abs() < 1e-6);
        assert!(report.ci.1 > report.ci.0);
    }

    #[test]
    fn small_noisy_samples_fail_the_bound() {
        let aes = AccuracyEstimationStage::new(0.01);
        // A tiny, highly dispersed sample cannot achieve a 1% bound.
        let data = sample(20, 10.0, 8.0, 5);
        let report = aes
            .estimate(
                6,
                &MedianTask,
                &data,
                1.0,
                &BootstrapConfig::with_resamples(50),
            )
            .unwrap();
        assert!(
            !aes.meets_bound(report.cv),
            "cv {} should exceed 0.01",
            report.cv
        );
        assert!(!aes.meets_bound(f64::NAN));
    }

    #[test]
    fn empty_sample_is_an_error() {
        let aes = AccuracyEstimationStage::new(0.05);
        assert!(aes
            .estimate(7, &MeanTask, &[], 1.0, &BootstrapConfig::with_resamples(30))
            .is_err());
    }
}
