//! The report returned to the user after an EARL run.

use std::fmt;

use earl_bootstrap::delta::UpdateWork;
use earl_cluster::{FaultLog, SimDuration};
use serde::{Deserialize, Serialize};

/// Everything EARL knows about an answer it produced: the (corrected) result,
/// how accurate it believes it is, how much data it touched, and what the run
/// cost on the simulated cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EarlReport {
    /// Name of the task that was run.
    pub task: String,
    /// The final (corrected) result.
    pub result: f64,
    /// The result before `correct()` was applied.
    pub uncorrected_result: f64,
    /// The achieved error estimate (coefficient of variation of the bootstrap
    /// result distribution); 0 when the result is exact.
    pub error_estimate: f64,
    /// The error bound σ the user asked for.
    pub target_sigma: f64,
    /// 95 % percentile confidence interval of the result distribution.
    pub ci_low: f64,
    /// Upper end of the 95 % interval.
    pub ci_high: f64,
    /// Records in the final sample.
    pub sample_size: u64,
    /// Records in the full data set (N).
    pub population: u64,
    /// `sample_size / population` — the `p` used for result correction.
    pub sample_fraction: f64,
    /// Number of bootstrap resamples used (B).
    pub bootstraps: usize,
    /// Number of sample-expansion iterations performed.
    pub iterations: usize,
    /// Whether EARL fell back to exact execution over the entire data set.
    pub exact: bool,
    /// Simulated processing time of the whole run.
    pub sim_time: SimDuration,
    /// Bytes read from the DFS during the run.
    pub bytes_read: u64,
    /// Resample-maintenance work accounting, when delta maintenance was used.
    pub resample_work: Option<UpdateWork>,
    /// Failure events and recovery work observed during the run; `None` when
    /// no failure fired and no recovery work was performed (so a report from
    /// an armed-but-quiet schedule is bit-identical to an unarmed one).
    pub fault_log: Option<FaultLog>,
}

impl EarlReport {
    /// Whether the achieved error satisfies the requested bound.
    pub fn meets_bound(&self) -> bool {
        self.exact || self.error_estimate <= self.target_sigma + 1e-12
    }

    /// The relative error of the result against a known ground truth (used by
    /// tests and the experiment harness on synthetic data).
    pub fn relative_error_vs(&self, truth: f64) -> f64 {
        if truth == 0.0 {
            return (self.result - truth).abs();
        }
        (self.result - truth).abs() / truth.abs()
    }
}

impl fmt::Display for EarlReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "EARL report for task `{}`", self.task)?;
        writeln!(
            f,
            "  result            : {:.6} (uncorrected {:.6})",
            self.result, self.uncorrected_result
        )?;
        if self.exact {
            writeln!(
                f,
                "  accuracy          : exact (computed over the full data set)"
            )?;
        } else {
            writeln!(
                f,
                "  accuracy          : cv {:.4} (bound {:.4}), 95% CI [{:.4}, {:.4}]",
                self.error_estimate, self.target_sigma, self.ci_low, self.ci_high
            )?;
        }
        writeln!(
            f,
            "  sample            : {} of {} records ({:.3}%) in {} iteration(s), B = {}",
            self.sample_size,
            self.population,
            self.sample_fraction * 100.0,
            self.iterations,
            self.bootstraps
        )?;
        writeln!(f, "  simulated time    : {}", self.sim_time)?;
        writeln!(f, "  bytes read        : {}", self.bytes_read)?;
        if let Some(work) = &self.resample_work {
            writeln!(
                f,
                "  resample work     : {} items touched of {} naive ({:.1}% saved)",
                work.items_touched,
                work.naive_items,
                work.savings() * 100.0
            )?;
        }
        if let Some(log) = &self.fault_log {
            writeln!(
                f,
                "  failures survived : {} event(s), {} split(s) lost, {} retri(es), {} record(s) salvaged",
                log.events.len(),
                log.splits_lost,
                log.task_retries,
                log.records_salvaged
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> EarlReport {
        EarlReport {
            task: "mean".into(),
            result: 100.0,
            uncorrected_result: 100.0,
            error_estimate: 0.03,
            target_sigma: 0.05,
            ci_low: 95.0,
            ci_high: 105.0,
            sample_size: 1_000,
            population: 100_000,
            sample_fraction: 0.01,
            bootstraps: 30,
            iterations: 1,
            exact: false,
            sim_time: SimDuration::from_millis(1234),
            bytes_read: 4096,
            resample_work: None,
            fault_log: None,
        }
    }

    #[test]
    fn meets_bound_logic() {
        let mut r = report();
        assert!(r.meets_bound());
        r.error_estimate = 0.06;
        assert!(!r.meets_bound());
        r.exact = true;
        assert!(r.meets_bound(), "exact results always meet the bound");
    }

    #[test]
    fn relative_error() {
        let r = report();
        assert!((r.relative_error_vs(102.0) - 2.0 / 102.0).abs() < 1e-12);
        assert_eq!(r.relative_error_vs(0.0), 100.0);
    }

    #[test]
    fn display_contains_the_essentials() {
        let mut r = report();
        r.resample_work = Some(earl_bootstrap::delta::UpdateWork {
            items_touched: 10,
            naive_items: 100,
            sketch_hits: 10,
            disk_accesses: 0,
        });
        let text = r.to_string();
        assert!(text.contains("mean"));
        assert!(text.contains("cv 0.0300"));
        assert!(text.contains("B = 30"));
        assert!(text.contains("90.0% saved"));
        let mut exact = report();
        exact.exact = true;
        assert!(exact.to_string().contains("exact"));
    }

    #[test]
    fn display_reports_survived_failures() {
        let mut r = report();
        assert!(!r.to_string().contains("failures survived"));
        r.fault_log = Some(FaultLog {
            splits_lost: 2,
            ..FaultLog::default()
        });
        let text = r.to_string();
        assert!(text.contains("failures survived"));
        assert!(text.contains("2 split(s) lost"));
    }
}
