//! Pre-map sampling (§3.3, Algorithm 2).
//!
//! Pre-map sampling draws random *lines* directly from the file's logical
//! splits **before** any data is handed to a mapper, which "significantly
//! reduces the load times" compared to scanning everything.  The procedure:
//!
//! 1. pick a random byte position within the file (equivalently: a random split
//!    `F_i` and a random start location within it);
//! 2. backtrack/skip to the beginning of a line using the `LineRecordReader`
//!    semantics;
//! 3. include the line unless its start offset is already marked in the
//!    per-split bit-vector of used positions (so no line is sampled twice);
//! 4. repeat until the requested sample size is met.
//!
//! The trade-off the paper highlights: the number of key/value pairs in the
//! sample is only estimated (a line may hold several pairs), so result
//! correction for functions like SUM is approximate — exact accounting requires
//! post-map sampling.

use std::collections::HashSet;

use earl_cluster::Phase;
use earl_dfs::{Dfs, DfsError, DfsPath};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::SamplingError;
use crate::source::{SampleBatch, SampleSource};
use crate::Result;

/// Incremental uniform line sampler over a DFS file.
#[derive(Debug)]
pub struct PreMapSampler {
    dfs: Dfs,
    path: DfsPath,
    file_len: u64,
    population: Option<u64>,
    /// Bit-vector equivalent: the set of line-start offsets already sampled.
    used_offsets: HashSet<u64>,
    drawn: u64,
    rng: StdRng,
    /// Upper bound on wasted probes per requested record before giving up
    /// (protects against pathological near-exhaustion loops).
    max_probe_factor: usize,
    /// When set, probes that land in blocks lost to node failures are skipped
    /// (like a used offset) instead of aborting the draw: the sampler then
    /// draws uniformly from the *surviving* data, which is exactly the sample
    /// EARL's degrade mode (§3.4) prices.  Off by default so callers that
    /// expect loss to be loud (stock retry semantics) still see the error.
    skip_unavailable: bool,
}

impl PreMapSampler {
    /// Creates a sampler over `path`.
    pub fn new(dfs: Dfs, path: impl Into<DfsPath>, seed: u64) -> Result<Self> {
        let path = path.into();
        let status = dfs.status(path.clone())?;
        Ok(Self {
            dfs,
            path,
            file_len: status.len,
            population: status.num_records,
            used_offsets: HashSet::new(),
            drawn: 0,
            rng: StdRng::seed_from_u64(seed),
            max_probe_factor: 64,
            skip_unavailable: false,
        })
    }

    /// Makes probes into failure-orphaned blocks count as misses instead of
    /// errors, so draws are uniform over the surviving data (§3.4).  Skipping
    /// consumes exactly one RNG value per probe regardless, so draws stay a
    /// pure function of `(seed, dead set)` — deterministic at every thread
    /// count.
    pub fn skip_unavailable(mut self, skip: bool) -> Self {
        self.skip_unavailable = skip;
        self
    }

    /// The file being sampled.
    pub fn path(&self) -> &DfsPath {
        &self.path
    }

    /// Number of distinct line-start offsets recorded in the "bit-vector".
    pub fn used_offsets(&self) -> usize {
        self.used_offsets.len()
    }
}

impl SampleSource for PreMapSampler {
    fn draw(&mut self, count: usize) -> Result<SampleBatch> {
        if self.file_len == 0 || count == 0 {
            return Ok(SampleBatch {
                records: Vec::new(),
                bytes_read: 0,
            });
        }
        if let Some(n) = self.population {
            if self.drawn >= n {
                return Ok(SampleBatch {
                    records: Vec::new(),
                    bytes_read: 0,
                });
            }
        }
        let before = self
            .dfs
            .cluster()
            .metrics()
            .snapshot()
            .phase(Phase::Load)
            .disk_bytes_read;
        let mut records = Vec::with_capacity(count);
        let mut probes = 0usize;
        let max_probes = count.saturating_mul(self.max_probe_factor).max(1_000);
        while records.len() < count && probes < max_probes {
            probes += 1;
            let offset = self.rng.gen_range(0..self.file_len);
            let probe = match self
                .dfs
                .read_line_at(Phase::Load, self.path.clone(), offset)
            {
                Err(DfsError::BlockUnavailable(_)) if self.skip_unavailable => continue,
                other => other?,
            };
            let Some((line_start, line)) = probe else {
                continue;
            };
            if self.used_offsets.insert(line_start) {
                records.push((line_start, line));
            }
            if let Some(n) = self.population {
                if self.used_offsets.len() as u64 >= n {
                    break;
                }
            }
        }
        self.drawn += records.len() as u64;
        let after = self
            .dfs
            .cluster()
            .metrics()
            .snapshot()
            .phase(Phase::Load)
            .disk_bytes_read;
        Ok(SampleBatch {
            records,
            bytes_read: after - before,
        })
    }

    fn population_size(&self) -> Option<u64> {
        self.population
    }

    fn drawn(&self) -> u64 {
        self.drawn
    }
}

/// Convenience: draws a single uniform sample of `count` lines from `path`
/// using pre-map sampling.
pub fn premap_sample(
    dfs: &Dfs,
    path: impl Into<DfsPath>,
    count: usize,
    seed: u64,
) -> Result<SampleBatch> {
    if count == 0 {
        return Err(SamplingError::InvalidConfig(
            "sample size must be ≥ 1".into(),
        ));
    }
    let mut sampler = PreMapSampler::new(dfs.clone(), path, seed)?;
    sampler.draw(count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use earl_cluster::{Cluster, CostModel};
    use earl_dfs::DfsConfig;

    fn dataset(n: usize) -> (Dfs, Vec<f64>) {
        let cluster = Cluster::builder()
            .nodes(3)
            .cost_model(CostModel::free())
            .build()
            .unwrap();
        let dfs = Dfs::new(
            cluster,
            DfsConfig {
                block_size: 4096,
                replication: 2,
                io_chunk: 32,
            },
        )
        .unwrap();
        let values: Vec<f64> = (0..n).map(|i| (i as f64 * 37.0) % 1000.0).collect();
        dfs.write_lines("/data", values.iter().map(|v| format!("{v}")))
            .unwrap();
        (dfs, values)
    }

    #[test]
    fn draws_distinct_lines_and_tracks_offsets() {
        let (dfs, _) = dataset(500);
        let mut sampler = PreMapSampler::new(dfs, "/data", 1).unwrap();
        let batch = sampler.draw(100).unwrap();
        assert_eq!(batch.len(), 100);
        let offsets: HashSet<u64> = batch.records.iter().map(|(o, _)| *o).collect();
        assert_eq!(offsets.len(), 100, "no line may be sampled twice");
        assert_eq!(sampler.used_offsets(), 100);
        assert_eq!(sampler.drawn(), 100);
        assert!(
            batch.bytes_read > 0,
            "pre-map sampling reads only what it touches"
        );
        assert_eq!(sampler.population_size(), Some(500));
        assert!((sampler.sampled_fraction().unwrap() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn successive_draws_never_repeat_lines() {
        let (dfs, _) = dataset(300);
        let mut sampler = PreMapSampler::new(dfs, "/data", 2).unwrap();
        let mut all = HashSet::new();
        for _ in 0..5 {
            let batch = sampler.draw(40).unwrap();
            for (offset, _) in &batch.records {
                assert!(all.insert(*offset), "offset {offset} repeated across draws");
            }
        }
        assert_eq!(all.len(), 200);
    }

    #[test]
    fn exhausting_the_file_returns_everything_once() {
        let (dfs, values) = dataset(64);
        let mut sampler = PreMapSampler::new(dfs, "/data", 3).unwrap();
        let mut collected = Vec::new();
        loop {
            let batch = sampler.draw(32).unwrap();
            if batch.is_empty() {
                break;
            }
            collected.extend(batch.records);
        }
        assert_eq!(collected.len(), values.len());
        let mut sampled: Vec<f64> = collected.iter().map(|(_, l)| l.parse().unwrap()).collect();
        sampled.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut expected = values.clone();
        expected.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(sampled, expected);
    }

    #[test]
    fn sample_mean_approximates_population_mean() {
        let (dfs, values) = dataset(5_000);
        let true_mean = values.iter().sum::<f64>() / values.len() as f64;
        let batch = premap_sample(&dfs, "/data", 500, 4).unwrap();
        let sample_mean = batch
            .records
            .iter()
            .map(|(_, l)| l.parse::<f64>().unwrap())
            .sum::<f64>()
            / batch.len() as f64;
        let rel_err = (sample_mean - true_mean).abs() / true_mean;
        assert!(
            rel_err < 0.1,
            "10% sample mean {sample_mean} vs population {true_mean}"
        );
    }

    #[test]
    fn premap_reads_far_less_than_the_whole_file() {
        let (dfs, _) = dataset(20_000);
        let file_len = dfs.status("/data").unwrap().len;
        let batch = premap_sample(&dfs, "/data", 200, 5).unwrap();
        assert!(
            batch.bytes_read < file_len / 2,
            "a 1% sample must not read most of the file ({} of {file_len})",
            batch.bytes_read
        );
    }

    #[test]
    fn invalid_requests_are_rejected() {
        let (dfs, _) = dataset(10);
        assert!(premap_sample(&dfs, "/data", 0, 1).is_err());
        assert!(PreMapSampler::new(dfs, "/missing", 1).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let (dfs, _) = dataset(200);
        let a = premap_sample(&dfs, "/data", 50, 99).unwrap();
        let b = premap_sample(&dfs, "/data", 50, 99).unwrap();
        assert_eq!(a.records, b.records);
    }
}
