//! Reservoir sampling (Vitter's Algorithm R).
//!
//! The paper discusses reservoir sampling as the "naive solution" that produces
//! a perfectly uniform sample but "suffers from slow loading times because the
//! entire dataset needs to be read, and possibly re-read when further samples
//! are required" (§3.3).  It is provided here both as a correctness baseline
//! for the property tests and as the comparison point for the Fig. 5/Fig. 9
//! load-time experiments.

use rand::Rng;

/// A fixed-capacity uniform reservoir over a stream of items.
#[derive(Debug, Clone)]
pub struct ReservoirSampler<T> {
    capacity: usize,
    seen: u64,
    items: Vec<T>,
}

impl<T> ReservoirSampler<T> {
    /// Creates a reservoir holding at most `capacity` items.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            seen: 0,
            items: Vec::with_capacity(capacity.min(1 << 20)),
        }
    }

    /// Offers one item from the stream.
    pub fn offer<R: Rng + ?Sized>(&mut self, rng: &mut R, item: T) {
        self.seen += 1;
        if self.items.len() < self.capacity {
            self.items.push(item);
        } else if self.capacity > 0 {
            let j = rng.gen_range(0..self.seen);
            if (j as usize) < self.capacity {
                self.items[j as usize] = item;
            }
        }
    }

    /// Number of stream items observed so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// The current reservoir contents.
    pub fn items(&self) -> &[T] {
        &self.items
    }

    /// Consumes the sampler and returns the sample.
    pub fn into_items(self) -> Vec<T> {
        self.items
    }
}

/// Draws a uniform sample of `k` items from an iterator in one pass.
pub fn reservoir_sample<T, I, R>(rng: &mut R, iter: I, k: usize) -> Vec<T>
where
    I: IntoIterator<Item = T>,
    R: Rng + ?Sized,
{
    let mut sampler = ReservoirSampler::new(k);
    for item in iter {
        sampler.offer(rng, item);
    }
    sampler.into_items()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn reservoir_never_exceeds_capacity() {
        let mut rng = StdRng::seed_from_u64(1);
        let sample = reservoir_sample(&mut rng, 0..10_000u32, 50);
        assert_eq!(sample.len(), 50);
        let mut sampler: ReservoirSampler<u32> = ReservoirSampler::new(0);
        sampler.offer(&mut rng, 7);
        assert!(sampler.items().is_empty());
        assert_eq!(sampler.seen(), 1);
    }

    #[test]
    fn short_stream_is_kept_entirely() {
        let mut rng = StdRng::seed_from_u64(2);
        let sample = reservoir_sample(&mut rng, 0..10u32, 50);
        assert_eq!(sample, (0..10).collect::<Vec<u32>>());
    }

    #[test]
    fn inclusion_probability_is_uniform() {
        // Each of 100 items should appear in a k=10 reservoir with probability
        // 0.1; over 2000 trials the per-item inclusion frequency must be close.
        let n = 100u32;
        let k = 10usize;
        let trials = 2_000;
        let mut counts = vec![0u32; n as usize];
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..trials {
            for &item in reservoir_sample(&mut rng, 0..n, k).iter() {
                counts[item as usize] += 1;
            }
        }
        let expected = trials as f64 * k as f64 / n as f64; // 200
        for (i, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(
                dev < 0.35,
                "item {i} included {c} times, expected ≈{expected}"
            );
        }
    }

    #[test]
    fn into_items_returns_the_sample() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut sampler = ReservoirSampler::new(3);
        for i in 0..3 {
            sampler.offer(&mut rng, i);
        }
        assert_eq!(sampler.into_items(), vec![0, 1, 2]);
    }
}
