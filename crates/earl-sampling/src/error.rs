//! Error type for the sampling layer.

use std::fmt;

use earl_dfs::DfsError;

/// Errors raised by the samplers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SamplingError {
    /// The underlying DFS reported an error.
    Dfs(DfsError),
    /// The requested sample is larger than the population.
    SampleTooLarge {
        /// Requested sample size.
        requested: u64,
        /// Available population size.
        available: u64,
    },
    /// The sampler was configured with invalid parameters.
    InvalidConfig(String),
}

impl fmt::Display for SamplingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SamplingError::Dfs(e) => write!(f, "dfs error: {e}"),
            SamplingError::SampleTooLarge {
                requested,
                available,
            } => {
                write!(
                    f,
                    "requested sample of {requested} exceeds population of {available}"
                )
            }
            SamplingError::InvalidConfig(msg) => write!(f, "invalid sampler configuration: {msg}"),
        }
    }
}

impl std::error::Error for SamplingError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SamplingError::Dfs(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DfsError> for SamplingError {
    fn from(e: DfsError) -> Self {
        SamplingError::Dfs(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e: SamplingError = DfsError::FileNotFound("/x".into()).into();
        assert!(e.to_string().contains("/x"));
        assert!(SamplingError::SampleTooLarge {
            requested: 10,
            available: 5
        }
        .to_string()
        .contains("10"));
        assert!(SamplingError::InvalidConfig("bad".into())
            .to_string()
            .contains("bad"));
    }
}
