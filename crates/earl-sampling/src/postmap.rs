//! Post-map sampling (§3.3, Algorithm 1).
//!
//! Post-map sampling "first reads the entire dataset and then randomly chooses
//! the required subset to process": every key/value pair is parsed and stored
//! under a random hash, and batches are then drawn **without replacement** from
//! that hash as the sample needs to grow.  Load times are higher than pre-map
//! sampling (the full file is read once), but the exact number of key/value
//! pairs is known, enabling precise result correction.

use earl_cluster::Phase;
use earl_dfs::{Dfs, DfsPath};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::source::{SampleBatch, SampleSource};
use crate::Result;

/// Incremental without-replacement sampler backed by a full scan of the file.
#[derive(Debug)]
pub struct PostMapSampler {
    /// Records in a random order; `cursor` marks how many have been handed out.
    shuffled: Vec<(u64, String)>,
    cursor: usize,
    initial_scan_bytes: u64,
}

impl PostMapSampler {
    /// Creates the sampler, performing the full scan (charged to the cluster's
    /// Load phase) and building the randomly-hashed in-memory store.
    pub fn new(dfs: Dfs, path: impl Into<DfsPath>, seed: u64) -> Result<Self> {
        let path = path.into();
        let status = dfs.status(path.clone())?;
        let before = dfs
            .cluster()
            .metrics()
            .snapshot()
            .phase(Phase::Load)
            .disk_bytes_read;
        // Read and parse everything once — the defining cost of post-map sampling.
        let mut shuffled: Vec<(u64, String)> =
            Vec::with_capacity(status.num_records.unwrap_or(0) as usize);
        let mut offset = 0u64;
        for line in dfs.read_all_lines(Phase::Load, path)? {
            let len = line.len() as u64 + 1;
            shuffled.push((offset, line));
            offset += len;
        }
        let after = dfs
            .cluster()
            .metrics()
            .snapshot()
            .phase(Phase::Load)
            .disk_bytes_read;
        // "Random hashing that generates a pre-determined set of keys": a seeded
        // permutation gives every record a random position, and drawing from the
        // front is then drawing without replacement.
        let mut rng = StdRng::seed_from_u64(seed);
        shuffled.shuffle(&mut rng);
        Ok(Self {
            shuffled,
            cursor: 0,
            initial_scan_bytes: after - before,
        })
    }

    /// Bytes read by the initial full scan.
    pub fn initial_scan_bytes(&self) -> u64 {
        self.initial_scan_bytes
    }

    /// Exact number of records in the population.
    pub fn exact_population(&self) -> u64 {
        self.shuffled.len() as u64
    }
}

impl SampleSource for PostMapSampler {
    fn draw(&mut self, count: usize) -> Result<SampleBatch> {
        let end = (self.cursor + count).min(self.shuffled.len());
        let records = self.shuffled[self.cursor..end].to_vec();
        // The first batch carries the cost of the initial scan so that callers
        // comparing samplers see the full price of post-map sampling.
        let bytes_read = if self.cursor == 0 {
            self.initial_scan_bytes
        } else {
            0
        };
        self.cursor = end;
        Ok(SampleBatch {
            records,
            bytes_read,
        })
    }

    fn population_size(&self) -> Option<u64> {
        Some(self.shuffled.len() as u64)
    }

    fn drawn(&self) -> u64 {
        self.cursor as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use earl_cluster::{Cluster, CostModel};
    use earl_dfs::DfsConfig;
    use std::collections::HashSet;

    fn dataset(n: usize) -> Dfs {
        let cluster = Cluster::builder()
            .nodes(2)
            .cost_model(CostModel::free())
            .build()
            .unwrap();
        let dfs = Dfs::new(
            cluster,
            DfsConfig {
                block_size: 4096,
                replication: 1,
                io_chunk: 256,
            },
        )
        .unwrap();
        dfs.write_lines("/data", (0..n).map(|i| format!("{}", i)))
            .unwrap();
        dfs
    }

    #[test]
    fn knows_exact_population_and_reads_whole_file_once() {
        let dfs = dataset(1_000);
        let file_len = dfs.status("/data").unwrap().len;
        let sampler = PostMapSampler::new(dfs, "/data", 1).unwrap();
        assert_eq!(sampler.exact_population(), 1_000);
        assert_eq!(sampler.population_size(), Some(1_000));
        assert_eq!(
            sampler.initial_scan_bytes(),
            file_len,
            "post-map sampling scans everything"
        );
    }

    #[test]
    fn draws_without_replacement_until_exhaustion() {
        let dfs = dataset(300);
        let mut sampler = PostMapSampler::new(dfs, "/data", 2).unwrap();
        let mut seen = HashSet::new();
        let mut total = 0;
        loop {
            let batch = sampler.draw(100).unwrap();
            if batch.is_empty() {
                break;
            }
            total += batch.len();
            for (_, line) in &batch.records {
                assert!(seen.insert(line.clone()), "record {line} drawn twice");
            }
        }
        assert_eq!(total, 300);
        assert_eq!(sampler.drawn(), 300);
        assert_eq!(sampler.sampled_fraction(), Some(1.0));
    }

    #[test]
    fn first_batch_carries_the_scan_cost() {
        let dfs = dataset(500);
        let mut sampler = PostMapSampler::new(dfs, "/data", 3).unwrap();
        let first = sampler.draw(10).unwrap();
        let second = sampler.draw(10).unwrap();
        assert!(first.bytes_read > 0);
        assert_eq!(second.bytes_read, 0);
    }

    #[test]
    fn sample_is_unbiased_for_the_mean() {
        let n = 10_000usize;
        let dfs = dataset(n);
        let true_mean = (n as f64 - 1.0) / 2.0;
        let mut sampler = PostMapSampler::new(dfs, "/data", 4).unwrap();
        let batch = sampler.draw(1_000).unwrap();
        let mean = batch
            .records
            .iter()
            .map(|(_, l)| l.parse::<f64>().unwrap())
            .sum::<f64>()
            / 1_000.0;
        assert!(
            (mean - true_mean).abs() / true_mean < 0.1,
            "sample mean {mean} vs {true_mean}"
        );
    }

    #[test]
    fn deterministic_given_seed_and_missing_file_errors() {
        let dfs = dataset(50);
        let mut a = PostMapSampler::new(dfs.clone(), "/data", 9).unwrap();
        let mut b = PostMapSampler::new(dfs.clone(), "/data", 9).unwrap();
        assert_eq!(a.draw(20).unwrap().records, b.draw(20).unwrap().records);
        assert!(PostMapSampler::new(dfs, "/nope", 1).is_err());
    }
}
