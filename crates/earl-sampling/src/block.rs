//! Naive block-level sampling — the baseline the paper argues against.
//!
//! "A naive sampling solution is to pick a set of blocks B_i at random …  This
//! strategy however will not produce a uniformly random sample because each of
//! the B_i and each of the splits can contain dependencies (e.g. consider the
//! case where data is clustered on a particular attribute …)" (§3.3).  The
//! tests demonstrate exactly that failure mode: on a disk layout clustered by
//! value, block sampling has far higher estimator variance than pre-map
//! sampling at the same sample size.

use earl_cluster::Phase;
use earl_dfs::{Dfs, DfsPath};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::error::SamplingError;
use crate::source::SampleBatch;
use crate::Result;

/// Draws all lines from `num_splits` randomly chosen splits of `path`.
pub fn block_sample(
    dfs: &Dfs,
    path: impl Into<DfsPath>,
    split_size: u64,
    num_splits: usize,
    seed: u64,
) -> Result<SampleBatch> {
    if num_splits == 0 {
        return Err(SamplingError::InvalidConfig(
            "must sample at least one split".into(),
        ));
    }
    let path = path.into();
    let mut splits = dfs.splits(path, split_size)?;
    if splits.is_empty() {
        return Ok(SampleBatch {
            records: Vec::new(),
            bytes_read: 0,
        });
    }
    let mut rng = StdRng::seed_from_u64(seed);
    splits.shuffle(&mut rng);
    splits.truncate(num_splits);

    let before = dfs
        .cluster()
        .metrics()
        .snapshot()
        .phase(Phase::Load)
        .disk_bytes_read;
    let mut records = Vec::new();
    for split in splits {
        let mut reader = dfs.open_split(split, Phase::Load);
        records.extend(reader.read_all()?);
    }
    let after = dfs
        .cluster()
        .metrics()
        .snapshot()
        .phase(Phase::Load)
        .disk_bytes_read;
    Ok(SampleBatch {
        records,
        bytes_read: after - before,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::premap::premap_sample;
    use earl_cluster::{Cluster, CostModel};
    use earl_dfs::DfsConfig;

    /// A file whose values are *clustered on disk*: the first half of the file
    /// holds small values, the second half large ones.
    fn clustered_dataset(n: usize) -> (Dfs, f64) {
        let cluster = Cluster::builder()
            .nodes(2)
            .cost_model(CostModel::free())
            .build()
            .unwrap();
        let dfs = Dfs::new(
            cluster,
            DfsConfig {
                block_size: 2048,
                replication: 1,
                io_chunk: 256,
            },
        )
        .unwrap();
        let values: Vec<f64> = (0..n)
            .map(|i| {
                if i < n / 2 {
                    10.0 + (i % 7) as f64
                } else {
                    1000.0 + (i % 7) as f64
                }
            })
            .collect();
        let mean = values.iter().sum::<f64>() / n as f64;
        dfs.write_lines("/clustered", values.iter().map(|v| format!("{v}")))
            .unwrap();
        (dfs, mean)
    }

    fn batch_mean(batch: &SampleBatch) -> f64 {
        batch
            .records
            .iter()
            .map(|(_, l)| l.parse::<f64>().unwrap())
            .sum::<f64>()
            / batch.len() as f64
    }

    #[test]
    fn block_sampling_is_biased_on_clustered_layouts() {
        let (dfs, true_mean) = clustered_dataset(4_000);
        // Across several seeds, block sampling of a single split produces wildly
        // varying estimates (it sees either the small or the large cluster),
        // while pre-map sampling of the same number of records stays close.
        let mut block_errs = Vec::new();
        let mut premap_errs = Vec::new();
        for seed in 0..8u64 {
            let block = block_sample(&dfs, "/clustered", 2048, 1, seed).unwrap();
            block_errs.push((batch_mean(&block) - true_mean).abs() / true_mean);
            let uniform = premap_sample(&dfs, "/clustered", block.len().min(400), seed).unwrap();
            premap_errs.push((batch_mean(&uniform) - true_mean).abs() / true_mean);
        }
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            avg(&block_errs) > 4.0 * avg(&premap_errs),
            "block sampling error {:.3} should dwarf pre-map error {:.3} on clustered data",
            avg(&block_errs),
            avg(&premap_errs)
        );
    }

    #[test]
    fn sampling_all_splits_reads_everything() {
        let (dfs, true_mean) = clustered_dataset(1_000);
        let status = dfs.status("/clustered").unwrap();
        let batch = block_sample(&dfs, "/clustered", 2048, usize::MAX, 1).unwrap();
        assert_eq!(batch.records.len() as u64, status.num_records.unwrap());
        assert!((batch_mean(&batch) - true_mean).abs() < 1e-9);
    }

    #[test]
    fn invalid_requests() {
        let (dfs, _) = clustered_dataset(100);
        assert!(block_sample(&dfs, "/clustered", 2048, 0, 1).is_err());
        assert!(block_sample(&dfs, "/missing", 2048, 1, 1).is_err());
    }
}
