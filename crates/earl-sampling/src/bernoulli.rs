//! Bernoulli (coin-flip) sampling.
//!
//! Each record is included independently with probability `p`.  Used as a
//! simple per-record baseline and by the post-map sampler's key-hashing stage.

use rand::Rng;

/// Includes each item of `iter` independently with probability `p`.
pub fn bernoulli_sample<T, I, R>(rng: &mut R, iter: I, p: f64) -> Vec<T>
where
    I: IntoIterator<Item = T>,
    R: Rng + ?Sized,
{
    let p = p.clamp(0.0, 1.0);
    iter.into_iter().filter(|_| rng.gen::<f64>() < p).collect()
}

/// A stateful Bernoulli sampler with inclusion accounting.
#[derive(Debug, Clone)]
pub struct BernoulliSampler {
    p: f64,
    offered: u64,
    included: u64,
}

impl BernoulliSampler {
    /// Creates a sampler with inclusion probability `p` (clamped to `[0, 1]`).
    pub fn new(p: f64) -> Self {
        Self {
            p: p.clamp(0.0, 1.0),
            offered: 0,
            included: 0,
        }
    }

    /// Decides whether the next record is included.
    pub fn include<R: Rng + ?Sized>(&mut self, rng: &mut R) -> bool {
        self.offered += 1;
        let hit = rng.gen::<f64>() < self.p;
        if hit {
            self.included += 1;
        }
        hit
    }

    /// Records offered so far.
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// Records included so far.
    pub fn included(&self) -> u64 {
        self.included
    }

    /// Empirical inclusion rate so far.
    pub fn rate(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.included as f64 / self.offered as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sample_rate_matches_p() {
        let mut rng = StdRng::seed_from_u64(1);
        let sample = bernoulli_sample(&mut rng, 0..100_000u32, 0.1);
        let rate = sample.len() as f64 / 100_000.0;
        assert!((rate - 0.1).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn extreme_probabilities() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(bernoulli_sample(&mut rng, 0..100u32, 0.0).is_empty());
        assert_eq!(bernoulli_sample(&mut rng, 0..100u32, 1.0).len(), 100);
        assert_eq!(
            bernoulli_sample(&mut rng, 0..100u32, 7.0).len(),
            100,
            "p is clamped"
        );
    }

    #[test]
    fn stateful_sampler_accounts() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut s = BernoulliSampler::new(0.5);
        assert_eq!(s.rate(), 0.0);
        for _ in 0..10_000 {
            s.include(&mut rng);
        }
        assert_eq!(s.offered(), 10_000);
        assert!((s.rate() - 0.5).abs() < 0.05);
        assert_eq!(s.included(), (s.rate() * 10_000.0).round() as u64);
    }
}
