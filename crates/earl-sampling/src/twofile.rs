//! The 2-file / ARHASH-style sampler from the related-work discussion (§7).
//!
//! Olken & Rotem's technique keeps a set of blocks `F1` in main memory and the
//! remaining blocks `F2` on disk; each random draw first picks `F1` or `F2`
//! with probability proportional to their sizes and then draws a record from
//! the chosen side.  The expected number of disk seeks is therefore reduced by
//! the memory-resident fraction.  The paper notes the idea must be extended for
//! a distributed file system — this module provides that extension over the
//! simulated DFS and is used by an ablation bench comparing samplers.

use earl_cluster::Phase;
use earl_dfs::{Dfs, DfsPath};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::SamplingError;
use crate::source::SampleBatch;
use crate::Result;

/// Statistics of a two-file sampling run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TwoFileStats {
    /// Draws served from the in-memory portion (no disk seek).
    pub memory_hits: u64,
    /// Draws that required a disk seek into the on-disk portion.
    pub disk_seeks: u64,
}

/// A sampler that holds a prefix fraction of the file in memory and serves
/// random draws from memory or disk proportionally.
#[derive(Debug)]
pub struct TwoFileSampler {
    dfs: Dfs,
    path: DfsPath,
    /// Lines resident in memory (F1), with their offsets.
    memory: Vec<(u64, String)>,
    /// Byte range of the on-disk remainder (F2).
    disk_start: u64,
    file_len: u64,
    rng: StdRng,
    stats: TwoFileStats,
}

impl TwoFileSampler {
    /// Creates the sampler, loading roughly `memory_fraction` of the file's
    /// bytes into memory (charged as a sequential read).
    pub fn new(
        dfs: Dfs,
        path: impl Into<DfsPath>,
        memory_fraction: f64,
        seed: u64,
    ) -> Result<Self> {
        if !(0.0..=1.0).contains(&memory_fraction) {
            return Err(SamplingError::InvalidConfig(
                "memory_fraction must be in [0, 1]".into(),
            ));
        }
        let path = path.into();
        let status = dfs.status(path.clone())?;
        let memory_bytes = (status.len as f64 * memory_fraction) as u64;
        let mut memory = Vec::new();
        let mut disk_start = 0u64;
        if memory_bytes > 0 {
            // Load whole lines until the memory budget is exhausted.
            let mut offset = 0u64;
            while offset < status.len && offset < memory_bytes {
                match dfs.read_line_at(Phase::Load, path.clone(), offset)? {
                    Some((start, line)) => {
                        let next = start + line.len() as u64 + 1;
                        memory.push((start, line));
                        offset = next;
                    }
                    None => break,
                }
            }
            disk_start = offset;
        }
        Ok(Self {
            dfs,
            path,
            memory,
            disk_start,
            file_len: status.len,
            rng: StdRng::seed_from_u64(seed),
            stats: TwoFileStats::default(),
        })
    }

    /// Sampling statistics so far.
    pub fn stats(&self) -> TwoFileStats {
        self.stats
    }

    /// Draws `count` random records (with replacement across draws, as in the
    /// original ARHASH formulation).
    pub fn draw(&mut self, count: usize) -> Result<SampleBatch> {
        if self.file_len == 0 {
            return Ok(SampleBatch {
                records: Vec::new(),
                bytes_read: 0,
            });
        }
        let before = self
            .dfs
            .cluster()
            .metrics()
            .snapshot()
            .phase(Phase::Load)
            .disk_bytes_read;
        let memory_fraction = if self.file_len == 0 {
            0.0
        } else {
            self.disk_start as f64 / self.file_len as f64
        };
        let mut records = Vec::with_capacity(count);
        while records.len() < count {
            if !self.memory.is_empty() && self.rng.gen::<f64>() < memory_fraction {
                let idx = self.rng.gen_range(0..self.memory.len());
                records.push(self.memory[idx].clone());
                self.stats.memory_hits += 1;
            } else if self.disk_start < self.file_len {
                let offset = self.rng.gen_range(self.disk_start..self.file_len);
                if let Some(rec) = self
                    .dfs
                    .read_line_at(Phase::Load, self.path.clone(), offset)?
                {
                    records.push(rec);
                }
                self.stats.disk_seeks += 1;
            } else if !self.memory.is_empty() {
                // Whole file fits in memory.
                let idx = self.rng.gen_range(0..self.memory.len());
                records.push(self.memory[idx].clone());
                self.stats.memory_hits += 1;
            } else {
                break;
            }
        }
        let after = self
            .dfs
            .cluster()
            .metrics()
            .snapshot()
            .phase(Phase::Load)
            .disk_bytes_read;
        Ok(SampleBatch {
            records,
            bytes_read: after - before,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use earl_cluster::{Cluster, CostModel};
    use earl_dfs::DfsConfig;

    fn dataset(n: usize) -> Dfs {
        let cluster = Cluster::builder()
            .nodes(2)
            .cost_model(CostModel::free())
            .build()
            .unwrap();
        let dfs = Dfs::new(
            cluster,
            DfsConfig {
                block_size: 4096,
                replication: 1,
                io_chunk: 128,
            },
        )
        .unwrap();
        dfs.write_lines("/tf", (0..n).map(|i| format!("{i}")))
            .unwrap();
        dfs
    }

    #[test]
    fn memory_resident_fraction_reduces_disk_seeks() {
        let dfs = dataset(2_000);
        let mut cold = TwoFileSampler::new(dfs.clone(), "/tf", 0.0, 1).unwrap();
        let mut warm = TwoFileSampler::new(dfs, "/tf", 0.5, 1).unwrap();
        cold.draw(500).unwrap();
        warm.draw(500).unwrap();
        assert_eq!(cold.stats().memory_hits, 0);
        assert!(
            warm.stats().memory_hits > 100,
            "half the draws should be served from memory"
        );
        assert!(warm.stats().disk_seeks < cold.stats().disk_seeks);
    }

    #[test]
    fn fully_memory_resident_never_seeks() {
        let dfs = dataset(200);
        let mut s = TwoFileSampler::new(dfs, "/tf", 1.0, 2).unwrap();
        let batch = s.draw(100).unwrap();
        assert_eq!(batch.len(), 100);
        assert_eq!(s.stats().disk_seeks, 0);
    }

    #[test]
    fn draws_cover_both_regions() {
        let dfs = dataset(1_000);
        let mut s = TwoFileSampler::new(dfs, "/tf", 0.3, 3).unwrap();
        let batch = s.draw(600).unwrap();
        let values: Vec<u64> = batch
            .records
            .iter()
            .map(|(_, l)| l.parse().unwrap())
            .collect();
        assert!(
            values.iter().any(|&v| v < 300),
            "some draws from the memory region"
        );
        assert!(
            values.iter().any(|&v| v > 700),
            "some draws from the disk region"
        );
    }

    #[test]
    fn invalid_fraction_rejected() {
        let dfs = dataset(10);
        assert!(TwoFileSampler::new(dfs.clone(), "/tf", 1.5, 1).is_err());
        assert!(TwoFileSampler::new(dfs, "/missing", 0.5, 1).is_err());
    }
}
