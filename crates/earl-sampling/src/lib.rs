//! # earl-sampling
//!
//! Sampling over a distributed file system, as described in §3.3 of the EARL
//! paper (Laptev, Zeng, Zaniolo — VLDB 2012).
//!
//! The paper observes that neither naive block sampling (biased when data are
//! clustered on disk) nor reservoir sampling (requires a full scan) fits the
//! MapReduce setting, and introduces two practical techniques:
//!
//! * **Pre-map sampling** ([`premap`]) — draw random line offsets directly from
//!   the logical input splits *before* any data is sent to the mapper, using a
//!   bit-vector of already-used line starts (Algorithm 2).  Fast load times;
//!   the number of key/value pairs is only estimated.
//! * **Post-map sampling** ([`postmap`]) — read and parse everything once,
//!   hash the key/value pairs, and repeatedly draw without replacement from the
//!   hash as the required sample grows (Algorithm 1).  Slower loading but exact
//!   key/value accounting for result correction.
//!
//! Baselines used for comparison in the paper and the experiments are also
//! provided: [`reservoir`] sampling, [`bernoulli`] sampling, naive [`block`]
//! sampling, and the two-file/ARHASH-style memory+disk sampler ([`twofile`])
//! from the related-work discussion.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bernoulli;
pub mod block;
pub mod error;
pub mod postmap;
pub mod premap;
pub mod reservoir;
pub mod source;
pub mod twofile;

pub use error::SamplingError;
pub use postmap::PostMapSampler;
pub use premap::PreMapSampler;
pub use reservoir::ReservoirSampler;
pub use source::{SampleBatch, SampleSource};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, SamplingError>;
