//! The [`SampleSource`] abstraction the EARL driver consumes.
//!
//! EARL's iterative loop ("draw Δs, aggregate with s, re-estimate") only needs
//! two operations from a sampler: *draw some more records* and *tell me how big
//! the population is*.  Both pre-map and post-map samplers implement this
//! trait, so the driver is agnostic to which one the user picked.

use crate::Result;

/// A batch of sampled records plus accounting information.
#[derive(Debug, Clone, PartialEq)]
pub struct SampleBatch {
    /// The sampled records as `(byte offset or record index, line)` pairs,
    /// ready to be fed to a MapReduce job as in-memory input.
    pub records: Vec<(u64, String)>,
    /// Bytes that had to be read from the DFS to produce this batch.
    pub bytes_read: u64,
}

impl SampleBatch {
    /// Number of records in the batch.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

/// A source of uniformly random records that can be drawn from incrementally.
pub trait SampleSource {
    /// Draws up to `count` additional records (fewer if the population is
    /// exhausted).  Records already returned by earlier calls are never
    /// returned again (sampling without replacement across calls), so the union
    /// of all batches is itself a uniform sample.
    fn draw(&mut self, count: usize) -> Result<SampleBatch>;

    /// Total number of records in the population, if known.  Pre-map sampling
    /// only knows an estimate until the file's record count metadata is
    /// consulted; post-map sampling knows it exactly after its initial scan.
    fn population_size(&self) -> Option<u64>;

    /// Number of records drawn so far.
    fn drawn(&self) -> u64;

    /// Fraction of the population drawn so far (`None` when the population size
    /// is unknown).  This is the `p` handed to the user's `correct()` function.
    fn sampled_fraction(&self) -> Option<f64> {
        self.population_size().map(|n| {
            if n == 0 {
                1.0
            } else {
                self.drawn() as f64 / n as f64
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct FakeSource {
        next: u64,
        total: u64,
    }

    impl SampleSource for FakeSource {
        fn draw(&mut self, count: usize) -> Result<SampleBatch> {
            let take = (count as u64).min(self.total - self.next);
            let records = (0..take)
                .map(|i| (self.next + i, format!("r{}", self.next + i)))
                .collect::<Vec<_>>();
            self.next += take;
            Ok(SampleBatch {
                records,
                bytes_read: take * 4,
            })
        }
        fn population_size(&self) -> Option<u64> {
            Some(self.total)
        }
        fn drawn(&self) -> u64 {
            self.next
        }
    }

    #[test]
    fn sampled_fraction_tracks_draws() {
        let mut src = FakeSource {
            next: 0,
            total: 100,
        };
        assert_eq!(src.sampled_fraction(), Some(0.0));
        let batch = src.draw(25).unwrap();
        assert_eq!(batch.len(), 25);
        assert!(!batch.is_empty());
        assert_eq!(src.sampled_fraction(), Some(0.25));
        src.draw(1000).unwrap();
        assert_eq!(src.sampled_fraction(), Some(1.0));
    }

    #[test]
    fn empty_population_fraction_is_one() {
        let src = FakeSource { next: 0, total: 0 };
        assert_eq!(src.sampled_fraction(), Some(1.0));
    }
}
