//! The shuffle: partitioning, grouping and sorting of intermediate pairs.

use std::collections::BTreeMap;

use crate::partition::Partitioner;
use crate::types::{Combiner, MrKey, MrValue};

/// Intermediate data grouped per reduce partition, with values grouped by key
/// in sorted key order (the "sort" half of sort-and-shuffle).
#[derive(Debug)]
pub struct ShuffleOutput<K, V> {
    partitions: Vec<BTreeMap<K, Vec<V>>>,
}

impl<K: MrKey, V: MrValue> ShuffleOutput<K, V> {
    /// Groups `pairs` into `num_partitions` reduce partitions using `partitioner`.
    pub fn shuffle<P: Partitioner<K> + ?Sized>(
        pairs: Vec<(K, V)>,
        num_partitions: usize,
        partitioner: &P,
    ) -> Self {
        let num_partitions = num_partitions.max(1);
        let mut partitions: Vec<BTreeMap<K, Vec<V>>> =
            (0..num_partitions).map(|_| BTreeMap::new()).collect();
        for (key, value) in pairs {
            let p = partitioner
                .partition(&key, num_partitions)
                .min(num_partitions - 1);
            partitions[p].entry(key).or_default().push(value);
        }
        Self { partitions }
    }

    /// Number of reduce partitions.
    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Total number of records across all partitions.
    pub fn total_records(&self) -> u64 {
        self.partitions
            .iter()
            .flat_map(|p| p.values())
            .map(|v| v.len() as u64)
            .sum()
    }

    /// Total number of distinct keys across all partitions.
    pub fn total_groups(&self) -> u64 {
        self.partitions.iter().map(|p| p.len() as u64).sum()
    }

    /// Iterates over partitions.
    pub fn partitions(&self) -> impl Iterator<Item = &BTreeMap<K, Vec<V>>> {
        self.partitions.iter()
    }

    /// Consumes the shuffle output, yielding the partitions.
    pub fn into_partitions(self) -> Vec<BTreeMap<K, Vec<V>>> {
        self.partitions
    }
}

/// Applies a combiner to one mapper's local output, reducing the number of
/// records that must cross the network.
pub fn apply_combiner<C>(pairs: Vec<(C::Key, C::Value)>, combiner: &C) -> Vec<(C::Key, C::Value)>
where
    C: Combiner + ?Sized,
{
    let mut grouped: BTreeMap<C::Key, Vec<C::Value>> = BTreeMap::new();
    for (k, v) in pairs {
        grouped.entry(k).or_default().push(v);
    }
    let mut combined = Vec::new();
    for (k, values) in grouped {
        for v in combiner.combine(&k, &values) {
            combined.push((k.clone(), v));
        }
    }
    combined
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::HashPartitioner;

    #[test]
    fn shuffle_groups_by_key_in_sorted_order() {
        let pairs = vec![("b", 1), ("a", 2), ("b", 3), ("c", 4), ("a", 5)];
        let out = ShuffleOutput::shuffle(pairs, 1, &HashPartitioner);
        assert_eq!(out.num_partitions(), 1);
        assert_eq!(out.total_records(), 5);
        assert_eq!(out.total_groups(), 3);
        let partition = &out.into_partitions()[0];
        let keys: Vec<&&str> = partition.keys().collect();
        assert_eq!(keys, vec![&"a", &"b", &"c"]);
        assert_eq!(partition["a"], vec![2, 5]);
        assert_eq!(partition["b"], vec![1, 3]);
    }

    #[test]
    fn every_key_lands_in_exactly_one_partition() {
        let pairs: Vec<(u64, u64)> = (0..500).map(|i| (i % 50, i)).collect();
        let out = ShuffleOutput::shuffle(pairs, 4, &HashPartitioner);
        assert_eq!(out.total_records(), 500);
        assert_eq!(out.total_groups(), 50);
        // No key appears in two partitions.
        let mut seen = std::collections::HashSet::new();
        for partition in out.partitions() {
            for key in partition.keys() {
                assert!(seen.insert(*key), "key {key} appeared in two partitions");
            }
        }
        assert_eq!(seen.len(), 50);
    }

    #[test]
    fn zero_partitions_is_clamped_to_one() {
        let out = ShuffleOutput::shuffle(vec![("k", 1)], 0, &HashPartitioner);
        assert_eq!(out.num_partitions(), 1);
    }

    struct SumCombiner;
    impl Combiner for SumCombiner {
        type Key = String;
        type Value = u64;
        fn combine(&self, _key: &String, values: &[u64]) -> Vec<u64> {
            vec![values.iter().sum()]
        }
    }

    #[test]
    fn combiner_shrinks_local_output() {
        let pairs = vec![
            ("a".to_owned(), 1),
            ("a".to_owned(), 2),
            ("b".to_owned(), 3),
            ("a".to_owned(), 4),
        ];
        let combined = apply_combiner(pairs, &SumCombiner);
        assert_eq!(combined, vec![("a".to_owned(), 7), ("b".to_owned(), 3)]);
    }
}
