//! The shuffle: partitioning, grouping and sorting of intermediate pairs.
//!
//! Three execution paths produce the **same bits**:
//!
//! * [`ShuffleOutput::shuffle`] — the sequential reference: one pass over the
//!   pairs into per-partition `BTreeMap`s.
//! * [`ShuffleOutput::shuffle_parallel`] — the sharded path: map output is
//!   bucketed into per-reducer hash shards by contiguous input chunks on the
//!   `earl-parallel` pool ([`earl_parallel::shard_merge`]), then every reducer
//!   merges + sorts its own shard independently.  Because each shard receives
//!   its pairs in input order and grouping is per-shard, the result is
//!   bit-identical to the sequential path at every thread count — the same
//!   determinism contract as the `(seed, replicate)` RNG streams.
//! * [`ShuffleOutput::shuffle_streaming`] — the map-side streaming path: the
//!   pairs were never materialised into one vector at all.  Mappers emitted
//!   them straight into per-shard buffers ([`earl_parallel::sharded_emit`]);
//!   this constructor runs only the reduce-side half — per-shard concatenation
//!   (in emission order) + grouping — via [`ShardedBuffers::merge`], the exact
//!   code path `shuffle_parallel` merges through, so the two cannot diverge.
//!
//! No path ever clones a key or a value: pairs are moved from the map
//! output into their group.  (`BTreeMap::entry` takes the key by value; for a
//! key already present the duplicate key is dropped, not cloned.)
//!
//! `total_records` / `total_groups` are cached at build time — they are read
//! on every job (stats, reduce planning) and recomputing them meant an
//! all-partitions walk per call.

use std::collections::BTreeMap;

use earl_parallel::{shard_merge, ShardedBuffers};

use crate::partition::Partitioner;
use crate::types::{Combiner, MrKey, MrValue};

/// Intermediate data grouped per reduce partition, with values grouped by key
/// in sorted key order (the "sort" half of sort-and-shuffle).
#[derive(Debug)]
pub struct ShuffleOutput<K, V> {
    partitions: Vec<BTreeMap<K, Vec<V>>>,
    /// Total records across all partitions, cached at build time.
    total_records: u64,
    /// Total distinct keys across all partitions, cached at build time.
    total_groups: u64,
}

/// Groups pairs (already routed to one partition, in input order) by key.
/// Keys and values are moved, never cloned.
fn group_pairs<K: MrKey, V: MrValue>(pairs: Vec<(K, V)>) -> BTreeMap<K, Vec<V>> {
    let mut grouped: BTreeMap<K, Vec<V>> = BTreeMap::new();
    for (key, value) in pairs {
        grouped.entry(key).or_default().push(value);
    }
    grouped
}

impl<K: MrKey, V: MrValue> ShuffleOutput<K, V> {
    /// Wraps grouped partitions, caching the record/group totals once.
    /// `total_records` is passed in by the construction path (which always
    /// knows it without a values walk: pair count or emitted count).
    fn from_partitions(partitions: Vec<BTreeMap<K, Vec<V>>>, total_records: u64) -> Self {
        let total_groups = partitions.iter().map(|p| p.len() as u64).sum();
        Self {
            partitions,
            total_records,
            total_groups,
        }
    }

    /// Groups `pairs` into `num_partitions` reduce partitions using
    /// `partitioner`, single-threaded.  This is the reference implementation
    /// the sharded and streaming paths must match bit for bit.
    pub fn shuffle<P: Partitioner<K> + ?Sized>(
        pairs: Vec<(K, V)>,
        num_partitions: usize,
        partitioner: &P,
    ) -> Self {
        let num_partitions = num_partitions.max(1);
        let total_records = pairs.len() as u64;
        let mut partitions: Vec<BTreeMap<K, Vec<V>>> =
            (0..num_partitions).map(|_| BTreeMap::new()).collect();
        for (key, value) in pairs {
            let p = partitioner
                .partition(&key, num_partitions)
                .min(num_partitions - 1);
            partitions[p].entry(key).or_default().push(value);
        }
        Self::from_partitions(partitions, total_records)
    }

    /// Sharded shuffle: partition-parallel grouping over `threads` workers.
    ///
    /// Each worker buckets one contiguous chunk of `pairs` into per-reducer
    /// shards; each reducer then merges + sorts its own shard.  Output is
    /// bit-identical to [`ShuffleOutput::shuffle`] for every `threads` value;
    /// with `threads <= 1` it falls back to the sequential path outright.
    pub fn shuffle_parallel<P: Partitioner<K> + ?Sized>(
        pairs: Vec<(K, V)>,
        num_partitions: usize,
        partitioner: &P,
        threads: usize,
    ) -> Self {
        let num_partitions = num_partitions.max(1);
        if threads <= 1 || num_partitions == 1 {
            // One partition means one merger: sharding buys nothing.
            return Self::shuffle(pairs, num_partitions, partitioner);
        }
        let total_records = pairs.len() as u64;
        let partitions = shard_merge(
            pairs,
            num_partitions,
            threads,
            |(key, _)| partitioner.partition(key, num_partitions),
            |_, shard| group_pairs(shard),
        );
        Self::from_partitions(partitions, total_records)
    }

    /// Streaming shuffle: completes a **map-side** shuffle whose pairs were
    /// emitted directly into per-shard buffers during the map phase
    /// ([`earl_parallel::sharded_emit`]) — the intermediate all-pairs vector
    /// of the gather paths never existed.  Only the reduce-side half runs
    /// here: each shard's buckets are concatenated in emission order and
    /// grouped, one merger per reducer across `threads` workers.
    ///
    /// The caller routed each pair with the **same partitioner arithmetic**
    /// the gather paths use (shard = `partitioner.partition(key, num_shards)`,
    /// clamped); under that contract the output is bit-identical to
    /// [`ShuffleOutput::shuffle`] / [`shuffle_parallel`](Self::shuffle_parallel)
    /// over the same pairs in the same emission order, at every thread count.
    pub fn shuffle_streaming(buffers: ShardedBuffers<(K, V)>, threads: usize) -> Self {
        let total_records = buffers.total_items();
        let partitions = buffers.merge(threads, |_, shard| group_pairs(shard));
        Self::from_partitions(partitions, total_records)
    }

    /// Number of reduce partitions.
    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Total number of records across all partitions (cached at build time).
    pub fn total_records(&self) -> u64 {
        self.total_records
    }

    /// Total number of distinct keys across all partitions (cached at build
    /// time).
    pub fn total_groups(&self) -> u64 {
        self.total_groups
    }

    /// Iterates over partitions.
    pub fn partitions(&self) -> impl Iterator<Item = &BTreeMap<K, Vec<V>>> {
        self.partitions.iter()
    }

    /// Consumes the shuffle output, yielding the partitions.
    pub fn into_partitions(self) -> Vec<BTreeMap<K, Vec<V>>> {
        self.partitions
    }
}

/// Applies a combiner to one mapper's local output, reducing the number of
/// records that must cross the network.
///
/// Each group's key is cloned once per *extra* combined value only (combiners
/// almost always emit exactly one value per key, in which case the key is
/// moved) — not once per value as the previous implementation did.
pub fn apply_combiner<C>(pairs: Vec<(C::Key, C::Value)>, combiner: &C) -> Vec<(C::Key, C::Value)>
where
    C: Combiner + ?Sized,
{
    let grouped = group_pairs(pairs);
    let mut combined = Vec::with_capacity(grouped.len());
    for (key, values) in grouped {
        let mut out = combiner.combine(&key, &values);
        let Some(last) = out.pop() else { continue };
        for value in out {
            combined.push((key.clone(), value));
        }
        // The group's final value rides on the owned key — no clone.
        combined.push((key, last));
    }
    combined
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::HashPartitioner;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn shuffle_groups_by_key_in_sorted_order() {
        let pairs = vec![("b", 1), ("a", 2), ("b", 3), ("c", 4), ("a", 5)];
        let out = ShuffleOutput::shuffle(pairs, 1, &HashPartitioner);
        assert_eq!(out.num_partitions(), 1);
        assert_eq!(out.total_records(), 5);
        assert_eq!(out.total_groups(), 3);
        let partition = &out.into_partitions()[0];
        let keys: Vec<&&str> = partition.keys().collect();
        assert_eq!(keys, vec![&"a", &"b", &"c"]);
        assert_eq!(partition["a"], vec![2, 5]);
        assert_eq!(partition["b"], vec![1, 3]);
    }

    #[test]
    fn every_key_lands_in_exactly_one_partition() {
        let pairs: Vec<(u64, u64)> = (0..500).map(|i| (i % 50, i)).collect();
        let out = ShuffleOutput::shuffle(pairs, 4, &HashPartitioner);
        assert_eq!(out.total_records(), 500);
        assert_eq!(out.total_groups(), 50);
        // No key appears in two partitions.
        let mut seen = std::collections::HashSet::new();
        for partition in out.partitions() {
            for key in partition.keys() {
                assert!(seen.insert(*key), "key {key} appeared in two partitions");
            }
        }
        assert_eq!(seen.len(), 50);
    }

    #[test]
    fn zero_partitions_is_clamped_to_one() {
        let out = ShuffleOutput::shuffle(vec![("k", 1)], 0, &HashPartitioner);
        assert_eq!(out.num_partitions(), 1);
        let out = ShuffleOutput::shuffle_parallel(vec![("k", 1)], 0, &HashPartitioner, 8);
        assert_eq!(out.num_partitions(), 1);
    }

    #[test]
    fn sharded_shuffle_matches_sequential_at_every_thread_count() {
        let pairs: Vec<(u64, u64)> = (0..5_000).map(|i| (i * 2_654_435_761 % 97, i)).collect();
        for parts in [1usize, 2, 4, 7] {
            let reference =
                ShuffleOutput::shuffle(pairs.clone(), parts, &HashPartitioner).into_partitions();
            for threads in [1usize, 2, 4, 8, 64] {
                let sharded = ShuffleOutput::shuffle_parallel(
                    pairs.clone(),
                    parts,
                    &HashPartitioner,
                    threads,
                )
                .into_partitions();
                assert_eq!(sharded, reference, "parts {parts}, threads {threads}");
            }
        }
    }

    /// Emulates a map phase emitting `pairs[i]` straight into shard buffers —
    /// the streaming path over the same pairs in the same order.
    fn stream<K: MrKey, V: MrValue, P: Partitioner<K>>(
        pairs: &[(K, V)],
        partitions: usize,
        partitioner: &P,
        threads: usize,
    ) -> ShuffleOutput<K, V> {
        let partitions = partitions.max(1);
        let (_, buffers) =
            earl_parallel::sharded_emit(pairs.len(), partitions, threads, |i, buf| {
                let (key, value) = pairs[i].clone();
                let shard = partitioner.partition(&key, partitions);
                buf.emit(shard, (key, value));
            });
        ShuffleOutput::shuffle_streaming(buffers, threads)
    }

    #[test]
    fn streaming_shuffle_matches_sequential_at_every_thread_count() {
        let pairs: Vec<(u64, u64)> = (0..5_000).map(|i| (i * 2_654_435_761 % 97, i)).collect();
        for parts in [1usize, 2, 4, 7] {
            let reference = ShuffleOutput::shuffle(pairs.clone(), parts, &HashPartitioner);
            for threads in [1usize, 2, 4, 8, 64] {
                let streamed = stream(&pairs, parts, &HashPartitioner, threads);
                assert_eq!(
                    streamed.total_records(),
                    reference.total_records(),
                    "parts {parts}, threads {threads}"
                );
                assert_eq!(streamed.total_groups(), reference.total_groups());
                assert_eq!(
                    streamed.into_partitions(),
                    reference.partitions.clone(),
                    "parts {parts}, threads {threads}"
                );
            }
        }
    }

    #[test]
    fn cached_counts_are_identical_across_all_three_paths() {
        let pairs: Vec<(u64, u64)> = (0..2_500).map(|i| (i % 83, i)).collect();
        let seq = ShuffleOutput::shuffle(pairs.clone(), 4, &HashPartitioner);
        let par = ShuffleOutput::shuffle_parallel(pairs.clone(), 4, &HashPartitioner, 8);
        let streamed = stream(&pairs, 4, &HashPartitioner, 8);
        // The cached counts agree with a manual walk and with each other.
        let manual_records: u64 = seq
            .partitions()
            .flat_map(|p| p.values())
            .map(|v| v.len() as u64)
            .sum();
        let manual_groups: u64 = seq.partitions().map(|p| p.len() as u64).sum();
        for out in [&seq, &par, &streamed] {
            assert_eq!(out.total_records(), manual_records);
            assert_eq!(out.total_groups(), manual_groups);
            // Repeated calls return the same cached values.
            assert_eq!(out.total_records(), out.total_records());
        }
        assert_eq!(manual_records, 2_500);
        assert_eq!(manual_groups, 83);
    }

    /// A key that counts how many times it is cloned, to pin down the
    /// shuffle's no-copy guarantee.
    #[derive(Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
    struct CountedKey(u64);

    static KEY_CLONES: AtomicUsize = AtomicUsize::new(0);
    /// Tests reading `KEY_CLONES` deltas hold this lock — the test harness
    /// runs them on separate threads otherwise, racing the shared counter.
    static CLONE_COUNT_LOCK: parking_lot::Mutex<()> = parking_lot::Mutex::new(());

    impl Clone for CountedKey {
        fn clone(&self) -> Self {
            KEY_CLONES.fetch_add(1, Ordering::Relaxed);
            CountedKey(self.0)
        }
    }

    struct IdentityPartitioner;
    impl Partitioner<CountedKey> for IdentityPartitioner {
        fn partition(&self, key: &CountedKey, num_partitions: usize) -> usize {
            (key.0 as usize) % num_partitions
        }
    }

    #[test]
    fn shuffle_paths_never_clone_keys() {
        let _serial = CLONE_COUNT_LOCK.lock();
        let pairs = |n: u64| -> Vec<(CountedKey, u64)> {
            (0..n).map(|i| (CountedKey(i % 13), i)).collect()
        };
        let before = KEY_CLONES.load(Ordering::Relaxed);
        let seq = ShuffleOutput::shuffle(pairs(2_000), 4, &IdentityPartitioner);
        assert_eq!(seq.total_records(), 2_000);
        let par = ShuffleOutput::shuffle_parallel(pairs(2_000), 4, &IdentityPartitioner, 8);
        assert_eq!(par.total_records(), 2_000);
        assert_eq!(
            KEY_CLONES.load(Ordering::Relaxed),
            before,
            "shuffle must move keys, never clone them"
        );
    }

    struct SumCombiner;
    impl Combiner for SumCombiner {
        type Key = String;
        type Value = u64;
        fn combine(&self, _key: &String, values: &[u64]) -> Vec<u64> {
            vec![values.iter().sum()]
        }
    }

    #[test]
    fn combiner_shrinks_local_output() {
        let pairs = vec![
            ("a".to_owned(), 1),
            ("a".to_owned(), 2),
            ("b".to_owned(), 3),
            ("a".to_owned(), 4),
        ];
        let combined = apply_combiner(pairs, &SumCombiner);
        assert_eq!(combined, vec![("a".to_owned(), 7), ("b".to_owned(), 3)]);
    }

    struct EchoCombiner;
    impl Combiner for EchoCombiner {
        type Key = CountedKey;
        type Value = u64;
        fn combine(&self, _key: &CountedKey, values: &[u64]) -> Vec<u64> {
            values.to_vec()
        }
    }

    struct DropCombiner;
    impl Combiner for DropCombiner {
        type Key = CountedKey;
        type Value = u64;
        fn combine(&self, _key: &CountedKey, _values: &[u64]) -> Vec<u64> {
            Vec::new()
        }
    }

    #[test]
    fn combiner_clones_keys_once_per_extra_value_only() {
        let _serial = CLONE_COUNT_LOCK.lock();
        struct OneCombiner;
        impl Combiner for OneCombiner {
            type Key = CountedKey;
            type Value = u64;
            fn combine(&self, _key: &CountedKey, values: &[u64]) -> Vec<u64> {
                vec![values.iter().sum()]
            }
        }
        let pairs =
            |n: u64| -> Vec<(CountedKey, u64)> { (0..n).map(|i| (CountedKey(i % 5), 1)).collect() };

        // 1 value per group: the key is moved, zero clones.
        let before = KEY_CLONES.load(Ordering::Relaxed);
        let out = apply_combiner(pairs(100), &OneCombiner);
        assert_eq!(out.len(), 5);
        assert_eq!(
            KEY_CLONES.load(Ordering::Relaxed) - before,
            0,
            "single combined value must not clone its key"
        );

        // k values per group: k - 1 clones, and value order is preserved.
        let before = KEY_CLONES.load(Ordering::Relaxed);
        let out = apply_combiner(pairs(15), &EchoCombiner);
        assert_eq!(out.len(), 15);
        assert_eq!(KEY_CLONES.load(Ordering::Relaxed) - before, 15 - 5);
        for group in out.chunks(3) {
            assert!(group.iter().all(|(k, _)| k == &group[0].0));
            assert_eq!(
                group.iter().map(|(_, v)| *v).collect::<Vec<_>>(),
                vec![1, 1, 1]
            );
        }

        // 0 values per group: nothing emitted, nothing cloned.
        let before = KEY_CLONES.load(Ordering::Relaxed);
        assert!(apply_combiner(pairs(20), &DropCombiner).is_empty());
        assert_eq!(KEY_CLONES.load(Ordering::Relaxed) - before, 0);
    }
}
