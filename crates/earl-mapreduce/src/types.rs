//! The MapReduce programming model: mapper, reducer and combiner traits plus
//! their execution contexts.
//!
//! Signatures follow the paper's §2.1:
//!
//! ```text
//! map    : (k1, v1)        → list(k2, v2)
//! reduce : (k2, list(v2))  → (k3, v3)
//! ```
//!
//! Input records arrive as `(byte offset, line)` pairs, exactly like Hadoop's
//! `TextInputFormat`.

use std::hash::Hash as StdHash;

use earl_parallel::ShardBuffers;

use crate::counters::{builtin, Counters};
use crate::partition::{HashPartitioner, Partitioner};

/// Marker bounds for intermediate keys.
pub trait MrKey: Ord + StdHash + Clone + Send + Sync + 'static {}
impl<T: Ord + StdHash + Clone + Send + Sync + 'static> MrKey for T {}

/// Marker bounds for intermediate values.
pub trait MrValue: Clone + Send + Sync + 'static {}
impl<T: Clone + Send + Sync + 'static> MrValue for T {}

/// Where a [`MapContext`]'s emitted pairs go.
///
/// `Buffered` collects them into one vector — needed when a combiner must see
/// the task's full output before routing, and by callers that consume pairs
/// directly ([`MapContext::into_parts`]).  `Sharded` routes every pair into
/// per-reduce-shard buckets *as it is emitted*, via the same
/// [`HashPartitioner`] the shuffle uses — the streaming-shuffle hot path,
/// which never materialises a per-task all-pairs vector at all.
#[derive(Debug)]
enum Sink<K, V> {
    Buffered(Vec<(K, V)>),
    Sharded {
        buffers: ShardBuffers<(K, V)>,
        num_shards: usize,
    },
}

/// Context handed to map functions for emitting intermediate pairs.
#[derive(Debug)]
pub struct MapContext<K, V> {
    sink: Sink<K, V>,
    counters: Counters,
    emitted: usize,
}

impl<K: MrKey, V: MrValue> MapContext<K, V> {
    /// Creates an empty buffering context: emitted pairs are collected for
    /// [`into_parts`](Self::into_parts).
    pub fn new() -> Self {
        Self {
            sink: Sink::Buffered(Vec::new()),
            counters: Counters::new(),
            emitted: 0,
        }
    }

    /// Creates a context that routes every emitted pair straight into
    /// `buffers`' per-shard buckets (hash-partitioned over `num_shards`),
    /// taking temporary ownership of the buffers.  Reclaim them — along with
    /// the counters — via [`into_shards`](Self::into_shards).
    pub fn sharded(buffers: ShardBuffers<(K, V)>, num_shards: usize) -> Self {
        Self {
            sink: Sink::Sharded {
                buffers,
                num_shards,
            },
            counters: Counters::new(),
            emitted: 0,
        }
    }

    /// Emits one intermediate `(key, value)` pair.
    pub fn emit(&mut self, key: K, value: V) {
        self.counters.increment(builtin::MAP_OUTPUT_RECORDS);
        self.emitted += 1;
        match &mut self.sink {
            Sink::Buffered(pairs) => pairs.push((key, value)),
            Sink::Sharded {
                buffers,
                num_shards,
            } => {
                let shard = HashPartitioner.partition(&key, *num_shards);
                buffers.emit(shard, (key, value));
            }
        }
    }

    /// Increments a user counter.
    pub fn increment_counter(&mut self, name: &str, delta: u64) {
        self.counters.add(name, delta);
    }

    /// Number of pairs emitted so far.
    pub fn emitted_len(&self) -> usize {
        self.emitted
    }

    /// Consumes a buffering context, returning emitted pairs and counters.
    ///
    /// # Panics
    /// If the context was built with [`sharded`](Self::sharded) — its pairs
    /// already live in the shard buffers; use [`into_shards`](Self::into_shards).
    pub fn into_parts(self) -> (Vec<(K, V)>, Counters) {
        match self.sink {
            Sink::Buffered(pairs) => (pairs, self.counters),
            Sink::Sharded { .. } => {
                panic!("into_parts on a sharded MapContext; use into_shards")
            }
        }
    }

    /// Consumes a sharded context, returning the shard buffers (with this
    /// task's pairs routed in) and counters.
    ///
    /// # Panics
    /// If the context was built with [`new`](Self::new); use
    /// [`into_parts`](Self::into_parts).
    pub fn into_shards(self) -> (ShardBuffers<(K, V)>, Counters) {
        match self.sink {
            Sink::Sharded { buffers, .. } => (buffers, self.counters),
            Sink::Buffered(_) => {
                panic!("into_shards on a buffering MapContext; use into_parts")
            }
        }
    }
}

impl<K: MrKey, V: MrValue> Default for MapContext<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

/// Context handed to reduce functions for emitting final output records.
#[derive(Debug)]
pub struct ReduceContext<O> {
    outputs: Vec<O>,
    counters: Counters,
}

impl<O> ReduceContext<O> {
    /// Creates an empty context.
    pub fn new() -> Self {
        Self {
            outputs: Vec::new(),
            counters: Counters::new(),
        }
    }

    /// Emits one output record.
    pub fn emit(&mut self, output: O) {
        self.counters.increment(builtin::REDUCE_OUTPUT_RECORDS);
        self.outputs.push(output);
    }

    /// Increments a user counter.
    pub fn increment_counter(&mut self, name: &str, delta: u64) {
        self.counters.add(name, delta);
    }

    /// Consumes the context, returning outputs and counters.
    pub fn into_parts(self) -> (Vec<O>, Counters) {
        (self.outputs, self.counters)
    }
}

impl<O> Default for ReduceContext<O> {
    fn default() -> Self {
        Self::new()
    }
}

/// A map function over `(offset, line)` input records.
pub trait Mapper: Send + Sync {
    /// Intermediate key type.
    type OutKey: MrKey;
    /// Intermediate value type.
    type OutValue: MrValue;

    /// Processes one input record.
    fn map(&self, offset: u64, line: &str, ctx: &mut MapContext<Self::OutKey, Self::OutValue>);

    /// Whether the map function is CPU-heavy (charged at the cost model's
    /// heavy multiplier).  Defaults to `false`.
    fn is_heavy(&self) -> bool {
        false
    }

    /// A wire-portable spec of this mapper for remote execution, or `None`
    /// (the default) to always run in-process.  A remote transport is only
    /// consulted when both the job's mapper and reducer return a spec.
    fn remote_spec(&self) -> Option<crate::transport::TaskSpec> {
        None
    }
}

/// A reduce function over `(key, values)` groups.
pub trait Reducer: Send + Sync {
    /// Intermediate key type (must match the mapper's).
    type InKey: MrKey;
    /// Intermediate value type (must match the mapper's).
    type InValue: MrValue;
    /// Final output record type.
    type Output: Send + 'static;

    /// Processes one key group.
    fn reduce(
        &self,
        key: &Self::InKey,
        values: &[Self::InValue],
        ctx: &mut ReduceContext<Self::Output>,
    );

    /// Whether the reduce function is CPU-heavy.  Defaults to `false`.
    fn is_heavy(&self) -> bool {
        false
    }

    /// A wire-portable spec of this reducer for remote execution, or `None`
    /// (the default) to always run in-process.
    fn remote_spec(&self) -> Option<crate::transport::TaskSpec> {
        None
    }
}

/// A combiner: a local, associative reduction applied to each mapper's output
/// before the shuffle to cut intermediate data volume.
pub trait Combiner: Send + Sync {
    /// Key type.
    type Key: MrKey;
    /// Value type.
    type Value: MrValue;

    /// Combines all values of one key produced by a single mapper into a
    /// smaller list (often a single element).
    fn combine(&self, key: &Self::Key, values: &[Self::Value]) -> Vec<Self::Value>;
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Tokenizer;
    impl Mapper for Tokenizer {
        type OutKey = String;
        type OutValue = u64;
        fn map(&self, _offset: u64, line: &str, ctx: &mut MapContext<String, u64>) {
            for token in line.split_whitespace() {
                ctx.emit(token.to_owned(), 1);
            }
        }
    }

    struct Summer;
    impl Reducer for Summer {
        type InKey = String;
        type InValue = u64;
        type Output = (String, u64);
        fn reduce(&self, key: &String, values: &[u64], ctx: &mut ReduceContext<(String, u64)>) {
            ctx.emit((key.clone(), values.iter().sum()));
        }
    }

    #[test]
    fn map_context_collects_emits_and_counters() {
        let mut ctx = MapContext::new();
        Tokenizer.map(0, "a b a", &mut ctx);
        ctx.increment_counter("custom", 2);
        assert_eq!(ctx.emitted_len(), 3);
        let (pairs, counters) = ctx.into_parts();
        assert_eq!(pairs.len(), 3);
        assert_eq!(counters.get(builtin::MAP_OUTPUT_RECORDS), 3);
        assert_eq!(counters.get("custom"), 2);
    }

    #[test]
    fn sharded_map_context_routes_like_the_partitioner() {
        let mut ctx = MapContext::sharded(ShardBuffers::new(4), 4);
        Tokenizer.map(0, "a b a c", &mut ctx);
        assert_eq!(ctx.emitted_len(), 4);
        let (buffers, counters) = ctx.into_shards();
        assert_eq!(counters.get(builtin::MAP_OUTPUT_RECORDS), 4);
        assert_eq!(buffers.emitted(), 4);
        // The sink must use the exact same routing as the shuffle's
        // post-hoc partitioning pass did.
        let merged = earl_parallel::ShardedBuffers::from_workers(4, vec![buffers])
            .merge(1, |shard, pairs: Vec<(String, u64)>| (shard, pairs));
        for (shard, pairs) in merged {
            for (key, _) in pairs {
                assert_eq!(HashPartitioner.partition(&key, 4), shard);
            }
        }
    }

    #[test]
    #[should_panic(expected = "use into_shards")]
    fn into_parts_refuses_a_sharded_context() {
        let ctx = MapContext::<String, u64>::sharded(ShardBuffers::new(2), 2);
        let _ = ctx.into_parts();
    }

    #[test]
    #[should_panic(expected = "use into_parts")]
    fn into_shards_refuses_a_buffering_context() {
        let ctx = MapContext::<String, u64>::new();
        let _ = ctx.into_shards();
    }

    #[test]
    fn reduce_context_collects_outputs() {
        let mut ctx = ReduceContext::new();
        Summer.reduce(&"a".to_owned(), &[1, 1, 1], &mut ctx);
        let (outputs, counters) = ctx.into_parts();
        assert_eq!(outputs, vec![("a".to_owned(), 3)]);
        assert_eq!(counters.get(builtin::REDUCE_OUTPUT_RECORDS), 1);
    }

    #[test]
    fn default_heaviness_is_light() {
        assert!(!Tokenizer.is_heavy());
        assert!(!Summer.is_heavy());
    }
}
