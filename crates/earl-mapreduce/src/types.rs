//! The MapReduce programming model: mapper, reducer and combiner traits plus
//! their execution contexts.
//!
//! Signatures follow the paper's §2.1:
//!
//! ```text
//! map    : (k1, v1)        → list(k2, v2)
//! reduce : (k2, list(v2))  → (k3, v3)
//! ```
//!
//! Input records arrive as `(byte offset, line)` pairs, exactly like Hadoop's
//! `TextInputFormat`.

use std::hash::Hash as StdHash;

use crate::counters::{builtin, Counters};

/// Marker bounds for intermediate keys.
pub trait MrKey: Ord + StdHash + Clone + Send + Sync + 'static {}
impl<T: Ord + StdHash + Clone + Send + Sync + 'static> MrKey for T {}

/// Marker bounds for intermediate values.
pub trait MrValue: Clone + Send + Sync + 'static {}
impl<T: Clone + Send + Sync + 'static> MrValue for T {}

/// Context handed to map functions for emitting intermediate pairs.
#[derive(Debug)]
pub struct MapContext<K, V> {
    emitted: Vec<(K, V)>,
    counters: Counters,
}

impl<K: MrKey, V: MrValue> MapContext<K, V> {
    /// Creates an empty context.
    pub fn new() -> Self {
        Self {
            emitted: Vec::new(),
            counters: Counters::new(),
        }
    }

    /// Emits one intermediate `(key, value)` pair.
    pub fn emit(&mut self, key: K, value: V) {
        self.counters.increment(builtin::MAP_OUTPUT_RECORDS);
        self.emitted.push((key, value));
    }

    /// Increments a user counter.
    pub fn increment_counter(&mut self, name: &str, delta: u64) {
        self.counters.add(name, delta);
    }

    /// Number of pairs emitted so far.
    pub fn emitted_len(&self) -> usize {
        self.emitted.len()
    }

    /// Consumes the context, returning emitted pairs and counters.
    pub fn into_parts(self) -> (Vec<(K, V)>, Counters) {
        (self.emitted, self.counters)
    }
}

impl<K: MrKey, V: MrValue> Default for MapContext<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

/// Context handed to reduce functions for emitting final output records.
#[derive(Debug)]
pub struct ReduceContext<O> {
    outputs: Vec<O>,
    counters: Counters,
}

impl<O> ReduceContext<O> {
    /// Creates an empty context.
    pub fn new() -> Self {
        Self {
            outputs: Vec::new(),
            counters: Counters::new(),
        }
    }

    /// Emits one output record.
    pub fn emit(&mut self, output: O) {
        self.counters.increment(builtin::REDUCE_OUTPUT_RECORDS);
        self.outputs.push(output);
    }

    /// Increments a user counter.
    pub fn increment_counter(&mut self, name: &str, delta: u64) {
        self.counters.add(name, delta);
    }

    /// Consumes the context, returning outputs and counters.
    pub fn into_parts(self) -> (Vec<O>, Counters) {
        (self.outputs, self.counters)
    }
}

impl<O> Default for ReduceContext<O> {
    fn default() -> Self {
        Self::new()
    }
}

/// A map function over `(offset, line)` input records.
pub trait Mapper: Send + Sync {
    /// Intermediate key type.
    type OutKey: MrKey;
    /// Intermediate value type.
    type OutValue: MrValue;

    /// Processes one input record.
    fn map(&self, offset: u64, line: &str, ctx: &mut MapContext<Self::OutKey, Self::OutValue>);

    /// Whether the map function is CPU-heavy (charged at the cost model's
    /// heavy multiplier).  Defaults to `false`.
    fn is_heavy(&self) -> bool {
        false
    }

    /// A wire-portable spec of this mapper for remote execution, or `None`
    /// (the default) to always run in-process.  A remote transport is only
    /// consulted when both the job's mapper and reducer return a spec.
    fn remote_spec(&self) -> Option<crate::transport::TaskSpec> {
        None
    }
}

/// A reduce function over `(key, values)` groups.
pub trait Reducer: Send + Sync {
    /// Intermediate key type (must match the mapper's).
    type InKey: MrKey;
    /// Intermediate value type (must match the mapper's).
    type InValue: MrValue;
    /// Final output record type.
    type Output: Send + 'static;

    /// Processes one key group.
    fn reduce(
        &self,
        key: &Self::InKey,
        values: &[Self::InValue],
        ctx: &mut ReduceContext<Self::Output>,
    );

    /// Whether the reduce function is CPU-heavy.  Defaults to `false`.
    fn is_heavy(&self) -> bool {
        false
    }

    /// A wire-portable spec of this reducer for remote execution, or `None`
    /// (the default) to always run in-process.
    fn remote_spec(&self) -> Option<crate::transport::TaskSpec> {
        None
    }
}

/// A combiner: a local, associative reduction applied to each mapper's output
/// before the shuffle to cut intermediate data volume.
pub trait Combiner: Send + Sync {
    /// Key type.
    type Key: MrKey;
    /// Value type.
    type Value: MrValue;

    /// Combines all values of one key produced by a single mapper into a
    /// smaller list (often a single element).
    fn combine(&self, key: &Self::Key, values: &[Self::Value]) -> Vec<Self::Value>;
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Tokenizer;
    impl Mapper for Tokenizer {
        type OutKey = String;
        type OutValue = u64;
        fn map(&self, _offset: u64, line: &str, ctx: &mut MapContext<String, u64>) {
            for token in line.split_whitespace() {
                ctx.emit(token.to_owned(), 1);
            }
        }
    }

    struct Summer;
    impl Reducer for Summer {
        type InKey = String;
        type InValue = u64;
        type Output = (String, u64);
        fn reduce(&self, key: &String, values: &[u64], ctx: &mut ReduceContext<(String, u64)>) {
            ctx.emit((key.clone(), values.iter().sum()));
        }
    }

    #[test]
    fn map_context_collects_emits_and_counters() {
        let mut ctx = MapContext::new();
        Tokenizer.map(0, "a b a", &mut ctx);
        ctx.increment_counter("custom", 2);
        assert_eq!(ctx.emitted_len(), 3);
        let (pairs, counters) = ctx.into_parts();
        assert_eq!(pairs.len(), 3);
        assert_eq!(counters.get(builtin::MAP_OUTPUT_RECORDS), 3);
        assert_eq!(counters.get("custom"), 2);
    }

    #[test]
    fn reduce_context_collects_outputs() {
        let mut ctx = ReduceContext::new();
        Summer.reduce(&"a".to_owned(), &[1, 1, 1], &mut ctx);
        let (outputs, counters) = ctx.into_parts();
        assert_eq!(outputs, vec![("a".to_owned(), 3)]);
        assert_eq!(counters.get(builtin::REDUCE_OUTPUT_RECORDS), 1);
    }

    #[test]
    fn default_heaviness_is_light() {
        assert!(!Tokenizer.is_heavy());
        assert!(!Summer.is_heavy());
    }
}
