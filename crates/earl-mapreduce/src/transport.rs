//! Task transports: where a job's map tasks and reduce partitions execute.
//!
//! The runner plans, charges and accounts every task on the simulated cluster
//! regardless of transport; the transport only decides *which process runs
//! the user compute*:
//!
//! * [`InProcess`] (the default) — tasks run on the caller's threads, exactly
//!   as the engine always has.
//! * A remote transport (`earl-net`'s `TcpTransport`) — tasks whose mapper and
//!   reducer declare a wire-portable [`TaskSpec`] are shipped to real worker
//!   processes over TCP.  Only compact payloads travel: record *offsets* into
//!   data the workers were provisioned with out of band (map side) and shuffle
//!   shard pairs / per-group outputs (reduce side) — never raw input data at
//!   job time.
//!
//! Because every simulated charge stays with the coordinator and the wire
//! carries the same pairs in the same order the in-process engine would emit,
//! a remote run's `JobResult` — and the `EarlReport` built from it — is
//! bit-identical to the in-process run, including `sim_time` and byte
//! counters.  `docs/WIRE_PROTOCOL.md` specifies the frame format; this module
//! only defines the transport-neutral request/outcome types.

use std::fmt;
use std::sync::Arc;

use crate::error::MrError;
use crate::Result;

/// A wire-portable description of an EARL task: enough for a remote worker to
/// reconstruct the task (and therefore its mapper/reducer) from a registry of
/// known task names.  Tasks whose semantics cannot be captured this way simply
/// do not provide a spec and keep executing in-process.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TaskSpec {
    /// Registry name of the task (e.g. `"mean"`, `"quantile"`).
    pub name: String,
    /// Numeric parameters of the task (e.g. the quantile level), empty for
    /// parameter-free tasks.
    pub params: Vec<f64>,
}

impl TaskSpec {
    /// A parameter-free spec.
    pub fn named(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            params: Vec::new(),
        }
    }
}

/// One remote map task: run the spec's mapper over the records addressed by
/// `offsets` (resolved against data provisioned under `source_path`), routing
/// output pairs into `num_shards` reduce shards.
#[derive(Debug)]
pub struct RemoteMapRequest<'a> {
    /// The task to run.
    pub spec: &'a TaskSpec,
    /// Provisioned dataset the offsets address.
    pub source_path: &'a str,
    /// Line-start byte offsets of the task's input records, in record order.
    pub offsets: &'a [u64],
    /// Number of reduce shards to partition output pairs into.
    pub num_shards: usize,
    /// Maximum executions of any one chunk of this task before the transport
    /// gives up (mirrors [`FailurePolicy::max_attempts`]).
    ///
    /// [`FailurePolicy::max_attempts`]: crate::FailurePolicy::max_attempts
    pub max_attempts: u32,
}

/// What a remote map task produced: the per-shard intermediate pairs in
/// emission order, plus bookkeeping the coordinator folds into the job's
/// counters and fault log.
#[derive(Debug, Clone)]
pub struct RemoteMapOutcome {
    /// Intermediate pairs per reduce shard, in the exact order a single
    /// in-process pass over the records would have emitted them.
    pub shards: Vec<Vec<(u32, f64)>>,
    /// Input records consumed (drives the coordinator's CPU charge and the
    /// `MAP_INPUT_RECORDS` counter).
    pub records: u64,
    /// Chunk re-dispatches performed after *reported* worker deaths (each is
    /// booked as one task retry by the runner).  Transparent recoveries — a
    /// transport that redials, re-provisions and resends to the same worker
    /// within one call — must NOT be counted here: they are invisible to the
    /// simulation, which is what keeps fault-free-looking remote reports
    /// bit-identical to in-process ones.
    pub retries: u64,
}

/// Transport-neutral wire form of a count-based bootstrap section summary —
/// `earl-bootstrap`'s `LinearSections`/`KarySections` flattened to plain data
/// so the transport layer can ship them without depending on the statistics
/// crate.  Every `f64` travels bit-for-bit (the codec uses `to_bits`), so a
/// worker rebuilding the summary replicates bit-identically to the
/// coordinator.
#[derive(Debug, Clone, PartialEq)]
pub enum SectionSummary {
    /// Summary of a scalar linear statistic's base sample.
    Linear {
        /// Items summarised (section lengths sum to this).
        total_items: u64,
        /// Per-section `(len, mean, within-section sd)`, in section order.
        sections: Vec<(u64, f64, f64)>,
    },
    /// Summary of a k-ary linear statistic's base sample.
    Kary {
        /// Values per record in the interleaved sample.
        stride: u32,
        /// Components per record (`k`); means/factors carry exactly this many
        /// entries per dimension.
        arity: u32,
        /// Records summarised (section lengths sum to this).
        total_records: u64,
        /// Per-section `(len, component means, Cholesky factor)`: `means` has
        /// `arity` entries, `chol` is the lower triangle in row-major order
        /// (`arity·(arity+1)/2` entries — row `i` contributes `i + 1`).
        sections: Vec<(u64, Vec<f64>, Vec<f64>)>,
    },
}

impl SectionSummary {
    /// Number of sections — the O(√n) size driver of the payload.
    pub fn num_sections(&self) -> usize {
        match self {
            SectionSummary::Linear { sections, .. } => sections.len(),
            SectionSummary::Kary { sections, .. } => sections.len(),
        }
    }
}

/// One remote batch of count-based bootstrap replicates: evaluate replicates
/// `b ∈ [b_start, b_start + b_count)` of the spec's statistic from the section
/// summary provisioned under `(path, version)`.  Replicate `b` is a pure
/// function of `(summary, seed, b, size)`, so any split of a batch across
/// workers — or a local fallback — produces the same bits.
#[derive(Debug)]
pub struct RemoteSectionsRequest<'a> {
    /// The task whose linear/k-ary form evaluates the replicates.
    pub spec: &'a TaskSpec,
    /// Logical path the summary is provisioned under (distinct from any raw
    /// dataset path; by convention `"<source>#sections"`).
    pub path: &'a str,
    /// Monotone identity of the summary at `path`: the transport re-provisions
    /// workers only when `(path, version)` changes, so a B-growth loop reusing
    /// one summary ships it exactly once.
    pub version: u64,
    /// The summary itself (consulted only when `(path, version)` is new).
    pub summary: &'a SectionSummary,
    /// Base RNG seed of the replicate streams.
    pub seed: u64,
    /// First replicate index of the batch.
    pub b_start: u64,
    /// Number of replicates requested.
    pub b_count: u64,
    /// Resample size in records.
    pub size: u64,
    /// Maximum executions of any one chunk of the batch before the transport
    /// gives up (mirrors [`FailurePolicy::max_attempts`]).
    ///
    /// [`FailurePolicy::max_attempts`]: crate::FailurePolicy::max_attempts
    pub max_attempts: u32,
}

/// What a remote replicate batch produced.
#[derive(Debug, Clone)]
pub struct RemoteSectionsOutcome {
    /// Replicates in `b` order, bit-identical to local evaluation.
    pub replicates: Vec<f64>,
    /// Chunk re-dispatches performed after *reported* worker deaths.  Like
    /// [`RemoteMapOutcome::retries`], transparent same-worker recoveries are
    /// excluded.
    pub retries: u64,
}

/// One remote reduce partition: run the spec's reducer over `groups` (already
/// grouped and key-ordered by the coordinator's shuffle).
#[derive(Debug)]
pub struct RemoteReduceRequest<'a> {
    /// The task to run.
    pub spec: &'a TaskSpec,
    /// `(key, values)` groups in ascending key order, values in shuffle
    /// emission order.
    pub groups: &'a [(u32, Vec<f64>)],
    /// Maximum executions of the partition before the transport gives up.
    pub max_attempts: u32,
}

/// What a remote reduce partition produced.
#[derive(Debug, Clone)]
pub struct RemoteReduceOutcome {
    /// Reducer outputs in group order.
    pub outputs: Vec<f64>,
    /// Re-dispatches performed after *reported* worker deaths.  Like
    /// [`RemoteMapOutcome::retries`], transparent same-worker recoveries are
    /// excluded.
    pub retries: u64,
}

/// Where the user compute of map tasks and reduce partitions runs.
///
/// Implementations must be deterministic in *content*: the pairs/outputs they
/// return must match what the in-process engine would produce for the same
/// inputs, in the same order (real-world wall-clock and retry behaviour are
/// free to vary — they are invisible to the simulated accounting except
/// through the explicit `retries` field and externally reported node deaths).
pub trait TaskTransport: fmt::Debug + Send + Sync {
    /// Whether tasks execute in the coordinator process.  Local transports
    /// never receive `remote_map`/`remote_reduce` calls.
    fn is_local(&self) -> bool {
        true
    }

    /// Executes one map task remotely.
    fn remote_map(&self, request: &RemoteMapRequest<'_>) -> Result<RemoteMapOutcome> {
        let _ = request;
        Err(MrError::Transport(
            "this transport cannot execute remote map tasks".into(),
        ))
    }

    /// Executes one reduce partition remotely.
    fn remote_reduce(&self, request: &RemoteReduceRequest<'_>) -> Result<RemoteReduceOutcome> {
        let _ = request;
        Err(MrError::Transport(
            "this transport cannot execute remote reduce partitions".into(),
        ))
    }

    /// Whether workers hold the raw records of `path`, i.e. whether
    /// `remote_map` calls addressing offsets into `path` can succeed.  A
    /// summary-only deployment (workers provisioned with section summaries but
    /// never the records) answers `false`, letting the runner skip doomed
    /// remote map calls deterministically and keep that phase in-process.
    /// Local transports trivially serve everything the coordinator holds.
    fn serves_records(&self, path: &str) -> bool {
        let _ = path;
        true
    }

    /// Evaluates one batch of count-based bootstrap replicates remotely.
    fn remote_sections(
        &self,
        request: &RemoteSectionsRequest<'_>,
    ) -> Result<RemoteSectionsOutcome> {
        let _ = request;
        Err(MrError::Transport(
            "this transport cannot evaluate remote section replicates".into(),
        ))
    }
}

/// The default transport: every task runs on the caller's threads, exactly as
/// the engine always has.  Carries no state and never receives remote calls.
#[derive(Debug, Clone, Copy, Default)]
pub struct InProcess;

impl TaskTransport for InProcess {}

/// The default transport handle used by [`JobConf`](crate::JobConf).
pub fn default_transport() -> Arc<dyn TaskTransport> {
    Arc::new(InProcess)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_process_is_local_and_refuses_remote_calls() {
        let t = InProcess;
        assert!(t.is_local());
        let spec = TaskSpec::named("mean");
        let req = RemoteMapRequest {
            spec: &spec,
            source_path: "/data",
            offsets: &[0, 4],
            num_shards: 1,
            max_attempts: 4,
        };
        assert!(matches!(t.remote_map(&req), Err(MrError::Transport(_))));
        let req = RemoteReduceRequest {
            spec: &spec,
            groups: &[(0, vec![1.0])],
            max_attempts: 4,
        };
        assert!(matches!(t.remote_reduce(&req), Err(MrError::Transport(_))));
        assert!(t.serves_records("/data"), "local serves everything");
        let summary = SectionSummary::Linear {
            total_items: 2,
            sections: vec![(2, 1.0, 0.5)],
        };
        let req = RemoteSectionsRequest {
            spec: &spec,
            path: "/data#sections",
            version: 1,
            summary: &summary,
            seed: 7,
            b_start: 0,
            b_count: 4,
            size: 2,
            max_attempts: 4,
        };
        assert!(matches!(
            t.remote_sections(&req),
            Err(MrError::Transport(_))
        ));
    }

    #[test]
    fn task_spec_named_is_parameter_free() {
        let spec = TaskSpec::named("median");
        assert_eq!(spec.name, "median");
        assert!(spec.params.is_empty());
        assert_eq!(spec, spec.clone());
    }
}
