//! Task transports: where a job's map tasks and reduce partitions execute.
//!
//! The runner plans, charges and accounts every task on the simulated cluster
//! regardless of transport; the transport only decides *which process runs
//! the user compute*:
//!
//! * [`InProcess`] (the default) — tasks run on the caller's threads, exactly
//!   as the engine always has.
//! * A remote transport (`earl-net`'s `TcpTransport`) — tasks whose mapper and
//!   reducer declare a wire-portable [`TaskSpec`] are shipped to real worker
//!   processes over TCP.  Only compact payloads travel: record *offsets* into
//!   data the workers were provisioned with out of band (map side) and shuffle
//!   shard pairs / per-group outputs (reduce side) — never raw input data at
//!   job time.
//!
//! Because every simulated charge stays with the coordinator and the wire
//! carries the same pairs in the same order the in-process engine would emit,
//! a remote run's `JobResult` — and the `EarlReport` built from it — is
//! bit-identical to the in-process run, including `sim_time` and byte
//! counters.  `docs/WIRE_PROTOCOL.md` specifies the frame format; this module
//! only defines the transport-neutral request/outcome types.

use std::fmt;
use std::sync::Arc;

use crate::error::MrError;
use crate::Result;

/// A wire-portable description of an EARL task: enough for a remote worker to
/// reconstruct the task (and therefore its mapper/reducer) from a registry of
/// known task names.  Tasks whose semantics cannot be captured this way simply
/// do not provide a spec and keep executing in-process.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TaskSpec {
    /// Registry name of the task (e.g. `"mean"`, `"quantile"`).
    pub name: String,
    /// Numeric parameters of the task (e.g. the quantile level), empty for
    /// parameter-free tasks.
    pub params: Vec<f64>,
}

impl TaskSpec {
    /// A parameter-free spec.
    pub fn named(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            params: Vec::new(),
        }
    }
}

/// One remote map task: run the spec's mapper over the records addressed by
/// `offsets` (resolved against data provisioned under `source_path`), routing
/// output pairs into `num_shards` reduce shards.
#[derive(Debug)]
pub struct RemoteMapRequest<'a> {
    /// The task to run.
    pub spec: &'a TaskSpec,
    /// Provisioned dataset the offsets address.
    pub source_path: &'a str,
    /// Line-start byte offsets of the task's input records, in record order.
    pub offsets: &'a [u64],
    /// Number of reduce shards to partition output pairs into.
    pub num_shards: usize,
    /// Maximum executions of any one chunk of this task before the transport
    /// gives up (mirrors [`FailurePolicy::max_attempts`]).
    ///
    /// [`FailurePolicy::max_attempts`]: crate::FailurePolicy::max_attempts
    pub max_attempts: u32,
}

/// What a remote map task produced: the per-shard intermediate pairs in
/// emission order, plus bookkeeping the coordinator folds into the job's
/// counters and fault log.
#[derive(Debug, Clone)]
pub struct RemoteMapOutcome {
    /// Intermediate pairs per reduce shard, in the exact order a single
    /// in-process pass over the records would have emitted them.
    pub shards: Vec<Vec<(u32, f64)>>,
    /// Input records consumed (drives the coordinator's CPU charge and the
    /// `MAP_INPUT_RECORDS` counter).
    pub records: u64,
    /// Chunk re-dispatches performed after *reported* worker deaths (each is
    /// booked as one task retry by the runner).  Transparent recoveries — a
    /// transport that redials, re-provisions and resends to the same worker
    /// within one call — must NOT be counted here: they are invisible to the
    /// simulation, which is what keeps fault-free-looking remote reports
    /// bit-identical to in-process ones.
    pub retries: u64,
}

/// One remote reduce partition: run the spec's reducer over `groups` (already
/// grouped and key-ordered by the coordinator's shuffle).
#[derive(Debug)]
pub struct RemoteReduceRequest<'a> {
    /// The task to run.
    pub spec: &'a TaskSpec,
    /// `(key, values)` groups in ascending key order, values in shuffle
    /// emission order.
    pub groups: &'a [(u32, Vec<f64>)],
    /// Maximum executions of the partition before the transport gives up.
    pub max_attempts: u32,
}

/// What a remote reduce partition produced.
#[derive(Debug, Clone)]
pub struct RemoteReduceOutcome {
    /// Reducer outputs in group order.
    pub outputs: Vec<f64>,
    /// Re-dispatches performed after *reported* worker deaths.  Like
    /// [`RemoteMapOutcome::retries`], transparent same-worker recoveries are
    /// excluded.
    pub retries: u64,
}

/// Where the user compute of map tasks and reduce partitions runs.
///
/// Implementations must be deterministic in *content*: the pairs/outputs they
/// return must match what the in-process engine would produce for the same
/// inputs, in the same order (real-world wall-clock and retry behaviour are
/// free to vary — they are invisible to the simulated accounting except
/// through the explicit `retries` field and externally reported node deaths).
pub trait TaskTransport: fmt::Debug + Send + Sync {
    /// Whether tasks execute in the coordinator process.  Local transports
    /// never receive `remote_map`/`remote_reduce` calls.
    fn is_local(&self) -> bool {
        true
    }

    /// Executes one map task remotely.
    fn remote_map(&self, request: &RemoteMapRequest<'_>) -> Result<RemoteMapOutcome> {
        let _ = request;
        Err(MrError::Transport(
            "this transport cannot execute remote map tasks".into(),
        ))
    }

    /// Executes one reduce partition remotely.
    fn remote_reduce(&self, request: &RemoteReduceRequest<'_>) -> Result<RemoteReduceOutcome> {
        let _ = request;
        Err(MrError::Transport(
            "this transport cannot execute remote reduce partitions".into(),
        ))
    }
}

/// The default transport: every task runs on the caller's threads, exactly as
/// the engine always has.  Carries no state and never receives remote calls.
#[derive(Debug, Clone, Copy, Default)]
pub struct InProcess;

impl TaskTransport for InProcess {}

/// The default transport handle used by [`JobConf`](crate::JobConf).
pub fn default_transport() -> Arc<dyn TaskTransport> {
    Arc::new(InProcess)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_process_is_local_and_refuses_remote_calls() {
        let t = InProcess;
        assert!(t.is_local());
        let spec = TaskSpec::named("mean");
        let req = RemoteMapRequest {
            spec: &spec,
            source_path: "/data",
            offsets: &[0, 4],
            num_shards: 1,
            max_attempts: 4,
        };
        assert!(matches!(t.remote_map(&req), Err(MrError::Transport(_))));
        let req = RemoteReduceRequest {
            spec: &spec,
            groups: &[(0, vec![1.0])],
            max_attempts: 4,
        };
        assert!(matches!(t.remote_reduce(&req), Err(MrError::Transport(_))));
    }

    #[test]
    fn task_spec_named_is_parameter_free() {
        let spec = TaskSpec::named("median");
        assert_eq!(spec.name, "median");
        assert!(spec.params.is_empty());
        assert_eq!(spec, spec.clone());
    }
}
