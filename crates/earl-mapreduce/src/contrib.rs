//! Ready-made mappers, reducers and combiners used by tests, examples and the
//! EARL built-in analytics tasks.

use crate::types::{Combiner, MapContext, Mapper, ReduceContext, Reducer};

/// Emits `(token, 1)` for every whitespace-separated token of the input line.
#[derive(Debug, Clone, Copy, Default)]
pub struct TokenCountMapper;

impl Mapper for TokenCountMapper {
    type OutKey = String;
    type OutValue = u64;
    fn map(&self, _offset: u64, line: &str, ctx: &mut MapContext<String, u64>) {
        for token in line.split_whitespace() {
            ctx.emit(token.to_owned(), 1);
        }
    }
}

/// Sums the counts of each word: the classic word-count reducer.
#[derive(Debug, Clone, Copy, Default)]
pub struct WordCountReducer;

impl Reducer for WordCountReducer {
    type InKey = String;
    type InValue = u64;
    type Output = (String, u64);
    fn reduce(&self, key: &String, values: &[u64], ctx: &mut ReduceContext<(String, u64)>) {
        ctx.emit((key.clone(), values.iter().sum()));
    }
}

/// Combiner matching [`WordCountReducer`]: locally sums counts.
#[derive(Debug, Clone, Copy, Default)]
pub struct CountCombiner;

impl Combiner for CountCombiner {
    type Key = String;
    type Value = u64;
    fn combine(&self, _key: &String, values: &[u64]) -> Vec<u64> {
        vec![values.iter().sum()]
    }
}

/// Parses each line as a single `f64` value (optionally the last tab-separated
/// field) and emits it under a single key, funnelling all values to one
/// reducer — the access pattern of the paper's mean/median experiments.
#[derive(Debug, Clone, Copy, Default)]
pub struct ValueExtractMapper;

impl Mapper for ValueExtractMapper {
    type OutKey = u32;
    type OutValue = f64;
    fn map(&self, _offset: u64, line: &str, ctx: &mut MapContext<u32, f64>) {
        let field = line.rsplit('\t').next().unwrap_or(line).trim();
        if let Ok(value) = field.parse::<f64>() {
            ctx.emit(0, value);
        }
    }
}

/// Computes the arithmetic mean of all values of a key.
#[derive(Debug, Clone, Copy, Default)]
pub struct MeanReducer;

impl Reducer for MeanReducer {
    type InKey = u32;
    type InValue = f64;
    type Output = f64;
    fn reduce(&self, _key: &u32, values: &[f64], ctx: &mut ReduceContext<f64>) {
        if values.is_empty() {
            return;
        }
        ctx.emit(values.iter().sum::<f64>() / values.len() as f64);
    }
}

/// Computes the sum of all values of a key.
#[derive(Debug, Clone, Copy, Default)]
pub struct SumReducer;

impl Reducer for SumReducer {
    type InKey = u32;
    type InValue = f64;
    type Output = f64;
    fn reduce(&self, _key: &u32, values: &[f64], ctx: &mut ReduceContext<f64>) {
        ctx.emit(values.iter().sum());
    }
}

/// Computes the exact median of all values of a key.
#[derive(Debug, Clone, Copy, Default)]
pub struct MedianReducer;

impl Reducer for MedianReducer {
    type InKey = u32;
    type InValue = f64;
    type Output = f64;
    fn reduce(&self, _key: &u32, values: &[f64], ctx: &mut ReduceContext<f64>) {
        if values.is_empty() {
            return;
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in numeric workloads"));
        let mid = sorted.len() / 2;
        let median = if sorted.len() % 2 == 1 {
            sorted[mid]
        } else {
            (sorted[mid - 1] + sorted[mid]) / 2.0
        };
        ctx.emit(median);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_extract_parses_plain_and_tabbed_lines() {
        let mut ctx = MapContext::new();
        ValueExtractMapper.map(0, "3.5", &mut ctx);
        ValueExtractMapper.map(1, "key\t7.25", &mut ctx);
        ValueExtractMapper.map(2, "not-a-number", &mut ctx);
        let (pairs, _) = ctx.into_parts();
        assert_eq!(pairs, vec![(0, 3.5), (0, 7.25)]);
    }

    #[test]
    fn mean_sum_median_reducers() {
        let values = [1.0, 2.0, 3.0, 4.0];
        let mut ctx = ReduceContext::new();
        MeanReducer.reduce(&0, &values, &mut ctx);
        assert_eq!(ctx.into_parts().0, vec![2.5]);

        let mut ctx = ReduceContext::new();
        SumReducer.reduce(&0, &values, &mut ctx);
        assert_eq!(ctx.into_parts().0, vec![10.0]);

        let mut ctx = ReduceContext::new();
        MedianReducer.reduce(&0, &values, &mut ctx);
        assert_eq!(ctx.into_parts().0, vec![2.5]);

        let mut ctx = ReduceContext::new();
        MedianReducer.reduce(&0, &[5.0, 1.0, 9.0], &mut ctx);
        assert_eq!(ctx.into_parts().0, vec![5.0]);
    }

    #[test]
    fn empty_values_emit_nothing() {
        let mut ctx = ReduceContext::new();
        MeanReducer.reduce(&0, &[], &mut ctx);
        MedianReducer.reduce(&0, &[], &mut ctx);
        assert!(ctx.into_parts().0.is_empty());
    }

    #[test]
    fn count_combiner_sums_locally() {
        assert_eq!(CountCombiner.combine(&"w".to_owned(), &[1, 2, 3]), vec![6]);
    }
}
