//! Error type for the MapReduce engine.

use std::fmt;

use earl_cluster::ClusterError;
use earl_dfs::DfsError;

/// Errors raised by the MapReduce engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MrError {
    /// The underlying DFS reported an error.
    Dfs(DfsError),
    /// The underlying cluster reported an error.
    Cluster(ClusterError),
    /// The job configuration is invalid.
    InvalidJob(String),
    /// Every node failed before the job could finish and the failure policy
    /// required completion.
    ClusterLost,
    /// A task transport (e.g. the TCP worker pool) failed in a way the job
    /// could not recover from.
    Transport(String),
}

impl fmt::Display for MrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MrError::Dfs(e) => write!(f, "dfs error: {e}"),
            MrError::Cluster(e) => write!(f, "cluster error: {e}"),
            MrError::InvalidJob(msg) => write!(f, "invalid job: {msg}"),
            MrError::ClusterLost => write!(f, "all nodes failed before the job completed"),
            MrError::Transport(msg) => write!(f, "transport error: {msg}"),
        }
    }
}

impl std::error::Error for MrError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MrError::Dfs(e) => Some(e),
            MrError::Cluster(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DfsError> for MrError {
    fn from(e: DfsError) -> Self {
        MrError::Dfs(e)
    }
}

impl From<ClusterError> for MrError {
    fn from(e: ClusterError) -> Self {
        MrError::Cluster(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: MrError = DfsError::FileNotFound("/x".into()).into();
        assert!(e.to_string().contains("/x"));
        let e: MrError = ClusterError::NoAvailableNodes.into();
        assert!(e.to_string().contains("cluster"));
        assert!(MrError::InvalidJob("zero reducers".into())
            .to_string()
            .contains("zero reducers"));
        assert!(MrError::ClusterLost.to_string().contains("failed"));
    }
}
