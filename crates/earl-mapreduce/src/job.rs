//! Job configuration and results.

use std::sync::Arc;

use earl_cluster::{FaultLog, SimDuration};
use earl_dfs::{DfsPath, InputSplit};
use serde::{Deserialize, Serialize};

use crate::counters::Counters;
use crate::transport::{default_transport, TaskTransport};

/// Where a job's input records come from.
#[derive(Debug, Clone)]
pub enum InputSource {
    /// All splits of a DFS file, using the DFS default split size.
    Path(DfsPath),
    /// An explicit list of splits (used by pre-map sampling, which assigns a
    /// sampled subset of splits / lines to the job).
    Splits(Vec<InputSplit>),
    /// In-memory records `(offset, line)` — used for local mode and for
    /// running the user job over resamples held in memory.
    Memory(Vec<(u64, String)>),
}

impl InputSource {
    /// Convenience: an in-memory source from plain lines, with synthetic
    /// offsets.
    pub fn from_lines<I, S>(lines: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut offset = 0u64;
        let records = lines
            .into_iter()
            .map(|l| {
                let line = l.as_ref().to_owned();
                let rec = (offset, line);
                offset += rec.1.len() as u64 + 1;
                rec
            })
            .collect();
        InputSource::Memory(records)
    }
}

/// What to do when a node fails while running one of the job's tasks.
///
/// Failures are arbitrated at deterministic sim-instants derived from the
/// task plan, so either policy yields the same outcome at every thread count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FailurePolicy {
    /// Stock Hadoop behaviour: re-plan the dead node's tasks onto survivors
    /// (re-syncing DFS metadata first), keeping — *salvaging* — the output of
    /// tasks that had already completed.  Each retry round charges `backoff`
    /// of simulated wall-clock before re-running; a task that fails
    /// `max_attempts` times aborts the job.
    Retry {
        /// Maximum executions of any one task before the job gives up.
        max_attempts: u32,
        /// Simulated delay charged before each retry round.
        backoff: SimDuration,
    },
    /// EARL's fault-tolerant approximation mode (§3.4): drop the lost splits
    /// and keep going; the accuracy-estimation stage accounts for the smaller
    /// effective sample.  Only map-side *input* data is ever abandoned —
    /// driver-held (in-memory) map tasks and reduce partitions are always
    /// re-run, since their data still exists.
    Degrade,
}

impl FailurePolicy {
    /// The default retry policy: up to 4 attempts per task with no back-off,
    /// matching the engine's historical restart behaviour.
    pub const fn retry() -> Self {
        FailurePolicy::Retry {
            max_attempts: 4,
            backoff: SimDuration::ZERO,
        }
    }

    /// Whether this is the degrade (§3.4) policy.
    pub const fn is_degrade(&self) -> bool {
        matches!(self, FailurePolicy::Degrade)
    }

    /// Attempt cap for tasks that must be re-run regardless of policy
    /// (in-memory map tasks, reduce partitions).
    pub const fn max_attempts(&self) -> u32 {
        match self {
            FailurePolicy::Retry { max_attempts, .. } => *max_attempts,
            FailurePolicy::Degrade => 4,
        }
    }

    /// Simulated back-off charged before each retry round.
    pub const fn backoff(&self) -> SimDuration {
        match self {
            FailurePolicy::Retry { backoff, .. } => *backoff,
            FailurePolicy::Degrade => SimDuration::ZERO,
        }
    }
}

impl Default for FailurePolicy {
    fn default() -> Self {
        Self::retry()
    }
}

/// Configuration of one MapReduce job.
#[derive(Debug, Clone)]
pub struct JobConf {
    /// Human-readable job name (appears in reports).
    pub name: String,
    /// Input records.
    pub input: InputSource,
    /// Number of reduce tasks.
    pub num_reducers: usize,
    /// Estimated serialized size of one intermediate record, used to charge
    /// shuffle network traffic.
    pub avg_record_bytes: u64,
    /// Failure handling policy.
    pub failure_policy: FailurePolicy,
    /// Local mode: run everything in a single process without task start-up
    /// costs (the paper's single-JVM estimation mode, §3.2).
    pub local_mode: bool,
    /// Whether to charge the fixed job start-up cost (a pipelined session
    /// charges it only once across iterations).
    pub charge_job_startup: bool,
    /// Optional DFS path to which reducer output line-records are written.
    pub output_path: Option<DfsPath>,
    /// Worker threads used to execute map tasks and reduce partitions
    /// concurrently (`None` = one per available core).  Results are identical
    /// for every value; only wall-clock time changes.  An active failure
    /// schedule does not force sequential execution: failures are arbitrated
    /// at plan-derived sim-instants, so the parallel engine keeps the
    /// sequential schedule's deterministic failure semantics.
    pub parallelism: Option<usize>,
    /// Where user compute executes (in-process by default).  A remote
    /// transport is consulted only for tasks whose mapper *and* reducer
    /// declare a wire-portable [`TaskSpec`](crate::TaskSpec); everything else
    /// keeps running in-process.
    pub transport: Arc<dyn TaskTransport>,
    /// The DFS path remote workers were provisioned with for this job's
    /// in-memory input (the driver holds resamples of this dataset in memory;
    /// remote map tasks address it by record offsets).  `None` disables
    /// remote map execution for [`InputSource::Memory`] jobs.
    pub source_path: Option<DfsPath>,
}

impl JobConf {
    /// A job reading a whole DFS file with `num_reducers` reducers.
    pub fn new(name: impl Into<String>, input: InputSource) -> Self {
        Self {
            name: name.into(),
            input,
            num_reducers: 1,
            avg_record_bytes: 16,
            failure_policy: FailurePolicy::default(),
            local_mode: false,
            charge_job_startup: true,
            output_path: None,
            parallelism: None,
            transport: default_transport(),
            source_path: None,
        }
    }

    /// Sets the number of reducers.
    pub fn with_reducers(mut self, n: usize) -> Self {
        self.num_reducers = n.max(1);
        self
    }

    /// Sets the failure policy.
    pub fn with_failure_policy(mut self, policy: FailurePolicy) -> Self {
        self.failure_policy = policy;
        self
    }

    /// Enables local (single-process) execution.
    pub fn local(mut self) -> Self {
        self.local_mode = true;
        self
    }

    /// Suppresses the job start-up charge (used by pipelined sessions after
    /// the first iteration).
    pub fn without_job_startup(mut self) -> Self {
        self.charge_job_startup = false;
        self
    }

    /// Sets the estimated intermediate record size in bytes.
    pub fn with_avg_record_bytes(mut self, bytes: u64) -> Self {
        self.avg_record_bytes = bytes.max(1);
        self
    }

    /// Sets a DFS output path; reducer outputs are written there as lines via
    /// their `Display`-like conversion supplied to the runner.
    pub fn with_output_path(mut self, path: impl Into<DfsPath>) -> Self {
        self.output_path = Some(path.into());
        self
    }

    /// Sets the worker-thread count for map/reduce execution (`None` = all
    /// cores, `Some(1)` = sequential).
    pub fn with_parallelism(mut self, parallelism: Option<usize>) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Sets the task transport (where user compute executes).
    pub fn with_transport(mut self, transport: Arc<dyn TaskTransport>) -> Self {
        self.transport = transport;
        self
    }

    /// Sets the DFS path remote workers were provisioned with for this job's
    /// in-memory input.
    pub fn with_source_path(mut self, path: impl Into<DfsPath>) -> Self {
        self.source_path = Some(path.into());
        self
    }
}

/// Statistics of one job execution.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct JobStats {
    /// Input records consumed by mappers.
    pub map_input_records: u64,
    /// Intermediate records emitted by mappers (after combining, if any).
    pub shuffle_records: u64,
    /// Distinct keys seen by reducers.
    pub reduce_groups: u64,
    /// Map tasks executed (including restarts).
    pub map_tasks: u64,
    /// Reduce tasks executed.
    pub reduce_tasks: u64,
    /// Map tasks whose output was dropped because their node failed under the
    /// [`FailurePolicy::Degrade`] policy.
    pub lost_map_tasks: u64,
    /// Tasks restarted after node failures.
    pub restarted_tasks: u64,
    /// Simulated time elapsed on the cluster during this job.
    pub sim_time: SimDuration,
    /// Failure events observed and recovery work performed during this job.
    pub fault_log: FaultLog,
}

impl JobStats {
    /// Fraction of map tasks whose output survived (1.0 when nothing was lost).
    pub fn surviving_fraction(&self) -> f64 {
        if self.map_tasks == 0 {
            return 1.0;
        }
        1.0 - self.lost_map_tasks as f64 / self.map_tasks as f64
    }
}

/// The result of running a job.
#[derive(Debug, Clone)]
pub struct JobResult<O> {
    /// All reducer output records (concatenated across reduce partitions, in
    /// deterministic key order within each partition).
    pub outputs: Vec<O>,
    /// Job counters (built-in + user).
    pub counters: Counters,
    /// Execution statistics.
    pub stats: JobStats,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_methods_compose() {
        let conf = JobConf::new("test", InputSource::from_lines(["a", "b"]))
            .with_reducers(0)
            .with_failure_policy(FailurePolicy::Degrade)
            .local()
            .without_job_startup()
            .with_avg_record_bytes(0)
            .with_output_path("/out")
            .with_parallelism(Some(4));
        assert_eq!(conf.num_reducers, 1, "reducer count is clamped to ≥1");
        assert_eq!(conf.avg_record_bytes, 1, "record size is clamped to ≥1");
        assert_eq!(conf.failure_policy, FailurePolicy::Degrade);
        assert!(conf.failure_policy.is_degrade());
        assert!(conf.local_mode);
        assert!(!conf.charge_job_startup);
        assert_eq!(conf.output_path, Some("/out".into()));
        assert_eq!(conf.parallelism, Some(4));
    }

    #[test]
    fn from_lines_assigns_increasing_offsets() {
        let InputSource::Memory(records) = InputSource::from_lines(["ab", "c"]) else {
            panic!("expected memory source");
        };
        assert_eq!(records, vec![(0, "ab".to_owned()), (3, "c".to_owned())]);
    }

    #[test]
    fn surviving_fraction() {
        let mut stats = JobStats::default();
        assert_eq!(stats.surviving_fraction(), 1.0);
        stats.map_tasks = 10;
        stats.lost_map_tasks = 3;
        assert!((stats.surviving_fraction() - 0.7).abs() < 1e-12);
    }
}
