//! Partitioners: mapping intermediate keys to reducers.
//!
//! The paper (§1) notes that "in a MapReduce framework there is a set of
//! (key, value) pairs which map to a particular reducer.  This set of pairs can
//! be distributed uniformly using random hashing" — the property EARL's
//! key-based (post-map) sampling exploits.  [`HashPartitioner`] provides that
//! uniform random hashing.

use std::collections::hash_map::DefaultHasher;
use std::hash::Hasher;

use crate::types::MrKey;

/// Maps a key to one of `num_partitions` reducers.
pub trait Partitioner<K>: Send + Sync {
    /// Returns the partition (reducer index) for `key`, in `[0, num_partitions)`.
    fn partition(&self, key: &K, num_partitions: usize) -> usize;
}

/// The default partitioner: uniform random hashing of the key.
#[derive(Debug, Clone, Copy, Default)]
pub struct HashPartitioner;

impl<K: MrKey> Partitioner<K> for HashPartitioner {
    fn partition(&self, key: &K, num_partitions: usize) -> usize {
        if num_partitions <= 1 {
            return 0;
        }
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        (hasher.finish() % num_partitions as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_is_stable_and_in_range() {
        let p = HashPartitioner;
        for key in 0..1000u64 {
            let a = p.partition(&key, 7);
            let b = p.partition(&key, 7);
            assert_eq!(a, b, "partitioning must be deterministic");
            assert!(a < 7);
        }
    }

    #[test]
    fn single_partition_always_zero() {
        let p = HashPartitioner;
        assert_eq!(p.partition(&"anything", 1), 0);
        assert_eq!(p.partition(&"anything", 0), 0);
    }

    #[test]
    fn hashing_spreads_keys_roughly_uniformly() {
        let p = HashPartitioner;
        let parts = 4usize;
        let mut counts = vec![0usize; parts];
        let n = 10_000u64;
        for key in 0..n {
            counts[p.partition(&key, parts)] += 1;
        }
        let expected = n as f64 / parts as f64;
        for c in counts {
            let deviation = (c as f64 - expected).abs() / expected;
            assert!(
                deviation < 0.1,
                "partition skew too high: {c} vs {expected}"
            );
        }
    }
}
