//! The mapper↔reducer feedback channel.
//!
//! In EARL's modified Hadoop, "every reducer writes its computed error together
//! with a time-stamp onto HDFS.  These files are then read by the mappers to
//! compute the overall average error" (§3.3), which drives the decision to
//! expand the sample or terminate.  The reproduction models that shared medium
//! with an in-memory channel: reducers post [`ErrorReport`]s, mappers (or the
//! EARL driver standing in for them) read the average error since their last
//! successful read.

use crossbeam::queue::SegQueue;
use earl_cluster::SimInstant;
use parking_lot::Mutex;

/// One error observation posted by a reducer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorReport {
    /// Reducer partition that produced the estimate.
    pub reducer: usize,
    /// The estimated error (coefficient of variation).
    pub error: f64,
    /// Simulated time at which the estimate was produced.
    pub timestamp: SimInstant,
}

/// Shared feedback medium between reducers and mappers.
#[derive(Debug, Default)]
pub struct ErrorFeedback {
    queue: SegQueue<ErrorReport>,
    history: Mutex<Vec<ErrorReport>>,
}

impl ErrorFeedback {
    /// Creates an empty channel.
    pub fn new() -> Self {
        Self::default()
    }

    /// Posts an error estimate (called by reducers / the AES stage).
    pub fn post(&self, report: ErrorReport) {
        self.queue.push(report);
    }

    /// Drains newly posted reports into the history and returns the average
    /// error over all reports with `timestamp > since`, or `None` if there are
    /// none.  This mirrors the mapper-side "get new error average (timestamp)"
    /// call in Algorithm 1 of the paper.
    pub fn average_error_since(&self, since: SimInstant) -> Option<f64> {
        let mut history = self.history.lock();
        while let Some(report) = self.queue.pop() {
            history.push(report);
        }
        let recent: Vec<f64> = history
            .iter()
            .filter(|r| r.timestamp > since)
            .map(|r| r.error)
            .collect();
        if recent.is_empty() {
            None
        } else {
            Some(recent.iter().sum::<f64>() / recent.len() as f64)
        }
    }

    /// Latest report per reducer, if any.
    pub fn latest(&self) -> Option<ErrorReport> {
        let mut history = self.history.lock();
        while let Some(report) = self.queue.pop() {
            history.push(report);
        }
        history.last().copied()
    }

    /// Total number of reports received.
    pub fn len(&self) -> usize {
        let mut history = self.history.lock();
        while let Some(report) = self.queue.pop() {
            history.push(report);
        }
        history.len()
    }

    /// Whether no report has been received.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use earl_cluster::SimDuration;

    fn at(ms: u64) -> SimInstant {
        SimInstant::EPOCH + SimDuration::from_millis(ms)
    }

    #[test]
    fn empty_channel_has_no_average() {
        let fb = ErrorFeedback::new();
        assert!(fb.is_empty());
        assert_eq!(fb.average_error_since(SimInstant::EPOCH), None);
        assert!(fb.latest().is_none());
    }

    #[test]
    fn average_filters_by_timestamp() {
        let fb = ErrorFeedback::new();
        fb.post(ErrorReport {
            reducer: 0,
            error: 0.10,
            timestamp: at(10),
        });
        fb.post(ErrorReport {
            reducer: 1,
            error: 0.20,
            timestamp: at(20),
        });
        fb.post(ErrorReport {
            reducer: 0,
            error: 0.30,
            timestamp: at(30),
        });
        // Everything after t=0.
        let avg = fb.average_error_since(SimInstant::EPOCH).unwrap();
        assert!((avg - 0.20).abs() < 1e-12);
        // Only the report after t=20 ms.
        let avg = fb.average_error_since(at(20)).unwrap();
        assert!((avg - 0.30).abs() < 1e-12);
        // Nothing after t=30 ms.
        assert_eq!(fb.average_error_since(at(30)), None);
        assert_eq!(fb.len(), 3);
        assert_eq!(fb.latest().unwrap().error, 0.30);
    }

    #[test]
    fn reports_survive_concurrent_posting() {
        use std::sync::Arc;
        let fb = Arc::new(ErrorFeedback::new());
        let handles: Vec<_> = (0..4)
            .map(|r| {
                let fb = Arc::clone(&fb);
                std::thread::spawn(move || {
                    for i in 0..100 {
                        fb.post(ErrorReport {
                            reducer: r,
                            error: i as f64,
                            timestamp: at(i + 1),
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(fb.len(), 400);
    }
}
