//! Pipelined (Hadoop-Online-style) execution sessions.
//!
//! EARL modifies Hadoop so that (1) reducers process input before mappers
//! finish, (2) mappers stay alive until explicitly terminated, and (3) mappers
//! and reducers communicate to check the termination condition (§2.1).  The
//! practical consequence for performance is that the per-iteration job and
//! task start-up overhead of a naive "one MR job per sample expansion" design
//! disappears: tasks are reused as the sample grows.
//!
//! A [`PipelinedSession`] models exactly that: the first iteration pays the
//! full job/task start-up cost; subsequent iterations run with start-up charges
//! suppressed, and the [`ErrorFeedback`] channel carries error estimates from
//! the reduce side back to the (conceptual) mappers.

use std::sync::Arc;

use earl_dfs::Dfs;

use crate::feedback::ErrorFeedback;
use crate::job::{JobConf, JobResult};
use crate::runner::run_job;
use crate::types::{Mapper, Reducer};
use crate::Result;

/// A long-lived session that runs the same logical job repeatedly (with a
/// growing sample) while amortising start-up costs, as EARL's pipelining does.
#[derive(Debug)]
pub struct PipelinedSession {
    dfs: Dfs,
    feedback: Arc<ErrorFeedback>,
    iterations: u64,
}

impl PipelinedSession {
    /// Creates a session on the given DFS.
    pub fn new(dfs: Dfs) -> Self {
        Self {
            dfs,
            feedback: Arc::new(ErrorFeedback::new()),
            iterations: 0,
        }
    }

    /// The feedback channel shared between the reduce side (posting error
    /// estimates) and the map side (deciding whether to expand the sample).
    pub fn feedback(&self) -> Arc<ErrorFeedback> {
        Arc::clone(&self.feedback)
    }

    /// The DFS this session runs against.
    pub fn dfs(&self) -> &Dfs {
        &self.dfs
    }

    /// Number of iterations run so far.
    pub fn iterations(&self) -> u64 {
        self.iterations
    }

    /// Runs one iteration of the job.  The first iteration charges job and
    /// task start-up; later iterations reuse the live tasks and charge neither
    /// the job start-up nor fresh task start-ups (the `local_mode` flag of the
    /// iteration config is left untouched; only start-up charging changes).
    pub fn run_iteration<M, R>(
        &mut self,
        conf: &JobConf,
        mapper: &M,
        reducer: &R,
    ) -> Result<JobResult<R::Output>>
    where
        M: Mapper,
        R: Reducer<InKey = M::OutKey, InValue = M::OutValue>,
    {
        let mut conf = conf.clone();
        if self.iterations > 0 {
            conf.charge_job_startup = false;
            // Task re-use: model by running the iteration in "local" charging
            // mode for start-up purposes only.  I/O and CPU are still charged
            // normally because the data genuinely has to be read and processed.
            conf.local_mode = true;
        }
        self.iterations += 1;
        run_job(&self.dfs, &conf, mapper, reducer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contrib::{MeanReducer, ValueExtractMapper};
    use crate::job::InputSource;
    use earl_cluster::{Cluster, SimInstant};
    use earl_dfs::DfsConfig;

    fn session() -> PipelinedSession {
        let cluster = Cluster::with_nodes(3);
        let dfs = Dfs::new(
            cluster,
            DfsConfig {
                block_size: 1024,
                replication: 2,
                io_chunk: 256,
            },
        )
        .unwrap();
        dfs.write_lines("/pipe", (1..=500).map(|i| i.to_string()))
            .unwrap();
        PipelinedSession::new(dfs)
    }

    #[test]
    fn second_iteration_is_cheaper_due_to_task_reuse() {
        let mut session = session();
        let conf = JobConf::new("mean", InputSource::Path("/pipe".into()));

        let t0 = session.dfs().cluster().elapsed();
        session
            .run_iteration(&conf, &ValueExtractMapper, &MeanReducer)
            .unwrap();
        let first = session.dfs().cluster().elapsed() - t0;

        let t1 = session.dfs().cluster().elapsed();
        session
            .run_iteration(&conf, &ValueExtractMapper, &MeanReducer)
            .unwrap();
        let second = session.dfs().cluster().elapsed() - t1;

        assert_eq!(session.iterations(), 2);
        assert!(
            second < first,
            "pipelined iterations must avoid start-up overhead: first={first} second={second}"
        );
    }

    #[test]
    fn results_are_identical_across_iterations() {
        let mut session = session();
        let conf = JobConf::new("mean", InputSource::Path("/pipe".into()));
        let a = session
            .run_iteration(&conf, &ValueExtractMapper, &MeanReducer)
            .unwrap();
        let b = session
            .run_iteration(&conf, &ValueExtractMapper, &MeanReducer)
            .unwrap();
        assert_eq!(a.outputs, b.outputs);
        assert!((a.outputs[0] - 250.5).abs() < 1e-9);
    }

    #[test]
    fn feedback_channel_is_shared() {
        let session = session();
        let fb = session.feedback();
        fb.post(crate::feedback::ErrorReport {
            reducer: 0,
            error: 0.04,
            timestamp: SimInstant::EPOCH,
        });
        assert_eq!(session.feedback().len(), 1);
    }
}
