//! Pipelined (Hadoop-Online-style) execution sessions.
//!
//! EARL modifies Hadoop so that (1) reducers process input before mappers
//! finish, (2) mappers stay alive until explicitly terminated, and (3) mappers
//! and reducers communicate to check the termination condition (§2.1).  The
//! practical consequence for performance is that the per-iteration job and
//! task start-up overhead of a naive "one MR job per sample expansion" design
//! disappears: tasks are reused as the sample grows.
//!
//! A [`PipelinedSession`] models exactly that: the first iteration pays the
//! full job/task start-up cost; subsequent iterations run with start-up charges
//! suppressed, and the [`ErrorFeedback`] channel carries error estimates from
//! the reduce side back to the (conceptual) mappers.

use std::sync::Arc;

use earl_dfs::Dfs;

use crate::feedback::ErrorFeedback;
use crate::job::{JobConf, JobResult, JobStats};
use crate::runner::{finish_job, run_map_phase, MapPhase};
use crate::types::{Mapper, Reducer};
use crate::Result;

/// A long-lived session that runs the same logical job repeatedly (with a
/// growing sample) while amortising start-up costs, as EARL's pipelining does.
#[derive(Debug)]
pub struct PipelinedSession {
    dfs: Dfs,
    feedback: Arc<ErrorFeedback>,
    iterations: u64,
}

impl PipelinedSession {
    /// Creates a session on the given DFS.
    pub fn new(dfs: Dfs) -> Self {
        Self {
            dfs,
            feedback: Arc::new(ErrorFeedback::new()),
            iterations: 0,
        }
    }

    /// The feedback channel shared between the reduce side (posting error
    /// estimates) and the map side (deciding whether to expand the sample).
    pub fn feedback(&self) -> Arc<ErrorFeedback> {
        Arc::clone(&self.feedback)
    }

    /// The DFS this session runs against.
    pub fn dfs(&self) -> &Dfs {
        &self.dfs
    }

    /// Number of iterations run so far.
    pub fn iterations(&self) -> u64 {
        self.iterations
    }

    /// Start-up charging for one iteration: the first iteration pays job and
    /// task start-up; later iterations reuse the live tasks and charge neither
    /// (the `local_mode` flag of the iteration config only changes start-up
    /// charging — I/O and CPU are still charged normally because the data
    /// genuinely has to be read and processed).
    fn iteration_conf(&self, conf: &JobConf) -> JobConf {
        let mut conf = conf.clone();
        if self.iterations > 0 {
            conf.charge_job_startup = false;
            conf.local_mode = true;
        }
        conf
    }

    /// Runs one iteration of the job to completion (map + shuffle + reduce).
    pub fn run_iteration<M, R>(
        &mut self,
        conf: &JobConf,
        mapper: &M,
        reducer: &R,
    ) -> Result<JobResult<R::Output>>
    where
        M: Mapper,
        R: Reducer<InKey = M::OutKey, InValue = M::OutValue>,
    {
        let pending = self.begin_iteration(conf, mapper)?;
        self.complete_iteration(pending, reducer)
    }

    /// Runs only the **map half** of an iteration, returning the staged
    /// intermediate state.  This is the speculative half of the pipelined
    /// schedule: while the accuracy-estimation stage of iteration *i* runs,
    /// the map phase of iteration *i+1* proceeds concurrently; the reducer→
    /// mapper feedback channel then decides whether the staged iteration is
    /// [completed](Self::complete_iteration) or
    /// [cancelled](Self::cancel_iteration) before its reduce phase starts.
    pub fn begin_iteration<M>(
        &mut self,
        conf: &JobConf,
        mapper: &M,
    ) -> Result<PendingIteration<M::OutKey, M::OutValue>>
    where
        M: Mapper,
    {
        let conf = self.iteration_conf(conf);
        self.iterations += 1;
        let phase = run_map_phase(&self.dfs, &conf, mapper)?;
        Ok(PendingIteration { phase, conf })
    }

    /// Completes a staged iteration: shuffle + reduce over its map output.
    pub fn complete_iteration<R>(
        &self,
        pending: PendingIteration<R::InKey, R::InValue>,
        reducer: &R,
    ) -> Result<JobResult<R::Output>>
    where
        R: Reducer,
    {
        finish_job(&self.dfs, &pending.conf, pending.phase, reducer)
    }

    /// Cancels a staged iteration before its reduce phase: the map output is
    /// dropped and the iteration is not counted.  Returns the map-phase stats
    /// (the work that was speculatively performed and discarded).
    pub fn cancel_iteration<K, V>(&mut self, pending: PendingIteration<K, V>) -> JobStats {
        self.iterations = self.iterations.saturating_sub(1);
        pending.phase.stats().clone()
    }

    /// The newest error estimate on the feedback channel — the reducer→mapper
    /// termination signal (§3.3).  The driver compares it against its accuracy
    /// bound (one predicate, owned by the accuracy-estimation stage) to decide
    /// whether a speculative iteration is cancelled.  `None` while no estimate
    /// has been posted.
    pub fn latest_error(&self) -> Option<f64> {
        self.feedback.latest().map(|report| report.error)
    }
}

/// The staged map half of one pipelined iteration: created by
/// [`PipelinedSession::begin_iteration`], then either completed (shuffle +
/// reduce) or cancelled by the feedback channel.
#[derive(Debug)]
pub struct PendingIteration<K, V> {
    phase: MapPhase<K, V>,
    conf: JobConf,
}

impl<K, V> PendingIteration<K, V> {
    /// Stats of the completed map phase (reduce fields still zero).
    pub fn map_stats(&self) -> &JobStats {
        self.phase.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contrib::{MeanReducer, ValueExtractMapper};
    use crate::job::InputSource;
    use earl_cluster::{Cluster, SimInstant};
    use earl_dfs::DfsConfig;

    fn session() -> PipelinedSession {
        let cluster = Cluster::with_nodes(3);
        let dfs = Dfs::new(
            cluster,
            DfsConfig {
                block_size: 1024,
                replication: 2,
                io_chunk: 256,
            },
        )
        .unwrap();
        dfs.write_lines("/pipe", (1..=500).map(|i| i.to_string()))
            .unwrap();
        PipelinedSession::new(dfs)
    }

    #[test]
    fn second_iteration_is_cheaper_due_to_task_reuse() {
        let mut session = session();
        let conf = JobConf::new("mean", InputSource::Path("/pipe".into()));

        let t0 = session.dfs().cluster().elapsed();
        session
            .run_iteration(&conf, &ValueExtractMapper, &MeanReducer)
            .unwrap();
        let first = session.dfs().cluster().elapsed() - t0;

        let t1 = session.dfs().cluster().elapsed();
        session
            .run_iteration(&conf, &ValueExtractMapper, &MeanReducer)
            .unwrap();
        let second = session.dfs().cluster().elapsed() - t1;

        assert_eq!(session.iterations(), 2);
        assert!(
            second < first,
            "pipelined iterations must avoid start-up overhead: first={first} second={second}"
        );
    }

    #[test]
    fn results_are_identical_across_iterations() {
        let mut session = session();
        let conf = JobConf::new("mean", InputSource::Path("/pipe".into()));
        let a = session
            .run_iteration(&conf, &ValueExtractMapper, &MeanReducer)
            .unwrap();
        let b = session
            .run_iteration(&conf, &ValueExtractMapper, &MeanReducer)
            .unwrap();
        assert_eq!(a.outputs, b.outputs);
        assert!((a.outputs[0] - 250.5).abs() < 1e-9);
    }

    #[test]
    fn staged_iteration_completes_like_a_plain_iteration() {
        let mut plain = session();
        let conf = JobConf::new("mean", InputSource::Path("/pipe".into()));
        let reference = plain
            .run_iteration(&conf, &ValueExtractMapper, &MeanReducer)
            .unwrap();

        let mut staged = session();
        let pending = staged.begin_iteration(&conf, &ValueExtractMapper).unwrap();
        assert!(pending.map_stats().map_tasks >= 1);
        assert_eq!(pending.map_stats().reduce_tasks, 0);
        let result = staged.complete_iteration(pending, &MeanReducer).unwrap();
        assert_eq!(result.outputs, reference.outputs);
        assert_eq!(result.counters, reference.counters);
        assert_eq!(staged.iterations(), 1);
    }

    #[test]
    fn cancelled_iteration_is_not_counted_and_restores_startup_charging() {
        let mut session = session();
        let conf = JobConf::new("mean", InputSource::Path("/pipe".into()));
        session
            .run_iteration(&conf, &ValueExtractMapper, &MeanReducer)
            .unwrap();

        // Speculative iteration 2: map phase runs, then the feedback channel
        // reports the bound is met and the iteration is cancelled.
        let pending = session.begin_iteration(&conf, &ValueExtractMapper).unwrap();
        assert_eq!(session.iterations(), 2);
        session.feedback().post(crate::feedback::ErrorReport {
            reducer: 0,
            error: 0.01,
            timestamp: SimInstant::EPOCH,
        });
        assert_eq!(session.latest_error(), Some(0.01));
        let wasted = session.cancel_iteration(pending);
        assert!(wasted.map_tasks >= 1);
        assert_eq!(session.iterations(), 1, "cancelled iterations do not count");

        // The next real iteration still gets start-up suppression (it is not
        // the first).
        let before = session.dfs().cluster().elapsed();
        session
            .run_iteration(&conf, &ValueExtractMapper, &MeanReducer)
            .unwrap();
        let cost = session.dfs().cluster().elapsed() - before;
        let mut fresh = super::tests::session();
        let t0 = fresh.dfs().cluster().elapsed();
        fresh
            .run_iteration(&conf, &ValueExtractMapper, &MeanReducer)
            .unwrap();
        let first_cost = fresh.dfs().cluster().elapsed() - t0;
        assert!(cost < first_cost, "reused tasks stay cheap after a cancel");
    }

    #[test]
    fn feedback_channel_is_shared() {
        let session = session();
        let fb = session.feedback();
        fb.post(crate::feedback::ErrorReport {
            reducer: 0,
            error: 0.04,
            timestamp: SimInstant::EPOCH,
        });
        assert_eq!(session.feedback().len(), 1);
    }
}
