//! The job runner: executes a MapReduce job over the simulated cluster.
//!
//! User code (mappers, reducers, combiners) runs for real, so results are
//! exact; all I/O, CPU and start-up work is charged to the cluster cost model
//! so that the simulated elapsed time reflects the work actually performed.
//! This is the property the EARL reproduction needs: processing time is a
//! deterministic function of bytes scanned and records processed, which is
//! precisely what early approximation reduces.
//!
//! ## Execution model
//!
//! Map tasks run concurrently across a scoped thread pool and reduce
//! partitions are reduced in parallel — always, even while a failure schedule
//! is armed (the old engine fell back to a fully sequential gather path the
//! moment the injector *might* fire):
//!
//! * task → node assignment is planned deterministically up front (locality
//!   first, then round-robin over available nodes), never through the cluster
//!   RNG, so the plan is independent of execution interleaving;
//! * each task accumulates its own [`Counters`] and stats, merged after the
//!   barrier in task-index order — `JobResult` is bit-identical for every
//!   `parallelism` value;
//! * cost-model charges are pure additions to the simulated clock and the
//!   per-phase metrics, so the merged totals (and therefore `sim_time`) do
//!   not depend on thread interleaving either.
//!
//! ## Deterministic failure arbitration
//!
//! While a schedule is armed, implicit failure polling is suppressed for the
//! duration of each parallel phase ([`Cluster::suppress_failure_polling`]);
//! after the barrier the injector is polled at **plan-derived task-boundary
//! instants** — the completion times the tasks would have under a serial
//! replay of the plan through the cost model — via
//! [`Cluster::arbitrate_failures_at`].  A task is lost iff its planned node
//! is dead at its estimated boundary.  The outcome is therefore a pure
//! function of `(schedule, plan, cost model)`: identical at every
//! `EARL_THREADS`, and — because arbitration itself charges nothing — an
//! armed schedule that never fires produces reports bit-identical (including
//! `sim_time`) to an unarmed cluster.
//!
//! Lost tasks are handled per [`FailurePolicy`]: `Retry` re-plans them onto
//! survivors (re-syncing DFS metadata, charging per-round back-off, keeping —
//! *salvaging* — the shard buffers of tasks that completed); `Degrade` (§3.4)
//! abandons lost input splits and lets the accuracy-estimation stage account
//! for the smaller sample.  In-memory map tasks and reduce partitions are
//! always re-run under either policy: their data still exists, so dropping
//! them would discard computation, not lost data.
//!
//! ## Streaming shuffle (M3R-style)
//!
//! The shuffle is **map-side**: every map task routes its (combined) output
//! pairs straight into per-shard buffers as it finishes
//! ([`earl_parallel::sharded_emit`], or one [`ShardBuffers`] per task on the
//! armed path — reassembled in task order, which merges to the same bits), so
//! the job-wide all-pairs vector the old gather design concatenated between
//! map and shuffle never exists.  At the reducer-ready barrier each reduce
//! shard already holds exactly its pairs in emission order;
//! [`ShuffleOutput::shuffle_streaming`] only concatenates and groups per
//! shard.
//!
//! [`Cluster::suppress_failure_polling`]: earl_cluster::Cluster::suppress_failure_polling
//! [`Cluster::arbitrate_failures_at`]: earl_cluster::Cluster::arbitrate_failures_at

use std::any::{Any, TypeId};

use earl_cluster::{ClusterError, NodeId, Phase, SimDuration, SimInstant};
use earl_dfs::{Dfs, InputSplit};
use earl_parallel::{
    indexed_map, resolve_parallelism, sharded_emit, workers_for, ShardBuffers, ShardedBuffers,
};

use crate::counters::{builtin, Counters};
use crate::error::MrError;
#[cfg(any(doc, test))]
use crate::job::FailurePolicy;
use crate::job::{InputSource, JobConf, JobResult, JobStats};
use crate::partition::{HashPartitioner, Partitioner};
use crate::shuffle::{apply_combiner, ShuffleOutput};
use crate::transport::{RemoteMapRequest, RemoteReduceRequest};
use crate::types::{Combiner, MapContext, Mapper, ReduceContext, Reducer};
use crate::Result;

/// The sharded intermediate buffers a map phase produces for a mapper `M`.
type MapperShards<M> = ShardedBuffers<(<M as Mapper>::OutKey, <M as Mapper>::OutValue)>;

/// Runs a job without a combiner.
pub fn run_job<M, R>(
    dfs: &Dfs,
    conf: &JobConf,
    mapper: &M,
    reducer: &R,
) -> Result<JobResult<R::Output>>
where
    M: Mapper,
    R: Reducer<InKey = M::OutKey, InValue = M::OutValue>,
{
    run_inner::<M, R, NeverCombiner<M::OutKey, M::OutValue>>(dfs, conf, mapper, reducer, None)
}

/// Runs a job with a combiner applied to each map task's local output.
pub fn run_job_with_combiner<M, R, C>(
    dfs: &Dfs,
    conf: &JobConf,
    mapper: &M,
    reducer: &R,
    combiner: &C,
) -> Result<JobResult<R::Output>>
where
    M: Mapper,
    R: Reducer<InKey = M::OutKey, InValue = M::OutValue>,
    C: Combiner<Key = M::OutKey, Value = M::OutValue>,
{
    run_inner::<M, R, C>(dfs, conf, mapper, reducer, Some(combiner))
}

/// A combiner type used only to instantiate the generic runner when no
/// combiner is supplied.  The runner short-circuits on the combiner `Option`
/// before grouping or copying anything, so `combine` can never be reached —
/// the previous implementation materialised `values.to_vec()` here for
/// nothing.
struct NeverCombiner<K, V>(std::marker::PhantomData<(K, V)>);

impl<K: crate::types::MrKey, V: crate::types::MrValue> Combiner for NeverCombiner<K, V> {
    type Key = K;
    type Value = V;
    fn combine(&self, _key: &K, _values: &[V]) -> Vec<V> {
        unreachable!("NeverCombiner is a type-level placeholder; the runner never invokes it")
    }
}

fn run_inner<M, R, C>(
    dfs: &Dfs,
    conf: &JobConf,
    mapper: &M,
    reducer: &R,
    combiner: Option<&C>,
) -> Result<JobResult<R::Output>>
where
    M: Mapper,
    R: Reducer<InKey = M::OutKey, InValue = M::OutValue>,
    C: Combiner<Key = M::OutKey, Value = M::OutValue>,
{
    let phase = map_phase_inner(dfs, conf, mapper, combiner)?;
    finish_job(dfs, conf, phase, reducer)
}

/// The completed map half of a job: all intermediate pairs already sharded
/// map-side, plus the counters and stats accumulated so far.  Produced by
/// [`run_map_phase`], consumed by [`finish_job`] (shuffle + reduce) — or
/// dropped outright when a pipelined session cancels a speculative iteration
/// before its reduce phase.
#[derive(Debug)]
pub struct MapPhase<K, V> {
    output: ShardedBuffers<(K, V)>,
    counters: Counters,
    stats: JobStats,
    start: SimDuration,
    /// How many injector events had fired before this job started — the tail
    /// of `cluster.failure_events()` beyond this index is what fired *during*
    /// the job and belongs in its fault log.
    events_seen: usize,
}

impl<K, V> MapPhase<K, V> {
    /// Stats accumulated by the map phase (map tasks, input records, shuffle
    /// records; reduce fields still zero).
    pub fn stats(&self) -> &JobStats {
        &self.stats
    }

    /// Counters accumulated by the map phase.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }
}

/// Runs only the map half of a job (task planning + map tasks + combiner),
/// leaving shuffle and reduce to [`finish_job`].  A pipelined session uses
/// this to overlap the map phase of a speculative iteration with the accuracy
/// estimation of the previous one.
pub fn run_map_phase<M>(
    dfs: &Dfs,
    conf: &JobConf,
    mapper: &M,
) -> Result<MapPhase<M::OutKey, M::OutValue>>
where
    M: Mapper,
{
    map_phase_inner::<M, NeverCombiner<M::OutKey, M::OutValue>>(dfs, conf, mapper, None)
}

fn map_phase_inner<M, C>(
    dfs: &Dfs,
    conf: &JobConf,
    mapper: &M,
    combiner: Option<&C>,
) -> Result<MapPhase<M::OutKey, M::OutValue>>
where
    M: Mapper,
    C: Combiner<Key = M::OutKey, Value = M::OutValue>,
{
    let cluster = dfs.cluster();
    let start = cluster.elapsed();
    let events_seen = cluster.failure_events().len();
    let mut counters = Counters::new();
    let mut stats = JobStats::default();

    if conf.charge_job_startup && !conf.local_mode {
        cluster.charge_job_startup();
    }

    // ---- plan map tasks ----------------------------------------------------
    let map_inputs: Vec<MapInput> = match &conf.input {
        InputSource::Path(path) => dfs
            .default_splits(path.clone())?
            .into_iter()
            .map(MapInput::Split)
            .collect(),
        InputSource::Splits(splits) => splits.iter().cloned().map(MapInput::Split).collect(),
        InputSource::Memory(records) => {
            if records.is_empty() {
                Vec::new()
            } else {
                vec![MapInput::Memory(records.clone())]
            }
        }
    };

    // ---- map phase -----------------------------------------------------------
    // The streaming fast path needs no arbitration bookkeeping; the armed path
    // is the same parallel engine plus deterministic failure arbitration and
    // the recovery round loop.  An armed schedule that never fires charges
    // exactly the same costs, so the two produce bit-identical results.
    let armed = cluster.failure_injection_pending();
    let threads = resolve_parallelism(conf.parallelism);

    // Remote transports handle only stable-cluster memory-input jobs whose
    // mapper is wire-portable; an armed simulated failure schedule (or any
    // gate miss, or a total transport failure) falls through to the local
    // paths untouched.
    let remote = if armed {
        None
    } else {
        map_phase_remote(
            dfs,
            conf,
            mapper,
            combiner.is_some(),
            &map_inputs,
            &mut counters,
            &mut stats,
        )?
    };

    let output = if let Some(output) = remote {
        output
    } else if armed {
        map_phase_armed(
            dfs,
            conf,
            mapper,
            combiner,
            &map_inputs,
            &mut counters,
            &mut stats,
            threads,
        )?
    } else {
        map_phase_streaming(
            dfs,
            conf,
            mapper,
            combiner,
            &map_inputs,
            &mut counters,
            &mut stats,
            threads,
        )?
    };
    stats.map_input_records = counters.get(builtin::MAP_INPUT_RECORDS);
    stats.shuffle_records = output.total_items();
    record_new_failure_events(dfs, events_seen, &mut stats);

    Ok(MapPhase {
        output,
        counters,
        stats,
        start,
        events_seen,
    })
}

/// Completes a job from its finished map phase: shuffle (sharded across the
/// worker pool), reduce, output charging, final stats.
pub fn finish_job<R>(
    dfs: &Dfs,
    conf: &JobConf,
    phase: MapPhase<R::InKey, R::InValue>,
    reducer: &R,
) -> Result<JobResult<R::Output>>
where
    R: Reducer,
{
    let cluster = dfs.cluster();
    let MapPhase {
        output,
        mut counters,
        mut stats,
        start,
        events_seen,
    } = phase;
    let threads = resolve_parallelism(conf.parallelism);

    // ---- shuffle -------------------------------------------------------------
    // Cost charges are driven by the record count, so sim_time cannot depend
    // on the shuffle worker count.
    let shuffle_records = output.total_items();
    if !conf.local_mode && shuffle_records > 0 {
        cluster.charge_sort(shuffle_records);
        let nodes = cluster.available_nodes();
        if nodes.len() >= 2 {
            // On average (n-1)/n of intermediate data crosses the network.
            let crossing = shuffle_records * conf.avg_record_bytes * (nodes.len() as u64 - 1)
                / nodes.len() as u64;
            cluster.charge_net_transfer(Phase::Shuffle, nodes[0], nodes[1], crossing);
        }
    }
    let shuffle_workers = workers_for(shuffle_records as usize, conf.parallelism).min(threads);
    // Streaming shuffle always: the pairs are already in their shards; only
    // the per-shard concatenate + group remains.
    let shuffled = ShuffleOutput::shuffle_streaming(output, shuffle_workers);
    stats.reduce_groups = shuffled.total_groups();

    // ---- reduce phase --------------------------------------------------------
    let outputs = reduce_phase_parallel(
        dfs,
        conf,
        reducer,
        shuffled.into_partitions(),
        &mut counters,
        &mut stats,
        threads,
    )?;

    // ---- output --------------------------------------------------------------
    if let Some(_path) = &conf.output_path {
        // Output records are charged as sequential writes of the estimated
        // record size (materialisation is left to the caller, which knows how
        // to serialise its output type).
        cluster.charge_disk_write(Phase::Output, outputs.len() as u64 * conf.avg_record_bytes);
    }

    record_new_failure_events(dfs, events_seen, &mut stats);
    // Fault counters are added only when non-zero: a zero-valued entry would
    // make an armed-but-quiet run's counters differ from an unarmed run's.
    if shuffle_records > 0 {
        counters.add(builtin::SHARDED_SHUFFLE_RECORDS, shuffle_records);
    }
    if !stats.fault_log.events.is_empty() {
        counters.add(builtin::FAILURE_EVENTS, stats.fault_log.events.len() as u64);
    }
    if stats.fault_log.records_salvaged > 0 {
        counters.add(builtin::SALVAGED_RECORDS, stats.fault_log.records_salvaged);
    }
    if stats.fault_log.backoff > SimDuration::ZERO {
        counters.add(builtin::BACKOFF_MICROS, stats.fault_log.backoff.as_micros());
    }

    stats.sim_time = cluster.elapsed() - start;
    Ok(JobResult {
        outputs,
        counters,
        stats,
    })
}

/// Folds the injector events that fired since `events_seen` into the job's
/// fault log (idempotent: already-recorded events are skipped).
fn record_new_failure_events(dfs: &Dfs, events_seen: usize, stats: &mut JobStats) {
    let events = dfs.cluster().failure_events();
    if events.len() > events_seen {
        stats.fault_log.record_events(&events[events_seen..]);
    }
}

enum MapInput {
    Split(InputSplit),
    Memory(Vec<(u64, String)>),
}

/// Plans the node of every task deterministically: first live preferred
/// (data-local) node, otherwise round-robin over the available nodes.  Never
/// consults the cluster RNG, so the plan is independent of both thread count
/// and execution order.
fn plan_nodes(dfs: &Dfs, preferred: &[&[NodeId]]) -> Result<Vec<NodeId>> {
    let available = dfs.cluster().available_nodes();
    if available.is_empty() {
        return Err(ClusterError::NoAvailableNodes.into());
    }
    Ok(preferred
        .iter()
        .enumerate()
        .map(|(i, candidates)| {
            candidates
                .iter()
                .copied()
                .find(|&n| node_alive(dfs, n))
                .unwrap_or(available[i % available.len()])
        })
        .collect())
}

/// Estimated completion boundaries of `tasks` replayed serially from
/// `phase_start` through the cost model.  These are the instants at which the
/// injector is polled after a parallel phase — a pure function of the plan,
/// so failure outcomes cannot depend on execution interleaving.  The real
/// (makespan-charged) clock generally lags these serial estimates; the
/// injector's monotonic poll window makes the two composable.
fn estimated_boundaries(
    phase_start: SimInstant,
    durations: impl Iterator<Item = SimDuration>,
) -> Vec<SimInstant> {
    let mut acc = SimDuration::ZERO;
    durations
        .map(|d| {
            acc += d;
            phase_start + acc
        })
        .collect()
}

/// Arbitration for one executed round: polls the injector at each estimated
/// task boundary (then catches up to the charged clock) and marks which tasks
/// were lost — a task is lost iff its planned node is dead at its boundary.
fn arbitrate_round(
    dfs: &Dfs,
    conf: &JobConf,
    plan: &[NodeId],
    boundaries: &[SimInstant],
) -> Vec<bool> {
    let cluster = dfs.cluster();
    let mut dead: Vec<NodeId> = Vec::new();
    let mut lost = vec![false; plan.len()];
    for (j, boundary) in boundaries.iter().enumerate() {
        for ev in cluster.arbitrate_failures_at(*boundary) {
            if !dead.contains(&ev.node) {
                dead.push(ev.node);
            }
        }
        // Local-mode tasks run in the driver process and cannot be killed by
        // a node failure; the arbitration still advances the injector window.
        lost[j] = !conf.local_mode && dead.contains(&plan[j]);
    }
    cluster.arbitrate_failures_at(cluster.now());
    lost
}

/// Charges the policy back-off before a retry round and re-syncs DFS metadata
/// so retried reads avoid dead nodes.
fn charge_retry_round(dfs: &Dfs, conf: &JobConf, stats: &mut JobStats) {
    let backoff = conf.failure_policy.backoff();
    if backoff > SimDuration::ZERO {
        dfs.cluster().charge_parallel(Phase::Other, &[backoff]);
        stats.fault_log.backoff += backoff;
    }
    dfs.reconcile_failures();
}

/// Books one task retry (cluster metric, stats, counters, fault log) and
/// errors with [`MrError::ClusterLost`] once the attempt cap is reached.
fn book_task_retry(
    dfs: &Dfs,
    conf: &JobConf,
    attempts: u32,
    counters: &mut Counters,
    stats: &mut JobStats,
) -> Result<()> {
    if attempts >= conf.failure_policy.max_attempts().max(1) {
        return Err(MrError::ClusterLost);
    }
    dfs.cluster().record_task_restart();
    stats.restarted_tasks += 1;
    counters.increment(builtin::RESTARTED_TASKS);
    stats.fault_log.task_retries += 1;
    Ok(())
}

/// Whether the intermediate pair type is the `(u32, f64)` wire pair every
/// remote transport speaks.
fn is_wire_pair<K: 'static, V: 'static>() -> bool {
    TypeId::of::<K>() == TypeId::of::<u32>() && TypeId::of::<V>() == TypeId::of::<f64>()
}

/// Moves a value between two types already proven identical by `TypeId`
/// (e.g. `Vec<(u32, f64)>` → `Vec<(M::OutKey, M::OutValue)>` once
/// [`is_wire_pair`] held).  Returns `None` if they were not the same type.
fn cast_owned<S: 'static, T: 'static>(value: S) -> Option<T> {
    let boxed: Box<dyn Any> = Box::new(value);
    boxed.downcast::<T>().ok().map(|b| *b)
}

/// Books the chunk re-dispatches a remote transport performed after worker
/// deaths: each is one retry round (back-off charge + DFS re-sync) plus one
/// task restart, mirroring what the local armed path books per lost task.
/// This is the unification point for wire-level failures: a call-deadline
/// expiry or socket death on the transport surfaces as a `retries` increment
/// and lands in the same `FaultLog` counters as simulated-failure retries.
/// Transparent revives never reach here (the transport's `retries` field
/// excludes them by contract), so a fully-recovered run books nothing.
fn book_remote_retries(
    dfs: &Dfs,
    conf: &JobConf,
    retries: u64,
    counters: &mut Counters,
    stats: &mut JobStats,
) {
    for _ in 0..retries {
        charge_retry_round(dfs, conf, stats);
        dfs.cluster().record_task_restart();
        stats.restarted_tasks += 1;
        counters.increment(builtin::RESTARTED_TASKS);
        stats.fault_log.task_retries += 1;
    }
}

/// Runs the map phase on a remote transport when every gate holds: non-local
/// transport, cluster mode, no combiner, a wire-portable mapper spec, a
/// provisioned source path, memory-only inputs and the `(u32, f64)` wire pair
/// type.  Returns `Ok(None)` — leaving the simulation completely untouched —
/// when any gate misses or the transport fails outright, so the caller can
/// fall back to the in-process paths (memory inputs are driver-held; nothing
/// is lost but remote work).
///
/// All remote calls complete *before* the first cluster charge; the
/// coordinator then replays the exact per-task charge/counter sequence of
/// [`map_phase_streaming`], so a remote run is bit-identical to an in-process
/// run, including `sim_time`.
fn map_phase_remote<M>(
    dfs: &Dfs,
    conf: &JobConf,
    mapper: &M,
    has_combiner: bool,
    inputs: &[MapInput],
    counters: &mut Counters,
    stats: &mut JobStats,
) -> Result<Option<MapperShards<M>>>
where
    M: Mapper,
{
    if conf.transport.is_local() || conf.local_mode || has_combiner || inputs.is_empty() {
        return Ok(None);
    }
    if !is_wire_pair::<M::OutKey, M::OutValue>() {
        return Ok(None);
    }
    let Some(spec) = mapper.remote_spec() else {
        return Ok(None);
    };
    let Some(source_path) = &conf.source_path else {
        return Ok(None);
    };
    // Summary-only deployments (workers provisioned with O(√n) section
    // summaries, never the raw records) cannot resolve offsets remotely;
    // skipping here keeps the decision deterministic instead of burning a
    // doomed wire round-trip per task.
    if !conf.transport.serves_records(source_path.as_str()) {
        return Ok(None);
    }
    let mut tasks: Vec<Vec<u64>> = Vec::with_capacity(inputs.len());
    for input in inputs {
        match input {
            MapInput::Memory(records) => tasks.push(records.iter().map(|&(o, _)| o).collect()),
            MapInput::Split(_) => return Ok(None),
        }
    }

    let num_shards = conf.num_reducers.max(1);
    let mut outcomes = Vec::with_capacity(tasks.len());
    for offsets in &tasks {
        let request = RemoteMapRequest {
            spec: &spec,
            source_path: source_path.as_str(),
            offsets,
            num_shards,
            max_attempts: conf.failure_policy.max_attempts().max(1),
        };
        match conf.transport.remote_map(&request) {
            Ok(outcome) => outcomes.push(outcome),
            Err(_) => return Ok(None),
        }
    }

    // User compute is done; now replay the in-process accounting.  The plan is
    // computed on the post-run live set so tasks are never booked on a node a
    // worker death already removed (on a quiet run the live set — and hence
    // the plan — matches the in-process one exactly).
    let cluster = dfs.cluster();
    let preferred: Vec<&[NodeId]> = inputs.iter().map(|_| &[][..]).collect();
    let plan = plan_nodes(dfs, &preferred)?;
    let heavy = mapper.is_heavy();
    let mut workers = Vec::with_capacity(outcomes.len());
    for (i, outcome) in outcomes.into_iter().enumerate() {
        book_remote_retries(dfs, conf, outcome.retries, counters, stats);
        cluster.charge_task_startup();
        cluster.record_task_on(plan[i])?;
        cluster.charge_map_cpu(outcome.records, heavy);

        let mut task_counters = Counters::new();
        task_counters.add(builtin::MAP_INPUT_RECORDS, outcome.records);
        let mut buffers = ShardBuffers::new(num_shards);
        let mut emitted = 0u64;
        for (shard, pairs) in outcome.shards.into_iter().enumerate() {
            emitted += pairs.len() as u64;
            let pairs: Vec<(M::OutKey, M::OutValue)> = cast_owned(pairs)
                .ok_or_else(|| MrError::Transport("wire pair cast failed".into()))?;
            for pair in pairs {
                buffers.emit(shard, pair);
            }
        }
        if emitted > 0 {
            task_counters.add(builtin::MAP_OUTPUT_RECORDS, emitted);
        }
        stats.map_tasks += 1;
        counters.merge(&task_counters);
        workers.push(buffers);
    }
    Ok(Some(ShardedBuffers::from_workers(num_shards, workers)))
}

/// Runs the reduce phase on a remote transport when every gate holds (the
/// reduce-side analogue of [`map_phase_remote`]: non-local transport, cluster
/// mode, wire-portable reducer spec, `(u32, f64)` groups and `f64` outputs).
/// Returns `Ok(None)` without touching the simulation when a gate misses or
/// the transport fails, so [`reduce_phase_parallel`] runs the partitions
/// in-process instead — partition data is driver-held, so nothing is lost.
fn reduce_phase_remote<R>(
    dfs: &Dfs,
    conf: &JobConf,
    reducer: &R,
    non_empty: &[std::collections::BTreeMap<R::InKey, Vec<R::InValue>>],
    records_in: &[u64],
    counters: &mut Counters,
    stats: &mut JobStats,
) -> Result<Option<Vec<R::Output>>>
where
    R: Reducer,
{
    if conf.transport.is_local() || conf.local_mode {
        return Ok(None);
    }
    if !is_wire_pair::<R::InKey, R::InValue>() || TypeId::of::<R::Output>() != TypeId::of::<f64>() {
        return Ok(None);
    }
    let Some(spec) = reducer.remote_spec() else {
        return Ok(None);
    };

    let mut all_groups: Vec<Vec<(u32, Vec<f64>)>> = Vec::with_capacity(non_empty.len());
    for partition in non_empty {
        let any: &dyn Any = partition;
        let Some(partition) = any.downcast_ref::<std::collections::BTreeMap<u32, Vec<f64>>>()
        else {
            return Ok(None);
        };
        all_groups.push(partition.iter().map(|(&k, v)| (k, v.clone())).collect());
    }

    let mut outcomes = Vec::with_capacity(all_groups.len());
    for groups in &all_groups {
        let request = RemoteReduceRequest {
            spec: &spec,
            groups,
            max_attempts: conf.failure_policy.max_attempts().max(1),
        };
        match conf.transport.remote_reduce(&request) {
            Ok(outcome) => outcomes.push(outcome),
            Err(_) => return Ok(None),
        }
    }

    let cluster = dfs.cluster();
    let preferred: Vec<&[NodeId]> = non_empty.iter().map(|_| &[][..]).collect();
    let plan = plan_nodes(dfs, &preferred)?;
    let heavy = reducer.is_heavy();
    let mut outputs: Vec<R::Output> = Vec::new();
    for (i, outcome) in outcomes.into_iter().enumerate() {
        book_remote_retries(dfs, conf, outcome.retries, counters, stats);
        cluster.charge_task_startup();
        cluster.record_task_on(plan[i])?;
        cluster.charge_reduce_cpu(Phase::Reduce, records_in[i], heavy);

        let emitted = outcome.outputs.len() as u64;
        let out: Vec<R::Output> = cast_owned(outcome.outputs)
            .ok_or_else(|| MrError::Transport("wire output cast failed".into()))?;
        stats.reduce_tasks += 1;
        counters.add(builtin::REDUCE_INPUT_GROUPS, non_empty[i].len() as u64);
        counters.add(builtin::REDUCE_INPUT_RECORDS, records_in[i]);
        if emitted > 0 {
            counters.add(builtin::REDUCE_OUTPUT_RECORDS, emitted);
        }
        outputs.extend(out);
    }
    Ok(Some(outputs))
}

/// Runs all map tasks concurrently across `threads` scoped workers, each task
/// emitting its (combined) output pairs **directly into per-reduce-shard
/// buffers** as it finishes — the map-side streaming shuffle.  Per-task
/// counters are merged after the barrier in task-index order, exactly like the
/// gather design, so `JobResult` stays bit-identical at every thread count.
///
/// Requires a stable cluster (no pending failure injection): tasks cannot be
/// lost mid-flight, so the only `None` outcome is data that was already
/// missing under [`FailurePolicy::Degrade`] — which emits nothing.
#[allow(clippy::too_many_arguments)]
fn map_phase_streaming<M, C>(
    dfs: &Dfs,
    conf: &JobConf,
    mapper: &M,
    combiner: Option<&C>,
    inputs: &[MapInput],
    counters: &mut Counters,
    stats: &mut JobStats,
    threads: usize,
) -> Result<MapperShards<M>>
where
    M: Mapper,
    C: Combiner<Key = M::OutKey, Value = M::OutValue>,
{
    let num_shards = conf.num_reducers.max(1);
    if inputs.is_empty() {
        return Ok(ShardedBuffers::empty(num_shards));
    }
    let preferred: Vec<&[NodeId]> = inputs
        .iter()
        .map(|input| match input {
            MapInput::Split(split) => split.locations.as_slice(),
            MapInput::Memory(_) => &[][..],
        })
        .collect();
    let plan = plan_nodes(dfs, &preferred)?;

    let (results, buffers) = sharded_emit(inputs.len(), num_shards, threads, |i, shard_buffers| {
        run_map_task_streaming(
            dfs,
            conf,
            mapper,
            combiner,
            &inputs[i],
            plan[i],
            num_shards,
            shard_buffers,
        )
    });

    for result in results {
        stats.map_tasks += 1;
        match result? {
            Some(task_counters) => counters.merge(&task_counters),
            None => {
                stats.lost_map_tasks += 1;
                counters.increment(builtin::LOST_SPLITS);
                stats.fault_log.splits_lost += 1;
            }
        }
    }
    Ok(buffers)
}

/// The armed-schedule map phase: the same parallel engine as
/// [`map_phase_streaming`] (identical plan, identical charges — an armed
/// schedule that never fires is bit-identical to the unarmed path), plus
/// deterministic failure arbitration and a recovery round loop.
///
/// Each round runs the pending tasks concurrently with implicit polling
/// suppressed, each task streaming into its own [`ShardBuffers`]; after the
/// barrier the round is arbitrated at the plan's estimated task boundaries.
/// Surviving tasks commit their buffers/counters into slots indexed by the
/// original task position, so the reassembled [`ShardedBuffers`] merges to
/// the same bits as the single-pass fast path.  Lost tasks are re-queued
/// (`Retry`, and always for in-memory inputs) or abandoned (`Degrade` on DFS
/// splits, §3.4).
#[allow(clippy::too_many_arguments)]
fn map_phase_armed<M, C>(
    dfs: &Dfs,
    conf: &JobConf,
    mapper: &M,
    combiner: Option<&C>,
    inputs: &[MapInput],
    counters: &mut Counters,
    stats: &mut JobStats,
    threads: usize,
) -> Result<MapperShards<M>>
where
    M: Mapper,
    C: Combiner<Key = M::OutKey, Value = M::OutValue>,
{
    let cluster = dfs.cluster();
    let num_shards = conf.num_reducers.max(1);
    if inputs.is_empty() {
        return Ok(ShardedBuffers::empty(num_shards));
    }
    // Apply any failure already due (e.g. fired during job start-up charges)
    // before planning, so the plan sees the true live set.
    if !cluster.arbitrate_failures_at(cluster.now()).is_empty() {
        dfs.reconcile_failures();
    }

    let heavy = mapper.is_heavy();
    let cost = cluster.cost_model().clone();
    let estimate = |input: &MapInput| -> SimDuration {
        let startup = if conf.local_mode {
            SimDuration::ZERO
        } else {
            cost.task_startup
        };
        startup
            + match input {
                MapInput::Split(split) => cost.disk_read(split.length),
                MapInput::Memory(records) => cost.map_cpu(records.len() as u64, heavy),
            }
    };

    type BufferSlots<K, V> = Vec<Option<ShardBuffers<(K, V)>>>;
    let mut buffer_slots: BufferSlots<M::OutKey, M::OutValue> =
        (0..inputs.len()).map(|_| None).collect();
    let mut counter_slots: Vec<Option<Counters>> = (0..inputs.len()).map(|_| None).collect();
    let mut dropped = vec![false; inputs.len()];
    let mut attempts = vec![0u32; inputs.len()];
    let mut pending: Vec<usize> = (0..inputs.len()).collect();
    let mut first_round = true;

    while !pending.is_empty() {
        if !first_round {
            charge_retry_round(dfs, conf, stats);
        }
        first_round = false;
        for &i in &pending {
            attempts[i] += 1;
        }

        let preferred: Vec<&[NodeId]> = pending
            .iter()
            .map(|&i| match &inputs[i] {
                MapInput::Split(split) => split.locations.as_slice(),
                MapInput::Memory(_) => &[][..],
            })
            .collect();
        let plan = plan_nodes(dfs, &preferred)?;
        let boundaries =
            estimated_boundaries(cluster.now(), pending.iter().map(|&i| estimate(&inputs[i])));

        let results = {
            let _pause = cluster.suppress_failure_polling();
            indexed_map(
                pending.len(),
                threads,
                || (),
                |j, ()| {
                    let mut buffers = ShardBuffers::new(num_shards);
                    let outcome = run_map_task_streaming(
                        dfs,
                        conf,
                        mapper,
                        combiner,
                        &inputs[pending[j]],
                        plan[j],
                        num_shards,
                        &mut buffers,
                    );
                    (outcome, buffers)
                },
            )
        };
        let lost = arbitrate_round(dfs, conf, &plan, &boundaries);

        let mut next_pending = Vec::new();
        let mut round_salvaged = 0u64;
        let mut round_lost = false;
        for (j, (outcome, buffers)) in results.into_iter().enumerate() {
            let i = pending[j];
            match outcome? {
                // The task's input blocks were already gone (§3.4 drop).
                None => dropped[i] = true,
                Some(task_counters) if !lost[j] => {
                    round_salvaged += buffers.emitted();
                    buffer_slots[i] = Some(buffers);
                    counter_slots[i] = Some(task_counters);
                }
                Some(_) => {
                    round_lost = true;
                    // Lost DFS splits are abandoned under Degrade; in-memory
                    // inputs are driver-held (nothing was lost but work) and
                    // are always re-run.
                    if conf.failure_policy.is_degrade() && matches!(inputs[i], MapInput::Split(_)) {
                        dropped[i] = true;
                    } else {
                        book_task_retry(dfs, conf, attempts[i], counters, stats)?;
                        next_pending.push(i);
                    }
                }
            }
        }
        if round_lost {
            stats.fault_log.records_salvaged += round_salvaged;
        }
        pending = next_pending;
    }

    for i in 0..inputs.len() {
        stats.map_tasks += 1;
        if dropped[i] {
            stats.lost_map_tasks += 1;
            counters.increment(builtin::LOST_SPLITS);
            stats.fault_log.splits_lost += 1;
        } else if let Some(task_counters) = &counter_slots[i] {
            counters.merge(task_counters);
        }
    }
    let workers: Vec<_> = buffer_slots.into_iter().flatten().collect();
    Ok(ShardedBuffers::from_workers(num_shards, workers))
}

/// One map task on a stable-for-this-round cluster: no retry loop, no
/// survival check (the armed path decides survival by arbitration after the
/// barrier).  The task's pairs are routed straight into `shard_buffers` with
/// the same partitioner arithmetic the reduce-side shuffle uses; only the
/// per-task counters are returned.  Without a combiner the `MapContext` sinks
/// each pair into the shard buckets *as it is emitted* — no per-task
/// all-pairs vector ever exists; a combiner still buffers, since it must see
/// the task's full output before routing.  Returns `None` when the task's
/// input blocks were already lost and the failure policy tolerates dropping
/// them; on that abort (and on a hard error) the buffers are rolled back to
/// their pre-task checkpoint, so an aborted task leaves them bit-identical to
/// never having run at all.
#[allow(clippy::too_many_arguments)]
fn run_map_task_streaming<M, C>(
    dfs: &Dfs,
    conf: &JobConf,
    mapper: &M,
    combiner: Option<&C>,
    input: &MapInput,
    node: NodeId,
    num_shards: usize,
    shard_buffers: &mut ShardBuffers<(M::OutKey, M::OutValue)>,
) -> Result<Option<Counters>>
where
    M: Mapper,
    C: Combiner<Key = M::OutKey, Value = M::OutValue>,
{
    let cluster = dfs.cluster();
    if !conf.local_mode {
        cluster.charge_task_startup();
        cluster.record_task_on(node)?;
    }

    let direct = combiner.is_none();
    let checkpoint = shard_buffers.checkpoint();
    let mut ctx = if direct {
        MapContext::sharded(std::mem::take(shard_buffers), num_shards)
    } else {
        MapContext::new()
    };
    let mut records = 0u64;
    let read_result: Result<()> = (|| {
        match input {
            MapInput::Split(split) => {
                let mut reader = dfs.open_split(split.clone(), Phase::Load);
                while let Some((offset, line)) = reader.next_line()? {
                    mapper.map(offset, &line, &mut ctx);
                    records += 1;
                }
            }
            MapInput::Memory(lines) => {
                for (offset, line) in lines {
                    mapper.map(*offset, line, &mut ctx);
                    records += 1;
                }
            }
        }
        Ok(())
    })();
    if let Err(e) = read_result {
        if direct {
            // Hand the buffers back and discard this task's partial emissions:
            // an aborted task must leave the shared buffers bit-identical to
            // never having run.
            let (mut buffers, _) = ctx.into_shards();
            buffers.rollback(&checkpoint);
            *shard_buffers = buffers;
        }
        return match e {
            MrError::Dfs(earl_dfs::DfsError::BlockUnavailable(_))
                if conf.failure_policy.is_degrade() =>
            {
                Ok(None)
            }
            e => Err(e),
        };
    }

    cluster.charge_map_cpu(records, mapper.is_heavy());

    let mut task_counters = Counters::new();
    task_counters.add(builtin::MAP_INPUT_RECORDS, records);
    if direct {
        // Map-side shuffle already happened inside `emit`; just reclaim the
        // buffers and fold in the task's counters.
        let (buffers, emitted) = ctx.into_shards();
        task_counters.merge(&emitted);
        *shard_buffers = buffers;
    } else {
        let (pairs, emitted) = ctx.into_parts();
        task_counters.merge(&emitted);
        let cmb = combiner.expect("buffered path implies a combiner");
        let combined = apply_combiner(pairs, cmb);
        task_counters.add(builtin::COMBINE_OUTPUT_RECORDS, combined.len() as u64);
        // Route the combined pairs to their reduce shards now — these pairs
        // are never concatenated with any other task's.
        for (key, value) in combined {
            let shard = HashPartitioner.partition(&key, num_shards);
            shard_buffers.emit(shard, (key, value));
        }
    }
    Ok(Some(task_counters))
}

/// Reduces all non-empty partitions concurrently across `threads` scoped
/// workers and concatenates their outputs in partition order.  While the
/// failure injector can still fire, each round is arbitrated like the map
/// phase; lost partitions are **always** re-run (under either policy — only
/// map-side sample loss is tolerated by §3.4; the partition data is
/// driver-held and still exists).
fn reduce_phase_parallel<R>(
    dfs: &Dfs,
    conf: &JobConf,
    reducer: &R,
    partitions: Vec<std::collections::BTreeMap<R::InKey, Vec<R::InValue>>>,
    counters: &mut Counters,
    stats: &mut JobStats,
    threads: usize,
) -> Result<Vec<R::Output>>
where
    R: Reducer,
{
    let non_empty: Vec<_> = partitions.into_iter().filter(|p| !p.is_empty()).collect();
    if non_empty.is_empty() {
        return Ok(Vec::new());
    }
    let cluster = dfs.cluster();
    let armed = cluster.failure_injection_pending();
    let records_in: Vec<u64> = non_empty
        .iter()
        .map(|p| p.values().map(|v| v.len() as u64).sum())
        .collect();
    if !armed {
        if let Some(outputs) =
            reduce_phase_remote(dfs, conf, reducer, &non_empty, &records_in, counters, stats)?
        {
            return Ok(outputs);
        }
    }
    let cost = cluster.cost_model().clone();
    let heavy = reducer.is_heavy();
    let estimate = |records: u64| -> SimDuration {
        let startup = if conf.local_mode {
            SimDuration::ZERO
        } else {
            cost.task_startup
        };
        startup + cost.reduce_cpu(records, heavy)
    };

    type ReduceSlot<O> = (Vec<O>, Counters, u64, u64);
    let mut slots: Vec<Option<ReduceSlot<R::Output>>> =
        (0..non_empty.len()).map(|_| None).collect();
    let mut attempts = vec![0u32; non_empty.len()];
    let mut pending: Vec<usize> = (0..non_empty.len()).collect();
    let mut first_round = true;

    while !pending.is_empty() {
        if !first_round {
            charge_retry_round(dfs, conf, stats);
        }
        first_round = false;
        for &i in &pending {
            attempts[i] += 1;
        }

        let preferred: Vec<&[NodeId]> = pending.iter().map(|_| &[][..]).collect();
        let plan = plan_nodes(dfs, &preferred)?;
        let boundaries = if armed {
            estimated_boundaries(
                cluster.now(),
                pending.iter().map(|&i| estimate(records_in[i])),
            )
        } else {
            Vec::new()
        };

        let results = {
            let _pause = cluster.suppress_failure_polling();
            indexed_map(
                pending.len(),
                threads,
                || (),
                |j, ()| -> Result<_> {
                    let i = pending[j];
                    let partition = &non_empty[i];
                    if !conf.local_mode {
                        cluster.charge_task_startup();
                        cluster.record_task_on(plan[j])?;
                    }
                    let mut ctx = ReduceContext::new();
                    for (key, values) in partition {
                        reducer.reduce(key, values, &mut ctx);
                    }
                    cluster.charge_reduce_cpu(Phase::Reduce, records_in[i], reducer.is_heavy());
                    let (outputs, task_counters) = ctx.into_parts();
                    Ok((
                        outputs,
                        task_counters,
                        partition.len() as u64,
                        records_in[i],
                    ))
                },
            )
        };
        let lost = if armed {
            arbitrate_round(dfs, conf, &plan, &boundaries)
        } else {
            vec![false; pending.len()]
        };

        let mut next_pending = Vec::new();
        for (j, result) in results.into_iter().enumerate() {
            let i = pending[j];
            let value = result?;
            if lost[j] {
                book_task_retry(dfs, conf, attempts[i], counters, stats)?;
                next_pending.push(i);
            } else {
                slots[i] = Some(value);
            }
        }
        pending = next_pending;
    }

    let mut outputs = Vec::new();
    for slot in slots {
        let (out, task_counters, groups, records) = slot.expect("every partition was reduced");
        stats.reduce_tasks += 1;
        counters.add(builtin::REDUCE_INPUT_GROUPS, groups);
        counters.add(builtin::REDUCE_INPUT_RECORDS, records);
        counters.merge(&task_counters);
        outputs.extend(out);
    }
    Ok(outputs)
}

fn node_alive(dfs: &Dfs, node: NodeId) -> bool {
    dfs.cluster()
        .node(node)
        .map(|n| n.is_available())
        .unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contrib::{
        CountCombiner, MeanReducer, TokenCountMapper, ValueExtractMapper, WordCountReducer,
    };
    use earl_cluster::{Cluster, CostModel, FailureEvent, FailureSchedule, SimInstant};
    use earl_dfs::DfsConfig;

    fn test_dfs(nodes: u32, free: bool) -> Dfs {
        let mut builder = Cluster::builder().nodes(nodes);
        if free {
            builder = builder.cost_model(CostModel::free());
        }
        Dfs::new(
            builder.build().unwrap(),
            DfsConfig {
                block_size: 256,
                replication: 2,
                io_chunk: 64,
            },
        )
        .unwrap()
    }

    #[test]
    fn word_count_over_dfs_matches_reference() {
        let dfs = test_dfs(3, true);
        let lines = vec!["the quick brown fox", "the lazy dog", "the fox"];
        dfs.write_lines("/wc", &lines).unwrap();
        let conf = JobConf::new("wordcount", InputSource::Path("/wc".into())).with_reducers(3);
        let result = run_job(&dfs, &conf, &TokenCountMapper, &WordCountReducer).unwrap();
        let mut counts: Vec<(String, u64)> = result.outputs.clone();
        counts.sort();
        let the = counts.iter().find(|(w, _)| w == "the").unwrap();
        assert_eq!(the.1, 3);
        let fox = counts.iter().find(|(w, _)| w == "fox").unwrap();
        assert_eq!(fox.1, 2);
        assert_eq!(counts.iter().map(|(_, c)| c).sum::<u64>(), 9);
        assert_eq!(result.counters.get(builtin::MAP_INPUT_RECORDS), 3);
        assert_eq!(result.stats.map_input_records, 3);
        assert!(result.stats.reduce_tasks >= 1);
        assert_eq!(result.stats.lost_map_tasks, 0);
        assert_eq!(result.stats.surviving_fraction(), 1.0);
        assert!(result.stats.fault_log.is_empty());
    }

    #[test]
    fn combiner_reduces_shuffle_volume_without_changing_results() {
        let dfs = test_dfs(2, true);
        let lines: Vec<String> = (0..50)
            .map(|i| format!("k{} k{} k{}", i % 3, i % 3, i % 5))
            .collect();
        dfs.write_lines("/c", &lines).unwrap();
        let conf = JobConf::new("wc", InputSource::Path("/c".into())).with_reducers(2);
        let plain = run_job(&dfs, &conf, &TokenCountMapper, &WordCountReducer).unwrap();
        let combined = run_job_with_combiner(
            &dfs,
            &conf,
            &TokenCountMapper,
            &WordCountReducer,
            &CountCombiner,
        )
        .unwrap();
        let mut a = plain.outputs.clone();
        let mut b = combined.outputs.clone();
        a.sort();
        b.sort();
        assert_eq!(a, b, "combiner must not change results");
        assert!(
            combined.counters.get(builtin::COMBINE_OUTPUT_RECORDS) < plain.stats.shuffle_records,
            "combiner must shrink intermediate data"
        );
    }

    #[test]
    fn memory_input_runs_without_dfs_reads() {
        let dfs = test_dfs(1, false);
        let conf = JobConf::new(
            "mean",
            InputSource::from_lines((1..=100).map(|i| i.to_string())),
        );
        let result = run_job(&dfs, &conf, &ValueExtractMapper, &MeanReducer).unwrap();
        assert_eq!(result.outputs.len(), 1);
        assert!((result.outputs[0] - 50.5).abs() < 1e-9);
        let load = dfs.cluster().metrics().snapshot().phase(Phase::Load);
        assert_eq!(
            load.disk_bytes_read, 0,
            "memory input must not touch the DFS"
        );
    }

    #[test]
    fn local_mode_is_cheaper_than_cluster_mode() {
        let dfs = test_dfs(3, false);
        let lines: Vec<String> = (0..200).map(|i| i.to_string()).collect();
        dfs.write_lines("/m", &lines).unwrap();

        dfs.cluster().reset_accounting();
        let cluster_conf = JobConf::new("mean", InputSource::Path("/m".into()));
        run_job(&dfs, &cluster_conf, &ValueExtractMapper, &MeanReducer).unwrap();
        let cluster_time = dfs.cluster().elapsed();

        dfs.cluster().reset_accounting();
        let local_conf = JobConf::new("mean", InputSource::Path("/m".into())).local();
        run_job(&dfs, &local_conf, &ValueExtractMapper, &MeanReducer).unwrap();
        let local_time = dfs.cluster().elapsed();

        assert!(
            local_time < cluster_time,
            "local mode must avoid job/task start-up costs: {local_time} vs {cluster_time}"
        );
    }

    #[test]
    fn empty_input_produces_empty_result() {
        let dfs = test_dfs(1, true);
        let conf = JobConf::new("empty", InputSource::Memory(Vec::new()));
        let result = run_job(&dfs, &conf, &ValueExtractMapper, &MeanReducer).unwrap();
        assert!(result.outputs.is_empty());
        assert_eq!(result.stats.map_tasks, 0);
        assert_eq!(result.stats.reduce_tasks, 0);
    }

    #[test]
    fn retry_policy_recovers_from_node_failure() {
        // Node 1 fails shortly after the job starts; with replication 2 the
        // data survives and the retry policy must deliver the exact answer —
        // on the parallel engine, not a sequential fallback.
        let schedule = FailureSchedule::Deterministic(vec![FailureEvent {
            node: NodeId(1),
            at: SimInstant::EPOCH + SimDuration::from_millis(100),
        }]);
        let cluster = Cluster::builder()
            .nodes(3)
            .failure_schedule(schedule)
            .build()
            .unwrap();
        let dfs = Dfs::new(
            cluster,
            DfsConfig {
                block_size: 512,
                replication: 2,
                io_chunk: 128,
            },
        )
        .unwrap();
        let lines: Vec<String> = (1..=1000).map(|i| i.to_string()).collect();
        dfs.write_lines("/ft", &lines).unwrap();
        let conf = JobConf::new("mean", InputSource::Path("/ft".into()))
            .with_failure_policy(FailurePolicy::retry());
        let result = run_job(&dfs, &conf, &ValueExtractMapper, &MeanReducer).unwrap();
        assert_eq!(result.outputs.len(), 1);
        assert!((result.outputs[0] - 500.5).abs() < 1e-9);
        assert!(
            !dfs.cluster().failed_nodes().is_empty(),
            "the failure must actually have fired"
        );
        assert!(
            !result.stats.fault_log.events.is_empty() || !dfs.cluster().failure_events().is_empty(),
            "the firing must be observable"
        );
    }

    #[test]
    fn retry_backoff_is_charged_to_the_clock() {
        // Kill a node mid-map under Retry with a visible back-off; if any task
        // retries, the back-off must appear in the fault log and counters.
        let schedule = FailureSchedule::Deterministic(vec![FailureEvent {
            node: NodeId(1),
            at: SimInstant::EPOCH + SimDuration::from_secs(2),
        }]);
        let cluster = Cluster::builder()
            .nodes(3)
            .failure_schedule(schedule)
            .build()
            .unwrap();
        let dfs = Dfs::new(
            cluster,
            DfsConfig {
                block_size: 512,
                replication: 2,
                io_chunk: 128,
            },
        )
        .unwrap();
        let lines: Vec<String> = (1..=3000).map(|i| i.to_string()).collect();
        dfs.write_lines("/bk", &lines).unwrap();
        dfs.cluster().reset_accounting();
        let conf = JobConf::new("mean", InputSource::Path("/bk".into())).with_failure_policy(
            FailurePolicy::Retry {
                max_attempts: 4,
                backoff: SimDuration::from_millis(250),
            },
        );
        let result = run_job(&dfs, &conf, &ValueExtractMapper, &MeanReducer).unwrap();
        assert!((result.outputs[0] - 1500.5).abs() < 1e-9, "answer is exact");
        if result.stats.restarted_tasks > 0 {
            assert!(result.stats.fault_log.backoff >= SimDuration::from_millis(250));
            assert_eq!(
                result.counters.get(builtin::BACKOFF_MICROS),
                result.stats.fault_log.backoff.as_micros()
            );
            assert_eq!(
                result.stats.fault_log.task_retries,
                result.stats.restarted_tasks
            );
        }
    }

    #[test]
    fn degrade_policy_drops_lost_tasks_but_completes() {
        // Every node except node 0 fails very early; with the Degrade policy
        // the job still completes, reporting lost map tasks.
        let schedule = FailureSchedule::Deterministic(vec![
            FailureEvent {
                node: NodeId(1),
                at: SimInstant::EPOCH + SimDuration::from_millis(1),
            },
            FailureEvent {
                node: NodeId(2),
                at: SimInstant::EPOCH + SimDuration::from_millis(1),
            },
        ]);
        let cluster = Cluster::builder()
            .nodes(3)
            .failure_schedule(schedule)
            .build()
            .unwrap();
        let dfs = Dfs::new(
            cluster,
            DfsConfig {
                block_size: 256,
                replication: 1,
                io_chunk: 64,
            },
        )
        .unwrap();
        let lines: Vec<String> = (1..=2000).map(|i| i.to_string()).collect();
        dfs.write_lines("/loss", &lines).unwrap();
        dfs.cluster().reset_accounting();
        let conf = JobConf::new("mean", InputSource::Path("/loss".into()))
            .with_failure_policy(FailurePolicy::Degrade);
        let result = run_job(&dfs, &conf, &ValueExtractMapper, &MeanReducer).unwrap();
        // The job must finish; depending on which blocks were lost the answer
        // is approximate but the surviving fraction must be reported.
        assert!(result.stats.map_tasks > 0);
        if result.stats.lost_map_tasks > 0 {
            assert!(result.stats.surviving_fraction() < 1.0);
            assert_eq!(
                result.counters.get(builtin::LOST_SPLITS),
                result.stats.lost_map_tasks
            );
            assert_eq!(
                result.stats.fault_log.splits_lost,
                result.stats.lost_map_tasks
            );
        }
    }

    #[test]
    fn output_path_charges_write_cost() {
        let dfs = test_dfs(2, false);
        dfs.write_lines("/in", (1..=100).map(|i| i.to_string()))
            .unwrap();
        let before = dfs
            .cluster()
            .metrics()
            .snapshot()
            .phase(Phase::Output)
            .disk_bytes_written;
        let conf = JobConf::new("mean", InputSource::Path("/in".into())).with_output_path("/out");
        run_job(&dfs, &conf, &ValueExtractMapper, &MeanReducer).unwrap();
        let after = dfs
            .cluster()
            .metrics()
            .snapshot()
            .phase(Phase::Output)
            .disk_bytes_written;
        assert!(after > before);
    }

    #[test]
    fn stats_record_sim_time_and_tasks() {
        let dfs = test_dfs(2, false);
        dfs.write_lines("/t", (1..=500).map(|i| i.to_string()))
            .unwrap();
        let conf = JobConf::new("mean", InputSource::Path("/t".into()));
        let result = run_job(&dfs, &conf, &ValueExtractMapper, &MeanReducer).unwrap();
        assert!(result.stats.sim_time > SimDuration::ZERO);
        assert!(result.stats.map_tasks >= 1);
        assert_eq!(result.stats.map_input_records, 500);
        assert_eq!(
            result.counters.get(builtin::SHARDED_SHUFFLE_RECORDS),
            result.stats.shuffle_records,
            "all intermediate records travel through the sharded shuffle"
        );
    }
}
