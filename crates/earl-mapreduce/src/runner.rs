//! The job runner: executes a MapReduce job over the simulated cluster.
//!
//! User code (mappers, reducers, combiners) runs for real, so results are
//! exact; all I/O, CPU and start-up work is charged to the cluster cost model
//! so that the simulated elapsed time reflects the work actually performed.
//! This is the property the EARL reproduction needs: processing time is a
//! deterministic function of bytes scanned and records processed, which is
//! precisely what early approximation reduces.
//!
//! ## Execution model
//!
//! When the cluster's failure injector can still fire (`Restart` / `Ignore`
//! experiments with a pending schedule), the job runs on the original
//! sequential path so failure timing stays exactly reproducible.  Otherwise —
//! the common case, and every benchmark — map tasks run concurrently across a
//! scoped thread pool and reduce partitions are reduced in parallel:
//!
//! * task → node assignment is planned deterministically up front (locality
//!   first, then round-robin over available nodes), never through the cluster
//!   RNG, so the plan is independent of execution interleaving;
//! * each task accumulates its own [`Counters`] and stats, merged after the
//!   barrier in task-index order — `JobResult` is bit-identical for every
//!   `parallelism` value;
//! * cost-model charges are pure additions to the simulated clock and the
//!   per-phase metrics, so the merged totals (and therefore `sim_time`) do
//!   not depend on thread interleaving either.
//!
//! ## Streaming shuffle (M3R-style)
//!
//! On the failure-free path the shuffle is **map-side**: every map task routes
//! its (combined) output pairs straight into per-shard buffers as it finishes
//! ([`earl_parallel::sharded_emit`]), so the job-wide all-pairs vector the old
//! gather design concatenated between map and shuffle never exists.  At the
//! reducer-ready barrier each reduce shard already holds exactly its pairs in
//! emission order; [`ShuffleOutput::shuffle_streaming`] only concatenates and
//! groups per shard.  The sequential failure path keeps the gather design
//! (pairs → [`ShuffleOutput::shuffle_parallel`]); both deliver the same bits,
//! and all cost-model charges are driven by the same record counts, so
//! `sim_time` is unchanged too.

use earl_cluster::{ClusterError, NodeId, Phase};
use earl_dfs::{Dfs, InputSplit};
use earl_parallel::{
    indexed_map, resolve_parallelism, sharded_emit, workers_for, ShardBuffers, ShardedBuffers,
};

use crate::counters::{builtin, Counters};
use crate::error::MrError;
use crate::job::{FailurePolicy, InputSource, JobConf, JobResult, JobStats};
use crate::partition::{HashPartitioner, Partitioner};
use crate::shuffle::{apply_combiner, ShuffleOutput};
use crate::types::{Combiner, MapContext, Mapper, ReduceContext, Reducer};
use crate::Result;

/// Maximum number of attempts for a single task before the job is declared
/// lost (mirrors Hadoop's `mapred.map.max.attempts` default of 4).
const MAX_TASK_ATTEMPTS: usize = 4;

/// Runs a job without a combiner.
pub fn run_job<M, R>(
    dfs: &Dfs,
    conf: &JobConf,
    mapper: &M,
    reducer: &R,
) -> Result<JobResult<R::Output>>
where
    M: Mapper,
    R: Reducer<InKey = M::OutKey, InValue = M::OutValue>,
{
    run_inner::<M, R, NeverCombiner<M::OutKey, M::OutValue>>(dfs, conf, mapper, reducer, None)
}

/// Runs a job with a combiner applied to each map task's local output.
pub fn run_job_with_combiner<M, R, C>(
    dfs: &Dfs,
    conf: &JobConf,
    mapper: &M,
    reducer: &R,
    combiner: &C,
) -> Result<JobResult<R::Output>>
where
    M: Mapper,
    R: Reducer<InKey = M::OutKey, InValue = M::OutValue>,
    C: Combiner<Key = M::OutKey, Value = M::OutValue>,
{
    run_inner::<M, R, C>(dfs, conf, mapper, reducer, Some(combiner))
}

/// A combiner type used only to instantiate the generic runner when no
/// combiner is supplied.  The runner short-circuits on the combiner `Option`
/// before grouping or copying anything, so `combine` can never be reached —
/// the previous implementation materialised `values.to_vec()` here for
/// nothing.
struct NeverCombiner<K, V>(std::marker::PhantomData<(K, V)>);

impl<K: crate::types::MrKey, V: crate::types::MrValue> Combiner for NeverCombiner<K, V> {
    type Key = K;
    type Value = V;
    fn combine(&self, _key: &K, _values: &[V]) -> Vec<V> {
        unreachable!("NeverCombiner is a type-level placeholder; the runner never invokes it")
    }
}

fn run_inner<M, R, C>(
    dfs: &Dfs,
    conf: &JobConf,
    mapper: &M,
    reducer: &R,
    combiner: Option<&C>,
) -> Result<JobResult<R::Output>>
where
    M: Mapper,
    R: Reducer<InKey = M::OutKey, InValue = M::OutValue>,
    C: Combiner<Key = M::OutKey, Value = M::OutValue>,
{
    let phase = map_phase_inner(dfs, conf, mapper, combiner)?;
    finish_job(dfs, conf, phase, reducer)
}

/// Intermediate map output, in one of two shapes:
///
/// * `Pairs` — the gather design: all pairs concatenated in task-index order
///   (sequential / failure-schedule path only);
/// * `Sharded` — the streaming design: pairs already routed into per-reduce-
///   shard buffers during the map phase, the all-pairs vector never built.
#[derive(Debug)]
enum MapOutput<K, V> {
    Pairs(Vec<(K, V)>),
    Sharded(ShardedBuffers<(K, V)>),
}

impl<K, V> MapOutput<K, V> {
    fn records(&self) -> u64 {
        match self {
            MapOutput::Pairs(pairs) => pairs.len() as u64,
            MapOutput::Sharded(buffers) => buffers.total_items(),
        }
    }
}

/// The completed map half of a job: all intermediate pairs (gathered or
/// already sharded map-side) plus the counters and stats accumulated so far.
/// Produced by [`run_map_phase`], consumed by [`finish_job`] (shuffle +
/// reduce) — or dropped outright when a pipelined session cancels a
/// speculative iteration before its reduce phase.
#[derive(Debug)]
pub struct MapPhase<K, V> {
    output: MapOutput<K, V>,
    counters: Counters,
    stats: JobStats,
    start: earl_cluster::SimDuration,
    failure_free: bool,
}

impl<K, V> MapPhase<K, V> {
    /// Stats accumulated by the map phase (map tasks, input records, shuffle
    /// records; reduce fields still zero).
    pub fn stats(&self) -> &JobStats {
        &self.stats
    }

    /// Counters accumulated by the map phase.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }
}

/// Runs only the map half of a job (task planning + map tasks + combiner),
/// leaving shuffle and reduce to [`finish_job`].  A pipelined session uses
/// this to overlap the map phase of a speculative iteration with the accuracy
/// estimation of the previous one.
pub fn run_map_phase<M>(
    dfs: &Dfs,
    conf: &JobConf,
    mapper: &M,
) -> Result<MapPhase<M::OutKey, M::OutValue>>
where
    M: Mapper,
{
    map_phase_inner::<M, NeverCombiner<M::OutKey, M::OutValue>>(dfs, conf, mapper, None)
}

fn map_phase_inner<M, C>(
    dfs: &Dfs,
    conf: &JobConf,
    mapper: &M,
    combiner: Option<&C>,
) -> Result<MapPhase<M::OutKey, M::OutValue>>
where
    M: Mapper,
    C: Combiner<Key = M::OutKey, Value = M::OutValue>,
{
    let cluster = dfs.cluster();
    let start = cluster.elapsed();
    let mut counters = Counters::new();
    let mut stats = JobStats::default();

    if conf.charge_job_startup && !conf.local_mode {
        cluster.charge_job_startup();
    }

    // ---- plan map tasks ----------------------------------------------------
    let map_inputs: Vec<MapInput> = match &conf.input {
        InputSource::Path(path) => dfs
            .default_splits(path.clone())?
            .into_iter()
            .map(MapInput::Split)
            .collect(),
        InputSource::Splits(splits) => splits.iter().cloned().map(MapInput::Split).collect(),
        InputSource::Memory(records) => {
            if records.is_empty() {
                Vec::new()
            } else {
                vec![MapInput::Memory(records.clone())]
            }
        }
    };

    // ---- map phase -----------------------------------------------------------
    // Sequential execution is only needed while failures can still fire; a
    // stable cluster runs tasks concurrently with identical results.  The
    // decision is recorded so the reduce half follows the same engine even if
    // all scheduled failures fire mid-map.  On the failure-free path mappers
    // emit straight into per-reduce-shard buffers (streaming shuffle) — the
    // all-pairs vector below exists only for the sequential failure path.
    let failure_free = !cluster.failure_injection_pending();
    let threads = resolve_parallelism(conf.parallelism);

    let output = if failure_free {
        MapOutput::Sharded(map_phase_streaming(
            dfs,
            conf,
            mapper,
            combiner,
            &map_inputs,
            &mut counters,
            &mut stats,
            threads,
        )?)
    } else {
        let mut all_pairs: Vec<(M::OutKey, M::OutValue)> = Vec::new();
        for input in &map_inputs {
            stats.map_tasks += 1;
            match run_map_task(
                dfs,
                conf,
                mapper,
                combiner,
                input,
                &mut counters,
                &mut stats,
            )? {
                Some(pairs) => all_pairs.extend(pairs),
                None => {
                    stats.lost_map_tasks += 1;
                    counters.increment(builtin::LOST_SPLITS);
                }
            }
        }
        MapOutput::Pairs(all_pairs)
    };
    stats.map_input_records = counters.get(builtin::MAP_INPUT_RECORDS);
    stats.shuffle_records = output.records();

    Ok(MapPhase {
        output,
        counters,
        stats,
        start,
        failure_free,
    })
}

/// Completes a job from its finished map phase: shuffle (sharded across the
/// worker pool on the failure-free path), reduce, output charging, final
/// stats.
pub fn finish_job<R>(
    dfs: &Dfs,
    conf: &JobConf,
    phase: MapPhase<R::InKey, R::InValue>,
    reducer: &R,
) -> Result<JobResult<R::Output>>
where
    R: Reducer,
{
    let cluster = dfs.cluster();
    let MapPhase {
        output,
        mut counters,
        mut stats,
        start,
        failure_free,
    } = phase;
    let threads = resolve_parallelism(conf.parallelism);

    // ---- shuffle -------------------------------------------------------------
    // Cost charges are driven by the record count, which is identical whether
    // the pairs were gathered or streamed — so sim_time cannot depend on the
    // shuffle engine.
    let shuffle_records = output.records();
    if !conf.local_mode && shuffle_records > 0 {
        cluster.charge_sort(shuffle_records);
        let nodes = cluster.available_nodes();
        if nodes.len() >= 2 {
            // On average (n-1)/n of intermediate data crosses the network.
            let crossing = shuffle_records * conf.avg_record_bytes * (nodes.len() as u64 - 1)
                / nodes.len() as u64;
            cluster.charge_net_transfer(Phase::Shuffle, nodes[0], nodes[1], crossing);
        }
    }
    let shuffle_workers = if failure_free {
        workers_for(shuffle_records as usize, conf.parallelism).min(threads)
    } else {
        1
    };
    let shuffled = match output {
        // Streaming path: the pairs are already in their shards; only the
        // per-shard concatenate + group remains.
        MapOutput::Sharded(buffers) => ShuffleOutput::shuffle_streaming(buffers, shuffle_workers),
        // Gather path (sequential failure schedule): shard then merge.
        MapOutput::Pairs(all_pairs) => ShuffleOutput::shuffle_parallel(
            all_pairs,
            conf.num_reducers,
            &HashPartitioner,
            shuffle_workers,
        ),
    };
    stats.reduce_groups = shuffled.total_groups();

    // ---- reduce phase --------------------------------------------------------
    let mut outputs = Vec::new();
    if failure_free {
        outputs = reduce_phase_parallel(
            dfs,
            conf,
            reducer,
            shuffled.into_partitions(),
            &mut counters,
            &mut stats,
            threads,
        )?;
    } else {
        for partition in shuffled.into_partitions() {
            if partition.is_empty() {
                continue;
            }
            stats.reduce_tasks += 1;
            let records_in: u64 = partition.values().map(|v| v.len() as u64).sum();
            counters.add(builtin::REDUCE_INPUT_GROUPS, partition.len() as u64);
            counters.add(builtin::REDUCE_INPUT_RECORDS, records_in);

            // Reduce tasks are always re-executed on failure (only map-side
            // sample loss is tolerated by EARL's approximation mode).
            let mut attempts = 0;
            loop {
                attempts += 1;
                let node = pick_node(dfs, &[])?;
                if !conf.local_mode {
                    cluster.charge_task_startup();
                    cluster.record_task_on(node)?;
                }
                let mut ctx = ReduceContext::new();
                for (key, values) in &partition {
                    reducer.reduce(key, values, &mut ctx);
                }
                cluster.charge_reduce_cpu(Phase::Reduce, records_in, reducer.is_heavy());
                let survived = conf.local_mode || node_alive(dfs, node);
                if survived {
                    let (out, c) = ctx.into_parts();
                    outputs.extend(out);
                    counters.merge(&c);
                    break;
                }
                cluster.record_task_restart();
                stats.restarted_tasks += 1;
                counters.increment(builtin::RESTARTED_TASKS);
                if attempts >= MAX_TASK_ATTEMPTS {
                    return Err(MrError::ClusterLost);
                }
            }
        }
    }

    // ---- output --------------------------------------------------------------
    if let Some(_path) = &conf.output_path {
        // Output records are charged as sequential writes of the estimated
        // record size (materialisation is left to the caller, which knows how
        // to serialise its output type).
        cluster.charge_disk_write(Phase::Output, outputs.len() as u64 * conf.avg_record_bytes);
    }

    stats.sim_time = cluster.elapsed() - start;
    Ok(JobResult {
        outputs,
        counters,
        stats,
    })
}

enum MapInput {
    Split(InputSplit),
    Memory(Vec<(u64, String)>),
}

/// Plans the node of every task deterministically: first live preferred
/// (data-local) node, otherwise round-robin over the available nodes.  Never
/// consults the cluster RNG, so the plan is independent of both thread count
/// and execution order.
fn plan_nodes(dfs: &Dfs, preferred: &[&[NodeId]]) -> Result<Vec<NodeId>> {
    let available = dfs.cluster().available_nodes();
    if available.is_empty() {
        return Err(ClusterError::NoAvailableNodes.into());
    }
    Ok(preferred
        .iter()
        .enumerate()
        .map(|(i, candidates)| {
            candidates
                .iter()
                .copied()
                .find(|&n| node_alive(dfs, n))
                .unwrap_or(available[i % available.len()])
        })
        .collect())
}

/// Runs all map tasks concurrently across `threads` scoped workers, each task
/// emitting its (combined) output pairs **directly into per-reduce-shard
/// buffers** as it finishes — the map-side streaming shuffle.  Per-task
/// counters are merged after the barrier in task-index order, exactly like the
/// gather design, so `JobResult` stays bit-identical at every thread count.
///
/// Requires a stable cluster (no pending failure injection): tasks cannot be
/// lost mid-flight, so the only `None` outcome is data that was already
/// missing under [`FailurePolicy::Ignore`] — which emits nothing.
#[allow(clippy::too_many_arguments)]
fn map_phase_streaming<M, C>(
    dfs: &Dfs,
    conf: &JobConf,
    mapper: &M,
    combiner: Option<&C>,
    inputs: &[MapInput],
    counters: &mut Counters,
    stats: &mut JobStats,
    threads: usize,
) -> Result<ShardedBuffers<(M::OutKey, M::OutValue)>>
where
    M: Mapper,
    C: Combiner<Key = M::OutKey, Value = M::OutValue>,
{
    let num_shards = conf.num_reducers.max(1);
    if inputs.is_empty() {
        return Ok(ShardedBuffers::empty(num_shards));
    }
    let preferred: Vec<&[NodeId]> = inputs
        .iter()
        .map(|input| match input {
            MapInput::Split(split) => split.locations.as_slice(),
            MapInput::Memory(_) => &[][..],
        })
        .collect();
    let plan = plan_nodes(dfs, &preferred)?;

    let (results, buffers) = sharded_emit(inputs.len(), num_shards, threads, |i, shard_buffers| {
        run_map_task_streaming(
            dfs,
            conf,
            mapper,
            combiner,
            &inputs[i],
            plan[i],
            num_shards,
            shard_buffers,
        )
    });

    for result in results {
        stats.map_tasks += 1;
        match result? {
            Some(task_counters) => counters.merge(&task_counters),
            None => {
                stats.lost_map_tasks += 1;
                counters.increment(builtin::LOST_SPLITS);
            }
        }
    }
    Ok(buffers)
}

/// One map task on a stable cluster: no retry loop, no survival check.  The
/// task's pairs are routed straight into `shard_buffers` with the same
/// partitioner arithmetic the reduce-side shuffle uses; only the per-task
/// counters are returned.  Returns `None` (emitting nothing) when the task's
/// input blocks were already lost and the failure policy tolerates dropping
/// them; a task that errors has emitted nothing either (emission happens only
/// after a successful read).
#[allow(clippy::too_many_arguments)]
fn run_map_task_streaming<M, C>(
    dfs: &Dfs,
    conf: &JobConf,
    mapper: &M,
    combiner: Option<&C>,
    input: &MapInput,
    node: NodeId,
    num_shards: usize,
    shard_buffers: &mut ShardBuffers<(M::OutKey, M::OutValue)>,
) -> Result<Option<Counters>>
where
    M: Mapper,
    C: Combiner<Key = M::OutKey, Value = M::OutValue>,
{
    let cluster = dfs.cluster();
    if !conf.local_mode {
        cluster.charge_task_startup();
        cluster.record_task_on(node)?;
    }

    let mut ctx = MapContext::new();
    let mut records = 0u64;
    let read_result: Result<()> = (|| {
        match input {
            MapInput::Split(split) => {
                let mut reader = dfs.open_split(split.clone(), Phase::Load);
                while let Some((offset, line)) = reader.next_line()? {
                    mapper.map(offset, &line, &mut ctx);
                    records += 1;
                }
            }
            MapInput::Memory(lines) => {
                for (offset, line) in lines {
                    mapper.map(*offset, line, &mut ctx);
                    records += 1;
                }
            }
        }
        Ok(())
    })();
    match read_result {
        Ok(()) => {}
        Err(MrError::Dfs(earl_dfs::DfsError::BlockUnavailable(_)))
            if conf.failure_policy == FailurePolicy::Ignore =>
        {
            return Ok(None);
        }
        Err(e) => return Err(e),
    }

    cluster.charge_map_cpu(records, mapper.is_heavy());

    let mut task_counters = Counters::new();
    task_counters.add(builtin::MAP_INPUT_RECORDS, records);
    let (pairs, emitted) = ctx.into_parts();
    task_counters.merge(&emitted);
    let pairs = match combiner {
        Some(cmb) => {
            let combined = apply_combiner(pairs, cmb);
            task_counters.add(builtin::COMBINE_OUTPUT_RECORDS, combined.len() as u64);
            combined
        }
        None => pairs,
    };
    // Map-side shuffle: route each pair to its reduce shard now — these pairs
    // are never concatenated with any other task's.
    for (key, value) in pairs {
        let shard = HashPartitioner.partition(&key, num_shards);
        shard_buffers.emit(shard, (key, value));
    }
    Ok(Some(task_counters))
}

/// Reduces all non-empty partitions concurrently across `threads` scoped
/// workers and concatenates their outputs in partition order — exactly the
/// order the sequential path produces.
fn reduce_phase_parallel<R>(
    dfs: &Dfs,
    conf: &JobConf,
    reducer: &R,
    partitions: Vec<std::collections::BTreeMap<R::InKey, Vec<R::InValue>>>,
    counters: &mut Counters,
    stats: &mut JobStats,
    threads: usize,
) -> Result<Vec<R::Output>>
where
    R: Reducer,
{
    let non_empty: Vec<_> = partitions.into_iter().filter(|p| !p.is_empty()).collect();
    if non_empty.is_empty() {
        return Ok(Vec::new());
    }
    let preferred: Vec<&[NodeId]> = non_empty.iter().map(|_| &[][..]).collect();
    let plan = plan_nodes(dfs, &preferred)?;
    let cluster = dfs.cluster();

    let results = indexed_map(
        non_empty.len(),
        threads,
        || (),
        |i, ()| -> Result<_> {
            let partition = &non_empty[i];
            if !conf.local_mode {
                cluster.charge_task_startup();
                cluster.record_task_on(plan[i])?;
            }
            let records_in: u64 = partition.values().map(|v| v.len() as u64).sum();
            let mut ctx = ReduceContext::new();
            for (key, values) in partition {
                reducer.reduce(key, values, &mut ctx);
            }
            cluster.charge_reduce_cpu(Phase::Reduce, records_in, reducer.is_heavy());
            let (outputs, task_counters) = ctx.into_parts();
            Ok((outputs, task_counters, partition.len() as u64, records_in))
        },
    );

    let mut outputs = Vec::new();
    for result in results {
        let (out, task_counters, groups, records_in) = result?;
        stats.reduce_tasks += 1;
        counters.add(builtin::REDUCE_INPUT_GROUPS, groups);
        counters.add(builtin::REDUCE_INPUT_RECORDS, records_in);
        counters.merge(&task_counters);
        outputs.extend(out);
    }
    Ok(outputs)
}

/// Intermediate pairs emitted by a mapper `M`.
type MapperPairs<M> = Vec<(<M as Mapper>::OutKey, <M as Mapper>::OutValue)>;

/// Runs one map task, retrying or dropping it according to the failure policy.
/// Returns `None` when the task's output was lost under [`FailurePolicy::Ignore`].
fn run_map_task<M, C>(
    dfs: &Dfs,
    conf: &JobConf,
    mapper: &M,
    combiner: Option<&C>,
    input: &MapInput,
    counters: &mut Counters,
    stats: &mut JobStats,
) -> Result<Option<MapperPairs<M>>>
where
    M: Mapper,
    C: Combiner<Key = M::OutKey, Value = M::OutValue>,
{
    let cluster = dfs.cluster();
    let preferred = match input {
        MapInput::Split(split) => split.locations.clone(),
        MapInput::Memory(_) => Vec::new(),
    };
    let mut attempts = 0;
    loop {
        attempts += 1;
        let node = pick_node(dfs, &preferred)?;
        if !conf.local_mode {
            cluster.charge_task_startup();
            cluster.record_task_on(node)?;
        }

        let mut ctx = MapContext::new();
        let mut records = 0u64;
        let read_result: Result<()> = (|| {
            match input {
                MapInput::Split(split) => {
                    let mut reader = dfs.open_split(split.clone(), Phase::Load);
                    while let Some((offset, line)) = reader.next_line()? {
                        mapper.map(offset, &line, &mut ctx);
                        records += 1;
                    }
                }
                MapInput::Memory(lines) => {
                    for (offset, line) in lines {
                        mapper.map(*offset, line, &mut ctx);
                        records += 1;
                    }
                }
            }
            Ok(())
        })();

        match read_result {
            Ok(()) => {}
            Err(MrError::Dfs(earl_dfs::DfsError::BlockUnavailable(_)))
                if conf.failure_policy == FailurePolicy::Ignore =>
            {
                // The data itself is gone; under the approximation policy the
                // task is simply dropped.
                return Ok(None);
            }
            Err(e) => return Err(e),
        }

        cluster.charge_map_cpu(records, mapper.is_heavy());

        let survived = conf.local_mode || node_alive(dfs, node);
        if survived {
            counters.add(builtin::MAP_INPUT_RECORDS, records);
            let (pairs, c) = ctx.into_parts();
            counters.merge(&c);
            let pairs = match combiner {
                Some(cmb) => {
                    let combined = apply_combiner(pairs, cmb);
                    counters.add(builtin::COMBINE_OUTPUT_RECORDS, combined.len() as u64);
                    combined
                }
                None => pairs,
            };
            return Ok(Some(pairs));
        }

        // The node running this task failed while it was working.
        match conf.failure_policy {
            FailurePolicy::Ignore => return Ok(None),
            FailurePolicy::Restart => {
                cluster.record_task_restart();
                stats.restarted_tasks += 1;
                counters.increment(builtin::RESTARTED_TASKS);
                if attempts >= MAX_TASK_ATTEMPTS {
                    return Err(MrError::ClusterLost);
                }
                // Re-sync DFS metadata so the retry does not read from the dead node.
                dfs.reconcile_failures();
            }
        }
    }
}

fn pick_node(dfs: &Dfs, preferred: &[NodeId]) -> Result<NodeId> {
    for node in preferred {
        if node_alive(dfs, *node) {
            return Ok(*node);
        }
    }
    Ok(dfs.cluster().random_available_node()?)
}

fn node_alive(dfs: &Dfs, node: NodeId) -> bool {
    dfs.cluster()
        .node(node)
        .map(|n| n.is_available())
        .unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contrib::{
        CountCombiner, MeanReducer, TokenCountMapper, ValueExtractMapper, WordCountReducer,
    };
    use earl_cluster::{
        Cluster, CostModel, FailureEvent, FailureSchedule, SimDuration, SimInstant,
    };
    use earl_dfs::DfsConfig;

    fn test_dfs(nodes: u32, free: bool) -> Dfs {
        let mut builder = Cluster::builder().nodes(nodes);
        if free {
            builder = builder.cost_model(CostModel::free());
        }
        Dfs::new(
            builder.build().unwrap(),
            DfsConfig {
                block_size: 256,
                replication: 2,
                io_chunk: 64,
            },
        )
        .unwrap()
    }

    #[test]
    fn word_count_over_dfs_matches_reference() {
        let dfs = test_dfs(3, true);
        let lines = vec!["the quick brown fox", "the lazy dog", "the fox"];
        dfs.write_lines("/wc", &lines).unwrap();
        let conf = JobConf::new("wordcount", InputSource::Path("/wc".into())).with_reducers(3);
        let result = run_job(&dfs, &conf, &TokenCountMapper, &WordCountReducer).unwrap();
        let mut counts: Vec<(String, u64)> = result.outputs.clone();
        counts.sort();
        let the = counts.iter().find(|(w, _)| w == "the").unwrap();
        assert_eq!(the.1, 3);
        let fox = counts.iter().find(|(w, _)| w == "fox").unwrap();
        assert_eq!(fox.1, 2);
        assert_eq!(counts.iter().map(|(_, c)| c).sum::<u64>(), 9);
        assert_eq!(result.counters.get(builtin::MAP_INPUT_RECORDS), 3);
        assert_eq!(result.stats.map_input_records, 3);
        assert!(result.stats.reduce_tasks >= 1);
        assert_eq!(result.stats.lost_map_tasks, 0);
        assert_eq!(result.stats.surviving_fraction(), 1.0);
    }

    #[test]
    fn combiner_reduces_shuffle_volume_without_changing_results() {
        let dfs = test_dfs(2, true);
        let lines: Vec<String> = (0..50)
            .map(|i| format!("k{} k{} k{}", i % 3, i % 3, i % 5))
            .collect();
        dfs.write_lines("/c", &lines).unwrap();
        let conf = JobConf::new("wc", InputSource::Path("/c".into())).with_reducers(2);
        let plain = run_job(&dfs, &conf, &TokenCountMapper, &WordCountReducer).unwrap();
        let combined = run_job_with_combiner(
            &dfs,
            &conf,
            &TokenCountMapper,
            &WordCountReducer,
            &CountCombiner,
        )
        .unwrap();
        let mut a = plain.outputs.clone();
        let mut b = combined.outputs.clone();
        a.sort();
        b.sort();
        assert_eq!(a, b, "combiner must not change results");
        assert!(
            combined.counters.get(builtin::COMBINE_OUTPUT_RECORDS) < plain.stats.shuffle_records,
            "combiner must shrink intermediate data"
        );
    }

    #[test]
    fn memory_input_runs_without_dfs_reads() {
        let dfs = test_dfs(1, false);
        let conf = JobConf::new(
            "mean",
            InputSource::from_lines((1..=100).map(|i| i.to_string())),
        );
        let result = run_job(&dfs, &conf, &ValueExtractMapper, &MeanReducer).unwrap();
        assert_eq!(result.outputs.len(), 1);
        assert!((result.outputs[0] - 50.5).abs() < 1e-9);
        let load = dfs.cluster().metrics().snapshot().phase(Phase::Load);
        assert_eq!(
            load.disk_bytes_read, 0,
            "memory input must not touch the DFS"
        );
    }

    #[test]
    fn local_mode_is_cheaper_than_cluster_mode() {
        let dfs = test_dfs(3, false);
        let lines: Vec<String> = (0..200).map(|i| i.to_string()).collect();
        dfs.write_lines("/m", &lines).unwrap();

        dfs.cluster().reset_accounting();
        let cluster_conf = JobConf::new("mean", InputSource::Path("/m".into()));
        run_job(&dfs, &cluster_conf, &ValueExtractMapper, &MeanReducer).unwrap();
        let cluster_time = dfs.cluster().elapsed();

        dfs.cluster().reset_accounting();
        let local_conf = JobConf::new("mean", InputSource::Path("/m".into())).local();
        run_job(&dfs, &local_conf, &ValueExtractMapper, &MeanReducer).unwrap();
        let local_time = dfs.cluster().elapsed();

        assert!(
            local_time < cluster_time,
            "local mode must avoid job/task start-up costs: {local_time} vs {cluster_time}"
        );
    }

    #[test]
    fn empty_input_produces_empty_result() {
        let dfs = test_dfs(1, true);
        let conf = JobConf::new("empty", InputSource::Memory(Vec::new()));
        let result = run_job(&dfs, &conf, &ValueExtractMapper, &MeanReducer).unwrap();
        assert!(result.outputs.is_empty());
        assert_eq!(result.stats.map_tasks, 0);
        assert_eq!(result.stats.reduce_tasks, 0);
    }

    #[test]
    fn restart_policy_recovers_from_node_failure() {
        // Node 1 fails shortly after the job starts; with replication 2 the
        // data survives and the restart policy must deliver the exact answer.
        let schedule = FailureSchedule::Deterministic(vec![FailureEvent {
            node: NodeId(1),
            at: SimInstant::EPOCH + SimDuration::from_millis(100),
        }]);
        let cluster = Cluster::builder()
            .nodes(3)
            .failure_schedule(schedule)
            .build()
            .unwrap();
        let dfs = Dfs::new(
            cluster,
            DfsConfig {
                block_size: 512,
                replication: 2,
                io_chunk: 128,
            },
        )
        .unwrap();
        let lines: Vec<String> = (1..=1000).map(|i| i.to_string()).collect();
        dfs.write_lines("/ft", &lines).unwrap();
        let conf = JobConf::new("mean", InputSource::Path("/ft".into()))
            .with_failure_policy(FailurePolicy::Restart);
        let result = run_job(&dfs, &conf, &ValueExtractMapper, &MeanReducer).unwrap();
        assert_eq!(result.outputs.len(), 1);
        assert!((result.outputs[0] - 500.5).abs() < 1e-9);
        assert!(
            !dfs.cluster().failed_nodes().is_empty(),
            "the failure must actually have fired"
        );
    }

    #[test]
    fn ignore_policy_drops_lost_tasks_but_completes() {
        // Every node except node 0 fails very early; with the Ignore policy the
        // job still completes, reporting lost map tasks.
        let schedule = FailureSchedule::Deterministic(vec![
            FailureEvent {
                node: NodeId(1),
                at: SimInstant::EPOCH + SimDuration::from_millis(1),
            },
            FailureEvent {
                node: NodeId(2),
                at: SimInstant::EPOCH + SimDuration::from_millis(1),
            },
        ]);
        let cluster = Cluster::builder()
            .nodes(3)
            .failure_schedule(schedule)
            .build()
            .unwrap();
        let dfs = Dfs::new(
            cluster,
            DfsConfig {
                block_size: 256,
                replication: 1,
                io_chunk: 64,
            },
        )
        .unwrap();
        let lines: Vec<String> = (1..=2000).map(|i| i.to_string()).collect();
        dfs.write_lines("/loss", &lines).unwrap();
        dfs.cluster().reset_accounting();
        let conf = JobConf::new("mean", InputSource::Path("/loss".into()))
            .with_failure_policy(FailurePolicy::Ignore);
        let result = run_job(&dfs, &conf, &ValueExtractMapper, &MeanReducer).unwrap();
        // The job must finish; depending on which blocks were lost the answer is
        // approximate but the surviving fraction must be reported.
        assert!(result.stats.map_tasks > 0);
        if result.stats.lost_map_tasks > 0 {
            assert!(result.stats.surviving_fraction() < 1.0);
            assert_eq!(
                result.counters.get(builtin::LOST_SPLITS),
                result.stats.lost_map_tasks
            );
        }
    }

    #[test]
    fn output_path_charges_write_cost() {
        let dfs = test_dfs(2, false);
        dfs.write_lines("/in", (1..=100).map(|i| i.to_string()))
            .unwrap();
        let before = dfs
            .cluster()
            .metrics()
            .snapshot()
            .phase(Phase::Output)
            .disk_bytes_written;
        let conf = JobConf::new("mean", InputSource::Path("/in".into())).with_output_path("/out");
        run_job(&dfs, &conf, &ValueExtractMapper, &MeanReducer).unwrap();
        let after = dfs
            .cluster()
            .metrics()
            .snapshot()
            .phase(Phase::Output)
            .disk_bytes_written;
        assert!(after > before);
    }

    #[test]
    fn stats_record_sim_time_and_tasks() {
        let dfs = test_dfs(2, false);
        dfs.write_lines("/t", (1..=500).map(|i| i.to_string()))
            .unwrap();
        let conf = JobConf::new("mean", InputSource::Path("/t".into()));
        let result = run_job(&dfs, &conf, &ValueExtractMapper, &MeanReducer).unwrap();
        assert!(result.stats.sim_time > SimDuration::ZERO);
        assert!(result.stats.map_tasks >= 1);
        assert_eq!(result.stats.map_input_records, 500);
    }
}
