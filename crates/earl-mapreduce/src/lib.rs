//! # earl-mapreduce
//!
//! A Hadoop-like MapReduce engine running on the simulated cluster and DFS of
//! `earl-cluster` / `earl-dfs`.  It provides everything the EARL paper (Laptev,
//! Zeng, Zaniolo — VLDB 2012) assumes of its substrate:
//!
//! * the classic `map : (k1, v1) → list(k2, v2)` / `reduce : (k2, list(v2)) →
//!   (k3, v3)` programming model with combiners, partitioners and counters;
//! * locality-aware task scheduling over input splits, with node failures
//!   arbitrated deterministically on the simulated clock and handled per
//!   [`FailurePolicy`]: *retry* re-plans lost tasks onto survivors (stock
//!   Hadoop behaviour), *degrade* drops the lost splits and lets the accuracy
//!   stage bound the error (the fault-tolerant approximation mode of EARL
//!   §3.4) — both on the parallel engine, at every thread count;
//! * a **local mode** that runs a job in-process without task start-up costs,
//!   used by EARL's SSABE parameter-estimation phase (§3.2);
//! * a **pipelined session** (Hadoop-Online-style) that keeps mapper/reducer
//!   tasks alive across EARL iterations and provides the mapper↔reducer
//!   feedback channel used to signal sample expansion or termination (§2.1).
//!
//! The engine executes user code for real (results are exact), while all I/O,
//! CPU and start-up work is charged to the cluster's cost model so simulated
//! processing times reflect the work performed.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod contrib;
pub mod counters;
pub mod error;
pub mod feedback;
pub mod job;
pub mod partition;
pub mod pipeline;
pub mod runner;
pub mod shuffle;
pub mod transport;
pub mod types;

pub use counters::Counters;
pub use error::MrError;
pub use feedback::{ErrorFeedback, ErrorReport};
pub use job::{FailurePolicy, InputSource, JobConf, JobResult, JobStats};
pub use partition::{HashPartitioner, Partitioner};
pub use pipeline::{PendingIteration, PipelinedSession};
pub use runner::{finish_job, run_job, run_job_with_combiner, run_map_phase, MapPhase};
pub use shuffle::ShuffleOutput;
pub use transport::{
    InProcess, RemoteMapOutcome, RemoteMapRequest, RemoteReduceOutcome, RemoteReduceRequest,
    RemoteSectionsOutcome, RemoteSectionsRequest, SectionSummary, TaskSpec, TaskTransport,
};
pub use types::{Combiner, MapContext, Mapper, ReduceContext, Reducer};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, MrError>;
