//! Job counters, mirroring Hadoop's named counters.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

/// Well-known counter names used by the engine itself.
pub mod builtin {
    /// Records consumed by mappers.
    pub const MAP_INPUT_RECORDS: &str = "map.input.records";
    /// Records emitted by mappers.
    pub const MAP_OUTPUT_RECORDS: &str = "map.output.records";
    /// Records emitted after the (optional) combiner ran.
    pub const COMBINE_OUTPUT_RECORDS: &str = "combine.output.records";
    /// Distinct keys seen by reducers.
    pub const REDUCE_INPUT_GROUPS: &str = "reduce.input.groups";
    /// Records consumed by reducers.
    pub const REDUCE_INPUT_RECORDS: &str = "reduce.input.records";
    /// Records emitted by reducers.
    pub const REDUCE_OUTPUT_RECORDS: &str = "reduce.output.records";
    /// Input splits whose output was lost to node failures (degrade policy).
    pub const LOST_SPLITS: &str = "job.lost.splits";
    /// Tasks restarted after node failures (retry policy).
    pub const RESTARTED_TASKS: &str = "job.restarted.tasks";
    /// Failure events that struck the cluster while the job ran.
    pub const FAILURE_EVENTS: &str = "job.failure.events";
    /// Records from completed tasks kept (not re-computed) after a failure.
    pub const SALVAGED_RECORDS: &str = "job.salvaged.records";
    /// Simulated microseconds of retry back-off charged to the job.
    pub const BACKOFF_MICROS: &str = "job.backoff.micros";
    /// Intermediate records routed through the sharded streaming shuffle —
    /// positive whenever the map phase produced output, proving the gather
    /// path was not taken.
    pub const SHARDED_SHUFFLE_RECORDS: &str = "shuffle.sharded.records";
}

/// A set of named monotonically increasing counters.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counters {
    values: BTreeMap<String, u64>,
}

impl Counters {
    /// Creates an empty counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments `name` by `delta`.
    pub fn add(&mut self, name: &str, delta: u64) {
        *self.values.entry(name.to_owned()).or_insert(0) += delta;
    }

    /// Increments `name` by one.
    pub fn increment(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Current value of `name` (0 if never incremented).
    pub fn get(&self, name: &str) -> u64 {
        self.values.get(name).copied().unwrap_or(0)
    }

    /// Merges another counter set into this one.
    pub fn merge(&mut self, other: &Counters) {
        for (name, value) in &other.values {
            *self.values.entry(name.clone()).or_insert(0) += value;
        }
    }

    /// Iterates over `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.values.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Number of distinct counters.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no counter has been touched.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

impl fmt::Display for Counters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, value) in &self.values {
            writeln!(f, "{name}={value}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_get_increment() {
        let mut c = Counters::new();
        assert!(c.is_empty());
        assert_eq!(c.get("x"), 0);
        c.add("x", 5);
        c.increment("x");
        c.increment("y");
        assert_eq!(c.get("x"), 6);
        assert_eq!(c.get("y"), 1);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn merge_sums_by_name() {
        let mut a = Counters::new();
        a.add("shared", 2);
        a.add("only_a", 1);
        let mut b = Counters::new();
        b.add("shared", 3);
        b.add("only_b", 7);
        a.merge(&b);
        assert_eq!(a.get("shared"), 5);
        assert_eq!(a.get("only_a"), 1);
        assert_eq!(a.get("only_b"), 7);
    }

    #[test]
    fn display_lists_counters() {
        let mut c = Counters::new();
        c.add("a", 1);
        c.add("b", 2);
        let s = c.to_string();
        assert!(s.contains("a=1"));
        assert!(s.contains("b=2"));
    }

    #[test]
    fn iter_is_ordered() {
        let mut c = Counters::new();
        c.add("z", 1);
        c.add("a", 1);
        let names: Vec<&str> = c.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["a", "z"]);
    }
}
