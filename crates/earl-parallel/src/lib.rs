//! # earl-parallel
//!
//! The scoped fork-join executor the whole workspace runs on.
//!
//! All hot paths — Monte-Carlo bootstrap replicates, block bootstrap,
//! jackknife, delta-maintained resample updates, and MapReduce map/reduce
//! tasks — reduce to the same shape: evaluate `count` independent work items,
//! each identified by its index, where every worker thread needs a private
//! scratch state (reusable buffers and nothing else).  This crate provides
//! that shape once, over `std::thread::scope` — no dependency on an external
//! thread-pool crate, no per-item allocation, and results that are
//! **bit-identical for every thread count** because item `i` depends only on
//! `i` (statistical callers derive per-replicate RNG streams from
//! `earl_bootstrap::rng::replicate_rng`).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod pool;

pub use pool::WorkerPool;

/// Resolves a requested worker count: `None` means all available cores.
pub fn resolve_parallelism(requested: Option<usize>) -> usize {
    match requested {
        Some(n) => n.max(1),
        None => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

/// Below this many scalar operations a fork-join is slower than just doing the
/// work; callers use it to fall back to single-threaded execution.
pub const MIN_PARALLEL_WORK: usize = 1 << 15;

/// The one gating policy for worker counts: single-threaded when the total
/// scalar work is too small to amortise a fork-join, otherwise the requested
/// parallelism (`None` = all cores).
pub fn workers_for(total_work: usize, requested: Option<usize>) -> usize {
    if total_work < MIN_PARALLEL_WORK {
        1
    } else {
        resolve_parallelism(requested)
    }
}

/// Evaluates `count` independent work items, splitting them into contiguous
/// chunks over `threads` scoped workers.  Each worker builds one scratch state
/// with `make_scratch` and reuses it for all of its items; `eval(i, scratch)`
/// must depend only on `i` and the scratch contents it itself wrote.
///
/// Returns the results in index order.  With `threads <= 1` no thread is
/// spawned at all.  This is the one fork-join primitive the whole workspace
/// executes on — bootstrap replicates and MapReduce tasks alike.
pub fn indexed_map<T, S, G, F>(count: usize, threads: usize, make_scratch: G, eval: F) -> Vec<T>
where
    T: Send,
    S: Send,
    G: Fn() -> S + Sync,
    F: Fn(usize, &mut S) -> T + Sync,
{
    let mut out: Vec<Option<T>> = std::iter::repeat_with(|| None).take(count).collect();
    let threads = threads.clamp(1, count.max(1));
    if threads <= 1 {
        let mut scratch = make_scratch();
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = Some(eval(i, &mut scratch));
        }
    } else {
        let chunk_len = count.div_ceil(threads);
        std::thread::scope(|scope| {
            for (chunk_idx, slots) in out.chunks_mut(chunk_len).enumerate() {
                let make_scratch = &make_scratch;
                let eval = &eval;
                scope.spawn(move || {
                    let base = chunk_idx * chunk_len;
                    let mut scratch = make_scratch();
                    for (offset, slot) in slots.iter_mut().enumerate() {
                        *slot = Some(eval(base + offset, &mut scratch));
                    }
                });
            }
        });
    }
    out.into_iter()
        .map(|slot| slot.expect("every work item was executed"))
        .collect()
}

/// [`indexed_map`] specialised to replicate evaluation (one `f64` per
/// replicate).
pub fn replicate_map<S, G, F>(count: usize, threads: usize, make_scratch: G, eval: F) -> Vec<f64>
where
    S: Send,
    G: Fn() -> S + Sync,
    F: Fn(usize, &mut S) -> f64 + Sync,
{
    indexed_map(count, threads, make_scratch, eval)
}

/// Splits `items` into contiguous chunks of `chunk_len` (the last may be
/// shorter), preserving input order — the one splitting policy behind both
/// [`owned_indexed_map`] and [`shard_merge`], so their determinism contracts
/// cannot diverge.
fn split_into_chunks<I>(items: Vec<I>, chunk_len: usize) -> Vec<Vec<I>> {
    let mut chunks: Vec<Vec<I>> = Vec::with_capacity(items.len().div_ceil(chunk_len.max(1)));
    let mut iter = items.into_iter();
    loop {
        let chunk: Vec<I> = iter.by_ref().take(chunk_len).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push(chunk);
    }
    chunks
}

/// Like [`indexed_map`] but takes ownership of the work items: `eval(i, item)`
/// consumes `items[i]`.  Splitting is contiguous and chunk order is the input
/// order, so results are in index order and identical at every thread count.
/// The shuffle's shard/merge stages run on this (shards are moved, never
/// cloned, into their merger).
pub fn owned_indexed_map<I, T, F>(items: Vec<I>, threads: usize, eval: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(usize, I) -> T + Sync,
{
    let count = items.len();
    let threads = threads.clamp(1, count.max(1));
    if threads <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, item)| eval(i, item))
            .collect();
    }
    let chunk_len = count.div_ceil(threads);
    let mut out: Vec<Option<T>> = std::iter::repeat_with(|| None).take(count).collect();
    let chunks = split_into_chunks(items, chunk_len);
    std::thread::scope(|scope| {
        for ((chunk_idx, chunk), slots) in chunks
            .into_iter()
            .enumerate()
            .zip(out.chunks_mut(chunk_len))
        {
            let eval = &eval;
            scope.spawn(move || {
                let base = chunk_idx * chunk_len;
                for ((offset, item), slot) in chunk.into_iter().enumerate().zip(slots.iter_mut()) {
                    *slot = Some(eval(base + offset, item));
                }
            });
        }
    });
    out.into_iter()
        .map(|slot| slot.expect("every work item was executed"))
        .collect()
}

/// One worker's per-shard output buffers: the map-side half of the streaming
/// shuffle.  `emit(shard, item)` appends the item to that shard's bucket —
/// items are moved, never cloned, and emission order within a bucket is
/// preserved.
#[derive(Debug)]
pub struct ShardBuffers<I> {
    buckets: Vec<Vec<I>>,
    emitted: u64,
}

impl<I> ShardBuffers<I> {
    /// An empty buffer set routing into `num_shards` shards (clamped to at
    /// least one).  Callers that evaluate tasks outside [`sharded_emit`] —
    /// e.g. a fault-tolerant round loop that must retry individual tasks —
    /// build one buffer set per task and reassemble them with
    /// [`ShardedBuffers::from_workers`].
    pub fn new(num_shards: usize) -> Self {
        Self {
            buckets: (0..num_shards.max(1)).map(|_| Vec::new()).collect(),
            emitted: 0,
        }
    }

    /// Routes `item` to `shard` (clamped defensively to the last shard, the
    /// same policy as [`shard_merge`]'s `assign`).
    pub fn emit(&mut self, shard: usize, item: I) {
        let shard = shard.min(self.buckets.len() - 1);
        self.buckets[shard].push(item);
        self.emitted += 1;
    }

    /// Number of shards this buffer set routes into.
    pub fn num_shards(&self) -> usize {
        self.buckets.len()
    }

    /// Total items emitted into this buffer set.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Captures the current fill level of every bucket so a later
    /// [`rollback`](Self::rollback) can discard everything emitted after this
    /// point.  This is what lets a map task emit *directly* into a shared
    /// worker buffer set and still abort cleanly (e.g. `Degrade` on a lost
    /// split): checkpoint before the task, roll back on abort, and the buffers
    /// are bit-identical to never having run the task at all.
    pub fn checkpoint(&self) -> ShardCheckpoint {
        ShardCheckpoint {
            lens: self.buckets.iter().map(Vec::len).collect(),
            emitted: self.emitted,
        }
    }

    /// Discards every item emitted after `checkpoint` was taken, restoring the
    /// bucket contents and the emitted count exactly.  The checkpoint must
    /// come from this buffer set (same shard count) and nothing may have
    /// removed items since it was taken.
    pub fn rollback(&mut self, checkpoint: &ShardCheckpoint) {
        assert_eq!(
            checkpoint.lens.len(),
            self.buckets.len(),
            "checkpoint must come from a buffer set with the same shard count"
        );
        for (bucket, &len) in self.buckets.iter_mut().zip(&checkpoint.lens) {
            debug_assert!(bucket.len() >= len, "items were removed since checkpoint");
            bucket.truncate(len);
        }
        self.emitted = checkpoint.emitted;
    }
}

impl<I> Default for ShardBuffers<I> {
    /// A single-shard empty buffer set — the placeholder `std::mem::take`
    /// leaves behind while a task temporarily owns the real buffers.
    fn default() -> Self {
        Self::new(1)
    }
}

/// A point-in-time fill marker of a [`ShardBuffers`], produced by
/// [`ShardBuffers::checkpoint`] and consumed by [`ShardBuffers::rollback`].
#[derive(Debug, Clone)]
pub struct ShardCheckpoint {
    lens: Vec<usize>,
    emitted: u64,
}

/// The chunk-major output of a [`sharded_emit`] map phase: one
/// [`ShardBuffers`] per worker chunk, in input (chunk) order.  This is the
/// reducer-ready barrier state of the streaming shuffle — every mapper has
/// finished, nothing has been concatenated yet, and [`merge`](Self::merge)
/// hands each shard its items in input order.
#[derive(Debug)]
pub struct ShardedBuffers<I> {
    num_shards: usize,
    workers: Vec<ShardBuffers<I>>,
}

impl<I> ShardedBuffers<I> {
    /// An empty buffer set (no work items were evaluated).
    pub fn empty(num_shards: usize) -> Self {
        Self {
            num_shards: num_shards.max(1),
            workers: Vec::new(),
        }
    }

    /// Assembles the barrier state from externally evaluated per-producer
    /// buffers, in producer order.  [`merge`](Self::merge) concatenates each
    /// shard's buckets in this order, so passing producers in input order
    /// yields output bit-identical to [`sharded_emit`] over the same items.
    /// Every producer must route into the same `num_shards`.
    pub fn from_workers(num_shards: usize, workers: Vec<ShardBuffers<I>>) -> Self {
        let num_shards = num_shards.max(1);
        for worker in &workers {
            assert_eq!(
                worker.num_shards(),
                num_shards,
                "every producer must route into the same shard count"
            );
        }
        Self {
            num_shards,
            workers,
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// Total items emitted across all workers.
    pub fn total_items(&self) -> u64 {
        self.workers.iter().map(ShardBuffers::emitted).sum()
    }

    /// Merges each shard independently with `merge(shard_index, shard_items)`
    /// across `threads` scoped workers — the reduce-side half shared by
    /// [`shard_merge`] and the streaming shuffle, so their determinism
    /// contracts cannot diverge.
    ///
    /// Determinism contract: a shard's items are concatenated in worker-chunk
    /// order, and chunk order is input order, so every shard sees its items
    /// **in input (emission) order** regardless of `threads` — merge output is
    /// bit-identical at every thread count.  Items are moved, never cloned.
    pub fn merge<T, M>(self, threads: usize, merge: M) -> Vec<T>
    where
        I: Send,
        T: Send,
        M: Fn(usize, Vec<I>) -> T + Sync,
    {
        // Transpose ownership chunk-major → shard-major.  Chunk order is input
        // order, so concatenating a shard's buckets in this order restores the
        // original relative order of its items.
        let mut per_shard: Vec<Vec<Vec<I>>> = (0..self.num_shards)
            .map(|_| Vec::with_capacity(self.workers.len()))
            .collect();
        for worker in self.workers {
            for (shard, bucket) in worker.buckets.into_iter().enumerate() {
                if !bucket.is_empty() {
                    per_shard[shard].push(bucket);
                }
            }
        }
        owned_indexed_map(per_shard, threads, |shard, buckets| {
            let total: usize = buckets.iter().map(Vec::len).sum();
            let mut shard_items = Vec::with_capacity(total);
            for bucket in buckets {
                shard_items.extend(bucket);
            }
            merge(shard, shard_items)
        })
    }
}

/// Map-side streaming emission: evaluates `count` independent work items like
/// [`indexed_map`], but gives every worker a private [`ShardBuffers`] so
/// `eval(i, buffers)` can route its outputs straight into per-shard buckets —
/// no intermediate all-items vector ever exists.  Returns the per-item results
/// (in index order) plus the chunk-major buffers, ready for
/// [`ShardedBuffers::merge`] once all mappers have finished.
///
/// Determinism contract: workers process contiguous index chunks and the
/// buffers are kept in chunk order, so after the merge every shard sees its
/// items in `(item index, emission order)` order — identical at every thread
/// count, and identical to routing the concatenated outputs through
/// [`shard_merge`].
pub fn sharded_emit<I, R, E>(
    count: usize,
    num_shards: usize,
    threads: usize,
    eval: E,
) -> (Vec<R>, ShardedBuffers<I>)
where
    I: Send,
    R: Send,
    E: Fn(usize, &mut ShardBuffers<I>) -> R + Sync,
{
    let num_shards = num_shards.max(1);
    let threads = threads.clamp(1, count.max(1));
    if count == 0 {
        return (Vec::new(), ShardedBuffers::empty(num_shards));
    }
    if threads <= 1 {
        let mut buffers = ShardBuffers::new(num_shards);
        let results = (0..count).map(|i| eval(i, &mut buffers)).collect();
        return (
            results,
            ShardedBuffers {
                num_shards,
                workers: vec![buffers],
            },
        );
    }
    let chunk_len = count.div_ceil(threads);
    let num_chunks = count.div_ceil(chunk_len);
    let mut out: Vec<Option<R>> = std::iter::repeat_with(|| None).take(count).collect();
    let mut worker_slots: Vec<Option<ShardBuffers<I>>> = (0..num_chunks).map(|_| None).collect();
    std::thread::scope(|scope| {
        for ((chunk_idx, slots), worker_slot) in out
            .chunks_mut(chunk_len)
            .enumerate()
            .zip(worker_slots.iter_mut())
        {
            let eval = &eval;
            scope.spawn(move || {
                let base = chunk_idx * chunk_len;
                let mut buffers = ShardBuffers::new(num_shards);
                for (offset, slot) in slots.iter_mut().enumerate() {
                    *slot = Some(eval(base + offset, &mut buffers));
                }
                *worker_slot = Some(buffers);
            });
        }
    });
    (
        out.into_iter()
            .map(|slot| slot.expect("every work item was executed"))
            .collect(),
        ShardedBuffers {
            num_shards,
            workers: worker_slots
                .into_iter()
                .map(|slot| slot.expect("every worker chunk produced buffers"))
                .collect(),
        },
    )
}

/// Partition-parallel shard-and-merge: routes every item to the shard chosen
/// by `assign`, then merges each shard with `merge(shard_index, shard_items)`.
///
/// Determinism contract: items are scanned in contiguous input chunks (one per
/// worker) into [`ShardBuffers`] and merged through [`ShardedBuffers::merge`]
/// — the same back half the streaming shuffle uses — so every shard sees its
/// items **in input order** regardless of `threads` and the merge output is
/// bit-identical at every thread count.  `assign` must return a value
/// `< num_shards` (it is clamped defensively).  Items are moved, never cloned,
/// end to end.
///
/// This is the gather-side sharding primitive (map output already materialised
/// into one vector); [`sharded_emit`] is the streaming variant that never
/// materialises that vector.
pub fn shard_merge<I, T, A, M>(
    items: Vec<I>,
    num_shards: usize,
    threads: usize,
    assign: A,
    merge: M,
) -> Vec<T>
where
    I: Send,
    T: Send,
    A: Fn(&I) -> usize + Sync,
    M: Fn(usize, Vec<I>) -> T + Sync,
{
    let num_shards = num_shards.max(1);
    let count = items.len();
    let threads = threads.clamp(1, count.max(1));

    // Phase 1: each worker buckets one contiguous chunk of the input into its
    // private ShardBuffers, preserving input order within the chunk.
    let chunk_len = count.div_ceil(threads);
    let chunks = split_into_chunks(items, chunk_len);
    let workers: Vec<ShardBuffers<I>> = owned_indexed_map(chunks, threads, |_, chunk| {
        let mut buffers = ShardBuffers::new(num_shards);
        for item in chunk {
            let shard = assign(&item);
            buffers.emit(shard, item);
        }
        buffers
    });

    // Phase 2: the shared reducer-ready barrier + per-shard merge.
    ShardedBuffers {
        num_shards,
        workers,
    }
    .merge(threads, merge)
}

/// Like [`replicate_map`] but for in-place mutation of `count` existing items:
/// `update(i, &mut items[i], scratch)`.  Used by delta maintenance, where each
/// maintained resample is updated rather than recomputed.
pub fn replicate_update<T, S, G, F>(items: &mut [T], threads: usize, make_scratch: G, update: F)
where
    T: Send,
    S: Send,
    G: Fn() -> S + Sync,
    F: Fn(usize, &mut T, &mut S) + Sync,
{
    let count = items.len();
    let threads = threads.clamp(1, count.max(1));
    if threads <= 1 {
        let mut scratch = make_scratch();
        for (i, item) in items.iter_mut().enumerate() {
            update(i, item, &mut scratch);
        }
        return;
    }
    let chunk_len = count.div_ceil(threads);
    std::thread::scope(|scope| {
        for (chunk_idx, chunk) in items.chunks_mut(chunk_len).enumerate() {
            let make_scratch = &make_scratch;
            let update = &update;
            scope.spawn(move || {
                let base = chunk_idx * chunk_len;
                let mut scratch = make_scratch();
                for (offset, item) in chunk.iter_mut().enumerate() {
                    update(base + offset, item, &mut scratch);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_parallelism_bounds() {
        assert_eq!(resolve_parallelism(Some(4)), 4);
        assert_eq!(resolve_parallelism(Some(0)), 1);
        assert!(resolve_parallelism(None) >= 1);
    }

    #[test]
    fn workers_for_gates_small_work() {
        assert_eq!(
            workers_for(10, Some(8)),
            1,
            "tiny work stays single-threaded"
        );
        assert_eq!(workers_for(MIN_PARALLEL_WORK, Some(8)), 8);
        assert!(workers_for(MIN_PARALLEL_WORK, None) >= 1);
    }

    #[test]
    fn replicate_map_is_identical_across_thread_counts() {
        let eval = |i: usize, _: &mut ()| (i as f64).sqrt();
        let expected: Vec<f64> = (0..1000).map(|i| (i as f64).sqrt()).collect();
        for threads in [1, 2, 3, 8, 64] {
            assert_eq!(replicate_map(1000, threads, || (), eval), expected);
        }
        assert!(replicate_map(0, 4, || (), eval).is_empty());
    }

    #[test]
    fn replicate_update_touches_every_item_once() {
        let mut items: Vec<u64> = (0..997).collect();
        replicate_update(&mut items, 8, || (), |i, item, _| *item += i as u64);
        assert!(items.iter().enumerate().all(|(i, &v)| v == 2 * i as u64));
    }

    #[test]
    fn indexed_map_returns_non_copy_results_in_order() {
        let out: Vec<String> = indexed_map(100, 5, || (), |i, ()| format!("item-{i}"));
        assert!(out
            .iter()
            .enumerate()
            .all(|(i, s)| s == &format!("item-{i}")));
    }

    #[test]
    fn owned_indexed_map_is_identical_across_thread_counts() {
        let items: Vec<String> = (0..503).map(|i| format!("v{i}")).collect();
        let expected: Vec<String> = items.iter().map(|s| format!("{s}!")).collect();
        for threads in [1, 2, 3, 8, 64] {
            let got = owned_indexed_map(items.clone(), threads, |_, s: String| format!("{s}!"));
            assert_eq!(got, expected, "threads {threads}");
        }
        assert!(owned_indexed_map(Vec::<u8>::new(), 4, |_, b| b).is_empty());
    }

    #[test]
    fn shard_merge_preserves_input_order_within_each_shard() {
        let items: Vec<u64> = (0..10_000).collect();
        let reference = shard_merge(items.clone(), 7, 1, |&x| (x % 7) as usize, |s, v| (s, v));
        for threads in [2, 3, 8, 64] {
            let sharded = shard_merge(
                items.clone(),
                7,
                threads,
                |&x| (x % 7) as usize,
                |s, v| (s, v),
            );
            assert_eq!(sharded, reference, "threads {threads}");
        }
        // Within every shard, items appear in input (ascending) order.
        for (shard, values) in &reference {
            assert!(values.windows(2).all(|w| w[0] < w[1]));
            assert!(values.iter().all(|v| (*v % 7) as usize == *shard));
        }
        let total: usize = reference.iter().map(|(_, v)| v.len()).sum();
        assert_eq!(total, 10_000);
    }

    #[test]
    fn shard_merge_clamps_out_of_range_shards_and_empty_input() {
        let out = shard_merge(vec![1u8, 2, 3], 2, 4, |_| 99, |s, v: Vec<u8>| (s, v.len()));
        assert_eq!(
            out,
            vec![(0, 0), (1, 3)],
            "out-of-range assign clamps to last shard"
        );
        let empty = shard_merge(Vec::<u8>::new(), 3, 4, |_| 0, |s, v: Vec<u8>| (s, v.len()));
        assert_eq!(empty, vec![(0, 0), (1, 0), (2, 0)]);
    }

    #[test]
    fn sharded_emit_matches_shard_merge_at_every_thread_count() {
        // The same logical routing through both primitives must agree bitwise:
        // shard_merge over the materialised items vs sharded_emit generating
        // the items in place.
        let n = 9_973usize;
        let gen = |i: usize| -> (u64, String) { ((i as u64) % 11, format!("v{i}")) };
        let items: Vec<(u64, String)> = (0..n).map(gen).collect();
        let reference = shard_merge(items, 5, 1, |(k, _)| (*k % 5) as usize, |s, v| (s, v));
        for threads in [1usize, 2, 3, 8, 64] {
            let (results, buffers) = sharded_emit(n, 5, threads, |i, buf| {
                let (k, v) = gen(i);
                buf.emit((k % 5) as usize, (k, v));
                i
            });
            assert_eq!(results, (0..n).collect::<Vec<_>>(), "threads {threads}");
            assert_eq!(buffers.num_shards(), 5);
            assert_eq!(buffers.total_items(), n as u64);
            let merged = buffers.merge(threads, |s, v| (s, v));
            assert_eq!(merged, reference, "threads {threads}");
        }
    }

    #[test]
    fn sharded_emit_handles_empty_work_and_clamps_shards() {
        let (results, buffers) = sharded_emit::<u8, (), _>(0, 3, 4, |_, _| ());
        assert!(results.is_empty());
        assert_eq!(buffers.total_items(), 0);
        assert_eq!(buffers.merge(4, |s, v: Vec<u8>| (s, v.len())).len(), 3);

        // Out-of-range emission clamps to the last shard, like shard_merge.
        let (_, buffers) = sharded_emit(3, 2, 1, |i, buf: &mut ShardBuffers<usize>| {
            buf.emit(99, i);
        });
        let merged = buffers.merge(1, |s, v: Vec<usize>| (s, v));
        assert_eq!(merged, vec![(0, vec![]), (1, vec![0, 1, 2])]);
    }

    #[test]
    fn sharded_emit_items_not_multiple_of_threads() {
        // count not divisible by threads: trailing short chunk still produces
        // its buffers and ordering holds.
        let (results, buffers) = sharded_emit(10, 3, 4, |i, buf| {
            buf.emit(i % 3, i);
            i * 2
        });
        assert_eq!(results, (0..10).map(|i| i * 2).collect::<Vec<_>>());
        let merged = buffers.merge(2, |s, v: Vec<usize>| (s, v));
        assert_eq!(merged[0], (0, vec![0, 3, 6, 9]));
        assert_eq!(merged[1], (1, vec![1, 4, 7]));
        assert_eq!(merged[2], (2, vec![2, 5, 8]));
    }

    #[test]
    fn from_workers_matches_sharded_emit_per_task_buffers() {
        // One buffer set per task (the fault-tolerant round loop's shape)
        // reassembled in task order merges bit-identically to sharded_emit.
        let (_, reference) = sharded_emit(10, 3, 4, |i, buf: &mut ShardBuffers<usize>| {
            buf.emit(i % 3, i);
        });
        let per_task: Vec<ShardBuffers<usize>> = (0..10)
            .map(|i| {
                let mut buf = ShardBuffers::new(3);
                buf.emit(i % 3, i);
                buf
            })
            .collect();
        let rebuilt = ShardedBuffers::from_workers(3, per_task);
        assert_eq!(rebuilt.total_items(), 10);
        let a = reference.merge(2, |s, v: Vec<usize>| (s, v));
        let b = rebuilt.merge(2, |s, v: Vec<usize>| (s, v));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "same shard count")]
    fn from_workers_rejects_mismatched_shard_counts() {
        let _ = ShardedBuffers::from_workers(3, vec![ShardBuffers::<u8>::new(2)]);
    }

    #[test]
    fn checkpoint_rollback_restores_buffers_exactly() {
        let mut buffers = ShardBuffers::new(3);
        buffers.emit(0, 10u32);
        buffers.emit(2, 20);
        let checkpoint = buffers.checkpoint();
        buffers.emit(0, 30);
        buffers.emit(1, 40);
        buffers.emit(2, 50);
        assert_eq!(buffers.emitted(), 5);
        buffers.rollback(&checkpoint);
        assert_eq!(buffers.emitted(), 2, "emitted count restored");
        let merged = ShardedBuffers::from_workers(3, vec![buffers]).merge(1, |s, v| (s, v));
        assert_eq!(
            merged,
            vec![(0, vec![10]), (1, vec![]), (2, vec![20])],
            "bucket contents restored exactly"
        );
    }

    #[test]
    fn rollback_at_empty_checkpoint_empties_the_buffers() {
        let mut buffers = ShardBuffers::<u8>::new(2);
        let checkpoint = buffers.checkpoint();
        buffers.emit(0, 1);
        buffers.emit(1, 2);
        buffers.rollback(&checkpoint);
        assert_eq!(buffers.emitted(), 0);
        let merged = ShardedBuffers::from_workers(2, vec![buffers]).merge(1, |s, v| (s, v));
        assert_eq!(merged, vec![(0, Vec::<u8>::new()), (1, Vec::new())]);
    }

    #[test]
    #[should_panic(expected = "same shard count")]
    fn rollback_rejects_foreign_checkpoint() {
        let other = ShardBuffers::<u8>::new(2).checkpoint();
        ShardBuffers::<u8>::new(3).rollback(&other);
    }

    #[test]
    fn scratch_is_per_worker() {
        // Each worker's scratch accumulates only its own chunk; the sum across
        // replicates must still cover every index exactly once.
        let vals = replicate_map(100, 7, Vec::<usize>::new, |i, seen| {
            seen.push(i);
            i as f64
        });
        let total: f64 = vals.iter().sum();
        assert_eq!(total, (0..100).sum::<usize>() as f64);
    }
}
