//! # earl-parallel
//!
//! The scoped fork-join executor the whole workspace runs on.
//!
//! All hot paths — Monte-Carlo bootstrap replicates, block bootstrap,
//! jackknife, delta-maintained resample updates, and MapReduce map/reduce
//! tasks — reduce to the same shape: evaluate `count` independent work items,
//! each identified by its index, where every worker thread needs a private
//! scratch state (reusable buffers and nothing else).  This crate provides
//! that shape once, over `std::thread::scope` — no dependency on an external
//! thread-pool crate, no per-item allocation, and results that are
//! **bit-identical for every thread count** because item `i` depends only on
//! `i` (statistical callers derive per-replicate RNG streams from
//! `earl_bootstrap::rng::replicate_rng`).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

/// Resolves a requested worker count: `None` means all available cores.
pub fn resolve_parallelism(requested: Option<usize>) -> usize {
    match requested {
        Some(n) => n.max(1),
        None => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

/// Below this many scalar operations a fork-join is slower than just doing the
/// work; callers use it to fall back to single-threaded execution.
pub const MIN_PARALLEL_WORK: usize = 1 << 15;

/// The one gating policy for worker counts: single-threaded when the total
/// scalar work is too small to amortise a fork-join, otherwise the requested
/// parallelism (`None` = all cores).
pub fn workers_for(total_work: usize, requested: Option<usize>) -> usize {
    if total_work < MIN_PARALLEL_WORK {
        1
    } else {
        resolve_parallelism(requested)
    }
}

/// Evaluates `count` independent work items, splitting them into contiguous
/// chunks over `threads` scoped workers.  Each worker builds one scratch state
/// with `make_scratch` and reuses it for all of its items; `eval(i, scratch)`
/// must depend only on `i` and the scratch contents it itself wrote.
///
/// Returns the results in index order.  With `threads <= 1` no thread is
/// spawned at all.  This is the one fork-join primitive the whole workspace
/// executes on — bootstrap replicates and MapReduce tasks alike.
pub fn indexed_map<T, S, G, F>(count: usize, threads: usize, make_scratch: G, eval: F) -> Vec<T>
where
    T: Send,
    S: Send,
    G: Fn() -> S + Sync,
    F: Fn(usize, &mut S) -> T + Sync,
{
    let mut out: Vec<Option<T>> = std::iter::repeat_with(|| None).take(count).collect();
    let threads = threads.clamp(1, count.max(1));
    if threads <= 1 {
        let mut scratch = make_scratch();
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = Some(eval(i, &mut scratch));
        }
    } else {
        let chunk_len = count.div_ceil(threads);
        std::thread::scope(|scope| {
            for (chunk_idx, slots) in out.chunks_mut(chunk_len).enumerate() {
                let make_scratch = &make_scratch;
                let eval = &eval;
                scope.spawn(move || {
                    let base = chunk_idx * chunk_len;
                    let mut scratch = make_scratch();
                    for (offset, slot) in slots.iter_mut().enumerate() {
                        *slot = Some(eval(base + offset, &mut scratch));
                    }
                });
            }
        });
    }
    out.into_iter()
        .map(|slot| slot.expect("every work item was executed"))
        .collect()
}

/// [`indexed_map`] specialised to replicate evaluation (one `f64` per
/// replicate).
pub fn replicate_map<S, G, F>(count: usize, threads: usize, make_scratch: G, eval: F) -> Vec<f64>
where
    S: Send,
    G: Fn() -> S + Sync,
    F: Fn(usize, &mut S) -> f64 + Sync,
{
    indexed_map(count, threads, make_scratch, eval)
}

/// Like [`replicate_map`] but for in-place mutation of `count` existing items:
/// `update(i, &mut items[i], scratch)`.  Used by delta maintenance, where each
/// maintained resample is updated rather than recomputed.
pub fn replicate_update<T, S, G, F>(items: &mut [T], threads: usize, make_scratch: G, update: F)
where
    T: Send,
    S: Send,
    G: Fn() -> S + Sync,
    F: Fn(usize, &mut T, &mut S) + Sync,
{
    let count = items.len();
    let threads = threads.clamp(1, count.max(1));
    if threads <= 1 {
        let mut scratch = make_scratch();
        for (i, item) in items.iter_mut().enumerate() {
            update(i, item, &mut scratch);
        }
        return;
    }
    let chunk_len = count.div_ceil(threads);
    std::thread::scope(|scope| {
        for (chunk_idx, chunk) in items.chunks_mut(chunk_len).enumerate() {
            let make_scratch = &make_scratch;
            let update = &update;
            scope.spawn(move || {
                let base = chunk_idx * chunk_len;
                let mut scratch = make_scratch();
                for (offset, item) in chunk.iter_mut().enumerate() {
                    update(base + offset, item, &mut scratch);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_parallelism_bounds() {
        assert_eq!(resolve_parallelism(Some(4)), 4);
        assert_eq!(resolve_parallelism(Some(0)), 1);
        assert!(resolve_parallelism(None) >= 1);
    }

    #[test]
    fn workers_for_gates_small_work() {
        assert_eq!(
            workers_for(10, Some(8)),
            1,
            "tiny work stays single-threaded"
        );
        assert_eq!(workers_for(MIN_PARALLEL_WORK, Some(8)), 8);
        assert!(workers_for(MIN_PARALLEL_WORK, None) >= 1);
    }

    #[test]
    fn replicate_map_is_identical_across_thread_counts() {
        let eval = |i: usize, _: &mut ()| (i as f64).sqrt();
        let expected: Vec<f64> = (0..1000).map(|i| (i as f64).sqrt()).collect();
        for threads in [1, 2, 3, 8, 64] {
            assert_eq!(replicate_map(1000, threads, || (), eval), expected);
        }
        assert!(replicate_map(0, 4, || (), eval).is_empty());
    }

    #[test]
    fn replicate_update_touches_every_item_once() {
        let mut items: Vec<u64> = (0..997).collect();
        replicate_update(&mut items, 8, || (), |i, item, _| *item += i as u64);
        assert!(items.iter().enumerate().all(|(i, &v)| v == 2 * i as u64));
    }

    #[test]
    fn indexed_map_returns_non_copy_results_in_order() {
        let out: Vec<String> = indexed_map(100, 5, || (), |i, ()| format!("item-{i}"));
        assert!(out
            .iter()
            .enumerate()
            .all(|(i, s)| s == &format!("item-{i}")));
    }

    #[test]
    fn scratch_is_per_worker() {
        // Each worker's scratch accumulates only its own chunk; the sum across
        // replicates must still cover every index exactly once.
        let vals = replicate_map(100, 7, Vec::<usize>::new, |i, seen| {
            seen.push(i);
            i as f64
        });
        let total: f64 = vals.iter().sum();
        assert_eq!(total, (0..100).sum::<usize>() as f64);
    }
}
