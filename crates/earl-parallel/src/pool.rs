//! A small fixed pool of OS threads for long-lived services.
//!
//! The fork-join primitives in this crate spawn scoped threads per call —
//! right for a single job, wrong for a resident service that runs *many*
//! jobs over its lifetime.  [`WorkerPool`] keeps a fixed set of named threads
//! alive and feeds them boxed closures over a channel, so concurrent jobs
//! share the same executor capacity instead of each spawning their own.
//!
//! The pool is deliberately minimal: FIFO dispatch, no work stealing, no
//! result plumbing (jobs communicate through their own channels).  Fairness
//! and priorities live in the caller's admission queue — by the time a job
//! reaches the pool it has already been scheduled.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

type PoolJob = Box<dyn FnOnce() + Send + 'static>;

/// A fixed set of long-lived worker threads executing boxed closures in FIFO
/// submission order.  Dropping the pool closes the queue and joins every
/// worker after it finishes its in-flight job.
#[derive(Debug)]
pub struct WorkerPool {
    sender: Option<Sender<PoolJob>>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `threads` workers (clamped to at least one).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let (sender, receiver) = channel::<PoolJob>();
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..threads)
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                std::thread::Builder::new()
                    .name(format!("earl-pool-{i}"))
                    .spawn(move || worker_loop(&receiver))
                    .expect("spawn pool worker thread")
            })
            .collect();
        Self {
            sender: Some(sender),
            workers,
        }
    }

    /// Number of worker threads — the pool's concurrent job capacity.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Submits a job.  It runs on the first idle worker; with every worker
    /// busy it waits in the channel (the caller's admission queue is expected
    /// to bound how many jobs are in flight).
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        self.sender
            .as_ref()
            .expect("pool is alive until dropped")
            .send(Box::new(job))
            .expect("pool workers outlive the sender");
    }
}

fn worker_loop(receiver: &Mutex<Receiver<PoolJob>>) {
    loop {
        // Hold the lock only while receiving: a panicking job must not poison
        // the queue for its sibling workers (the guard is dropped before the
        // job runs, and a panic then kills only this worker's thread).
        let job = match receiver.lock() {
            Ok(guard) => guard.recv(),
            Err(_) => break,
        };
        match job {
            Ok(job) => job(),
            Err(_) => break, // sender dropped: pool is shutting down
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        drop(self.sender.take());
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc::channel;

    #[test]
    fn executes_every_job_across_all_workers() {
        let pool = WorkerPool::new(4);
        assert_eq!(pool.threads(), 4);
        let counter = Arc::new(AtomicUsize::new(0));
        let (done_tx, done_rx) = channel();
        for _ in 0..100 {
            let counter = Arc::clone(&counter);
            let done_tx = done_tx.clone();
            pool.execute(move || {
                counter.fetch_add(1, Ordering::SeqCst);
                done_tx.send(()).unwrap();
            });
        }
        for _ in 0..100 {
            done_rx.recv().expect("job completed");
        }
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn drop_joins_after_in_flight_jobs_finish() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = WorkerPool::new(2);
            for _ in 0..10 {
                let counter = Arc::clone(&counter);
                pool.execute(move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        } // drop: queue closes, workers drain and join
        assert_eq!(counter.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn thread_count_is_clamped_to_at_least_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.threads(), 1);
        let (tx, rx) = channel();
        pool.execute(move || tx.send(7u8).unwrap());
        assert_eq!(rx.recv().unwrap(), 7);
    }
}
