//! Disk layouts: how generated values are ordered when written to the DFS.
//!
//! The paper's discussion of block sampling (§3.3, §7) hinges on the physical
//! layout: when records are clustered on disk by value, block-level samples are
//! biased; when the layout is random, block samples behave like uniform
//! samples.  The experiments therefore need both layouts.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// The order in which values are written to disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Layout {
    /// Values are written in random order (the "random layout" case where block
    /// sampling is as good as uniform sampling).
    Shuffled,
    /// Values are written sorted ascending — the worst case for block sampling
    /// ("data is clustered on a particular attribute").
    ClusteredAscending,
    /// Values are written exactly in generation order.
    AsGenerated,
}

/// Applies a layout to a vector of values.
pub fn apply_layout(mut values: Vec<f64>, layout: Layout, seed: u64) -> Vec<f64> {
    match layout {
        Layout::Shuffled => {
            let mut rng = StdRng::seed_from_u64(seed);
            values.shuffle(&mut rng);
            values
        }
        Layout::ClusteredAscending => {
            values.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            values
        }
        Layout::AsGenerated => values,
    }
}

/// A simple measure of how clustered a layout is: the average absolute
/// difference between consecutive values, normalised by the overall standard
/// deviation.  Sorted data scores near 0; shuffled data scores near `2/√π ·
/// √2 ≈ 1.13` for normal data.
pub fn adjacency_dispersion(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    let sd = (values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / values.len() as f64).sqrt();
    if sd == 0.0 {
        return 0.0;
    }
    let adjacent: f64 =
        values.windows(2).map(|w| (w[1] - w[0]).abs()).sum::<f64>() / (values.len() - 1) as f64;
    adjacent / sd
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layouts_preserve_the_multiset() {
        let values: Vec<f64> = (0..1000).map(|i| (i % 97) as f64).collect();
        for layout in [
            Layout::Shuffled,
            Layout::ClusteredAscending,
            Layout::AsGenerated,
        ] {
            let mut out = apply_layout(values.clone(), layout, 1);
            out.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let mut expected = values.clone();
            expected.sort_by(|a, b| a.partial_cmp(b).unwrap());
            assert_eq!(out, expected, "{layout:?} must not lose values");
        }
    }

    #[test]
    fn clustered_layout_is_sorted_and_shuffled_is_not() {
        let values: Vec<f64> = (0..500).rev().map(|i| i as f64).collect();
        let clustered = apply_layout(values.clone(), Layout::ClusteredAscending, 1);
        assert!(clustered.windows(2).all(|w| w[0] <= w[1]));
        let shuffled = apply_layout(values.clone(), Layout::Shuffled, 1);
        assert!(shuffled.windows(2).any(|w| w[0] > w[1]));
        assert_eq!(apply_layout(values.clone(), Layout::AsGenerated, 1), values);
    }

    #[test]
    fn dispersion_separates_the_layouts() {
        let values: Vec<f64> = (0..2000).map(|i| ((i * 7919) % 2000) as f64).collect();
        let clustered =
            adjacency_dispersion(&apply_layout(values.clone(), Layout::ClusteredAscending, 1));
        let shuffled = adjacency_dispersion(&apply_layout(values, Layout::Shuffled, 1));
        assert!(
            clustered < 0.05,
            "sorted data has tiny adjacent differences: {clustered}"
        );
        assert!(
            shuffled > 0.5,
            "shuffled data has large adjacent differences: {shuffled}"
        );
        assert_eq!(adjacency_dispersion(&[1.0]), 0.0);
        assert_eq!(adjacency_dispersion(&[3.0, 3.0, 3.0]), 0.0);
    }
}
