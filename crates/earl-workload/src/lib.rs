//! # earl-workload
//!
//! Synthetic data generation for the EARL reproduction.  The paper's
//! experiments (§6) run on "a synthetically generated data-set" so the accuracy
//! of EARL's estimates can be validated against known ground truth; this crate
//! provides the corresponding generators:
//!
//! * [`generators`] — value distributions (uniform, normal, log-normal,
//!   exponential, Zipf) with known population statistics;
//! * [`layout`] — disk layouts (shuffled vs clustered-by-value), used to show
//!   when naive block sampling breaks;
//! * [`dataset`] — builders that materialise generated records as
//!   newline-delimited files in the simulated DFS (plain values, key\tvalue
//!   pairs, K-Means points);
//! * [`grouped`] — grouped (`key<TAB>value`, interleaved groups with exact
//!   per-group truth) and categorical (weighted labels with exact counts)
//!   datasets for the grouped-aggregate and proportion workloads;
//! * [`paired`] — paired `x<TAB>y`, weighted `value<TAB>weight` and grouped
//!   `key<TAB>value<TAB>weight` datasets with exact truth (covariance,
//!   correlation, slope, ratio, weighted means) for the k-ary linear-form
//!   workloads;
//! * [`kmeans_data`] — Gaussian-mixture point clouds with known centroids for
//!   the Fig. 7 experiment;
//! * [`scaling`] — helpers for the "nominal data size" mode used to reproduce
//!   the 100 GB-scale figures on laptop-scale materialised data.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod dataset;
pub mod generators;
pub mod grouped;
pub mod kmeans_data;
pub mod layout;
pub mod paired;
pub mod scaling;

pub use dataset::{DatasetBuilder, DatasetSpec};
pub use generators::{Distribution, ValueGenerator};
pub use grouped::{
    CategoricalDataset, CategoricalSpec, GroupSpec, GroupTruth, GroupedDataset, GroupedSpec,
};
pub use kmeans_data::{KmeansDataset, KmeansSpec};
pub use paired::{
    paired_truth, GroupedWeightedDataset, GroupedWeightedSpec, PairedDataset, PairedSpec,
    PairedTruth, WeightedDataset, WeightedGroupSpec, WeightedSpec, WeightedTruth,
};
pub use scaling::NominalSize;
