//! Nominal-size scaling for the 100 GB-class experiments.
//!
//! The paper's Figures 5–7, 9 and 10 sweep dataset sizes from below 1 GB to
//! beyond 100 GB.  Materialising 100 GB inside a unit-testable simulator is
//! pointless — the statistical behaviour of EARL depends on the *number of
//! sampled records*, while the cost of stock Hadoop depends on the *bytes
//! scanned*, which the cost model charges analytically.  A [`NominalSize`]
//! couples the two: a laptop-scale materialised record count plus the nominal
//! byte size the experiment pretends the file has.  The experiment harness
//! scales charged I/O by `scale_factor()` so processing times reflect the
//! nominal size, while all statistics run on the materialised records.
//!
//! This substitution is documented in `DESIGN.md`; it preserves who-wins and
//! crossover shapes because both systems' costs are scaled by the same factor.

use serde::{Deserialize, Serialize};

const GIB: f64 = 1024.0 * 1024.0 * 1024.0;

/// A dataset size expressed both as materialised records and as the nominal
/// on-disk size the experiment models.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NominalSize {
    /// Records actually generated and written to the simulated DFS.
    pub materialised_records: u64,
    /// Average bytes per record in the materialised file.
    pub bytes_per_record: u64,
    /// The nominal total size in bytes the experiment reports (e.g. 100 GB).
    pub nominal_bytes: u64,
}

impl NominalSize {
    /// Creates a nominal size of `gib` GiB modelled by `materialised_records`
    /// records of roughly `bytes_per_record` bytes.
    pub fn gib(gib: f64, materialised_records: u64, bytes_per_record: u64) -> Self {
        Self {
            materialised_records,
            bytes_per_record: bytes_per_record.max(1),
            nominal_bytes: (gib * GIB) as u64,
        }
    }

    /// The number of records the nominal file would contain.
    pub fn nominal_records(&self) -> u64 {
        self.nominal_bytes / self.bytes_per_record
    }

    /// The factor by which materialised I/O costs must be multiplied so that a
    /// full scan of the materialised file costs what a full scan of the nominal
    /// file would.
    pub fn scale_factor(&self) -> f64 {
        let materialised_bytes = (self.materialised_records * self.bytes_per_record).max(1);
        self.nominal_bytes as f64 / materialised_bytes as f64
    }

    /// The nominal size in GiB.
    pub fn nominal_gib(&self) -> f64 {
        self.nominal_bytes as f64 / GIB
    }

    /// The fraction of the nominal file a sample of `records` records
    /// represents.
    pub fn sample_fraction(&self, records: u64) -> f64 {
        let total = self.nominal_records().max(1);
        records as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_factor_reflects_the_ratio_of_sizes() {
        let size = NominalSize::gib(100.0, 1_000_000, 100);
        // Materialised: 100 MB; nominal: 100 GiB → factor ≈ 1073.7
        assert!((size.scale_factor() - 100.0 * GIB / 1e8).abs() < 1.0);
        assert!((size.nominal_gib() - 100.0).abs() < 1e-9);
        assert_eq!(size.nominal_records(), (100.0 * GIB) as u64 / 100);
    }

    #[test]
    fn sample_fraction_is_relative_to_the_nominal_file() {
        let size = NominalSize::gib(10.0, 100_000, 100);
        let one_percent = size.nominal_records() / 100;
        assert!((size.sample_fraction(one_percent) - 0.01).abs() < 1e-6);
    }

    #[test]
    fn degenerate_inputs_are_safe() {
        let size = NominalSize::gib(1.0, 0, 0);
        assert!(size.scale_factor() > 0.0);
        assert!(size.sample_fraction(10) > 0.0);
    }
}
