//! Grouped (`key<TAB>value`) and categorical (label-per-line) dataset
//! generators with known per-group / per-category ground truth — the inputs
//! of the grouped per-key and proportion workloads.

use std::collections::BTreeMap;

use earl_dfs::{DfsPath, FileStatus};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::dataset::DatasetBuilder;
use crate::generators::{Distribution, ValueGenerator};

/// One group of a [`GroupedSpec`]: its key, record count and value
/// distribution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupSpec {
    /// The group key written in front of every value.
    pub key: String,
    /// Records generated for this group.
    pub num_records: u64,
    /// The group's value distribution.
    pub distribution: Distribution,
}

/// Specification of a grouped `key<TAB>value` dataset.  Records of all groups
/// are interleaved by a seeded shuffle so uniform record sampling sees every
/// group at its population share.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupedSpec {
    /// The groups.
    pub groups: Vec<GroupSpec>,
    /// RNG seed driving value generation and the interleaving shuffle.
    pub seed: u64,
}

impl GroupedSpec {
    /// `num_groups` groups `g0 … g{n-1}` of `records_per_group` normal values;
    /// group `i` has mean `base_mean * (i + 1)` and the given relative spread.
    pub fn normal_groups(
        num_groups: usize,
        records_per_group: u64,
        base_mean: f64,
        relative_sd: f64,
        seed: u64,
    ) -> Self {
        Self {
            groups: (0..num_groups)
                .map(|i| {
                    let mean = base_mean * (i + 1) as f64;
                    GroupSpec {
                        key: format!("g{i}"),
                        num_records: records_per_group,
                        distribution: Distribution::Normal {
                            mean,
                            std_dev: mean * relative_sd,
                        },
                    }
                })
                .collect(),
            seed,
        }
    }

    /// Total records across all groups.
    pub fn total_records(&self) -> u64 {
        self.groups.iter().map(|g| g.num_records).sum()
    }
}

/// Exact per-group ground truth of a generated grouped dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupTruth {
    /// Records written for the group.
    pub count: u64,
    /// Exact mean of the group's written values.
    pub mean: f64,
    /// Exact sum of the group's written values.
    pub sum: f64,
}

/// A grouped dataset materialised in the DFS with its ground truth.
#[derive(Debug, Clone)]
pub struct GroupedDataset {
    /// Where the data lives.
    pub path: DfsPath,
    /// The DFS file status after writing.
    pub status: FileStatus,
    /// Exact ground truth per group key.
    pub truth: BTreeMap<String, GroupTruth>,
}

/// Specification of a categorical dataset: one label per line, drawn from
/// weighted categories.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CategoricalSpec {
    /// `(label, weight)` pairs; weights are normalised internally.
    pub categories: Vec<(String, f64)>,
    /// Number of records.
    pub num_records: u64,
    /// RNG seed.
    pub seed: u64,
}

/// A categorical dataset materialised in the DFS with its exact label counts.
#[derive(Debug, Clone)]
pub struct CategoricalDataset {
    /// Where the data lives.
    pub path: DfsPath,
    /// The DFS file status after writing.
    pub status: FileStatus,
    /// Exact count of records written per label.
    pub counts: BTreeMap<String, u64>,
}

impl CategoricalDataset {
    /// The exact proportion of `label` among the written records.
    pub fn true_proportion(&self, label: &str) -> f64 {
        let total: u64 = self.counts.values().sum();
        if total == 0 {
            return 0.0;
        }
        *self.counts.get(label).unwrap_or(&0) as f64 / total as f64
    }
}

impl DatasetBuilder {
    /// Generates and writes a grouped `key<TAB>value` dataset, interleaving
    /// all groups' records with a seeded shuffle, and returns the exact
    /// per-group ground truth.
    pub fn build_grouped(
        &self,
        path: impl Into<DfsPath>,
        spec: &GroupedSpec,
    ) -> earl_dfs::Result<GroupedDataset> {
        let path = path.into();
        let mut lines: Vec<String> = Vec::with_capacity(spec.total_records() as usize);
        let mut truth: BTreeMap<String, GroupTruth> = BTreeMap::new();
        for (i, group) in spec.groups.iter().enumerate() {
            let mut generator =
                ValueGenerator::new(group.distribution, spec.seed.wrapping_add(i as u64));
            let values = generator.take(group.num_records as usize);
            let sum: f64 = values.iter().sum();
            // Specs may repeat a key (e.g. two distributions feeding one
            // group): the ground truth merges, matching what the file holds.
            let entry = truth.entry(group.key.clone()).or_insert(GroupTruth {
                count: 0,
                mean: f64::NAN,
                sum: 0.0,
            });
            entry.count += group.num_records;
            entry.sum += sum;
            entry.mean = if entry.count == 0 {
                f64::NAN
            } else {
                entry.sum / entry.count as f64
            };
            lines.extend(values.iter().map(|v| format!("{}\t{v}", group.key)));
        }
        let mut rng = StdRng::seed_from_u64(spec.seed ^ 0x6e7e_11ea_7e5e_eded);
        lines.shuffle(&mut rng);
        let status = self.dfs().write_lines(path.clone(), lines)?;
        Ok(GroupedDataset {
            path,
            status,
            truth,
        })
    }

    /// Generates and writes a categorical dataset (one label per line) and
    /// returns the exact per-label counts.
    pub fn build_categorical(
        &self,
        path: impl Into<DfsPath>,
        spec: &CategoricalSpec,
    ) -> earl_dfs::Result<CategoricalDataset> {
        let path = path.into();
        assert!(
            !spec.categories.is_empty(),
            "CategoricalSpec needs at least one category"
        );
        let total_weight: f64 = spec.categories.iter().map(|(_, w)| w.max(0.0)).sum();
        assert!(
            total_weight > 0.0 && total_weight.is_finite(),
            "CategoricalSpec needs a positive, finite total weight (got {total_weight})"
        );
        let mut cdf = Vec::with_capacity(spec.categories.len());
        let mut acc = 0.0;
        for (label, weight) in &spec.categories {
            acc += weight.max(0.0) / total_weight;
            cdf.push((label.clone(), acc));
        }
        let mut rng = StdRng::seed_from_u64(spec.seed);
        let mut counts: BTreeMap<String, u64> = spec
            .categories
            .iter()
            .map(|(label, _)| (label.clone(), 0))
            .collect();
        let lines: Vec<String> = (0..spec.num_records)
            .map(|_| {
                let u: f64 = rng.gen();
                let label = cdf
                    .iter()
                    .find(|(_, c)| u < *c)
                    .map(|(l, _)| l.clone())
                    .unwrap_or_else(|| cdf.last().expect("at least one category").0.clone());
                *counts.get_mut(&label).expect("label registered") += 1;
                label
            })
            .collect();
        let status = self.dfs().write_lines(path.clone(), lines)?;
        Ok(CategoricalDataset {
            path,
            status,
            counts,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use earl_cluster::{Cluster, CostModel, Phase};
    use earl_dfs::{Dfs, DfsConfig};

    fn dfs() -> Dfs {
        let cluster = Cluster::builder()
            .nodes(3)
            .cost_model(CostModel::free())
            .build()
            .unwrap();
        Dfs::new(
            cluster,
            DfsConfig {
                block_size: 8192,
                replication: 2,
                io_chunk: 256,
            },
        )
        .unwrap()
    }

    #[test]
    fn grouped_dataset_interleaves_groups_with_exact_truth() {
        let builder = DatasetBuilder::new(dfs());
        let spec = GroupedSpec::normal_groups(4, 500, 100.0, 0.1, 7);
        assert_eq!(spec.total_records(), 2_000);
        let ds = builder.build_grouped("/grouped", &spec).unwrap();
        assert_eq!(ds.status.num_records, Some(2_000));
        assert_eq!(ds.truth.len(), 4);

        // Read back: every line is key\tvalue, per-group counts/means match.
        let lines = builder
            .dfs()
            .read_all_lines(Phase::Load, "/grouped")
            .unwrap();
        let mut counts: BTreeMap<String, (u64, f64)> = BTreeMap::new();
        for line in &lines {
            let (key, value) = line.split_once('\t').expect("keyed line");
            let entry = counts.entry(key.to_owned()).or_default();
            entry.0 += 1;
            entry.1 += value.parse::<f64>().unwrap();
        }
        for (key, truth) in &ds.truth {
            let (count, sum) = counts[key];
            assert_eq!(count, truth.count, "group {key}");
            assert!((sum - truth.sum).abs() < 1e-6 * truth.sum.abs().max(1.0));
            assert!((truth.mean - truth.sum / truth.count as f64).abs() < 1e-9);
        }

        // Interleaved, not clustered: the first group's records must not all
        // sit at the front.
        let first_key = lines[0].split_once('\t').unwrap().0.to_owned();
        let head_same = lines
            .iter()
            .take(500)
            .filter(|l| l.starts_with(&format!("{first_key}\t")))
            .count();
        assert!(head_same < 400, "shuffle must interleave groups");
    }

    #[test]
    fn grouped_generation_is_deterministic_per_seed() {
        let builder = DatasetBuilder::new(dfs());
        let spec = GroupedSpec::normal_groups(3, 100, 50.0, 0.2, 9);
        let a = builder.build_grouped("/a", &spec).unwrap();
        let b = builder.build_grouped("/b", &spec).unwrap();
        assert_eq!(a.truth, b.truth);
        let la = builder.dfs().read_all_lines(Phase::Load, "/a").unwrap();
        let lb = builder.dfs().read_all_lines(Phase::Load, "/b").unwrap();
        assert_eq!(la, lb);
    }

    #[test]
    fn duplicate_group_keys_merge_their_ground_truth() {
        let builder = DatasetBuilder::new(dfs());
        let spec = GroupedSpec {
            groups: vec![
                GroupSpec {
                    key: "a".into(),
                    num_records: 300,
                    distribution: crate::Distribution::Normal {
                        mean: 10.0,
                        std_dev: 1.0,
                    },
                },
                GroupSpec {
                    key: "a".into(),
                    num_records: 200,
                    distribution: crate::Distribution::Normal {
                        mean: 50.0,
                        std_dev: 1.0,
                    },
                },
            ],
            seed: 13,
        };
        let ds = builder.build_grouped("/dup", &spec).unwrap();
        let truth = &ds.truth["a"];
        assert_eq!(truth.count, 500, "both groups' records are counted");
        // The merged mean is the record-weighted mixture, matching the file.
        let lines = builder.dfs().read_all_lines(Phase::Load, "/dup").unwrap();
        let sum: f64 = lines
            .iter()
            .map(|l| l.split_once('\t').unwrap().1.parse::<f64>().unwrap())
            .sum();
        assert_eq!(lines.len(), 500);
        assert!((truth.sum - sum).abs() < 1e-6 * sum.abs());
        assert!((truth.mean - sum / 500.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive, finite total weight")]
    fn categorical_rejects_non_positive_weights() {
        DatasetBuilder::new(dfs())
            .build_categorical(
                "/bad",
                &CategoricalSpec {
                    categories: vec![("a".into(), 0.0), ("b".into(), -1.0)],
                    num_records: 10,
                    seed: 1,
                },
            )
            .unwrap();
    }

    #[test]
    #[should_panic(expected = "at least one category")]
    fn categorical_rejects_empty_categories() {
        DatasetBuilder::new(dfs())
            .build_categorical(
                "/bad",
                &CategoricalSpec {
                    categories: vec![],
                    num_records: 10,
                    seed: 1,
                },
            )
            .unwrap();
    }

    #[test]
    fn categorical_dataset_matches_requested_weights() {
        let builder = DatasetBuilder::new(dfs());
        let spec = CategoricalSpec {
            categories: vec![
                ("red".into(), 0.5),
                ("green".into(), 0.3),
                ("blue".into(), 0.2),
            ],
            num_records: 20_000,
            seed: 11,
        };
        let ds = builder.build_categorical("/cat", &spec).unwrap();
        assert_eq!(ds.counts.values().sum::<u64>(), 20_000);
        assert!((ds.true_proportion("red") - 0.5).abs() < 0.02);
        assert!((ds.true_proportion("green") - 0.3).abs() < 0.02);
        assert!((ds.true_proportion("blue") - 0.2).abs() < 0.02);
        assert_eq!(ds.true_proportion("missing"), 0.0);
        let lines = builder.dfs().read_all_lines(Phase::Load, "/cat").unwrap();
        assert!(lines
            .iter()
            .all(|l| ["red", "green", "blue"].contains(&l.as_str())));
    }
}
