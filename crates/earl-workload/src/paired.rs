//! Paired-column (`x<TAB>y`) and weighted (`value<TAB>weight`) dataset
//! generators with exact ground truth — the inputs of the k-ary linear-form
//! workloads (weighted mean, ratio, covariance, correlation, regression
//! slope).
//!
//! Truth is computed from the **written values**, not the distribution
//! parameters, so a test can demand tight agreement regardless of sampling
//! noise in the generator.

use std::collections::BTreeMap;

use earl_dfs::{DfsPath, FileStatus};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::dataset::DatasetBuilder;
use crate::generators::{Distribution, ValueGenerator};

/// Specification of a paired `x<TAB>y` dataset: `x` is drawn from a
/// distribution and `y = slope·x + intercept + noise`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PairedSpec {
    /// Number of `(x, y)` records.
    pub num_records: u64,
    /// Distribution of the `x` column.
    pub x: Distribution,
    /// True slope of the generating line.
    pub slope: f64,
    /// True intercept of the generating line.
    pub intercept: f64,
    /// Standard deviation of the Gaussian noise added to `y`.
    pub noise_sd: f64,
    /// RNG seed.
    pub seed: u64,
}

impl PairedSpec {
    /// A linear `y = slope·x + intercept + N(0, noise_sd²)` over normal `x`.
    pub fn linear(num_records: u64, slope: f64, intercept: f64, noise_sd: f64, seed: u64) -> Self {
        Self {
            num_records,
            x: Distribution::Normal {
                mean: 50.0,
                std_dev: 10.0,
            },
            slope,
            intercept,
            noise_sd,
            seed,
        }
    }
}

/// Exact statistics of the written `(x, y)` pairs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PairedTruth {
    /// Records written.
    pub count: u64,
    /// Exact mean of the `x` column.
    pub mean_x: f64,
    /// Exact mean of the `y` column.
    pub mean_y: f64,
    /// Exact sample covariance (n−1 denominator).
    pub covariance: f64,
    /// Exact Pearson correlation.
    pub correlation: f64,
    /// Exact OLS slope of `y` on `x`.
    pub slope: f64,
    /// Exact ratio of sums `Σx / Σy`.
    pub ratio: f64,
}

/// A paired dataset materialised in the DFS with its exact truth.
#[derive(Debug, Clone)]
pub struct PairedDataset {
    /// Where the data lives.
    pub path: DfsPath,
    /// The DFS file status after writing.
    pub status: FileStatus,
    /// Exact statistics of the written pairs.
    pub truth: PairedTruth,
}

/// Computes [`PairedTruth`] from interleaved `[x0, y0, …]` values with
/// centered (numerically stable) sums.
pub fn paired_truth(interleaved: &[f64]) -> PairedTruth {
    let n = interleaved.len() / 2;
    let mean_x = interleaved.iter().step_by(2).sum::<f64>() / n as f64;
    let mean_y = interleaved.iter().skip(1).step_by(2).sum::<f64>() / n as f64;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for pair in interleaved.chunks_exact(2) {
        let dx = pair[0] - mean_x;
        let dy = pair[1] - mean_y;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    PairedTruth {
        count: n as u64,
        mean_x,
        mean_y,
        covariance: sxy / (n as f64 - 1.0),
        correlation: sxy / (sxx.sqrt() * syy.sqrt()),
        slope: sxy / sxx,
        ratio: (mean_x * n as f64) / (mean_y * n as f64),
    }
}

/// Specification of a weighted `value<TAB>weight` dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WeightedSpec {
    /// Number of `(value, weight)` records.
    pub num_records: u64,
    /// Distribution of the value column.
    pub value: Distribution,
    /// Distribution of the weight column (use `Normal { mean: 0.0, std_dev:
    /// 0.0 }` to build a degenerate all-zero-weight column).
    pub weight: Distribution,
    /// RNG seed.
    pub seed: u64,
}

/// Exact statistics of the written `(value, weight)` records.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WeightedTruth {
    /// Records written.
    pub count: u64,
    /// Exact `Σw·x`.
    pub weighted_sum: f64,
    /// Exact `Σw`.
    pub weight_sum: f64,
    /// Exact weighted mean `Σwx / Σw` (NaN when the weights sum to zero).
    pub weighted_mean: f64,
}

/// A weighted dataset materialised in the DFS with its exact truth.
#[derive(Debug, Clone)]
pub struct WeightedDataset {
    /// Where the data lives.
    pub path: DfsPath,
    /// The DFS file status after writing.
    pub status: FileStatus,
    /// Exact statistics of the written records.
    pub truth: WeightedTruth,
}

/// One group of a [`GroupedWeightedSpec`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WeightedGroupSpec {
    /// The group key.
    pub key: String,
    /// Records generated for the group.
    pub num_records: u64,
    /// Value distribution.
    pub value: Distribution,
    /// Weight distribution.
    pub weight: Distribution,
}

/// Specification of a grouped `key<TAB>value<TAB>weight` dataset; groups are
/// interleaved by a seeded shuffle like [`crate::grouped::GroupedSpec`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupedWeightedSpec {
    /// The groups.
    pub groups: Vec<WeightedGroupSpec>,
    /// RNG seed.
    pub seed: u64,
}

impl GroupedWeightedSpec {
    /// `num_groups` groups of normal values (group `i` has mean
    /// `base_mean·(i+1)`) with uniform `[0.5, 1.5)` weights.
    pub fn normal_groups(
        num_groups: usize,
        records_per_group: u64,
        base_mean: f64,
        relative_sd: f64,
        seed: u64,
    ) -> Self {
        Self {
            groups: (0..num_groups)
                .map(|i| {
                    let mean = base_mean * (i + 1) as f64;
                    WeightedGroupSpec {
                        key: format!("g{i}"),
                        num_records: records_per_group,
                        value: Distribution::Normal {
                            mean,
                            std_dev: mean * relative_sd,
                        },
                        weight: Distribution::Uniform {
                            low: 0.5,
                            high: 1.5,
                        },
                    }
                })
                .collect(),
            seed,
        }
    }

    /// Total records across all groups.
    pub fn total_records(&self) -> u64 {
        self.groups.iter().map(|g| g.num_records).sum()
    }
}

/// A grouped weighted dataset materialised in the DFS with per-group truth.
#[derive(Debug, Clone)]
pub struct GroupedWeightedDataset {
    /// Where the data lives.
    pub path: DfsPath,
    /// The DFS file status after writing.
    pub status: FileStatus,
    /// Exact per-group truth.
    pub truth: BTreeMap<String, WeightedTruth>,
}

fn weighted_truth_of(values: &[f64], weights: &[f64]) -> WeightedTruth {
    let weighted_sum: f64 = values.iter().zip(weights).map(|(x, w)| x * w).sum();
    let weight_sum: f64 = weights.iter().sum();
    WeightedTruth {
        count: values.len() as u64,
        weighted_sum,
        weight_sum,
        weighted_mean: if weight_sum == 0.0 {
            f64::NAN
        } else {
            weighted_sum / weight_sum
        },
    }
}

impl DatasetBuilder {
    /// Generates and writes a paired `x<TAB>y` dataset and returns the exact
    /// statistics of the written pairs.
    pub fn build_paired(
        &self,
        path: impl Into<DfsPath>,
        spec: &PairedSpec,
    ) -> earl_dfs::Result<PairedDataset> {
        let path = path.into();
        let mut xs = ValueGenerator::new(spec.x, spec.seed);
        let mut noise = ValueGenerator::new(
            Distribution::Normal {
                mean: 0.0,
                std_dev: spec.noise_sd.max(0.0),
            },
            spec.seed.wrapping_add(0x9a1f),
        );
        let mut interleaved = Vec::with_capacity(spec.num_records as usize * 2);
        let mut lines = Vec::with_capacity(spec.num_records as usize);
        for _ in 0..spec.num_records {
            let x = xs.next_value();
            let eps = if spec.noise_sd > 0.0 {
                noise.next_value()
            } else {
                0.0
            };
            let y = spec.slope * x + spec.intercept + eps;
            interleaved.push(x);
            interleaved.push(y);
            lines.push(format!("{x}\t{y}"));
        }
        let status = self.dfs().write_lines(path.clone(), lines)?;
        Ok(PairedDataset {
            path,
            status,
            truth: paired_truth(&interleaved),
        })
    }

    /// Generates and writes a weighted `value<TAB>weight` dataset and returns
    /// the exact weighted-mean truth of the written records.
    pub fn build_weighted(
        &self,
        path: impl Into<DfsPath>,
        spec: &WeightedSpec,
    ) -> earl_dfs::Result<WeightedDataset> {
        let path = path.into();
        let mut values = ValueGenerator::new(spec.value, spec.seed);
        let mut weights = ValueGenerator::new(spec.weight, spec.seed.wrapping_add(0x77ed));
        let n = spec.num_records as usize;
        let vs = values.take(n);
        let ws = weights.take(n);
        let lines: Vec<String> = vs
            .iter()
            .zip(&ws)
            .map(|(x, w)| format!("{x}\t{w}"))
            .collect();
        let status = self.dfs().write_lines(path.clone(), lines)?;
        Ok(WeightedDataset {
            path,
            status,
            truth: weighted_truth_of(&vs, &ws),
        })
    }

    /// Generates and writes a grouped `key<TAB>value<TAB>weight` dataset
    /// (groups interleaved by a seeded shuffle) and returns the exact
    /// per-group weighted-mean truth.
    pub fn build_grouped_weighted(
        &self,
        path: impl Into<DfsPath>,
        spec: &GroupedWeightedSpec,
    ) -> earl_dfs::Result<GroupedWeightedDataset> {
        let path = path.into();
        let mut lines: Vec<String> = Vec::with_capacity(spec.total_records() as usize);
        let mut truth: BTreeMap<String, WeightedTruth> = BTreeMap::new();
        for (i, group) in spec.groups.iter().enumerate() {
            let mut values = ValueGenerator::new(group.value, spec.seed.wrapping_add(2 * i as u64));
            let mut weights =
                ValueGenerator::new(group.weight, spec.seed.wrapping_add(2 * i as u64 + 1));
            let n = group.num_records as usize;
            let vs = values.take(n);
            let ws = weights.take(n);
            let group_truth = weighted_truth_of(&vs, &ws);
            let entry = truth.entry(group.key.clone()).or_insert(WeightedTruth {
                count: 0,
                weighted_sum: 0.0,
                weight_sum: 0.0,
                weighted_mean: f64::NAN,
            });
            entry.count += group_truth.count;
            entry.weighted_sum += group_truth.weighted_sum;
            entry.weight_sum += group_truth.weight_sum;
            entry.weighted_mean = if entry.weight_sum == 0.0 {
                f64::NAN
            } else {
                entry.weighted_sum / entry.weight_sum
            };
            lines.extend(
                vs.iter()
                    .zip(&ws)
                    .map(|(x, w)| format!("{}\t{x}\t{w}", group.key)),
            );
        }
        let mut rng = StdRng::seed_from_u64(spec.seed ^ 0x5e1f_7a1e_9d0c_4b3a);
        lines.shuffle(&mut rng);
        let status = self.dfs().write_lines(path.clone(), lines)?;
        Ok(GroupedWeightedDataset {
            path,
            status,
            truth,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use earl_cluster::{Cluster, CostModel, Phase};
    use earl_dfs::{Dfs, DfsConfig};

    fn dfs() -> Dfs {
        let cluster = Cluster::builder()
            .nodes(3)
            .cost_model(CostModel::free())
            .build()
            .unwrap();
        Dfs::new(
            cluster,
            DfsConfig {
                block_size: 8192,
                replication: 2,
                io_chunk: 256,
            },
        )
        .unwrap()
    }

    #[test]
    fn paired_dataset_truth_matches_the_file() {
        let builder = DatasetBuilder::new(dfs());
        let spec = PairedSpec::linear(2_000, 2.5, 10.0, 4.0, 7);
        let ds = builder.build_paired("/pairs", &spec).unwrap();
        assert_eq!(ds.status.num_records, Some(2_000));
        assert_eq!(ds.truth.count, 2_000);
        // The written data follows the generating line closely.
        assert!(
            (ds.truth.slope - 2.5).abs() < 0.1,
            "slope {}",
            ds.truth.slope
        );
        assert!(ds.truth.correlation > 0.95);
        // Truth is recomputed from the file contents exactly.
        let lines = builder.dfs().read_all_lines(Phase::Load, "/pairs").unwrap();
        let interleaved: Vec<f64> = lines
            .iter()
            .flat_map(|l| {
                let (x, y) = l.split_once('\t').unwrap();
                [x.parse().unwrap(), y.parse().unwrap()]
            })
            .collect();
        let recomputed = paired_truth(&interleaved);
        assert!((recomputed.slope - ds.truth.slope).abs() < 1e-9);
        assert!((recomputed.covariance - ds.truth.covariance).abs() < 1e-6);
        assert!((recomputed.ratio - ds.truth.ratio).abs() < 1e-12);
    }

    #[test]
    fn weighted_dataset_truth_matches_the_file() {
        let builder = DatasetBuilder::new(dfs());
        let spec = WeightedSpec {
            num_records: 1_500,
            value: Distribution::Normal {
                mean: 200.0,
                std_dev: 30.0,
            },
            weight: Distribution::Uniform {
                low: 0.5,
                high: 1.5,
            },
            seed: 9,
        };
        let ds = builder.build_weighted("/weighted", &spec).unwrap();
        assert_eq!(ds.truth.count, 1_500);
        assert!(ds.truth.weighted_mean.is_finite());
        let lines = builder
            .dfs()
            .read_all_lines(Phase::Load, "/weighted")
            .unwrap();
        let mut wx = 0.0;
        let mut w = 0.0;
        for line in &lines {
            let (x, wt) = line.split_once('\t').unwrap();
            let x: f64 = x.parse().unwrap();
            let wt: f64 = wt.parse().unwrap();
            wx += x * wt;
            w += wt;
        }
        assert!((wx / w - ds.truth.weighted_mean).abs() < 1e-9);
    }

    #[test]
    fn zero_weight_spec_builds_a_degenerate_column() {
        let builder = DatasetBuilder::new(dfs());
        let spec = WeightedSpec {
            num_records: 100,
            value: Distribution::Uniform {
                low: 1.0,
                high: 2.0,
            },
            weight: Distribution::Normal {
                mean: 0.0,
                std_dev: 0.0,
            },
            seed: 3,
        };
        let ds = builder.build_weighted("/zero", &spec).unwrap();
        assert_eq!(ds.truth.weight_sum, 0.0);
        assert!(ds.truth.weighted_mean.is_nan());
    }

    #[test]
    fn grouped_weighted_dataset_interleaves_with_per_group_truth() {
        let builder = DatasetBuilder::new(dfs());
        let spec = GroupedWeightedSpec::normal_groups(3, 400, 100.0, 0.1, 11);
        assert_eq!(spec.total_records(), 1_200);
        let ds = builder.build_grouped_weighted("/gw", &spec).unwrap();
        assert_eq!(ds.truth.len(), 3);
        let lines = builder.dfs().read_all_lines(Phase::Load, "/gw").unwrap();
        let mut sums: BTreeMap<String, (f64, f64, u64)> = BTreeMap::new();
        for line in &lines {
            let mut parts = line.splitn(3, '\t');
            let key = parts.next().unwrap().to_owned();
            let x: f64 = parts.next().unwrap().parse().unwrap();
            let w: f64 = parts.next().unwrap().parse().unwrap();
            let e = sums.entry(key).or_default();
            e.0 += x * w;
            e.1 += w;
            e.2 += 1;
        }
        for (key, truth) in &ds.truth {
            let (wx, w, count) = sums[key];
            assert_eq!(count, truth.count, "group {key}");
            assert!((wx / w - truth.weighted_mean).abs() < 1e-9, "group {key}");
        }
        // Interleaved, not clustered.
        let first_key = lines[0].split_once('\t').unwrap().0.to_owned();
        let head_same = lines
            .iter()
            .take(400)
            .filter(|l| l.starts_with(&format!("{first_key}\t")))
            .count();
        assert!(head_same < 300, "shuffle must interleave groups");
    }
}
