//! Gaussian-mixture point clouds for the K-Means experiment (Fig. 7).
//!
//! The paper validates that "EARL finds centroids that are within 5% of the
//! optimal" by running K-Means on synthetic data with known generative
//! centroids; this module produces exactly such data.

use earl_dfs::{Dfs, DfsPath, FileStatus};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Specification of a K-Means dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KmeansSpec {
    /// Number of points.
    pub num_points: u64,
    /// Number of clusters (and generative centroids).
    pub k: usize,
    /// Dimensionality of each point.
    pub dims: usize,
    /// Standard deviation of each cluster around its centroid.
    pub cluster_std_dev: f64,
    /// Spread of the centroids themselves (centroids are drawn uniformly from
    /// `[0, centroid_spread)` per dimension).
    pub centroid_spread: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for KmeansSpec {
    fn default() -> Self {
        Self {
            num_points: 10_000,
            k: 8,
            dims: 2,
            cluster_std_dev: 2.0,
            centroid_spread: 100.0,
            seed: 0xC1,
        }
    }
}

/// A generated K-Means dataset, with the generative ground truth.
#[derive(Debug, Clone)]
pub struct KmeansDataset {
    /// Where the data lives in the DFS.
    pub path: DfsPath,
    /// File status after writing.
    pub status: FileStatus,
    /// The generative centroids (the "optimal" centroids the paper compares
    /// against, up to sampling noise).
    pub true_centroids: Vec<Vec<f64>>,
    /// The generated points, in disk order.
    pub points: Vec<Vec<f64>>,
    /// The cluster each point was generated from.
    pub labels: Vec<usize>,
}

impl KmeansDataset {
    /// Generates the dataset and writes it to `path` as lines of
    /// space-separated coordinates.
    pub fn generate(
        dfs: &Dfs,
        path: impl Into<DfsPath>,
        spec: &KmeansSpec,
    ) -> earl_dfs::Result<Self> {
        let path = path.into();
        let mut rng = StdRng::seed_from_u64(spec.seed);
        let true_centroids: Vec<Vec<f64>> = (0..spec.k)
            .map(|_| {
                (0..spec.dims)
                    .map(|_| rng.gen_range(0.0..spec.centroid_spread))
                    .collect()
            })
            .collect();
        let mut points = Vec::with_capacity(spec.num_points as usize);
        let mut labels = Vec::with_capacity(spec.num_points as usize);
        for _ in 0..spec.num_points {
            let cluster = rng.gen_range(0..spec.k);
            let point: Vec<f64> = (0..spec.dims)
                .map(|d| {
                    true_centroids[cluster][d] + spec.cluster_std_dev * standard_normal(&mut rng)
                })
                .collect();
            points.push(point);
            labels.push(cluster);
        }
        let status = dfs.write_lines(
            path.clone(),
            points.iter().map(|p| {
                p.iter()
                    .map(|c| format!("{c:.6}"))
                    .collect::<Vec<_>>()
                    .join(" ")
            }),
        )?;
        Ok(Self {
            path,
            status,
            true_centroids,
            points,
            labels,
        })
    }

    /// Parses a point from one line of the written format.
    pub fn parse_point(line: &str) -> Option<Vec<f64>> {
        let coords: Option<Vec<f64>> = line.split_whitespace().map(|t| t.parse().ok()).collect();
        coords.filter(|c| !c.is_empty())
    }
}

fn standard_normal(rng: &mut StdRng) -> f64 {
    loop {
        let u1: f64 = rng.gen();
        let u2: f64 = rng.gen();
        if u1 > f64::MIN_POSITIVE {
            return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use earl_cluster::{Cluster, CostModel, Phase};
    use earl_dfs::DfsConfig;

    fn dfs() -> Dfs {
        let cluster = Cluster::builder()
            .nodes(2)
            .cost_model(CostModel::free())
            .build()
            .unwrap();
        Dfs::new(
            cluster,
            DfsConfig {
                block_size: 1 << 16,
                replication: 1,
                io_chunk: 512,
            },
        )
        .unwrap()
    }

    #[test]
    fn generates_k_clusters_with_points_near_their_centroids() {
        let dfs = dfs();
        let spec = KmeansSpec {
            num_points: 2_000,
            k: 4,
            dims: 2,
            cluster_std_dev: 1.0,
            centroid_spread: 200.0,
            seed: 7,
        };
        let ds = KmeansDataset::generate(&dfs, "/km", &spec).unwrap();
        assert_eq!(ds.true_centroids.len(), 4);
        assert_eq!(ds.points.len(), 2_000);
        assert_eq!(ds.status.num_records, Some(2_000));
        // Each point should be within a few std-devs of its generative centroid.
        for (point, &label) in ds.points.iter().zip(&ds.labels) {
            let c = &ds.true_centroids[label];
            let dist: f64 = point
                .iter()
                .zip(c)
                .map(|(a, b)| (a - b).powi(2))
                .sum::<f64>()
                .sqrt();
            assert!(
                dist < 6.0,
                "point {point:?} too far from its centroid {c:?}"
            );
        }
    }

    #[test]
    fn written_lines_parse_back_to_the_same_points() {
        let dfs = dfs();
        let spec = KmeansSpec {
            num_points: 200,
            ..Default::default()
        };
        let ds = KmeansDataset::generate(&dfs, "/km2", &spec).unwrap();
        let lines = dfs.read_all_lines(Phase::Load, "/km2").unwrap();
        assert_eq!(lines.len(), 200);
        for (line, point) in lines.iter().zip(&ds.points) {
            let parsed = KmeansDataset::parse_point(line).unwrap();
            assert_eq!(parsed.len(), spec.dims);
            for (a, b) in parsed.iter().zip(point) {
                assert!((a - b).abs() < 1e-5);
            }
        }
        assert!(KmeansDataset::parse_point("not a point").is_none());
        assert!(KmeansDataset::parse_point("").is_none());
    }

    #[test]
    fn generation_is_deterministic() {
        let dfs = dfs();
        let spec = KmeansSpec {
            num_points: 50,
            seed: 3,
            ..Default::default()
        };
        let a = KmeansDataset::generate(&dfs, "/a", &spec).unwrap();
        let b = KmeansDataset::generate(&dfs, "/b", &spec).unwrap();
        assert_eq!(a.true_centroids, b.true_centroids);
        assert_eq!(a.points, b.points);
    }
}
