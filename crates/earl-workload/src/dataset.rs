//! Dataset builders: materialise generated values as files in the simulated
//! DFS.

use earl_dfs::{Dfs, DfsPath, FileStatus};
use serde::{Deserialize, Serialize};

use crate::generators::{Distribution, ValueGenerator};
use crate::layout::{apply_layout, Layout};

/// Specification of a numeric dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Number of records.
    pub num_records: u64,
    /// Value distribution.
    pub distribution: Distribution,
    /// Physical layout on disk.
    pub layout: Layout,
    /// RNG seed.
    pub seed: u64,
    /// Whether each line is written as `key<TAB>value` (with a sequential key)
    /// instead of a bare value.
    pub keyed: bool,
}

impl DatasetSpec {
    /// A shuffled normal dataset — the workhorse of the experiments.
    pub fn normal(num_records: u64, mean: f64, std_dev: f64, seed: u64) -> Self {
        Self {
            num_records,
            distribution: Distribution::Normal { mean, std_dev },
            layout: Layout::Shuffled,
            seed,
            keyed: false,
        }
    }

    /// A shuffled uniform dataset.
    pub fn uniform(num_records: u64, low: f64, high: f64, seed: u64) -> Self {
        Self {
            num_records,
            distribution: Distribution::Uniform { low, high },
            layout: Layout::Shuffled,
            seed,
            keyed: false,
        }
    }

    /// Switches the layout.
    pub fn with_layout(mut self, layout: Layout) -> Self {
        self.layout = layout;
        self
    }

    /// Switches to `key<TAB>value` lines.
    pub fn keyed(mut self) -> Self {
        self.keyed = true;
        self
    }
}

/// A dataset that has been generated and written to the DFS, together with the
/// ground truth needed to validate EARL's error bounds.
#[derive(Debug, Clone)]
pub struct GeneratedDataset {
    /// Where the data lives.
    pub path: DfsPath,
    /// The DFS file status after writing.
    pub status: FileStatus,
    /// The exact values written (in disk order).
    pub values: Vec<f64>,
    /// The exact population mean.
    pub true_mean: f64,
    /// The exact population median.
    pub true_median: f64,
    /// The exact population standard deviation.
    pub true_std_dev: f64,
}

/// Builds datasets into a DFS.
#[derive(Debug, Clone)]
pub struct DatasetBuilder {
    dfs: Dfs,
}

impl DatasetBuilder {
    /// Creates a builder for the given DFS.
    pub fn new(dfs: Dfs) -> Self {
        Self { dfs }
    }

    /// The DFS this builder writes into.
    pub fn dfs(&self) -> &Dfs {
        &self.dfs
    }

    /// Generates the values for `spec` without writing them anywhere.
    pub fn generate_values(spec: &DatasetSpec) -> Vec<f64> {
        let mut generator = ValueGenerator::new(spec.distribution, spec.seed);
        let values = generator.take(spec.num_records as usize);
        apply_layout(values, spec.layout, spec.seed ^ 0x5eed)
    }

    /// Generates and writes the dataset to `path`, returning the materialised
    /// dataset with its ground-truth statistics.
    pub fn build(
        &self,
        path: impl Into<DfsPath>,
        spec: &DatasetSpec,
    ) -> earl_dfs::Result<GeneratedDataset> {
        let path = path.into();
        let values = Self::generate_values(spec);
        let status = if spec.keyed {
            self.dfs.write_lines(
                path.clone(),
                values.iter().enumerate().map(|(i, v)| format!("k{i}\t{v}")),
            )?
        } else {
            self.dfs
                .write_lines(path.clone(), values.iter().map(|v| format!("{v}")))?
        };
        let true_mean = values.iter().sum::<f64>() / values.len().max(1) as f64;
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let true_median = if sorted.is_empty() {
            f64::NAN
        } else if sorted.len() % 2 == 1 {
            sorted[sorted.len() / 2]
        } else {
            (sorted[sorted.len() / 2 - 1] + sorted[sorted.len() / 2]) / 2.0
        };
        let true_std_dev = (values.iter().map(|v| (v - true_mean).powi(2)).sum::<f64>()
            / values.len().max(1) as f64)
            .sqrt();
        Ok(GeneratedDataset {
            path,
            status,
            values,
            true_mean,
            true_median,
            true_std_dev,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use earl_cluster::{Cluster, CostModel, Phase};
    use earl_dfs::DfsConfig;

    fn dfs() -> Dfs {
        let cluster = Cluster::builder()
            .nodes(3)
            .cost_model(CostModel::free())
            .build()
            .unwrap();
        Dfs::new(
            cluster,
            DfsConfig {
                block_size: 8192,
                replication: 2,
                io_chunk: 256,
            },
        )
        .unwrap()
    }

    #[test]
    fn build_writes_all_records_with_ground_truth() {
        let builder = DatasetBuilder::new(dfs());
        let spec = DatasetSpec::normal(2_000, 50.0, 5.0, 1);
        let ds = builder.build("/normal", &spec).unwrap();
        assert_eq!(ds.status.num_records, Some(2_000));
        assert_eq!(ds.values.len(), 2_000);
        assert!((ds.true_mean - 50.0).abs() < 0.5);
        assert!((ds.true_median - 50.0).abs() < 0.5);
        assert!((ds.true_std_dev - 5.0).abs() < 0.5);
        // Round-trip: what was written parses back to the same values.
        let read = builder.dfs.read_all_lines(Phase::Load, "/normal").unwrap();
        assert_eq!(read.len(), 2_000);
        let parsed: Vec<f64> = read.iter().map(|l| l.parse().unwrap()).collect();
        assert_eq!(parsed, ds.values);
    }

    #[test]
    fn keyed_records_have_tab_separated_keys() {
        let builder = DatasetBuilder::new(dfs());
        let spec = DatasetSpec::uniform(100, 0.0, 1.0, 2).keyed();
        builder.build("/keyed", &spec).unwrap();
        let lines = builder.dfs.read_all_lines(Phase::Load, "/keyed").unwrap();
        assert!(lines.iter().all(|l| l.contains('\t') && l.starts_with('k')));
    }

    #[test]
    fn clustered_layout_is_sorted_on_disk() {
        let builder = DatasetBuilder::new(dfs());
        let spec = DatasetSpec::uniform(500, 0.0, 100.0, 3).with_layout(Layout::ClusteredAscending);
        let ds = builder.build("/sorted", &spec).unwrap();
        assert!(ds.values.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = DatasetSpec::normal(100, 0.0, 1.0, 9);
        assert_eq!(
            DatasetBuilder::generate_values(&spec),
            DatasetBuilder::generate_values(&spec)
        );
    }
}
