//! Value generators with known population statistics.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The distribution a value generator draws from.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Distribution {
    /// Uniform on `[low, high)`.
    Uniform {
        /// Lower bound (inclusive).
        low: f64,
        /// Upper bound (exclusive).
        high: f64,
    },
    /// Normal with the given mean and standard deviation.
    Normal {
        /// Mean.
        mean: f64,
        /// Standard deviation.
        std_dev: f64,
    },
    /// Log-normal: `exp(N(mu, sigma))`.
    LogNormal {
        /// Mean of the underlying normal.
        mu: f64,
        /// Standard deviation of the underlying normal.
        sigma: f64,
    },
    /// Exponential with the given rate λ.
    Exponential {
        /// Rate parameter λ.
        rate: f64,
    },
    /// Zipf over `{1, …, n}` with exponent `s` (values returned as f64 ranks).
    Zipf {
        /// Number of distinct ranks.
        n: u64,
        /// Skew exponent.
        s: f64,
    },
}

impl Distribution {
    /// The true population mean of the distribution (used to validate EARL's
    /// error bounds against ground truth).
    pub fn true_mean(&self) -> f64 {
        match *self {
            Distribution::Uniform { low, high } => (low + high) / 2.0,
            Distribution::Normal { mean, .. } => mean,
            Distribution::LogNormal { mu, sigma } => (mu + sigma * sigma / 2.0).exp(),
            Distribution::Exponential { rate } => 1.0 / rate,
            Distribution::Zipf { n, s } => {
                let h = |exp: f64| (1..=n).map(|k| (k as f64).powf(-exp)).sum::<f64>();
                h(s - 1.0) / h(s)
            }
        }
    }

    /// The true population standard deviation.
    pub fn true_std_dev(&self) -> f64 {
        match *self {
            Distribution::Uniform { low, high } => (high - low) / 12f64.sqrt(),
            Distribution::Normal { std_dev, .. } => std_dev,
            Distribution::LogNormal { mu, sigma } => {
                let s2 = sigma * sigma;
                (((s2).exp() - 1.0) * (2.0 * mu + s2).exp()).sqrt()
            }
            Distribution::Exponential { rate } => 1.0 / rate,
            Distribution::Zipf { n, s } => {
                let h = |exp: f64| (1..=n).map(|k| (k as f64).powf(-exp)).sum::<f64>();
                let mean = h(s - 1.0) / h(s);
                let second = h(s - 2.0) / h(s);
                (second - mean * mean).max(0.0).sqrt()
            }
        }
    }

    /// Coefficient of variation of the distribution itself (std-dev / mean).
    pub fn true_cv(&self) -> f64 {
        self.true_std_dev() / self.true_mean().abs()
    }
}

/// A seeded generator of values from a [`Distribution`].
#[derive(Debug, Clone)]
pub struct ValueGenerator {
    distribution: Distribution,
    rng: StdRng,
    /// Precomputed Zipf normalisation constant, if applicable.
    zipf_cdf: Option<Vec<f64>>,
}

impl ValueGenerator {
    /// Creates a generator.
    pub fn new(distribution: Distribution, seed: u64) -> Self {
        let zipf_cdf = match distribution {
            Distribution::Zipf { n, s } => {
                let mut weights: Vec<f64> = (1..=n).map(|k| (k as f64).powf(-s)).collect();
                let total: f64 = weights.iter().sum();
                let mut acc = 0.0;
                for w in &mut weights {
                    acc += *w / total;
                    *w = acc;
                }
                Some(weights)
            }
            _ => None,
        };
        Self {
            distribution,
            rng: StdRng::seed_from_u64(seed),
            zipf_cdf,
        }
    }

    /// The distribution being generated.
    pub fn distribution(&self) -> Distribution {
        self.distribution
    }

    /// Draws the next value.
    pub fn next_value(&mut self) -> f64 {
        match self.distribution {
            Distribution::Uniform { low, high } => self.rng.gen_range(low..high),
            Distribution::Normal { mean, std_dev } => mean + std_dev * self.standard_normal(),
            Distribution::LogNormal { mu, sigma } => (mu + sigma * self.standard_normal()).exp(),
            Distribution::Exponential { rate } => {
                let u: f64 = self.rng.gen::<f64>().max(f64::MIN_POSITIVE);
                -u.ln() / rate
            }
            Distribution::Zipf { .. } => {
                let cdf = self.zipf_cdf.as_ref().expect("zipf cdf precomputed");
                let u: f64 = self.rng.gen();
                (cdf.partition_point(|&c| c < u) + 1) as f64
            }
        }
    }

    /// Draws `count` values.
    pub fn take(&mut self, count: usize) -> Vec<f64> {
        (0..count).map(|_| self.next_value()).collect()
    }

    fn standard_normal(&mut self) -> f64 {
        loop {
            let u1: f64 = self.rng.gen();
            let u2: f64 = self.rng.gen();
            if u1 > f64::MIN_POSITIVE {
                return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empirical_mean(values: &[f64]) -> f64 {
        values.iter().sum::<f64>() / values.len() as f64
    }

    fn empirical_sd(values: &[f64]) -> f64 {
        let m = empirical_mean(values);
        (values.iter().map(|v| (v - m).powi(2)).sum::<f64>() / values.len() as f64).sqrt()
    }

    #[test]
    fn uniform_matches_theory() {
        let d = Distribution::Uniform {
            low: 10.0,
            high: 30.0,
        };
        let values = ValueGenerator::new(d, 1).take(50_000);
        assert!((empirical_mean(&values) - d.true_mean()).abs() < 0.2);
        assert!((empirical_sd(&values) - d.true_std_dev()).abs() < 0.2);
        assert!(values.iter().all(|&v| (10.0..30.0).contains(&v)));
    }

    #[test]
    fn normal_matches_theory() {
        let d = Distribution::Normal {
            mean: 100.0,
            std_dev: 15.0,
        };
        let values = ValueGenerator::new(d, 2).take(50_000);
        assert!((empirical_mean(&values) - 100.0).abs() < 0.5);
        assert!((empirical_sd(&values) - 15.0).abs() < 0.5);
        assert!((d.true_cv() - 0.15).abs() < 1e-12);
    }

    #[test]
    fn lognormal_matches_theory() {
        let d = Distribution::LogNormal {
            mu: 3.0,
            sigma: 0.5,
        };
        let values = ValueGenerator::new(d, 3).take(100_000);
        let rel = (empirical_mean(&values) - d.true_mean()).abs() / d.true_mean();
        assert!(rel < 0.02, "lognormal mean off by {rel}");
        assert!(values.iter().all(|&v| v > 0.0));
    }

    #[test]
    fn exponential_matches_theory() {
        let d = Distribution::Exponential { rate: 0.25 };
        let values = ValueGenerator::new(d, 4).take(50_000);
        assert!((empirical_mean(&values) - 4.0).abs() < 0.1);
        assert!((d.true_cv() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zipf_is_skewed_and_bounded() {
        let d = Distribution::Zipf { n: 100, s: 1.2 };
        let values = ValueGenerator::new(d, 5).take(50_000);
        assert!(values.iter().all(|&v| (1.0..=100.0).contains(&v)));
        // Rank 1 must be by far the most common.
        let ones = values.iter().filter(|&&v| v == 1.0).count() as f64 / values.len() as f64;
        assert!(ones > 0.15, "rank-1 frequency {ones}");
        let rel = (empirical_mean(&values) - d.true_mean()).abs() / d.true_mean();
        assert!(rel < 0.05, "zipf mean off by {rel}");
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        let d = Distribution::Normal {
            mean: 0.0,
            std_dev: 1.0,
        };
        assert_eq!(
            ValueGenerator::new(d, 7).take(100),
            ValueGenerator::new(d, 7).take(100)
        );
        assert_ne!(
            ValueGenerator::new(d, 7).take(100),
            ValueGenerator::new(d, 8).take(100)
        );
    }
}
