//! Blocks: the unit of storage and replication.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Default block size: 64 MB, the HDFS default the paper mentions in §3.3.
pub const DEFAULT_BLOCK_SIZE: u64 = 64 * 1024 * 1024;

/// Identifier of a block (unique within one DFS instance).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BlockId(pub u64);

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "blk_{}", self.0)
    }
}

/// Metadata about a single block of a file.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockMeta {
    /// The block identifier.
    pub id: BlockId,
    /// Offset of the first byte of this block within its file.
    pub file_offset: u64,
    /// Number of bytes stored in the block (≤ the block size; only the last
    /// block of a file may be shorter).
    pub len: u64,
}

impl BlockMeta {
    /// The half-open byte range `[file_offset, file_offset + len)` this block
    /// covers within its file.
    pub fn range(&self) -> std::ops::Range<u64> {
        self.file_offset..self.file_offset + self.len
    }

    /// Whether the given file offset falls inside this block.
    pub fn contains(&self, offset: u64) -> bool {
        self.range().contains(&offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_meta_range_and_contains() {
        let b = BlockMeta {
            id: BlockId(3),
            file_offset: 100,
            len: 50,
        };
        assert_eq!(b.range(), 100..150);
        assert!(b.contains(100));
        assert!(b.contains(149));
        assert!(!b.contains(150));
        assert!(!b.contains(99));
    }

    #[test]
    fn display() {
        assert_eq!(BlockId(42).to_string(), "blk_42");
    }
}
