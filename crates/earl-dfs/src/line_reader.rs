//! Buffered line reader over an input split.
//!
//! Implements the standard Hadoop `LineRecordReader` contract the paper relies
//! on (§3.3): a reader assigned the split `[start, start+length)`
//!
//! * skips the first (possibly partial) line when `start > 0` — that line
//!   belongs to the previous split, and
//! * keeps reading past the end of the split to finish the last line that
//!   *starts* inside the split.
//!
//! Together these rules guarantee every line of the file is produced by exactly
//! one split and no line is ever torn in half.

use earl_cluster::Phase;

use crate::dfs::Dfs;
use crate::split::InputSplit;
use crate::Result;

/// Streaming reader of the lines belonging to one [`InputSplit`].
#[derive(Debug)]
pub struct LineRecordReader {
    dfs: Dfs,
    split: InputSplit,
    phase: Phase,
    file_len: u64,
    /// Byte position of the next unread byte in the file.
    pos: u64,
    /// Buffered bytes covering `[buf_start, buf_start + buf.len())`.
    buf: Vec<u8>,
    buf_start: u64,
    /// Whether the initial partial-line skip has been performed.
    primed: bool,
    /// Whether the reader has exhausted its split.
    finished: bool,
    records_read: u64,
    bytes_read: u64,
}

impl LineRecordReader {
    /// Creates a reader; I/O is charged to `phase` on the DFS's cluster.
    pub fn new(dfs: Dfs, split: InputSplit, phase: Phase) -> Self {
        let file_len = dfs.status(split.path.clone()).map(|s| s.len).unwrap_or(0);
        Self {
            dfs,
            pos: split.start,
            split,
            phase,
            file_len,
            buf: Vec::new(),
            buf_start: 0,
            primed: false,
            finished: false,
            records_read: 0,
            bytes_read: 0,
        }
    }

    /// The split being read.
    pub fn split(&self) -> &InputSplit {
        &self.split
    }

    /// Number of complete records returned so far.
    pub fn records_read(&self) -> u64 {
        self.records_read
    }

    /// Number of bytes fetched from the DFS so far.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }

    /// Returns the next `(line_start_offset, line)` belonging to this split, or
    /// `None` when the split is exhausted.
    pub fn next_line(&mut self) -> Result<Option<(u64, String)>> {
        if self.finished {
            return Ok(None);
        }
        if !self.primed {
            self.primed = true;
            if self.split.start > 0 {
                // Skip the partial line that began in the previous split.
                // (If the previous byte is '\n' the skip consumes zero bytes —
                // we detect that by checking the byte before the split start.)
                let prev = self.dfs.read_range(
                    self.phase,
                    self.split.path.clone(),
                    self.split.start - 1,
                    1,
                )?;
                self.bytes_read += 1;
                if prev[0] != b'\n' {
                    // Consume up to and including the next newline.
                    if self.scan_past_newline()?.is_none() {
                        self.finished = true;
                        return Ok(None);
                    }
                }
            }
        }
        // A record belongs to this split only if it starts before split.end().
        if self.pos >= self.split.end() || self.pos >= self.file_len {
            self.finished = true;
            return Ok(None);
        }
        let line_start = self.pos;
        let mut line = Vec::new();
        loop {
            if self.pos >= self.file_len {
                break;
            }
            self.fill_buffer()?;
            let rel = (self.pos - self.buf_start) as usize;
            let slice = &self.buf[rel..];
            if let Some(nl) = slice.iter().position(|b| *b == b'\n') {
                line.extend_from_slice(&slice[..nl]);
                self.pos += nl as u64 + 1;
                break;
            }
            line.extend_from_slice(slice);
            self.pos += slice.len() as u64;
        }
        self.records_read += 1;
        Ok(Some((
            line_start,
            String::from_utf8_lossy(&line).into_owned(),
        )))
    }

    /// Reads every remaining line of the split.
    pub fn read_all(&mut self) -> Result<Vec<(u64, String)>> {
        let mut out = Vec::new();
        while let Some(item) = self.next_line()? {
            out.push(item);
        }
        Ok(out)
    }

    /// Advances `pos` past the next newline; returns `None` at EOF.
    fn scan_past_newline(&mut self) -> Result<Option<()>> {
        loop {
            if self.pos >= self.file_len {
                return Ok(None);
            }
            self.fill_buffer()?;
            let rel = (self.pos - self.buf_start) as usize;
            let slice = &self.buf[rel..];
            if let Some(nl) = slice.iter().position(|b| *b == b'\n') {
                self.pos += nl as u64 + 1;
                return Ok(Some(()));
            }
            self.pos += slice.len() as u64;
        }
    }

    /// Ensures the buffer contains the byte at `self.pos`.
    fn fill_buffer(&mut self) -> Result<()> {
        let within =
            self.pos >= self.buf_start && self.pos < self.buf_start + self.buf.len() as u64;
        if within && !self.buf.is_empty() {
            return Ok(());
        }
        let chunk = self.dfs.config().io_chunk.max(16);
        let len = chunk.min(self.file_len - self.pos);
        let data = self
            .dfs
            .read_range(self.phase, self.split.path.clone(), self.pos, len)?;
        self.bytes_read += data.len() as u64;
        self.buf_start = self.pos;
        self.buf = data.to_vec();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfs::{Dfs, DfsConfig};
    use earl_cluster::Cluster;

    fn make_dfs(lines: &[&str], block_size: u64) -> Dfs {
        let cluster = Cluster::builder()
            .nodes(2)
            .cost_model(earl_cluster::CostModel::free())
            .build()
            .unwrap();
        let dfs = Dfs::new(
            cluster,
            DfsConfig {
                block_size,
                replication: 1,
                io_chunk: 7,
            },
        )
        .unwrap();
        dfs.write_lines("/t", lines.iter().copied()).unwrap();
        dfs
    }

    #[test]
    fn every_line_belongs_to_exactly_one_split() {
        let lines: Vec<String> = (0..57)
            .map(|i| format!("row-{i:04}-{}", "x".repeat(i % 13)))
            .collect();
        let line_refs: Vec<&str> = lines.iter().map(String::as_str).collect();
        let dfs = make_dfs(&line_refs, 64);
        for split_size in [10u64, 33, 64, 100, 10_000] {
            let splits = dfs.splits("/t", split_size).unwrap();
            let mut collected = Vec::new();
            for split in splits {
                let mut reader = dfs.open_split(split, Phase::Map);
                for (_, line) in reader.read_all().unwrap() {
                    collected.push(line);
                }
            }
            assert_eq!(collected, lines, "split_size={split_size}");
        }
    }

    #[test]
    fn single_split_reads_everything() {
        let dfs = make_dfs(&["a", "bb", "ccc"], 1024);
        let splits = dfs.splits("/t", 1 << 20).unwrap();
        assert_eq!(splits.len(), 1);
        let mut reader = dfs.open_split(splits[0].clone(), Phase::Map);
        let all = reader.read_all().unwrap();
        assert_eq!(
            all.iter().map(|(_, l)| l.as_str()).collect::<Vec<_>>(),
            vec!["a", "bb", "ccc"]
        );
        assert_eq!(all[0].0, 0);
        assert_eq!(all[1].0, 2);
        assert_eq!(all[2].0, 5);
        assert_eq!(reader.records_read(), 3);
        assert!(reader.bytes_read() >= 9);
    }

    #[test]
    fn later_split_skips_partial_first_line() {
        // "aaaa\nbbbb\ncccc\n" = 15 bytes; a split starting at byte 2 must not
        // produce "aa" — it starts with "bbbb".
        let dfs = make_dfs(&["aaaa", "bbbb", "cccc"], 1024);
        let split = InputSplit {
            path: "/t".into(),
            start: 2,
            length: 13,
            locations: vec![],
            index: 1,
        };
        let mut reader = dfs.open_split(split, Phase::Map);
        let all = reader.read_all().unwrap();
        let lines: Vec<&str> = all.iter().map(|(_, l)| l.as_str()).collect();
        assert_eq!(lines, vec!["bbbb", "cccc"]);
    }

    #[test]
    fn split_boundary_at_newline_keeps_next_line_in_next_split() {
        // "aa\nbb\ncc\n" = 9 bytes.  Split A = [0,6), split B = [6,9).
        let dfs = make_dfs(&["aa", "bb", "cc"], 1024);
        let a = InputSplit {
            path: "/t".into(),
            start: 0,
            length: 6,
            locations: vec![],
            index: 0,
        };
        let b = InputSplit {
            path: "/t".into(),
            start: 6,
            length: 3,
            locations: vec![],
            index: 1,
        };
        let la: Vec<String> = dfs
            .open_split(a, Phase::Map)
            .read_all()
            .unwrap()
            .into_iter()
            .map(|(_, l)| l)
            .collect();
        let lb: Vec<String> = dfs
            .open_split(b, Phase::Map)
            .read_all()
            .unwrap()
            .into_iter()
            .map(|(_, l)| l)
            .collect();
        assert_eq!(la, vec!["aa", "bb"]);
        assert_eq!(lb, vec!["cc"]);
    }

    #[test]
    fn line_spanning_split_boundary_goes_to_the_split_it_starts_in() {
        // One long line straddling byte 5.
        let dfs = make_dfs(&["0123456789abcdef", "tail"], 1024);
        let a = InputSplit {
            path: "/t".into(),
            start: 0,
            length: 5,
            locations: vec![],
            index: 0,
        };
        let b = InputSplit {
            path: "/t".into(),
            start: 5,
            length: 17,
            locations: vec![],
            index: 1,
        };
        let la: Vec<String> = dfs
            .open_split(a, Phase::Map)
            .read_all()
            .unwrap()
            .into_iter()
            .map(|(_, l)| l)
            .collect();
        let lb: Vec<String> = dfs
            .open_split(b, Phase::Map)
            .read_all()
            .unwrap()
            .into_iter()
            .map(|(_, l)| l)
            .collect();
        assert_eq!(
            la,
            vec!["0123456789abcdef"],
            "the long line starts in split A"
        );
        assert_eq!(lb, vec!["tail"]);
    }

    #[test]
    fn empty_split_yields_nothing() {
        let dfs = make_dfs(&["x"], 1024);
        let split = InputSplit {
            path: "/t".into(),
            start: 2,
            length: 0,
            locations: vec![],
            index: 9,
        };
        let mut reader = dfs.open_split(split, Phase::Map);
        assert!(reader.next_line().unwrap().is_none());
        assert!(
            reader.next_line().unwrap().is_none(),
            "reader stays finished"
        );
    }
}
