//! Logical input splits.
//!
//! When a MapReduce job runs, each file is divided into logical "Input Splits"
//! that are handed to mappers (paper §3.3).  A split is a byte range of a file
//! plus the nodes on which that range's blocks are stored, which the scheduler
//! uses for locality and which pre-map sampling uses to draw random lines.

use earl_cluster::NodeId;
use serde::{Deserialize, Serialize};

use crate::file::DfsPath;

/// A logical byte range of a file assigned to a single map task.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InputSplit {
    /// The file this split belongs to.
    pub path: DfsPath,
    /// Offset of the first byte of the split.
    pub start: u64,
    /// Length of the split in bytes.
    pub length: u64,
    /// Nodes holding replicas of the data underlying the split (preferred
    /// execution locations).
    pub locations: Vec<NodeId>,
    /// Index of the split within its file (0-based).
    pub index: usize,
}

impl InputSplit {
    /// Offset one past the last byte of the split.
    pub fn end(&self) -> u64 {
        self.start + self.length
    }

    /// Whether the given file offset lies inside the split.
    pub fn contains(&self, offset: u64) -> bool {
        offset >= self.start && offset < self.end()
    }
}

/// Computes the logical splits of a file of length `file_len`, targeting
/// `split_size` bytes per split.  The final split absorbs any remainder smaller
/// than half a split so that tiny tails do not become their own tasks.
pub fn compute_split_ranges(file_len: u64, split_size: u64) -> Vec<(u64, u64)> {
    if file_len == 0 {
        return Vec::new();
    }
    let split_size = split_size.max(1);
    let mut ranges = Vec::new();
    let mut start = 0;
    while start < file_len {
        let remaining = file_len - start;
        let len = if remaining < split_size + split_size / 2 {
            remaining
        } else {
            split_size
        };
        ranges.push((start, len));
        start += len;
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_cover_the_file_exactly_once() {
        for (file_len, split_size) in [(1000u64, 100u64), (1050, 100), (149, 100), (1, 1), (0, 10)]
        {
            let ranges = compute_split_ranges(file_len, split_size);
            let mut cursor = 0;
            for (start, len) in &ranges {
                assert_eq!(*start, cursor, "splits must be contiguous");
                assert!(*len > 0);
                cursor += len;
            }
            assert_eq!(cursor, file_len, "splits must cover the whole file");
        }
    }

    #[test]
    fn small_tail_is_absorbed() {
        // 1040 bytes with 100-byte splits: the last range should be 140, not 40.
        let ranges = compute_split_ranges(1040, 100);
        assert_eq!(ranges.last().unwrap().1, 140);
        assert_eq!(ranges.len(), 10);
    }

    #[test]
    fn zero_split_size_is_clamped() {
        let ranges = compute_split_ranges(5, 0);
        assert!(!ranges.is_empty());
        assert_eq!(ranges.iter().map(|r| r.1).sum::<u64>(), 5);
    }

    #[test]
    fn split_contains_and_end() {
        let split = InputSplit {
            path: DfsPath::new("/f"),
            start: 100,
            length: 50,
            locations: vec![NodeId(0)],
            index: 1,
        };
        assert_eq!(split.end(), 150);
        assert!(split.contains(100));
        assert!(split.contains(149));
        assert!(!split.contains(150));
        assert!(!split.contains(99));
    }
}
