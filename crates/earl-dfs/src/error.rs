//! Error type for the simulated DFS.

use std::fmt;

use earl_cluster::ClusterError;

use crate::block::BlockId;

/// Errors raised by the simulated distributed file system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DfsError {
    /// The requested path does not exist.
    FileNotFound(String),
    /// A file with the given path already exists.
    FileExists(String),
    /// A referenced block is missing from all replicas (e.g. every replica's
    /// node has failed).
    BlockUnavailable(BlockId),
    /// A read went past the end of the file.
    OutOfBounds {
        /// The requested offset.
        offset: u64,
        /// The file length.
        len: u64,
    },
    /// The underlying cluster reported an error.
    Cluster(ClusterError),
    /// The DFS was configured with invalid parameters.
    InvalidConfig(String),
}

impl fmt::Display for DfsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DfsError::FileNotFound(p) => write!(f, "file not found: {p}"),
            DfsError::FileExists(p) => write!(f, "file already exists: {p}"),
            DfsError::BlockUnavailable(b) => write!(f, "block {b} has no live replica"),
            DfsError::OutOfBounds { offset, len } => {
                write!(f, "read at offset {offset} past end of file (len {len})")
            }
            DfsError::Cluster(e) => write!(f, "cluster error: {e}"),
            DfsError::InvalidConfig(msg) => write!(f, "invalid DFS configuration: {msg}"),
        }
    }
}

impl std::error::Error for DfsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DfsError::Cluster(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ClusterError> for DfsError {
    fn from(e: ClusterError) -> Self {
        DfsError::Cluster(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = DfsError::FileNotFound("/a".into());
        assert!(e.to_string().contains("/a"));
        let c: DfsError = ClusterError::NoAvailableNodes.into();
        assert!(c.to_string().contains("cluster error"));
        use std::error::Error;
        assert!(c.source().is_some());
        assert!(e.source().is_none());
        assert!(DfsError::OutOfBounds { offset: 10, len: 5 }
            .to_string()
            .contains("offset 10"));
    }
}
