//! File paths and statuses.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A path within the simulated DFS.
///
/// Paths are plain strings; the DFS has a flat namespace but conventionally
/// uses `/`-separated hierarchical names like HDFS (`/data/points.tsv`).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DfsPath(String);

impl DfsPath {
    /// Creates a path, normalising it to start with `/`.
    pub fn new(path: impl Into<String>) -> Self {
        let raw = path.into();
        if raw.starts_with('/') {
            Self(raw)
        } else {
            Self(format!("/{raw}"))
        }
    }

    /// The path as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for DfsPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for DfsPath {
    fn from(s: &str) -> Self {
        DfsPath::new(s)
    }
}

impl From<String> for DfsPath {
    fn from(s: String) -> Self {
        DfsPath::new(s)
    }
}

/// Summary information about a stored file.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FileStatus {
    /// The file path.
    pub path: DfsPath,
    /// Total length in bytes.
    pub len: u64,
    /// Number of blocks.
    pub num_blocks: usize,
    /// Block size used when the file was written.
    pub block_size: u64,
    /// Replication factor.
    pub replication: u32,
    /// Number of newline-delimited records, if known (maintained by the line
    /// writer so samplers can convert between record counts and byte offsets).
    pub num_records: Option<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paths_are_normalised() {
        assert_eq!(DfsPath::new("data/x").as_str(), "/data/x");
        assert_eq!(DfsPath::new("/data/x").as_str(), "/data/x");
        assert_eq!(DfsPath::from("y").to_string(), "/y");
        assert_eq!(DfsPath::from(String::from("/z")).as_str(), "/z");
    }

    #[test]
    fn paths_compare_by_value() {
        assert_eq!(DfsPath::new("a"), DfsPath::new("/a"));
        assert_ne!(DfsPath::new("a"), DfsPath::new("b"));
    }
}
