//! Data re-balancer.
//!
//! The paper (§1) points out that "Hadoop employs a data re-balancer which
//! distributes HDFS data uniformly across the DataNodes in the cluster", and
//! EARL's sampling leans on that uniformity.  This module provides the same
//! facility for the simulated DFS: it migrates block replicas from overloaded
//! to underloaded nodes until every node is within a configurable threshold of
//! the mean utilisation.

use earl_cluster::NodeId;

use crate::dfs::Dfs;
use crate::Result;

/// Outcome of one rebalancing run.
#[derive(Debug, Clone, PartialEq)]
pub struct RebalanceReport {
    /// Number of block replicas that were moved.
    pub blocks_moved: usize,
    /// Total bytes migrated.
    pub bytes_moved: u64,
    /// Maximum absolute deviation from the mean node load after rebalancing,
    /// expressed as a fraction of the mean (0.0 = perfectly even).
    pub final_imbalance: f64,
}

/// Moves block replicas between nodes until every available node's stored
/// bytes are within `threshold` (a fraction, e.g. 0.1 = ±10 %) of the mean, or
/// until no further productive move exists.
pub fn rebalance(dfs: &Dfs, threshold: f64) -> Result<RebalanceReport> {
    let threshold = threshold.max(0.0);
    let mut blocks_moved = 0usize;
    let mut bytes_moved = 0u64;
    // Cap iterations defensively; each productive move strictly reduces the
    // spread so this bound is generous.
    let max_moves = 10_000;

    for _ in 0..max_moves {
        let loads = node_loads(dfs);
        if loads.len() < 2 {
            break;
        }
        let mean = loads.iter().map(|(_, b)| *b as f64).sum::<f64>() / loads.len() as f64;
        if mean <= 0.0 {
            break;
        }
        let (max_node, max_bytes) = *loads.iter().max_by_key(|(_, b)| *b).expect("non-empty");
        let (min_node, min_bytes) = *loads.iter().min_by_key(|(_, b)| *b).expect("non-empty");
        let imbalance = (max_bytes as f64 - mean).max(mean - min_bytes as f64) / mean;
        if imbalance <= threshold {
            break;
        }
        // Pick a block on the overloaded node that the underloaded node does not
        // already host, preferring one that will not overshoot the mean.
        let candidates = dfs.blocks_on_node(max_node);
        let target_gap = mean - min_bytes as f64;
        let mut best: Option<(crate::block::BlockId, u64)> = None;
        for block in candidates {
            if dfs.blocks_on_node(min_node).contains(&block) {
                continue;
            }
            let size = dfs.block_size_of(block);
            if size == 0 {
                continue;
            }
            let fits = size as f64 <= target_gap * 2.0 + 1.0;
            match (&best, fits) {
                (None, _) => best = Some((block, size)),
                (Some((_, cur)), true) if size > *cur => best = Some((block, size)),
                _ => {}
            }
        }
        let Some((block, size)) = best else { break };
        dfs.move_replica(block, max_node, min_node)?;
        blocks_moved += 1;
        bytes_moved += size;
    }

    let loads = node_loads(dfs);
    let final_imbalance = if loads.is_empty() {
        0.0
    } else {
        let mean = loads.iter().map(|(_, b)| *b as f64).sum::<f64>() / loads.len() as f64;
        if mean <= 0.0 {
            0.0
        } else {
            loads
                .iter()
                .map(|(_, b)| (*b as f64 - mean).abs())
                .fold(0.0, f64::max)
                / mean
        }
    };
    Ok(RebalanceReport {
        blocks_moved,
        bytes_moved,
        final_imbalance,
    })
}

fn node_loads(dfs: &Dfs) -> Vec<(NodeId, u64)> {
    dfs.cluster()
        .available_nodes()
        .into_iter()
        .map(|n| (n, dfs.bytes_on_node(n)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfs::{Dfs, DfsConfig};
    use earl_cluster::{Cluster, CostModel};

    /// Builds a deliberately skewed DFS: replication 1 and a placement that ends
    /// up uneven because files are written while some nodes are "failed".
    fn skewed_dfs() -> Dfs {
        let cluster = Cluster::builder()
            .nodes(4)
            .cost_model(CostModel::free())
            .build()
            .unwrap();
        let dfs = Dfs::new(
            cluster,
            DfsConfig {
                block_size: 32,
                replication: 1,
                io_chunk: 32,
            },
        )
        .unwrap();
        // Fail nodes 2 and 3 so all data lands on nodes 0 and 1...
        dfs.cluster().fail_node(NodeId(2)).unwrap();
        dfs.cluster().fail_node(NodeId(3)).unwrap();
        dfs.write_lines("/skew", (0..200).map(|i| format!("record-{i:05}")))
            .unwrap();
        // ...then repair them, leaving an imbalanced cluster.
        dfs.cluster().repair_node(NodeId(2)).unwrap();
        dfs.cluster().repair_node(NodeId(3)).unwrap();
        dfs
    }

    #[test]
    fn rebalance_reduces_imbalance() {
        let dfs = skewed_dfs();
        let before: Vec<u64> = dfs
            .cluster()
            .available_nodes()
            .iter()
            .map(|n| dfs.bytes_on_node(*n))
            .collect();
        assert_eq!(before[2], 0, "nodes repaired after writing start empty");
        let report = rebalance(&dfs, 0.25).unwrap();
        assert!(report.blocks_moved > 0);
        assert!(report.bytes_moved > 0);
        let after: Vec<u64> = dfs
            .cluster()
            .available_nodes()
            .iter()
            .map(|n| dfs.bytes_on_node(*n))
            .collect();
        let spread_before = before.iter().max().unwrap() - before.iter().min().unwrap();
        let spread_after = after.iter().max().unwrap() - after.iter().min().unwrap();
        assert!(
            spread_after < spread_before,
            "rebalancing must narrow the spread"
        );
        // Data must still be intact.
        assert_eq!(
            dfs.read_all_lines(earl_cluster::Phase::Load, "/skew")
                .unwrap()
                .len(),
            200
        );
    }

    #[test]
    fn balanced_cluster_is_a_noop() {
        let cluster = Cluster::builder()
            .nodes(2)
            .cost_model(CostModel::free())
            .build()
            .unwrap();
        let dfs = Dfs::new(
            cluster,
            DfsConfig {
                block_size: 16,
                replication: 1,
                io_chunk: 16,
            },
        )
        .unwrap();
        dfs.write_lines("/even", (0..64).map(|i| format!("{i:04}")))
            .unwrap();
        let report = rebalance(&dfs, 0.5).unwrap();
        // Placement already targets the least-loaded node, so little or nothing moves.
        assert!(report.final_imbalance <= 0.5 + 1e-9);
    }

    #[test]
    fn empty_dfs_rebalance_is_safe() {
        let dfs = Dfs::for_tests();
        let report = rebalance(&dfs, 0.1).unwrap();
        assert_eq!(report.blocks_moved, 0);
        assert_eq!(report.final_imbalance, 0.0);
    }
}
