//! DataNode block storage.
//!
//! Block payloads are held once in a shared [`BlockStore`]; each DataNode keeps
//! the *set* of blocks it hosts.  This keeps the memory footprint of a
//! replication factor of 3 at 1× the data while still modelling replica
//! placement, locality, and data loss on node failure faithfully.

use std::collections::{HashMap, HashSet};

use bytes::Bytes;
use earl_cluster::NodeId;

use crate::block::BlockId;
use crate::error::DfsError;
use crate::Result;

/// Shared storage of block payloads.
#[derive(Debug, Default)]
pub struct BlockStore {
    payloads: HashMap<BlockId, Bytes>,
}

impl BlockStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a block payload.
    pub fn put(&mut self, id: BlockId, data: Bytes) {
        self.payloads.insert(id, data);
    }

    /// Fetches a block payload.
    pub fn get(&self, id: BlockId) -> Result<Bytes> {
        self.payloads
            .get(&id)
            .cloned()
            .ok_or(DfsError::BlockUnavailable(id))
    }

    /// Removes a block payload.
    pub fn remove(&mut self, id: BlockId) {
        self.payloads.remove(&id);
    }

    /// Number of stored blocks.
    pub fn len(&self) -> usize {
        self.payloads.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.payloads.is_empty()
    }

    /// Total payload bytes held.
    pub fn total_bytes(&self) -> u64 {
        self.payloads.values().map(|b| b.len() as u64).sum()
    }
}

/// Per-node view of which blocks it hosts.
#[derive(Debug, Default)]
pub struct DataNodeDirectory {
    hosted: HashMap<NodeId, HashSet<BlockId>>,
}

impl DataNodeDirectory {
    /// Creates an empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that `node` hosts a replica of `block`.
    pub fn add(&mut self, node: NodeId, block: BlockId) {
        self.hosted.entry(node).or_default().insert(block);
    }

    /// Removes the replica of `block` from `node`.
    pub fn remove(&mut self, node: NodeId, block: BlockId) {
        if let Some(set) = self.hosted.get_mut(&node) {
            set.remove(&block);
        }
    }

    /// Whether `node` hosts `block`.
    pub fn hosts(&self, node: NodeId, block: BlockId) -> bool {
        self.hosted
            .get(&node)
            .is_some_and(|set| set.contains(&block))
    }

    /// Blocks hosted by `node`.
    pub fn blocks_on(&self, node: NodeId) -> Vec<BlockId> {
        self.hosted
            .get(&node)
            .map(|set| set.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Number of blocks hosted by `node`.
    pub fn count_on(&self, node: NodeId) -> usize {
        self.hosted.get(&node).map(|set| set.len()).unwrap_or(0)
    }

    /// Drops every replica hosted by `node` (node failure), returning the
    /// affected block ids.
    pub fn drop_node(&mut self, node: NodeId) -> Vec<BlockId> {
        self.hosted
            .remove(&node)
            .map(|set| set.into_iter().collect())
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_store_round_trip() {
        let mut store = BlockStore::new();
        assert!(store.is_empty());
        store.put(BlockId(1), Bytes::from_static(b"hello"));
        assert_eq!(store.len(), 1);
        assert_eq!(store.total_bytes(), 5);
        assert_eq!(store.get(BlockId(1)).unwrap(), Bytes::from_static(b"hello"));
        store.remove(BlockId(1));
        assert!(matches!(
            store.get(BlockId(1)),
            Err(DfsError::BlockUnavailable(_))
        ));
    }

    #[test]
    fn directory_tracks_replicas() {
        let mut dir = DataNodeDirectory::new();
        dir.add(NodeId(0), BlockId(1));
        dir.add(NodeId(0), BlockId(2));
        dir.add(NodeId(1), BlockId(1));
        assert!(dir.hosts(NodeId(0), BlockId(1)));
        assert!(!dir.hosts(NodeId(1), BlockId(2)));
        assert_eq!(dir.count_on(NodeId(0)), 2);
        dir.remove(NodeId(0), BlockId(2));
        assert_eq!(dir.count_on(NodeId(0)), 1);
        let mut dropped = dir.drop_node(NodeId(0));
        dropped.sort();
        assert_eq!(dropped, vec![BlockId(1)]);
        assert_eq!(dir.count_on(NodeId(0)), 0);
        assert!(dir.hosts(NodeId(1), BlockId(1)));
    }

    #[test]
    fn unknown_node_has_no_blocks() {
        let dir = DataNodeDirectory::new();
        assert!(dir.blocks_on(NodeId(9)).is_empty());
        assert_eq!(dir.count_on(NodeId(9)), 0);
    }
}
