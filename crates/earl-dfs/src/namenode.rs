//! The NameNode: file-system metadata.
//!
//! Like HDFS (and GFS, which the paper cites), metadata is kept separately from
//! application data: the NameNode knows which blocks make up each file and on
//! which DataNodes each block's replicas live, but never touches block
//! contents.

use std::collections::{BTreeMap, HashMap};

use earl_cluster::NodeId;
use serde::{Deserialize, Serialize};

use crate::block::{BlockId, BlockMeta};
use crate::error::DfsError;
use crate::file::{DfsPath, FileStatus};
use crate::Result;

/// Where the replicas of one block live.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockLocation {
    /// The block.
    pub block: BlockMeta,
    /// The nodes holding a replica.
    pub replicas: Vec<NodeId>,
}

/// Metadata for one file.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FileMeta {
    /// Blocks in file order.
    pub blocks: Vec<BlockMeta>,
    /// Total file length in bytes.
    pub len: u64,
    /// Block size used for this file.
    pub block_size: u64,
    /// Replication factor requested for this file.
    pub replication: u32,
    /// Number of newline-delimited records, if tracked.
    pub num_records: Option<u64>,
}

/// The metadata server.
#[derive(Debug, Default)]
pub struct NameNode {
    files: BTreeMap<DfsPath, FileMeta>,
    locations: HashMap<BlockId, Vec<NodeId>>,
    next_block_id: u64,
}

impl NameNode {
    /// Creates an empty namespace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a fresh block id.
    pub fn allocate_block_id(&mut self) -> BlockId {
        let id = BlockId(self.next_block_id);
        self.next_block_id += 1;
        id
    }

    /// Registers a new (complete) file.
    pub fn create_file(&mut self, path: DfsPath, meta: FileMeta) -> Result<()> {
        if self.files.contains_key(&path) {
            return Err(DfsError::FileExists(path.to_string()));
        }
        self.files.insert(path, meta);
        Ok(())
    }

    /// Whether the path exists.
    pub fn exists(&self, path: &DfsPath) -> bool {
        self.files.contains_key(path)
    }

    /// Looks up a file's metadata.
    pub fn file(&self, path: &DfsPath) -> Result<&FileMeta> {
        self.files
            .get(path)
            .ok_or_else(|| DfsError::FileNotFound(path.to_string()))
    }

    /// Removes a file, returning its block ids so the DataNodes can drop them.
    pub fn delete_file(&mut self, path: &DfsPath) -> Result<Vec<BlockId>> {
        let meta = self
            .files
            .remove(path)
            .ok_or_else(|| DfsError::FileNotFound(path.to_string()))?;
        let ids: Vec<BlockId> = meta.blocks.iter().map(|b| b.id).collect();
        for id in &ids {
            self.locations.remove(id);
        }
        Ok(ids)
    }

    /// Lists all files.
    pub fn list(&self) -> Vec<FileStatus> {
        self.files
            .iter()
            .map(|(path, meta)| FileStatus {
                path: path.clone(),
                len: meta.len,
                num_blocks: meta.blocks.len(),
                block_size: meta.block_size,
                replication: meta.replication,
                num_records: meta.num_records,
            })
            .collect()
    }

    /// Records the replica locations of a block.
    pub fn set_locations(&mut self, block: BlockId, nodes: Vec<NodeId>) {
        self.locations.insert(block, nodes);
    }

    /// Replica locations of a block (empty if unknown).
    pub fn locations(&self, block: BlockId) -> &[NodeId] {
        self.locations
            .get(&block)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Removes a node from every block's replica list (called when the node
    /// fails).  Returns the blocks that now have **no** replicas.
    pub fn drop_node(&mut self, node: NodeId) -> Vec<BlockId> {
        let mut orphaned = Vec::new();
        for (block, replicas) in self.locations.iter_mut() {
            replicas.retain(|&n| n != node);
            if replicas.is_empty() {
                orphaned.push(*block);
            }
        }
        orphaned
    }

    /// Adds a replica location for a block (used by the rebalancer and
    /// re-replication).
    pub fn add_replica(&mut self, block: BlockId, node: NodeId) {
        let entry = self.locations.entry(block).or_default();
        if !entry.contains(&node) {
            entry.push(node);
        }
    }

    /// Removes one replica location for a block.
    pub fn remove_replica(&mut self, block: BlockId, node: NodeId) {
        if let Some(entry) = self.locations.get_mut(&block) {
            entry.retain(|&n| n != node);
        }
    }

    /// Block locations (metadata + replicas) for a whole file.
    pub fn file_block_locations(&self, path: &DfsPath) -> Result<Vec<BlockLocation>> {
        let meta = self.file(path)?;
        Ok(meta
            .blocks
            .iter()
            .map(|b| BlockLocation {
                block: b.clone(),
                replicas: self.locations(b.id).to_vec(),
            })
            .collect())
    }

    /// Iterates over every (path, meta) pair.
    pub fn iter_files(&self) -> impl Iterator<Item = (&DfsPath, &FileMeta)> {
        self.files.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta_with_blocks(nn: &mut NameNode, nblocks: usize, block_size: u64) -> FileMeta {
        let blocks: Vec<BlockMeta> = (0..nblocks)
            .map(|i| BlockMeta {
                id: nn.allocate_block_id(),
                file_offset: i as u64 * block_size,
                len: block_size,
            })
            .collect();
        FileMeta {
            len: nblocks as u64 * block_size,
            blocks,
            block_size,
            replication: 3,
            num_records: None,
        }
    }

    #[test]
    fn create_lookup_delete() {
        let mut nn = NameNode::new();
        let path = DfsPath::new("/a");
        let meta = meta_with_blocks(&mut nn, 3, 10);
        let ids: Vec<BlockId> = meta.blocks.iter().map(|b| b.id).collect();
        nn.create_file(path.clone(), meta).unwrap();
        assert!(nn.exists(&path));
        assert_eq!(nn.file(&path).unwrap().blocks.len(), 3);
        assert_eq!(nn.list().len(), 1);
        let duplicate = meta_with_blocks(&mut nn, 1, 10);
        assert!(matches!(
            nn.create_file(path.clone(), duplicate),
            Err(DfsError::FileExists(_))
        ));
        let deleted = nn.delete_file(&path).unwrap();
        assert_eq!(deleted, ids);
        assert!(!nn.exists(&path));
        assert!(matches!(nn.file(&path), Err(DfsError::FileNotFound(_))));
    }

    #[test]
    fn block_ids_are_unique_and_monotonic() {
        let mut nn = NameNode::new();
        let a = nn.allocate_block_id();
        let b = nn.allocate_block_id();
        assert_ne!(a, b);
        assert!(b.0 > a.0);
    }

    #[test]
    fn replica_management() {
        let mut nn = NameNode::new();
        let blk = nn.allocate_block_id();
        nn.set_locations(blk, vec![NodeId(0), NodeId(1)]);
        assert_eq!(nn.locations(blk), &[NodeId(0), NodeId(1)]);
        nn.add_replica(blk, NodeId(2));
        nn.add_replica(blk, NodeId(2)); // idempotent
        assert_eq!(nn.locations(blk).len(), 3);
        nn.remove_replica(blk, NodeId(0));
        assert_eq!(nn.locations(blk), &[NodeId(1), NodeId(2)]);
        // Dropping both remaining nodes orphans the block.
        nn.drop_node(NodeId(1));
        let orphans = nn.drop_node(NodeId(2));
        assert_eq!(orphans, vec![blk]);
    }

    #[test]
    fn file_block_locations_resolves_replicas() {
        let mut nn = NameNode::new();
        let meta = meta_with_blocks(&mut nn, 2, 5);
        let ids: Vec<BlockId> = meta.blocks.iter().map(|b| b.id).collect();
        let path = DfsPath::new("/f");
        nn.create_file(path.clone(), meta).unwrap();
        nn.set_locations(ids[0], vec![NodeId(0)]);
        nn.set_locations(ids[1], vec![NodeId(1)]);
        let locs = nn.file_block_locations(&path).unwrap();
        assert_eq!(locs.len(), 2);
        assert_eq!(locs[0].replicas, vec![NodeId(0)]);
        assert_eq!(locs[1].replicas, vec![NodeId(1)]);
    }

    #[test]
    fn unknown_block_has_no_locations() {
        let nn = NameNode::new();
        assert!(nn.locations(BlockId(99)).is_empty());
    }
}
