//! The DFS facade: create, write, read, list, delete, split.

use std::sync::Arc;

use bytes::Bytes;
use earl_cluster::{Cluster, NodeId, Phase};
use parking_lot::RwLock;

use crate::block::{BlockId, BlockMeta, DEFAULT_BLOCK_SIZE};
use crate::datanode::{BlockStore, DataNodeDirectory};
use crate::error::DfsError;
use crate::file::{DfsPath, FileStatus};
use crate::line_reader::LineRecordReader;
use crate::namenode::{BlockLocation, FileMeta, NameNode};
use crate::split::{compute_split_ranges, InputSplit};
use crate::Result;

/// Configuration of a DFS instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DfsConfig {
    /// Block size in bytes (HDFS default: 64 MB).
    pub block_size: u64,
    /// Replication factor (HDFS default: 3).
    pub replication: u32,
    /// Chunk size used by buffered line readers.
    pub io_chunk: u64,
}

impl Default for DfsConfig {
    fn default() -> Self {
        Self {
            block_size: DEFAULT_BLOCK_SIZE,
            replication: 3,
            io_chunk: 64 * 1024,
        }
    }
}

impl DfsConfig {
    /// A configuration with small blocks, convenient for unit tests.
    pub fn small_blocks(block_size: u64) -> Self {
        Self {
            block_size,
            replication: 2,
            io_chunk: 64,
        }
    }
}

/// Shared handle to a simulated distributed file system.
#[derive(Debug, Clone)]
pub struct Dfs {
    inner: Arc<DfsInner>,
}

#[derive(Debug)]
struct DfsInner {
    cluster: Cluster,
    config: DfsConfig,
    namenode: RwLock<NameNode>,
    store: RwLock<BlockStore>,
    directory: RwLock<DataNodeDirectory>,
    /// Where the previous read of each file ended, used to distinguish
    /// sequential reads (no seek charged) from random reads (seek charged).
    /// Open read-stream heads per file: a multiset of "end offsets" of
    /// previous reads.  A read starting at one of these offsets continues an
    /// existing stream (no seek); any other start opens a new stream (seek).
    /// Multiset semantics make the seek accounting commutative, so charges are
    /// identical no matter how concurrent readers interleave.
    read_cursors: RwLock<std::collections::HashMap<DfsPath, std::collections::HashMap<u64, u32>>>,
}

impl Dfs {
    /// Creates an empty DFS on the given cluster.
    pub fn new(cluster: Cluster, config: DfsConfig) -> Result<Self> {
        if config.block_size == 0 {
            return Err(DfsError::InvalidConfig("block_size must be > 0".into()));
        }
        if config.replication == 0 {
            return Err(DfsError::InvalidConfig("replication must be ≥ 1".into()));
        }
        Ok(Self {
            inner: Arc::new(DfsInner {
                cluster,
                config,
                namenode: RwLock::new(NameNode::new()),
                store: RwLock::new(BlockStore::new()),
                directory: RwLock::new(DataNodeDirectory::new()),
                read_cursors: RwLock::new(std::collections::HashMap::new()),
            }),
        })
    }

    /// A DFS on a single free-cost node with small blocks, for unit tests.
    pub fn for_tests() -> Self {
        Self::new(Cluster::for_tests(), DfsConfig::small_blocks(256)).expect("valid test config")
    }

    /// The cluster backing this DFS.
    pub fn cluster(&self) -> &Cluster {
        &self.inner.cluster
    }

    /// The configuration in effect.
    pub fn config(&self) -> &DfsConfig {
        &self.inner.config
    }

    // ----- writing ----------------------------------------------------------

    /// Opens a writer for a new file.  Fails if the path already exists.
    pub fn create(&self, path: impl Into<DfsPath>) -> Result<DfsWriter> {
        let path = path.into();
        if self.inner.namenode.read().exists(&path) {
            return Err(DfsError::FileExists(path.to_string()));
        }
        Ok(DfsWriter {
            dfs: self.clone(),
            path,
            buffer: Vec::with_capacity(self.inner.config.block_size.min(1 << 20) as usize),
            blocks: Vec::new(),
            bytes_written: 0,
            num_records: 0,
            closed: false,
        })
    }

    /// Convenience: writes an entire file from an iterator of lines (a trailing
    /// `\n` is appended to each line).
    pub fn write_lines<I, S>(&self, path: impl Into<DfsPath>, lines: I) -> Result<FileStatus>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut writer = self.create(path)?;
        for line in lines {
            writer.write_line(line.as_ref())?;
        }
        writer.close()
    }

    // ----- metadata ---------------------------------------------------------

    /// Whether a file exists.
    pub fn exists(&self, path: impl Into<DfsPath>) -> bool {
        self.inner.namenode.read().exists(&path.into())
    }

    /// Status of a file.
    pub fn status(&self, path: impl Into<DfsPath>) -> Result<FileStatus> {
        let path = path.into();
        let nn = self.inner.namenode.read();
        let meta = nn.file(&path)?;
        Ok(FileStatus {
            path,
            len: meta.len,
            num_blocks: meta.blocks.len(),
            block_size: meta.block_size,
            replication: meta.replication,
            num_records: meta.num_records,
        })
    }

    /// Lists all files.
    pub fn list(&self) -> Vec<FileStatus> {
        self.inner.namenode.read().list()
    }

    /// Deletes a file and frees its blocks.
    pub fn delete(&self, path: impl Into<DfsPath>) -> Result<()> {
        let path = path.into();
        let blocks = self.inner.namenode.write().delete_file(&path)?;
        // Drop the file's read-stream heads: a new file at the same path must
        // start with cold (seek-charged) reads, not inherit stale heads.
        self.inner.read_cursors.write().remove(&path);
        let mut store = self.inner.store.write();
        let mut dir = self.inner.directory.write();
        for block in blocks {
            let size = store.get(block).map(|b| b.len() as u64).unwrap_or(0);
            store.remove(block);
            for node in self.inner.cluster.nodes() {
                if dir.hosts(node.id(), block) {
                    dir.remove(node.id(), block);
                    let _ = self.inner.cluster.record_block_removed(node.id(), size);
                }
            }
        }
        Ok(())
    }

    /// Replica locations of every block of a file.
    pub fn block_locations(&self, path: impl Into<DfsPath>) -> Result<Vec<BlockLocation>> {
        self.inner
            .namenode
            .read()
            .file_block_locations(&path.into())
    }

    /// Bytes of block data stored on a node according to the DFS directory.
    pub fn bytes_on_node(&self, node: NodeId) -> u64 {
        let dir = self.inner.directory.read();
        let store = self.inner.store.read();
        dir.blocks_on(node)
            .iter()
            .map(|b| store.get(*b).map(|d| d.len() as u64).unwrap_or(0))
            .sum()
    }

    // ----- reading ----------------------------------------------------------

    /// Reads `len` bytes starting at `offset`.  A disk seek is charged only
    /// when the read is *not* sequential with the previous read of the same
    /// file (mirroring real disk behaviour: streaming scans pay the seek once,
    /// random line probes pay it every time).  Reading past EOF is an error;
    /// reading a zero-length range returns an empty buffer.
    pub fn read_range(
        &self,
        phase: Phase,
        path: impl Into<DfsPath>,
        offset: u64,
        len: u64,
    ) -> Result<Bytes> {
        let path = path.into();
        let (file_len, blocks) = {
            let nn = self.inner.namenode.read();
            let meta = nn.file(&path)?;
            (meta.len, meta.blocks.clone())
        };
        if offset > file_len || offset + len > file_len {
            return Err(DfsError::OutOfBounds {
                offset: offset + len,
                len: file_len,
            });
        }
        if len == 0 {
            return Ok(Bytes::new());
        }
        let mut out = Vec::with_capacity(len as usize);
        let end = offset + len;
        for block in blocks
            .iter()
            .filter(|b| b.file_offset < end && b.file_offset + b.len > offset)
        {
            self.ensure_live_replica(block.id)?;
            let data = self.inner.store.read().get(block.id)?;
            let from = offset.saturating_sub(block.file_offset) as usize;
            let to = (end.min(block.file_offset + block.len) - block.file_offset) as usize;
            out.extend_from_slice(&data[from..to]);
        }
        let sequential = {
            // Bound on retained stream heads per file.  Streaming readers keep
            // the multiset size constant (each read consumes one head and
            // inserts one), so the cap is only approached by long runs of
            // random probes — which are sequential driver code, keeping the
            // cap deterministic.  At the cap, new heads are simply not
            // recorded: later reads at those offsets charge a seek, which is
            // what a cold random probe pays anyway.
            const MAX_STREAM_HEADS: usize = 4096;
            let mut cursors = self.inner.read_cursors.write();
            let heads = cursors.entry(path).or_default();
            let sequential = match heads.get_mut(&offset) {
                Some(count) if *count > 0 => {
                    *count -= 1;
                    if *count == 0 {
                        heads.remove(&offset);
                    }
                    true
                }
                _ => false,
            };
            if heads.len() < MAX_STREAM_HEADS {
                *heads.entry(end).or_insert(0) += 1;
            }
            sequential
        };
        if sequential {
            self.inner.cluster.charge_disk_read(phase, len);
        } else {
            self.inner.cluster.charge_disk_seek_read(phase, len);
        }
        Ok(Bytes::from(out))
    }

    /// Reads an entire file.
    pub fn read_full(&self, phase: Phase, path: impl Into<DfsPath>) -> Result<Bytes> {
        let path = path.into();
        let len = self.status(path.clone())?.len;
        self.read_range(phase, path, 0, len)
    }

    /// Reads an entire file and splits it into lines (without trailing `\n`).
    pub fn read_all_lines(&self, phase: Phase, path: impl Into<DfsPath>) -> Result<Vec<String>> {
        let bytes = self.read_full(phase, path)?;
        let text = String::from_utf8_lossy(&bytes);
        Ok(text.lines().map(str::to_owned).collect())
    }

    /// Exports a file's `(line-start byte offset, line)` records without
    /// charging the cost model or moving stream cursors — the provisioning
    /// read used to ship a dataset to remote workers **once at set-up time**
    /// (modelling DFS block placement, which happens before any job runs).
    /// Job-time messages then address these records by offset only; shipping
    /// raw input at job time would both distort the simulated accounting and
    /// defeat the point of early approximation.
    pub fn export_records(&self, path: impl Into<DfsPath>) -> Result<Vec<(u64, String)>> {
        let path = path.into();
        let blocks = {
            let nn = self.inner.namenode.read();
            let mut blocks = nn.file(&path)?.blocks.clone();
            blocks.sort_by_key(|b| b.file_offset);
            blocks
        };
        let mut bytes = Vec::new();
        {
            let store = self.inner.store.read();
            for block in &blocks {
                bytes.extend_from_slice(&store.get(block.id)?);
            }
        }
        let mut records = Vec::new();
        let mut line_start = 0usize;
        for (i, &b) in bytes.iter().enumerate() {
            if b == b'\n' {
                records.push((
                    line_start as u64,
                    String::from_utf8_lossy(&bytes[line_start..i]).into_owned(),
                ));
                line_start = i + 1;
            }
        }
        if line_start < bytes.len() {
            records.push((
                line_start as u64,
                String::from_utf8_lossy(&bytes[line_start..]).into_owned(),
            ));
        }
        Ok(records)
    }

    /// Reads the single line containing or starting after `offset`, mirroring
    /// Hadoop's `LineRecordReader` behaviour used by pre-map sampling
    /// (Algorithm 2): if `offset` is not at a line boundary the reader skips
    /// forward to the start of the next line.  Returns `(line_start, line)` or
    /// `None` if no complete line starts at or after `offset`.
    pub fn read_line_at(
        &self,
        phase: Phase,
        path: impl Into<DfsPath>,
        offset: u64,
    ) -> Result<Option<(u64, String)>> {
        let path = path.into();
        let file_len = self.status(path.clone())?.len;
        if offset >= file_len {
            return Ok(None);
        }
        let chunk = self.inner.config.io_chunk.max(16);
        // Buffered scan starting one byte before `offset` (so the previous
        // byte tells us whether `offset` is already a line start).  Reads
        // continue sequentially from there, so each probe costs one seek.
        let read_start = offset.saturating_sub(1);
        let mut buf: Vec<u8> = Vec::new();
        let mut buf_start = read_start;
        let mut fetched_until = read_start;
        let fetch_more = |buf: &mut Vec<u8>, fetched_until: &mut u64| -> Result<bool> {
            if *fetched_until >= file_len {
                return Ok(false);
            }
            let len = chunk.min(file_len - *fetched_until);
            let data = self.read_range(phase, path.clone(), *fetched_until, len)?;
            buf.extend_from_slice(&data);
            *fetched_until += len;
            Ok(true)
        };

        // Determine the line start.
        let mut line_start = offset;
        if offset > 0 {
            if buf.is_empty() && !fetch_more(&mut buf, &mut fetched_until)? {
                return Ok(None);
            }
            if buf[0] != b'\n' {
                // Skip forward to the byte after the next newline.
                let mut scan_pos = 1usize; // relative to buf_start
                loop {
                    if let Some(rel) = buf[scan_pos..].iter().position(|b| *b == b'\n') {
                        line_start = buf_start + (scan_pos + rel) as u64 + 1;
                        break;
                    }
                    scan_pos = buf.len();
                    if !fetch_more(&mut buf, &mut fetched_until)? {
                        return Ok(None);
                    }
                }
                if line_start >= file_len {
                    return Ok(None);
                }
            }
        } else {
            buf_start = 0;
        }

        // Read the line starting at line_start, continuing the sequential scan.
        let mut line = Vec::new();
        let mut pos = line_start;
        loop {
            while pos >= fetched_until {
                if !fetch_more(&mut buf, &mut fetched_until)? {
                    // EOF before a newline: the remainder is the (final) line.
                    return Ok(Some((
                        line_start,
                        String::from_utf8_lossy(&line).into_owned(),
                    )));
                }
            }
            let rel = (pos - buf_start) as usize;
            match buf[rel..].iter().position(|b| *b == b'\n') {
                Some(nl) => {
                    line.extend_from_slice(&buf[rel..rel + nl]);
                    break;
                }
                None => {
                    line.extend_from_slice(&buf[rel..]);
                    pos = fetched_until;
                }
            }
        }
        Ok(Some((
            line_start,
            String::from_utf8_lossy(&line).into_owned(),
        )))
    }

    /// Opens a buffered line reader over an input split.
    pub fn open_split(&self, split: InputSplit, phase: Phase) -> LineRecordReader {
        LineRecordReader::new(self.clone(), split, phase)
    }

    // ----- splits -----------------------------------------------------------

    /// Computes logical input splits of `split_size` bytes for a file.
    pub fn splits(&self, path: impl Into<DfsPath>, split_size: u64) -> Result<Vec<InputSplit>> {
        let path = path.into();
        let nn = self.inner.namenode.read();
        let meta = nn.file(&path)?;
        let ranges = compute_split_ranges(meta.len, split_size);
        Ok(ranges
            .into_iter()
            .enumerate()
            .map(|(index, (start, length))| {
                // Locality: the replicas of the block containing the split start.
                let locations = meta
                    .blocks
                    .iter()
                    .find(|b| b.contains(start))
                    .map(|b| nn.locations(b.id).to_vec())
                    .unwrap_or_default();
                InputSplit {
                    path: path.clone(),
                    start,
                    length,
                    locations,
                    index,
                }
            })
            .collect())
    }

    /// Computes splits using the configured block size as the split size (the
    /// common Hadoop default of one split per block).
    pub fn default_splits(&self, path: impl Into<DfsPath>) -> Result<Vec<InputSplit>> {
        let block_size = self.inner.config.block_size;
        self.splits(path, block_size)
    }

    // ----- failure handling -------------------------------------------------

    /// Synchronises DFS metadata with cluster node failures: replicas on failed
    /// nodes are dropped.  Returns blocks that lost **all** replicas (their
    /// data is gone until re-written).
    pub fn reconcile_failures(&self) -> Vec<BlockId> {
        let failed = self.inner.cluster.failed_nodes();
        if failed.is_empty() {
            return Vec::new();
        }
        let mut nn = self.inner.namenode.write();
        let mut dir = self.inner.directory.write();
        let mut orphaned = Vec::new();
        for node in failed {
            for block in dir.drop_node(node) {
                nn.remove_replica(block, node);
                if nn.locations(block).is_empty() && !orphaned.contains(&block) {
                    orphaned.push(block);
                }
            }
        }
        // Drop payloads of fully-orphaned blocks to model data loss.
        let mut store = self.inner.store.write();
        for block in &orphaned {
            store.remove(*block);
        }
        orphaned
    }

    /// Fraction of a file's bytes still readable (i.e. in blocks with at least
    /// one live replica).  Used by the fault-tolerance experiments.
    pub fn readable_fraction(&self, path: impl Into<DfsPath>) -> Result<f64> {
        let path = path.into();
        let nn = self.inner.namenode.read();
        let meta = nn.file(&path)?;
        if meta.len == 0 {
            return Ok(1.0);
        }
        let live_bytes: u64 = meta
            .blocks
            .iter()
            .filter(|b| {
                nn.locations(b.id).iter().any(|n| {
                    self.inner
                        .cluster
                        .node(*n)
                        .map(|n| n.is_available())
                        .unwrap_or(false)
                })
            })
            .map(|b| b.len)
            .sum();
        Ok(live_bytes as f64 / meta.len as f64)
    }

    // ----- internals --------------------------------------------------------

    fn ensure_live_replica(&self, block: BlockId) -> Result<()> {
        let nn = self.inner.namenode.read();
        let replicas = nn.locations(block);
        if replicas.is_empty() {
            // Files written before any failure bookkeeping: accept if payload exists.
            return self.inner.store.read().get(block).map(|_| ());
        }
        let any_live = replicas.iter().any(|n| {
            self.inner
                .cluster
                .node(*n)
                .map(|n| n.is_available())
                .unwrap_or(false)
        });
        if any_live {
            Ok(())
        } else {
            Err(DfsError::BlockUnavailable(block))
        }
    }

    fn place_replicas(&self, count: u32) -> Result<Vec<NodeId>> {
        let available = self.inner.cluster.available_nodes();
        if available.is_empty() {
            return Err(DfsError::Cluster(
                earl_cluster::ClusterError::NoAvailableNodes,
            ));
        }
        let count = (count as usize).min(available.len());
        // First replica on the least-loaded node, remaining replicas on random
        // distinct nodes — an approximation of HDFS placement plus the data
        // re-balancer the paper relies on for uniformity.
        let mut chosen = Vec::with_capacity(count);
        let first = self.inner.cluster.least_loaded_node()?;
        chosen.push(first);
        let mut remaining: Vec<NodeId> = available.into_iter().filter(|n| *n != first).collect();
        while chosen.len() < count && !remaining.is_empty() {
            let idx = self.inner.cluster.random_below(remaining.len() as u64) as usize;
            chosen.push(remaining.swap_remove(idx));
        }
        Ok(chosen)
    }

    fn commit_block(&self, data: Vec<u8>, file_offset: u64, phase: Phase) -> Result<BlockMeta> {
        let len = data.len() as u64;
        let replicas = self.place_replicas(self.inner.config.replication)?;
        let id = self.inner.namenode.write().allocate_block_id();
        self.inner.store.write().put(id, Bytes::from(data));
        // Charge the primary write plus pipeline transfers to the other replicas.
        self.inner.cluster.charge_disk_write(phase, len);
        for (i, node) in replicas.iter().enumerate() {
            if i > 0 {
                self.inner
                    .cluster
                    .charge_net_transfer(phase, replicas[0], *node, len);
                self.inner.cluster.charge_disk_write(phase, len);
            }
            self.inner.cluster.record_block_stored(*node, len)?;
            self.inner.directory.write().add(*node, id);
        }
        self.inner.namenode.write().set_locations(id, replicas);
        Ok(BlockMeta {
            id,
            file_offset,
            len,
        })
    }

    fn finish_file(
        &self,
        path: DfsPath,
        blocks: Vec<BlockMeta>,
        len: u64,
        num_records: u64,
    ) -> Result<FileStatus> {
        let meta = FileMeta {
            blocks,
            len,
            block_size: self.inner.config.block_size,
            replication: self.inner.config.replication,
            num_records: Some(num_records),
        };
        self.inner
            .namenode
            .write()
            .create_file(path.clone(), meta)?;
        self.status(path)
    }

    pub(crate) fn move_replica(&self, block: BlockId, from: NodeId, to: NodeId) -> Result<()> {
        let size = self.inner.store.read().get(block)?.len() as u64;
        {
            let dir = self.inner.directory.read();
            if !dir.hosts(from, block) || dir.hosts(to, block) {
                return Ok(()); // nothing to do
            }
        }
        self.inner
            .cluster
            .charge_net_transfer(Phase::Other, from, to, size);
        self.inner.cluster.charge_disk_write(Phase::Other, size);
        let mut dir = self.inner.directory.write();
        dir.remove(from, block);
        dir.add(to, block);
        let mut nn = self.inner.namenode.write();
        nn.remove_replica(block, from);
        nn.add_replica(block, to);
        self.inner.cluster.record_block_removed(from, size)?;
        self.inner.cluster.record_block_stored(to, size)?;
        Ok(())
    }

    pub(crate) fn blocks_on_node(&self, node: NodeId) -> Vec<BlockId> {
        self.inner.directory.read().blocks_on(node)
    }

    pub(crate) fn block_size_of(&self, block: BlockId) -> u64 {
        self.inner
            .store
            .read()
            .get(block)
            .map(|b| b.len() as u64)
            .unwrap_or(0)
    }
}

/// Streaming writer that cuts a file into blocks as data arrives.
#[derive(Debug)]
pub struct DfsWriter {
    dfs: Dfs,
    path: DfsPath,
    buffer: Vec<u8>,
    blocks: Vec<BlockMeta>,
    bytes_written: u64,
    num_records: u64,
    closed: bool,
}

impl DfsWriter {
    /// Appends raw bytes.
    pub fn write_bytes(&mut self, data: &[u8]) -> Result<()> {
        self.buffer.extend_from_slice(data);
        self.bytes_written += data.len() as u64;
        let block_size = self.dfs.inner.config.block_size as usize;
        while self.buffer.len() >= block_size {
            let rest = self.buffer.split_off(block_size);
            let full = std::mem::replace(&mut self.buffer, rest);
            let offset = self.blocks.iter().map(|b| b.len).sum();
            let meta = self.dfs.commit_block(full, offset, Phase::Output)?;
            self.blocks.push(meta);
        }
        Ok(())
    }

    /// Appends one newline-terminated record.
    pub fn write_line(&mut self, line: &str) -> Result<()> {
        self.num_records += 1;
        self.write_bytes(line.as_bytes())?;
        self.write_bytes(b"\n")
    }

    /// Bytes written so far (including buffered, un-committed bytes).
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Records written so far.
    pub fn records_written(&self) -> u64 {
        self.num_records
    }

    /// Flushes the remaining buffer and registers the file with the NameNode.
    pub fn close(mut self) -> Result<FileStatus> {
        if !self.buffer.is_empty() {
            let data = std::mem::take(&mut self.buffer);
            let offset = self.blocks.iter().map(|b| b.len).sum();
            let meta = self.dfs.commit_block(data, offset, Phase::Output)?;
            self.blocks.push(meta);
        }
        self.closed = true;
        let blocks = std::mem::take(&mut self.blocks);
        self.dfs.finish_file(
            self.path.clone(),
            blocks,
            self.bytes_written,
            self.num_records,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dfs_with(block_size: u64, nodes: u32) -> Dfs {
        let cluster = Cluster::builder()
            .nodes(nodes)
            .cost_model(earl_cluster::CostModel::free())
            .build()
            .unwrap();
        Dfs::new(
            cluster,
            DfsConfig {
                block_size,
                replication: 2,
                io_chunk: 32,
            },
        )
        .unwrap()
    }

    #[test]
    fn deleted_file_does_not_leak_read_stream_heads() {
        let cluster = Cluster::builder()
            .nodes(2)
            .cost_model(earl_cluster::CostModel::commodity_2012())
            .build()
            .unwrap();
        let dfs = Dfs::new(
            cluster.clone(),
            DfsConfig {
                block_size: 1 << 12,
                replication: 1,
                io_chunk: 64,
            },
        )
        .unwrap();
        dfs.write_lines("/heads", ["0123456789abcdef"]).unwrap();
        dfs.read_range(Phase::Load, "/heads", 0, 10).unwrap();
        // Continuation of the stream: sequential, no seek surcharge.
        let t0 = cluster.elapsed();
        dfs.read_range(Phase::Load, "/heads", 10, 5).unwrap();
        let sequential_cost = cluster.elapsed() - t0;

        // Delete and recreate the path: the old stream heads must be gone, so
        // the same read is a cold probe again and pays the seek.
        dfs.delete("/heads").unwrap();
        dfs.write_lines("/heads", ["0123456789abcdef"]).unwrap();
        let t1 = cluster.elapsed();
        dfs.read_range(Phase::Load, "/heads", 10, 5).unwrap();
        let cold_cost = cluster.elapsed() - t1;
        assert!(
            cold_cost > sequential_cost,
            "recreated file inherited stale stream heads: cold {cold_cost} vs sequential {sequential_cost}"
        );
    }

    #[test]
    fn invalid_configs_rejected() {
        let cluster = Cluster::for_tests();
        assert!(Dfs::new(
            cluster.clone(),
            DfsConfig {
                block_size: 0,
                replication: 1,
                io_chunk: 8
            }
        )
        .is_err());
        assert!(Dfs::new(
            cluster,
            DfsConfig {
                block_size: 8,
                replication: 0,
                io_chunk: 8
            }
        )
        .is_err());
    }

    #[test]
    fn write_read_round_trip() {
        let dfs = dfs_with(16, 3);
        let lines: Vec<String> = (0..20).map(|i| format!("record-{i:03}")).collect();
        let status = dfs.write_lines("/data", &lines).unwrap();
        assert_eq!(status.num_records, Some(20));
        assert!(
            status.num_blocks > 1,
            "small block size must produce several blocks"
        );
        let read_back = dfs.read_all_lines(Phase::Load, "/data").unwrap();
        assert_eq!(read_back, lines);
    }

    #[test]
    fn read_range_and_bounds() {
        let dfs = dfs_with(8, 2);
        dfs.write_lines("/f", ["abc", "defg"]).unwrap(); // "abc\ndefg\n" = 9 bytes
        let status = dfs.status("/f").unwrap();
        assert_eq!(status.len, 9);
        assert_eq!(
            &dfs.read_range(Phase::Load, "/f", 4, 4).unwrap()[..],
            b"defg"
        );
        assert_eq!(dfs.read_range(Phase::Load, "/f", 9, 0).unwrap().len(), 0);
        assert!(matches!(
            dfs.read_range(Phase::Load, "/f", 8, 5),
            Err(DfsError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn duplicate_create_fails() {
        let dfs = dfs_with(16, 1);
        dfs.write_lines("/x", ["a"]).unwrap();
        assert!(matches!(dfs.create("/x"), Err(DfsError::FileExists(_))));
        assert!(matches!(
            dfs.write_lines("/x", ["b"]),
            Err(DfsError::FileExists(_))
        ));
    }

    #[test]
    fn delete_frees_blocks_and_storage() {
        let dfs = dfs_with(8, 2);
        dfs.write_lines("/x", (0..50).map(|i| i.to_string()))
            .unwrap();
        let total_before: u64 = dfs.cluster().nodes().iter().map(|n| n.stored_bytes()).sum();
        assert!(total_before > 0);
        dfs.delete("/x").unwrap();
        assert!(!dfs.exists("/x"));
        let total_after: u64 = dfs.cluster().nodes().iter().map(|n| n.stored_bytes()).sum();
        assert_eq!(total_after, 0);
        assert!(matches!(dfs.delete("/x"), Err(DfsError::FileNotFound(_))));
    }

    #[test]
    fn splits_cover_file_and_have_locations() {
        let dfs = dfs_with(32, 3);
        dfs.write_lines("/s", (0..100).map(|i| format!("line{i}")))
            .unwrap();
        let status = dfs.status("/s").unwrap();
        let splits = dfs.splits("/s", 64).unwrap();
        let covered: u64 = splits.iter().map(|s| s.length).sum();
        assert_eq!(covered, status.len);
        for s in &splits {
            assert!(
                !s.locations.is_empty(),
                "splits should carry replica locations"
            );
        }
        let default_splits = dfs.default_splits("/s").unwrap();
        assert!(!default_splits.is_empty());
    }

    #[test]
    fn read_line_at_backtracks_to_line_start() {
        let dfs = dfs_with(64, 1);
        dfs.write_lines("/l", ["alpha", "bravo", "charlie"])
            .unwrap();
        // offset 0 → first line
        assert_eq!(
            dfs.read_line_at(Phase::Load, "/l", 0).unwrap(),
            Some((0, "alpha".into()))
        );
        // offset in the middle of "alpha" → skip to "bravo" (starts at 6)
        assert_eq!(
            dfs.read_line_at(Phase::Load, "/l", 2).unwrap(),
            Some((6, "bravo".into()))
        );
        // offset exactly at a line start → that line
        assert_eq!(
            dfs.read_line_at(Phase::Load, "/l", 6).unwrap(),
            Some((6, "bravo".into()))
        );
        // offset inside the final line → no following line, but the trailing
        // newline means the scan lands exactly at EOF → None
        assert_eq!(dfs.read_line_at(Phase::Load, "/l", 15).unwrap(), None);
        // offset past EOF → None
        assert_eq!(dfs.read_line_at(Phase::Load, "/l", 1000).unwrap(), None);
    }

    #[test]
    fn metrics_account_reads() {
        let cluster = Cluster::with_nodes(2);
        let dfs = Dfs::new(cluster, DfsConfig::small_blocks(1024)).unwrap();
        dfs.write_lines("/m", (0..100).map(|i| i.to_string()))
            .unwrap();
        let before = dfs
            .cluster()
            .metrics()
            .snapshot()
            .phase(Phase::Load)
            .disk_bytes_read;
        dfs.read_full(Phase::Load, "/m").unwrap();
        let after = dfs
            .cluster()
            .metrics()
            .snapshot()
            .phase(Phase::Load)
            .disk_bytes_read;
        assert_eq!(after - before, dfs.status("/m").unwrap().len);
        assert!(dfs.cluster().elapsed() > earl_cluster::SimDuration::ZERO);
    }

    #[test]
    fn failure_reconciliation_orphans_blocks() {
        // replication 1 so any node failure loses data
        let cluster = Cluster::builder()
            .nodes(2)
            .cost_model(earl_cluster::CostModel::free())
            .build()
            .unwrap();
        let dfs = Dfs::new(
            cluster,
            DfsConfig {
                block_size: 8,
                replication: 1,
                io_chunk: 8,
            },
        )
        .unwrap();
        dfs.write_lines("/ft", (0..40).map(|i| i.to_string()))
            .unwrap();
        assert!((dfs.readable_fraction("/ft").unwrap() - 1.0).abs() < 1e-12);
        // Fail node 0 and reconcile.
        dfs.cluster().fail_node(NodeId(0)).unwrap();
        let orphaned = dfs.reconcile_failures();
        let frac = dfs.readable_fraction("/ft").unwrap();
        if orphaned.is_empty() {
            assert!((frac - 1.0).abs() < 1e-12);
        } else {
            assert!(frac < 1.0);
            // Reading the whole file should now fail on an orphaned block.
            assert!(dfs.read_full(Phase::Load, "/ft").is_err());
        }
    }

    #[test]
    fn replication_survives_single_failure() {
        let cluster = Cluster::builder()
            .nodes(3)
            .cost_model(earl_cluster::CostModel::free())
            .build()
            .unwrap();
        let dfs = Dfs::new(
            cluster,
            DfsConfig {
                block_size: 16,
                replication: 2,
                io_chunk: 16,
            },
        )
        .unwrap();
        let lines: Vec<String> = (0..30).map(|i| format!("v{i}")).collect();
        dfs.write_lines("/r", &lines).unwrap();
        dfs.cluster().fail_node(NodeId(0)).unwrap();
        dfs.reconcile_failures();
        // With replication 2 over 3 nodes, all blocks should still be readable.
        assert!((dfs.readable_fraction("/r").unwrap() - 1.0).abs() < 1e-12);
        assert_eq!(dfs.read_all_lines(Phase::Load, "/r").unwrap(), lines);
    }

    #[test]
    fn writer_tracks_progress() {
        let dfs = dfs_with(1024, 1);
        let mut w = dfs.create("/p").unwrap();
        w.write_line("hello").unwrap();
        w.write_bytes(b"raw").unwrap();
        assert_eq!(w.records_written(), 1);
        assert_eq!(w.bytes_written(), 9);
        let status = w.close().unwrap();
        assert_eq!(status.len, 9);
    }

    #[test]
    fn bytes_on_node_matches_cluster_accounting() {
        let dfs = dfs_with(8, 2);
        dfs.write_lines("/acct", (0..20).map(|i| i.to_string()))
            .unwrap();
        let from_dfs: u64 = (0..2).map(|i| dfs.bytes_on_node(NodeId(i))).sum();
        let from_cluster: u64 = dfs.cluster().nodes().iter().map(|n| n.stored_bytes()).sum();
        assert_eq!(from_dfs, from_cluster);
    }
}
