//! # earl-dfs
//!
//! A simulated distributed file system modelled on HDFS, providing the storage
//! substrate the EARL paper relies on (§1, §2.1, §3.3 of Laptev et al., VLDB
//! 2012):
//!
//! * files are split into fixed-size **blocks** (64 MB by default) replicated
//!   across DataNodes;
//! * metadata (file → blocks, block → replica locations) lives on a dedicated
//!   **NameNode** structure, application data on **DataNodes** — mirroring the
//!   HDFS metadata/data split the paper describes;
//! * a **rebalancer** distributes blocks uniformly across DataNodes, the
//!   property EARL's sampling exploits;
//! * jobs read files through logical **input splits** and a
//!   **LineRecordReader** that backtracks to line boundaries, exactly the
//!   mechanism pre-map sampling (Algorithm 2 in the paper) piggybacks on.
//!
//! All I/O is charged to the shared [`earl_cluster::Cluster`] cost model, so the
//! simulated time reflects bytes actually touched.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod block;
pub mod datanode;
pub mod dfs;
pub mod error;
pub mod file;
pub mod line_reader;
pub mod namenode;
pub mod rebalancer;
pub mod split;

pub use block::{BlockId, DEFAULT_BLOCK_SIZE};
pub use dfs::{Dfs, DfsConfig};
pub use error::DfsError;
pub use file::{DfsPath, FileStatus};
pub use line_reader::LineRecordReader;
pub use namenode::BlockLocation;
pub use split::InputSplit;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, DfsError>;
