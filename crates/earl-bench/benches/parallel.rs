//! Benches for the parallel execution engine introduced in PR 1: the
//! bootstrap thread-pool scaling curve and parallel vs sequential MapReduce.
//!
//! The committed perf baseline (`BENCH_PR1.json`) is produced by the
//! `bench_pr1` binary; these benches track the same kernels under `cargo
//! bench` for regression hunting.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use earl_bench::BenchEnv;
use earl_bootstrap::bootstrap::{bootstrap_distribution, BootstrapConfig};
use earl_bootstrap::estimators::Mean;
use earl_bootstrap::rng::{seeded_rng, standard_normal};
use earl_mapreduce::{contrib, run_job, InputSource, JobConf};

fn million_values() -> Vec<f64> {
    let mut rng = seeded_rng(0xB00);
    (0..1_000_000)
        .map(|_| 100.0 + 10.0 * standard_normal(&mut rng))
        .collect()
}

/// Bootstrap B = 100 over 1M rows at 1, 2, 4 and 8 worker threads.
fn parallel_bootstrap_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_bootstrap_b100_n1m");
    group.sample_size(10);
    let data = million_values();
    for &threads in &[1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("threads", threads),
            &threads,
            |b, &threads| {
                let config = BootstrapConfig::with_resamples(100).with_parallelism(Some(threads));
                b.iter(|| bootstrap_distribution(1, &data, &Mean, &config).unwrap())
            },
        );
    }
    group.finish();
}

/// A wordcount-style job over DFS splits, sequential vs parallel.
fn parallel_wordcount(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_wordcount");
    group.sample_size(10);
    let env = BenchEnv::new(0xC0);
    let lines: Vec<String> = (0..100_000)
        .map(|i| {
            format!(
                "alpha bravo-{} charlie-{} delta echo-{}",
                i % 97,
                i % 31,
                i % 7
            )
        })
        .collect();
    env.dfs().write_lines("/wc", &lines).unwrap();
    for &threads in &[1usize, 8] {
        group.bench_with_input(
            BenchmarkId::new("threads", threads),
            &threads,
            |b, &threads| {
                let conf = JobConf::new("wc", InputSource::Path("/wc".into()))
                    .with_reducers(8)
                    .with_parallelism(Some(threads));
                b.iter(|| {
                    run_job(
                        env.dfs(),
                        &conf,
                        &contrib::TokenCountMapper,
                        &contrib::WordCountReducer,
                    )
                    .unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    parallel_benches,
    parallel_bootstrap_scaling,
    parallel_wordcount
);
criterion_main!(parallel_benches);
