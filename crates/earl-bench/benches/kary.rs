//! Benches for the k-ary count-based kernel introduced in PR 5: the
//! resample-free ratio/covariance/correlation bootstraps vs the gather path.
//!
//! The committed perf baseline (`BENCH_PR5.json`) is produced by the
//! `bench_pr5` binary; these benches track the same kernels under `cargo
//! bench` for regression hunting.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use earl_bootstrap::bootstrap::{bootstrap_distribution, BootstrapConfig, BootstrapKernel};
use earl_bootstrap::rng::{seeded_rng, standard_normal};
use earl_core::task::TaskEstimator;
use earl_core::tasks::{CorrelationTask, RatioTask, WeightedMeanTask};
use rand::Rng;

fn paired_records(n: usize) -> Vec<f64> {
    let mut rng = seeded_rng(0xEA21_5001);
    (0..n)
        .flat_map(|_| {
            let a = 500.0 + 100.0 * standard_normal(&mut rng);
            let b = 0.4 * a + 50.0 + 20.0 * rng.gen::<f64>();
            [a, b]
        })
        .collect()
}

/// Ratio bootstrap (B = 500) over 100k records: gather vs count-based.
fn kary_kernels_ratio(c: &mut Criterion) {
    let mut group = c.benchmark_group("kary_ratio_b500_n100k");
    group.sample_size(10);
    let data = paired_records(100_000);
    let task = RatioTask;
    let est = TaskEstimator::new(&task);
    for (name, kernel) in [
        ("gather", BootstrapKernel::Gather),
        ("count_based", BootstrapKernel::CountBased),
    ] {
        group.bench_with_input(BenchmarkId::new("kernel", name), &kernel, |b, &kernel| {
            let config = BootstrapConfig::with_resamples(500)
                .with_parallelism(Some(1))
                .with_kernel(kernel);
            b.iter(|| bootstrap_distribution(1, &data, &est, &config).unwrap())
        });
    }
    group.finish();
}

/// Count-based replicate cost across the k-ary task arities (k = 2 and 5).
fn kary_arity_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("kary_count_based_arity_n100k");
    group.sample_size(10);
    let data = paired_records(100_000);
    let wm = WeightedMeanTask;
    let corr = CorrelationTask;
    let weighted = TaskEstimator::new(&wm);
    let correlation = TaskEstimator::new(&corr);
    let config = BootstrapConfig::with_resamples(500)
        .with_parallelism(Some(1))
        .with_kernel(BootstrapKernel::CountBased);
    group.bench_function("weighted_mean_k2", |b| {
        b.iter(|| bootstrap_distribution(1, &data, &weighted, &config).unwrap())
    });
    group.bench_function("correlation_k5", |b| {
        b.iter(|| bootstrap_distribution(1, &data, &correlation, &config).unwrap())
    });
    group.finish();
}

criterion_group!(benches, kary_kernels_ratio, kary_arity_sweep);
criterion_main!(benches);
