//! Criterion benches — one group per paper figure.
//!
//! Each bench times the kernel that the corresponding figure exercises (the
//! full series themselves are produced by the `experiments` binary; these
//! benches confirm the kernels' real-time cost and track regressions).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use earl_bench::{figures, BenchEnv, Scale};
use earl_bootstrap::bootstrap::{bootstrap_distribution, BootstrapConfig};
use earl_bootstrap::delta::{optimal_y, IncrementalBootstrap, SketchConfig};
use earl_bootstrap::estimators::{Mean, Median};
use earl_bootstrap::ssabe::{Ssabe, SsabeConfig};
use earl_core::tasks::{approximate_kmeans, KmeansConfig, MeanTask, MedianTask};
use earl_core::{EarlConfig, EarlDriver};
use earl_sampling::{PostMapSampler, PreMapSampler, SampleSource};
use earl_workload::{KmeansDataset, KmeansSpec};

fn quick(c: &mut Criterion) -> criterion::BenchmarkGroup<'_, criterion::measurement::WallTime> {
    let mut group = c.benchmark_group("earl");
    group.sample_size(10);
    group
}

/// Fig. 2a/2b kernel: the Monte-Carlo bootstrap itself.
fn fig2_bootstrap_convergence(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_bootstrap_convergence");
    group.sample_size(10);
    let env = BenchEnv::new(1);
    let ds = env.standard_dataset("/b", 20_000, 1);
    for &b in &[10usize, 30, 100] {
        group.bench_with_input(BenchmarkId::new("bootstrap_B", b), &b, |bench, &b| {
            bench.iter(|| {
                bootstrap_distribution(
                    2,
                    &ds.values[..1_000],
                    &Mean,
                    &BootstrapConfig::with_resamples(b),
                )
                .unwrap()
            })
        });
    }
    for &n in &[500usize, 2_000, 8_000] {
        group.bench_with_input(BenchmarkId::new("bootstrap_n", n), &n, |bench, &n| {
            bench.iter(|| {
                bootstrap_distribution(
                    3,
                    &ds.values[..n],
                    &Mean,
                    &BootstrapConfig::with_resamples(30),
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

/// Fig. 3 kernel: the Eq. 4 optimal-overlap search.
fn fig3_intra_iteration(c: &mut Criterion) {
    let mut group = quick(c);
    group.bench_function("fig3_optimal_y_n200", |b| b.iter(|| optimal_y(200)));
    group.finish();
}

/// Fig. 5 kernel: a full EARL mean run (sampling + SSABE + AES) vs the exact job.
fn fig5_mean_speedup(c: &mut Criterion) {
    let mut group = quick(c);
    let env = BenchEnv::new(5);
    env.standard_dataset("/f5", 20_000, 5);
    let driver = EarlDriver::new(env.dfs().clone(), EarlConfig::default());
    group.bench_function("fig5_earl_mean", |b| {
        b.iter(|| driver.run("/f5", &MeanTask).unwrap())
    });
    group.bench_function("fig5_exact_mean", |b| {
        b.iter(|| driver.run_exact("/f5", &MeanTask).unwrap())
    });
    group.bench_function("fig5_series", |b| b.iter(|| figures::fig5(Scale::Quick)));
    group.finish();
}

/// Fig. 6 kernel: the approximate median with and without delta maintenance.
fn fig6_median(c: &mut Criterion) {
    let mut group = quick(c);
    let env = BenchEnv::new(6);
    env.standard_dataset("/f6", 20_000, 6);
    for (label, delta) in [("optimized", true), ("naive", false)] {
        let config = EarlConfig {
            delta_maintenance: delta,
            ..EarlConfig::default()
        };
        let driver = EarlDriver::new(env.dfs().clone(), config);
        group.bench_function(format!("fig6_median_{label}"), |b| {
            b.iter(|| driver.run("/f6", &MedianTask).unwrap())
        });
    }
    group.finish();
}

/// Fig. 7 kernel: approximate K-Means on a sampled point cloud.
fn fig7_kmeans(c: &mut Criterion) {
    let mut group = quick(c);
    let env = BenchEnv::new(7);
    let spec = KmeansSpec {
        num_points: 10_000,
        k: 4,
        dims: 2,
        cluster_std_dev: 1.5,
        centroid_spread: 200.0,
        seed: 7,
    };
    KmeansDataset::generate(env.dfs(), "/f7", &spec).unwrap();
    let earl_config = EarlConfig {
        bootstraps: Some(6),
        ..EarlConfig::default()
    };
    let kconfig = KmeansConfig {
        k: 4,
        max_iterations: 10,
        ..Default::default()
    };
    group.bench_function("fig7_approximate_kmeans", |b| {
        b.iter(|| approximate_kmeans(env.dfs(), "/f7", &earl_config, &kconfig).unwrap())
    });
    group.finish();
}

/// Fig. 8 kernel: the SSABE estimation procedure.
fn fig8_ssabe(c: &mut Criterion) {
    let mut group = quick(c);
    let env = BenchEnv::new(8);
    let ds = env.standard_dataset("/f8", 20_000, 8);
    let ssabe = Ssabe::new(SsabeConfig::new(0.05, 0.01)).unwrap();
    group.bench_function("fig8_ssabe_estimate", |b| {
        b.iter(|| {
            ssabe
                .estimate(9, &ds.values[..4_096], &Mean, 1_000_000_000)
                .unwrap()
        })
    });
    group.finish();
}

/// Fig. 9 kernel: pre-map vs post-map sampling.
fn fig9_sampling(c: &mut Criterion) {
    let mut group = quick(c);
    let env = BenchEnv::new(9);
    env.standard_dataset("/f9", 20_000, 9);
    group.bench_function("fig9_premap_draw_200", |b| {
        b.iter(|| {
            let mut s = PreMapSampler::new(env.dfs().clone(), "/f9", 1).unwrap();
            s.draw(200).unwrap()
        })
    });
    group.bench_function("fig9_postmap_draw_200", |b| {
        b.iter(|| {
            let mut s = PostMapSampler::new(env.dfs().clone(), "/f9", 1).unwrap();
            s.draw(200).unwrap()
        })
    });
    group.finish();
}

/// Fig. 10 kernel: incremental resample maintenance vs a fresh redraw.
fn fig10_delta_maintenance(c: &mut Criterion) {
    let mut group = quick(c);
    let env = BenchEnv::new(10);
    let ds = env.standard_dataset("/f10", 20_000, 10);
    group.bench_function("fig10_incremental_expand", |b| {
        b.iter(|| {
            let mut ib =
                IncrementalBootstrap::new(11, &ds.values[..4_000], 30, SketchConfig::default())
                    .unwrap();
            ib.expand(&ds.values[4_000..8_000]).unwrap();
            ib.evaluate(&Median)
        })
    });
    group.bench_function("fig10_fresh_rebuild", |b| {
        b.iter(|| {
            bootstrap_distribution(
                12,
                &ds.values[..8_000],
                &Median,
                &BootstrapConfig::with_resamples(30),
            )
            .unwrap()
        })
    });
    group.finish();
}

criterion_group!(
    figures_benches,
    fig2_bootstrap_convergence,
    fig3_intra_iteration,
    fig5_mean_speedup,
    fig6_median,
    fig7_kmeans,
    fig8_ssabe,
    fig9_sampling,
    fig10_delta_maintenance
);
criterion_main!(figures_benches);
