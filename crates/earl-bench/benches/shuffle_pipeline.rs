//! Benches for PR 2: sharded-shuffle thread scaling and the pipelined EARL
//! schedule vs the sequential one.
//!
//! The committed perf baseline (`BENCH_PR2.json`) is produced by the
//! `bench_pr2` binary; these benches track the same kernels under `cargo
//! bench` for regression hunting.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use earl_cluster::{Cluster, CostModel};
use earl_core::tasks::MeanTask;
use earl_core::{EarlConfig, EarlDriver};
use earl_dfs::{Dfs, DfsConfig};
use earl_mapreduce::{HashPartitioner, ShuffleOutput};
use earl_workload::{DatasetBuilder, DatasetSpec};

fn shuffle_pairs(n: u64) -> Vec<(u64, u64)> {
    let key_space = (n / 16).max(1);
    (0..n)
        .map(|i| (i.wrapping_mul(0x9E37_79B9_7F4A_7C15) % key_space, i))
        .collect()
}

/// Sharded shuffle of 1M pairs into 8 partitions at 1, 2, 4 and 8 threads.
fn sharded_shuffle_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("sharded_shuffle_1m_pairs");
    group.sample_size(10);
    let pairs = shuffle_pairs(1_000_000);
    for &threads in &[1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("threads", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    ShuffleOutput::shuffle_parallel(pairs.clone(), 8, &HashPartitioner, threads)
                })
            },
        );
    }
    group.finish();
}

/// A full EARL run, sequential schedule vs pipelined schedule.
fn pipelined_driver(c: &mut Criterion) {
    let mut group = c.benchmark_group("earl_driver_schedule");
    group.sample_size(10);
    for &depth in &[1usize, 2] {
        group.bench_with_input(
            BenchmarkId::new("pipeline_depth", depth),
            &depth,
            |b, &depth| {
                b.iter(|| {
                    let cluster = Cluster::builder()
                        .nodes(4)
                        .cost_model(CostModel::commodity_2012())
                        .seed(2)
                        .build()
                        .unwrap();
                    let dfs = Dfs::new(
                        cluster,
                        DfsConfig {
                            block_size: 1 << 16,
                            replication: 2,
                            io_chunk: 1024,
                        },
                    )
                    .unwrap();
                    DatasetBuilder::new(dfs.clone())
                        .build("/bench", &DatasetSpec::normal(60_000, 500.0, 400.0, 2))
                        .unwrap();
                    let config = EarlConfig {
                        pipeline_depth: depth,
                        sigma: 0.02,
                        bootstraps: Some(60),
                        sample_size: Some(400),
                        ..EarlConfig::default()
                    };
                    EarlDriver::new(dfs, config)
                        .run("/bench", &MeanTask)
                        .unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, sharded_shuffle_scaling, pipelined_driver);
criterion_main!(benches);
