//! Ablation benches for the design choices called out in DESIGN.md:
//! intra-iteration reuse on/off, sketch size, sampling strategies,
//! SSABE vs naive sizing, and pipelined vs batch iteration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use earl_bench::BenchEnv;
use earl_bootstrap::bootstrap::{bootstrap_distribution, BootstrapConfig};
use earl_bootstrap::delta::intra::shared_prefix_resamples;
use earl_bootstrap::delta::{IncrementalBootstrap, SketchConfig};
use earl_bootstrap::estimators::Mean;
use earl_bootstrap::jackknife::jackknife;
use earl_bootstrap::rng::seeded_rng;
use earl_core::tasks::MeanTask;
use earl_core::{EarlConfig, EarlDriver, SamplingMethod};
use earl_mapreduce::{contrib, InputSource, JobConf, PipelinedSession};
use earl_sampling::{block::block_sample, premap::premap_sample, reservoir::reservoir_sample};

/// Intra-iteration prefix reuse on/off (ablation of §4.2).
fn ablation_intra_onoff(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_intra_onoff");
    group.sample_size(10);
    let env = BenchEnv::new(20);
    let ds = env.standard_dataset("/ab1", 20_000, 20);
    for &y in &[0.0f64, 0.3] {
        group.bench_with_input(
            BenchmarkId::new("shared_prefix_y", format!("{y}")),
            &y,
            |b, &y| {
                let mut rng = seeded_rng(21);
                b.iter(|| shared_prefix_resamples(&mut rng, &ds.values[..2_000], 30, y))
            },
        );
    }
    group.finish();
}

/// Sketch-size constant `c` (ablation of the two-layer structure of §4.1).
fn ablation_sketch_c(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_sketch_c");
    group.sample_size(10);
    let env = BenchEnv::new(22);
    let ds = env.standard_dataset("/ab2", 20_000, 22);
    for &sketch_c in &[0.5f64, 4.0, 32.0] {
        group.bench_with_input(
            BenchmarkId::new("sketch_c", format!("{sketch_c}")),
            &sketch_c,
            |b, &cc| {
                b.iter(|| {
                    let mut ib = IncrementalBootstrap::new(
                        23,
                        &ds.values[..2_000],
                        30,
                        SketchConfig { c: cc },
                    )
                    .unwrap();
                    ib.expand(&ds.values[2_000..4_000]).unwrap();
                    ib.work()
                })
            },
        );
    }
    group.finish();
}

/// Pre-map vs block vs reservoir sampling at equal sample sizes.
fn ablation_sampling_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_sampling_strategies");
    group.sample_size(10);
    let env = BenchEnv::new(24);
    let ds = env.standard_dataset("/ab3", 20_000, 24);
    group.bench_function("premap_200", |b| {
        b.iter(|| premap_sample(env.dfs(), "/ab3", 200, 1).unwrap())
    });
    group.bench_function("block_one_split", |b| {
        b.iter(|| block_sample(env.dfs(), "/ab3", 1 << 14, 1, 1).unwrap())
    });
    group.bench_function("reservoir_200_in_memory", |b| {
        let mut rng = seeded_rng(25);
        b.iter(|| reservoir_sample(&mut rng, ds.values.iter().copied(), 200))
    });
    group.finish();
}

/// Bootstrap vs jackknife error estimation.
fn ablation_bootstrap_vs_jackknife(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_bootstrap_vs_jackknife");
    group.sample_size(10);
    let env = BenchEnv::new(26);
    let ds = env.standard_dataset("/ab4", 20_000, 26);
    group.bench_function("bootstrap_B30_n1000", |b| {
        b.iter(|| {
            bootstrap_distribution(
                27,
                &ds.values[..1_000],
                &Mean,
                &BootstrapConfig::with_resamples(30),
            )
            .unwrap()
        })
    });
    group.bench_function("jackknife_n1000", |b| {
        b.iter(|| jackknife(&ds.values[..1_000], &Mean).unwrap())
    });
    group.finish();
}

/// Pre-map vs post-map sampling inside the full driver.
fn ablation_driver_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_driver_sampling");
    group.sample_size(10);
    let env = BenchEnv::new(28);
    env.standard_dataset("/ab5", 20_000, 28);
    for (label, method) in [
        ("premap", SamplingMethod::PreMap),
        ("postmap", SamplingMethod::PostMap),
    ] {
        let driver = EarlDriver::new(
            env.dfs().clone(),
            EarlConfig {
                sampling: method,
                ..EarlConfig::default()
            },
        );
        group.bench_function(format!("driver_mean_{label}"), |b| {
            b.iter(|| driver.run("/ab5", &MeanTask).unwrap())
        });
    }
    group.finish();
}

/// Pipelined (task-reusing) vs batch iteration.
fn ablation_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_pipeline");
    group.sample_size(10);
    let env = BenchEnv::new(30);
    env.standard_dataset("/ab6", 10_000, 30);
    group.bench_function("pipelined_three_iterations", |b| {
        b.iter(|| {
            let mut session = PipelinedSession::new(env.dfs().clone());
            let conf = JobConf::new("mean", InputSource::Path("/ab6".into()));
            for _ in 0..3 {
                session
                    .run_iteration(&conf, &contrib::ValueExtractMapper, &contrib::MeanReducer)
                    .unwrap();
            }
        })
    });
    group.bench_function("batch_three_jobs", |b| {
        b.iter(|| {
            let conf = JobConf::new("mean", InputSource::Path("/ab6".into()));
            for _ in 0..3 {
                earl_mapreduce::run_job(
                    env.dfs(),
                    &conf,
                    &contrib::ValueExtractMapper,
                    &contrib::MeanReducer,
                )
                .unwrap();
            }
        })
    });
    group.finish();
}

criterion_group!(
    ablation_benches,
    ablation_intra_onoff,
    ablation_sketch_c,
    ablation_sampling_strategies,
    ablation_bootstrap_vs_jackknife,
    ablation_driver_sampling,
    ablation_pipeline
);
criterion_main!(ablation_benches);
