//! Shared experiment environment: a paper-like 5-node cluster, a DFS, and
//! dataset builders.

use earl_cluster::{Cluster, CostModel};
use earl_dfs::{Dfs, DfsConfig};
use earl_workload::dataset::GeneratedDataset;
use earl_workload::{DatasetBuilder, DatasetSpec};

/// How big the materialised experiment inputs are.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small inputs for Criterion benches and CI (seconds, not minutes).
    Quick,
    /// Larger inputs matching the experiment tables in `EXPERIMENTS.md`.
    Full,
}

impl Scale {
    /// Materialised record count used for the driver-based experiments.
    pub fn records(self) -> u64 {
        match self {
            Scale::Quick => 20_000,
            Scale::Full => 200_000,
        }
    }
}

/// A reusable experiment environment.
#[derive(Debug, Clone)]
pub struct BenchEnv {
    dfs: Dfs,
}

impl BenchEnv {
    /// Creates the paper-like environment: 5 nodes, 2 task slots each, the
    /// commodity-2012 cost model, 64 KiB blocks for the materialised data.
    pub fn new(seed: u64) -> Self {
        let cluster = Cluster::builder()
            .nodes(5)
            .task_slots(2)
            .cost_model(CostModel::commodity_2012())
            .seed(seed)
            .build()
            .expect("valid bench cluster");
        let dfs = Dfs::new(
            cluster,
            DfsConfig {
                block_size: 1 << 16,
                replication: 2,
                io_chunk: 256,
            },
        )
        .expect("valid bench dfs");
        Self { dfs }
    }

    /// The DFS (and through it the cluster) of this environment.
    pub fn dfs(&self) -> &Dfs {
        &self.dfs
    }

    /// Generates and writes the standard numeric dataset (normal, mean 500,
    /// σ 100 — the dispersion for which the paper reports "1 % sample and 30
    /// bootstraps" at a 5 % error bound).
    pub fn standard_dataset(&self, path: &str, records: u64, seed: u64) -> GeneratedDataset {
        DatasetBuilder::new(self.dfs.clone())
            .build(path, &DatasetSpec::normal(records, 500.0, 100.0, seed))
            .expect("dataset build")
    }

    /// Resets simulated time and metrics between measured runs (data and node
    /// state are preserved).
    pub fn reset(&self) {
        self.dfs.cluster().reset_accounting();
    }

    /// Simulated seconds elapsed on the cluster.
    pub fn elapsed_secs(&self) -> f64 {
        self.dfs.cluster().elapsed().as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_builds_and_datasets_materialise() {
        let env = BenchEnv::new(1);
        assert_eq!(env.dfs().cluster().num_nodes(), 5);
        let ds = env.standard_dataset("/bench", 5_000, 2);
        assert_eq!(ds.status.num_records, Some(5_000));
        assert!(env.elapsed_secs() > 0.0, "writing charges time");
        env.reset();
        assert_eq!(env.elapsed_secs(), 0.0);
        assert!(Scale::Full.records() > Scale::Quick.records());
    }
}
