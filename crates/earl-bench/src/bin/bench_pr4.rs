//! PR 4 perf baseline: map-side streaming shuffle + grouped per-key EARL
//! workloads.
//!
//! Measures, at threads ∈ {1, 2, 4, 8}:
//!
//! 1. **shuffle engines over the same map output** — the gather design
//!    (materialise an all-pairs vector, then `ShuffleOutput::shuffle_parallel`
//!    / `shard_merge`) vs the streaming design (mappers emit straight into
//!    per-shard buffers via `sharded_emit`, then
//!    `ShuffleOutput::shuffle_streaming`).  Both are timed end to end from the
//!    same pair generator and verified bit-identical to the sequential
//!    BTreeMap reference;
//! 2. **grouped EARL workloads** — `run_grouped` (per-key means with
//!    per-group bootstrap CIs) and the categorical `ProportionTask`, end to
//!    end through the driver.
//!
//! Writes `BENCH_PR4.json`.  Usage:
//!
//! ```text
//! bench_pr4 [--quick] [--check BASELINE.json] [output.json]
//! ```
//!
//! `--check` enforces (a) the same-run ordering gate — streaming throughput
//! at t=1 must be ≥ the gather/shard_merge design's at t=1, with a 10%
//! tolerance for timer noise (host-neutral: both timed moments apart on the
//! same machine) — and (b) a cross-host absolute-throughput gate vs the
//! checked-in baseline that self-disarms when the baseline's recorded
//! `host_cores` differs from the runner's.

use std::time::Instant;

use earl_cluster::{Cluster, CostModel};
use earl_core::tasks::ProportionTask;
use earl_core::{EarlConfig, EarlDriver, GroupedAggregate};
use earl_dfs::{Dfs, DfsConfig};
use earl_mapreduce::partition::Partitioner;
use earl_mapreduce::{HashPartitioner, ShuffleOutput};
use earl_parallel::sharded_emit;
use earl_workload::{CategoricalSpec, DatasetBuilder, GroupedSpec};

const THREADS: [usize; 4] = [1, 2, 4, 8];
/// Same-run ordering-gate tolerance: streaming must be ≥ 0.9× gather at t=1.
const ORDERING_TOLERANCE: f64 = 0.10;
/// Cross-host throughput-gate tolerance vs the committed baseline.
const MAX_REGRESSION: f64 = 0.20;

fn median_secs(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

fn time_n<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut out = None;
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = Instant::now();
        out = Some(f());
        samples.push(t0.elapsed().as_secs_f64());
    }
    (median_secs(samples), out.expect("at least one rep"))
}

/// Extracts the number following `"key":` in a flat-enough JSON document (no
/// serde_json in the build).
fn extract_f64(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() {
    let mut quick = false;
    let mut check_baseline: Option<String> = None;
    let mut out_path = "BENCH_PR4.json".to_owned();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--check" => {
                check_baseline = Some(args.next().expect("--check needs a baseline path"));
            }
            other => out_path = other.to_owned(),
        }
    }
    if check_baseline.as_deref() == Some(out_path.as_str()) {
        eprintln!(
            "error: output path {out_path:?} equals the --check baseline — pass a distinct \
             output path (e.g. BENCH_PR4_CI.json) so the baseline is not overwritten"
        );
        std::process::exit(2);
    }

    let reps = if quick { 3 } else { 5 };
    let tasks: usize = if quick { 64 } else { 128 };
    let pairs_per_task: usize = if quick { 6_250 } else { 15_625 };
    let grouped_records: u64 = if quick { 10_000 } else { 25_000 };
    let partitions = 8usize;
    let n = tasks * pairs_per_task;
    let key_space = (n / 16).max(1) as u64;

    // One pair generator feeds every engine: pair j of task t is a pure
    // function of (t, j), so the gather and streaming designs process the
    // exact same logical map output.
    let gen = |task: usize, j: usize| -> (u64, u64) {
        let i = (task * pairs_per_task + j) as u64;
        (i.wrapping_mul(0x9E37_79B9_7F4A_7C15) % key_space, i)
    };

    eprintln!("shuffle: {tasks} map tasks x {pairs_per_task} pairs, {key_space} keys, {partitions} partitions");

    // Sequential BTreeMap reference: the correctness oracle.
    let (seq_secs, reference_out) = time_n(reps, || {
        let mut all_pairs = Vec::new();
        for t in 0..tasks {
            for j in 0..pairs_per_task {
                all_pairs.push(gen(t, j));
            }
        }
        ShuffleOutput::shuffle(all_pairs, partitions, &HashPartitioner)
    });
    let reference = reference_out.into_partitions();
    eprintln!(
        "  sequential reference: {seq_secs:.3}s ({:.2} Mpairs/s)",
        n as f64 / seq_secs / 1e6
    );

    let mut rows = Vec::new();
    let mut sharded_t1 = f64::INFINITY;
    let mut streaming_t1 = f64::INFINITY;
    for &threads in &THREADS {
        // Gather design: concatenate all tasks' pairs, then shard + merge.
        let (sharded_s, out) = time_n(reps, || {
            let mut all_pairs = Vec::new();
            for t in 0..tasks {
                for j in 0..pairs_per_task {
                    all_pairs.push(gen(t, j));
                }
            }
            ShuffleOutput::shuffle_parallel(all_pairs, partitions, &HashPartitioner, threads)
        });
        assert_eq!(
            out.into_partitions(),
            reference,
            "sharded shuffle must be bit-identical at {threads} threads"
        );

        // Streaming design: each task emits straight into per-shard buffers.
        let (streaming_s, out) = time_n(reps, || {
            let (_, buffers) = sharded_emit(tasks, partitions, threads, |t, buf| {
                for j in 0..pairs_per_task {
                    let (key, value) = gen(t, j);
                    let shard = HashPartitioner.partition(&key, partitions);
                    buf.emit(shard, (key, value));
                }
            });
            ShuffleOutput::shuffle_streaming(buffers, threads)
        });
        assert_eq!(
            out.into_partitions(),
            reference,
            "streaming shuffle must be bit-identical at {threads} threads"
        );

        if threads == 1 {
            sharded_t1 = sharded_s;
            streaming_t1 = streaming_s;
        }
        let ratio = sharded_s / streaming_s;
        eprintln!(
            "  {threads} thread(s): gather+shard {sharded_s:.3}s, streaming {streaming_s:.3}s ({ratio:.2}x, bit-identical)"
        );
        rows.push(format!(
            r#"      {{ "threads": {threads}, "sharded_s": {sharded_s:.4}, "streaming_s": {streaming_s:.4}, "streaming_speedup": {ratio:.3} }}"#
        ));
    }
    let streaming_t1_mpairs = n as f64 / streaming_t1 / 1e6;

    // ---- kernel 2: grouped EARL workloads ---------------------------------
    eprintln!("grouped: per-key means over 5 groups x {grouped_records} records + proportion over 3 categories");
    let make_dfs = || {
        let cluster = Cluster::builder()
            .nodes(4)
            .cost_model(CostModel::commodity_2012())
            .seed(4)
            .build()
            .unwrap();
        Dfs::new(
            cluster,
            DfsConfig {
                block_size: 1 << 16,
                replication: 2,
                io_chunk: 1024,
            },
        )
        .unwrap()
    };

    let (grouped_s, grouped_report) = time_n(reps, || {
        let dfs = make_dfs();
        DatasetBuilder::new(dfs.clone())
            .build_grouped(
                "/bench-grouped",
                &GroupedSpec::normal_groups(5, grouped_records, 100.0, 0.3, 4),
            )
            .unwrap();
        let config = EarlConfig {
            bootstraps: Some(100),
            ..EarlConfig::default()
        };
        EarlDriver::new(dfs, config)
            .run_grouped("/bench-grouped", &GroupedAggregate::mean())
            .unwrap()
    });
    assert!(grouped_report.meets_bound());
    eprintln!(
        "  grouped mean: {grouped_s:.3}s ({} groups, {} iteration(s), all bounds met)",
        grouped_report.groups.len(),
        grouped_report.iterations
    );

    let (proportion_s, proportion_report) = time_n(reps, || {
        let dfs = make_dfs();
        DatasetBuilder::new(dfs.clone())
            .build_categorical(
                "/bench-cat",
                &CategoricalSpec {
                    categories: vec![("a".into(), 0.5), ("b".into(), 0.3), ("c".into(), 0.2)],
                    num_records: grouped_records * 5,
                    seed: 4,
                },
            )
            .unwrap();
        let config = EarlConfig {
            bootstraps: Some(100),
            ..EarlConfig::default()
        };
        EarlDriver::new(dfs, config)
            .run("/bench-cat", &ProportionTask::new("b"))
            .unwrap()
    });
    assert!(proportion_report.meets_bound());
    eprintln!(
        "  proportion: {proportion_s:.3}s (cv {:.4}, {:.1}% sample)",
        proportion_report.error_estimate,
        100.0 * proportion_report.sample_fraction
    );

    // ---- baseline file ----------------------------------------------------
    let json = format!(
        r#"{{
  "pr": 4,
  "description": "Map-side streaming shuffle vs gather+shard_merge, plus grouped per-key EARL workloads (median of {reps} runs, release build)",
  "note": "shuffle rows time the full path from one pair generator: gather = build all-pairs vector then shard_merge; streaming = emit into per-shard buffers then merge. rows are verified bit-identical to the sequential BTreeMap reference before timing. streaming_t1_mpairs_per_s is the cross-host gate ({gate}% tolerance, host_cores-aware); the same-run gate requires streaming >= gather at t=1 within {ord}%.",
  "host_cores": {cores},
  "quick": {quick},
  "shuffle": {{
    "tasks": {tasks},
    "pairs_per_task": {pairs_per_task},
    "pairs": {n},
    "keys": {key_space},
    "partitions": {partitions},
    "sequential_reference_s": {seq_secs:.4},
    "streaming_t1_mpairs_per_s": {streaming_t1_mpairs:.3},
    "scaling": [
{rows}
    ],
    "bit_identical": true
  }},
  "grouped": {{
    "groups": {ngroups},
    "records_per_group": {grouped_records},
    "grouped_mean_s": {grouped_s:.4},
    "grouped_iterations": {grouped_iters},
    "proportion_s": {proportion_s:.4},
    "proportion_cv": {prop_cv:.6},
    "all_bounds_met": true
  }}
}}
"#,
        gate = (MAX_REGRESSION * 100.0) as u32,
        ord = (ORDERING_TOLERANCE * 100.0) as u32,
        cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        rows = rows.join(",\n"),
        ngroups = grouped_report.groups.len(),
        grouped_iters = grouped_report.iterations,
        prop_cv = proportion_report.error_estimate,
    );
    std::fs::write(&out_path, &json).expect("write baseline file");
    eprintln!("wrote {out_path}");
    println!("{json}");

    // ---- regression gates -------------------------------------------------
    if let Some(baseline_path) = check_baseline {
        let mut failed = false;

        // Gate 1 (host-neutral, same run): the streaming design must not be
        // slower than the gather design it replaces — it does strictly less
        // work (no all-pairs vector).  10% tolerance for timer noise.
        let ceiling = sharded_t1 * (1.0 + ORDERING_TOLERANCE);
        eprintln!(
            "check: t=1 streaming {streaming_t1:.4}s vs gather+shard {sharded_t1:.4}s (ceiling {ceiling:.4}s, same machine)"
        );
        if streaming_t1 > ceiling {
            eprintln!(
                "FAIL: streaming shuffle is more than {}% slower than the gather design at t=1",
                (ORDERING_TOLERANCE * 100.0) as u32
            );
            failed = true;
        }

        // Gate 2 (cross-host): absolute streaming throughput vs the committed
        // baseline, armed only when the recorded host_cores matches.
        let baseline = std::fs::read_to_string(&baseline_path)
            .unwrap_or_else(|e| panic!("read baseline {baseline_path}: {e}"));
        let current_cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let baseline_cores = extract_f64(&baseline, "host_cores").map(|c| c as usize);
        match baseline_cores {
            Some(bc) if bc != current_cores => {
                eprintln!(
                    "check: skipping cross-host throughput gate — baseline recorded on a \
                     {bc}-core host, this run has {current_cores} cores (same-run gate above \
                     still enforced; re-baseline to re-arm)"
                );
            }
            _ => {
                let baseline_mpairs = extract_f64(&baseline, "streaming_t1_mpairs_per_s")
                    .expect("baseline missing streaming_t1_mpairs_per_s");
                let floor = baseline_mpairs * (1.0 - MAX_REGRESSION);
                eprintln!(
                    "check: t=1 streaming {streaming_t1_mpairs:.3} Mpairs/s vs baseline {baseline_mpairs:.3} (floor {floor:.3})"
                );
                if streaming_t1_mpairs < floor {
                    eprintln!(
                        "FAIL: streaming shuffle throughput regressed more than {}% vs {baseline_path}",
                        (MAX_REGRESSION * 100.0) as u32
                    );
                    failed = true;
                }
            }
        }

        if failed {
            std::process::exit(1);
        }
        eprintln!("check: OK");
    }
}
