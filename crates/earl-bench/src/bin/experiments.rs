//! Regenerates the paper's evaluation figures as tables on stdout.
//!
//! ```text
//! experiments [figure ...] [--full]
//!
//!   figure   any of: fig2a fig2b fig3 fig5 fig6 fig7 fig8 fig9 fig10 all
//!            (default: all)
//!   --full   use the larger experiment scale recorded in EXPERIMENTS.md
//! ```

use earl_bench::figures;
use earl_bench::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if args.iter().any(|a| a == "--full") {
        Scale::Full
    } else {
        Scale::Quick
    };
    let requested: Vec<&str> = args
        .iter()
        .map(String::as_str)
        .filter(|a| !a.starts_with("--"))
        .collect();

    let run_all = requested.is_empty() || requested.contains(&"all");
    let wants = |name: &str| run_all || requested.contains(&name);

    println!("EARL experiment harness (scale: {scale:?})\n");
    if wants("fig2a") {
        println!("{}", figures::fig2a(scale));
    }
    if wants("fig2b") {
        println!("{}", figures::fig2b(scale));
    }
    if wants("fig3") {
        println!("{}", figures::fig3());
    }
    if wants("fig5") {
        println!("{}", figures::fig5(scale));
    }
    if wants("fig6") {
        println!("{}", figures::fig6(scale));
    }
    if wants("fig7") {
        println!("{}", figures::fig7(scale));
    }
    if wants("fig8") {
        println!("{}", figures::fig8(scale));
    }
    if wants("fig9") {
        println!("{}", figures::fig9(scale));
    }
    if wants("fig10") {
        println!("{}", figures::fig10(scale));
    }
}
