//! PR 2 perf baseline: sharded parallel shuffle + pipelined EARL iterations.
//!
//! Measures, at threads ∈ {1, 2, 4, 8}:
//!
//! 1. **sharded shuffle** throughput (`ShuffleOutput::shuffle_parallel` over a
//!    synthetic map output), verified bit-identical to the sequential BTreeMap
//!    reference at every thread count;
//! 2. **end-to-end EARL iterations**, sequential schedule (`pipeline_depth=1`)
//!    vs pipelined (`pipeline_depth=2`, AES of iteration *i* overlapped with
//!    the map phase of iteration *i+1*), verified to deliver identical
//!    reports.
//!
//! Writes `BENCH_PR2.json` (see the README for how to read the thread-scaling
//! table).  Usage:
//!
//! ```text
//! bench_pr2 [--quick] [--check BASELINE.json] [output.json]
//! ```
//!
//! `--quick` shrinks the workload for CI smoke runs; `--check` enforces two
//! 20%-regression gates and exits non-zero if either trips: single-thread
//! sharded shuffle vs the sequential reference timed in the same run
//! (host-neutral), and absolute single-thread throughput vs the checked-in
//! baseline (cross-host; re-baseline by regenerating the file).

use std::time::Instant;

use earl_cluster::{Cluster, CostModel};
use earl_core::tasks::MeanTask;
use earl_core::{EarlConfig, EarlDriver};
use earl_dfs::{Dfs, DfsConfig};
use earl_mapreduce::{HashPartitioner, ShuffleOutput};
use earl_workload::{DatasetBuilder, DatasetSpec};

const THREADS: [usize; 4] = [1, 2, 4, 8];
/// Tolerated single-thread shuffle throughput regression vs. the baseline.
const MAX_REGRESSION: f64 = 0.20;

fn median_secs(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

fn time_n<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut out = None;
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = Instant::now();
        out = Some(f());
        samples.push(t0.elapsed().as_secs_f64());
    }
    (median_secs(samples), out.expect("at least one rep"))
}

/// Extracts the number following `"key":` in a flat-enough JSON document.
/// Good for the handful of fields this binary reads back from its own output;
/// not a JSON parser (the build has no serde_json).
fn extract_f64(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() {
    let mut quick = false;
    let mut check_baseline: Option<String> = None;
    let mut out_path = "BENCH_PR2.json".to_owned();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--check" => {
                check_baseline = Some(args.next().expect("--check needs a baseline path"));
            }
            other => out_path = other.to_owned(),
        }
    }
    // Writing happens before the gate reads the baseline: the same path for
    // both would clobber the committed baseline and turn the cross-host gate
    // into a self-comparison that always passes.
    if check_baseline.as_deref() == Some(out_path.as_str()) {
        eprintln!(
            "error: output path {out_path:?} equals the --check baseline — pass a distinct \
             output path (e.g. BENCH_PR2_CI.json) so the baseline is not overwritten"
        );
        std::process::exit(2);
    }

    let reps = if quick { 3 } else { 5 };
    let shuffle_pairs: usize = if quick { 400_000 } else { 2_000_000 };
    let pipeline_records: u64 = if quick { 60_000 } else { 200_000 };
    let partitions = 8usize;

    // ---- kernel 1: sharded shuffle ----------------------------------------
    // Synthetic map output: u64 keys over a key space 1/16th the pair count
    // (so groups average 16 values), u64 values.
    let key_space = (shuffle_pairs / 16).max(1) as u64;
    let pairs: Vec<(u64, u64)> = (0..shuffle_pairs as u64)
        .map(|i| (i.wrapping_mul(0x9E37_79B9_7F4A_7C15) % key_space, i))
        .collect();
    eprintln!("shuffle: {shuffle_pairs} pairs, {key_space} keys, {partitions} partitions");

    // The sequential BTreeMap reference, timed in the same process: the
    // correctness oracle for every thread count AND the host-neutral yardstick
    // for the regression gate (same machine, same run — immune to CI runner
    // hardware drift, unlike the cross-host baseline comparison).
    let (seq_ref_secs, reference_out) = time_n(reps, || {
        ShuffleOutput::shuffle(pairs.clone(), partitions, &HashPartitioner)
    });
    let reference = reference_out.into_partitions();
    eprintln!(
        "  sequential reference: {seq_ref_secs:.3}s ({:.2} Mpairs/s)",
        shuffle_pairs as f64 / seq_ref_secs / 1e6
    );

    let mut shuffle_rows = Vec::new();
    let mut shuffle_t1_mpairs = 0.0;
    let mut shuffle_t1_secs = f64::INFINITY;
    for &threads in &THREADS {
        let (secs, out) = time_n(reps, || {
            ShuffleOutput::shuffle_parallel(pairs.clone(), partitions, &HashPartitioner, threads)
        });
        assert_eq!(
            out.into_partitions(),
            reference,
            "sharded shuffle must be bit-identical at {threads} threads"
        );
        let mpairs = shuffle_pairs as f64 / secs / 1e6;
        if threads == 1 {
            shuffle_t1_mpairs = mpairs;
            shuffle_t1_secs = secs;
        }
        eprintln!("  {threads} thread(s): {secs:.3}s  ({mpairs:.2} Mpairs/s, bit-identical)");
        shuffle_rows.push(format!(
            r#"      {{ "threads": {threads}, "seconds": {secs:.4}, "mpairs_per_s": {mpairs:.3} }}"#
        ));
    }

    // ---- kernel 2: pipelined EARL iterations ------------------------------
    eprintln!("pipeline: EARL mean over {pipeline_records} records, sigma=0.02");
    let run_driver = |threads: usize, depth: usize| {
        let cluster = Cluster::builder()
            .nodes(4)
            .cost_model(CostModel::commodity_2012())
            .seed(2)
            .build()
            .unwrap();
        let dfs = Dfs::new(
            cluster,
            DfsConfig {
                block_size: 1 << 16,
                replication: 2,
                io_chunk: 1024,
            },
        )
        .unwrap();
        DatasetBuilder::new(dfs.clone())
            .build(
                "/bench",
                &DatasetSpec::normal(pipeline_records, 500.0, 400.0, 2),
            )
            .unwrap();
        let config = EarlConfig {
            parallelism: Some(threads),
            pipeline_depth: depth,
            sigma: 0.02,
            // Start small so several expansion iterations run — the schedule
            // being measured is the iterative loop, not SSABE's first guess.
            bootstraps: Some(60),
            sample_size: Some(400),
            ..EarlConfig::default()
        };
        EarlDriver::new(dfs, config)
            .run("/bench", &MeanTask)
            .unwrap()
    };

    let mut pipeline_rows = Vec::new();
    for &threads in &THREADS {
        let (seq_s, seq_report) = time_n(reps, || run_driver(threads, 1));
        let (pipe_s, pipe_report) = time_n(reps, || run_driver(threads, 2));
        assert_eq!(
            seq_report.result, pipe_report.result,
            "pipelined schedule must deliver the sequential result"
        );
        assert_eq!(seq_report.iterations, pipe_report.iterations);
        assert_eq!(seq_report.sample_size, pipe_report.sample_size);
        let speedup = seq_s / pipe_s;
        eprintln!(
            "  {threads} thread(s): sequential {seq_s:.3}s, pipelined {pipe_s:.3}s ({speedup:.2}x, {} iterations, identical results)",
            seq_report.iterations
        );
        pipeline_rows.push(format!(
            r#"      {{ "threads": {threads}, "sequential_s": {seq_s:.4}, "pipelined_s": {pipe_s:.4}, "overlap_speedup": {speedup:.2}, "iterations": {} }}"#,
            seq_report.iterations
        ));
    }

    // ---- baseline file ----------------------------------------------------
    let json = format!(
        r#"{{
  "pr": 2,
  "description": "Sharded parallel shuffle + pipelined EARL iterations (median of {reps} runs, release build)",
  "note": "thread-scaling rows are wall-clock; speedups are bounded by host_cores (a 1-core host cannot scale). shuffle rows are verified bit-identical to the sequential BTreeMap path; pipeline rows are verified to deliver identical reports at depth 1 and 2. threads_1_mpairs_per_s is the bench-smoke regression gate ({gate}% tolerance).",
  "host_cores": {cores},
  "quick": {quick},
  "shuffle": {{
    "pairs": {shuffle_pairs},
    "keys": {key_space},
    "partitions": {partitions},
    "sequential_reference_s": {seq_ref_secs:.4},
    "threads_1_mpairs_per_s": {shuffle_t1_mpairs:.3},
    "scaling": [
{shuffle_table}
    ],
    "bit_identical": true
  }},
  "pipeline": {{
    "records": {pipeline_records},
    "sigma": 0.02,
    "scaling": [
{pipeline_table}
    ],
    "identical_results": true
  }}
}}
"#,
        gate = (MAX_REGRESSION * 100.0) as u32,
        cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        shuffle_table = shuffle_rows.join(",\n"),
        pipeline_table = pipeline_rows.join(",\n"),
    );
    std::fs::write(&out_path, &json).expect("write baseline file");
    eprintln!("wrote {out_path}");
    println!("{json}");

    // ---- regression gates -------------------------------------------------
    if let Some(baseline_path) = check_baseline {
        let mut failed = false;

        // Gate 1 (host-neutral, same run): shuffle_parallel at 1 thread IS the
        // sequential path plus its dispatch — if it runs >20% slower than the
        // sequential reference timed moments ago on the same machine, the
        // sharded entry point has grown real overhead.  This comparison cannot
        // be perturbed by CI runner hardware.
        let overhead_ceiling = seq_ref_secs * (1.0 + MAX_REGRESSION);
        eprintln!(
            "check: single-thread sharded {shuffle_t1_secs:.4}s vs sequential reference {seq_ref_secs:.4}s (ceiling {overhead_ceiling:.4}s, same machine)"
        );
        if shuffle_t1_secs > overhead_ceiling {
            eprintln!(
                "FAIL: single-thread sharded shuffle is more than {}% slower than the sequential reference in the same run",
                (MAX_REGRESSION * 100.0) as u32
            );
            failed = true;
        }

        // Gate 2 (cross-host): absolute throughput vs the checked-in baseline.
        // The committed BENCH_PR2.json records its host_cores; a throughput
        // comparison against a baseline recorded on different hardware is
        // noise, so the gate only arms when the recorded and current core
        // counts match (the same-run gate above is always enforced).
        // Re-baseline by regenerating the file when runner hardware changes
        // legitimately.
        let baseline = std::fs::read_to_string(&baseline_path)
            .unwrap_or_else(|e| panic!("read baseline {baseline_path}: {e}"));
        let current_cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let baseline_cores = extract_f64(&baseline, "host_cores").map(|c| c as usize);
        match baseline_cores {
            Some(bc) if bc != current_cores => {
                eprintln!(
                    "check: skipping cross-host throughput gate — baseline recorded on a \
                     {bc}-core host, this run has {current_cores} cores (same-run gate above \
                     still enforced; re-baseline to re-arm)"
                );
            }
            _ => {
                let baseline_mpairs = extract_f64(&baseline, "threads_1_mpairs_per_s")
                    .expect("baseline missing threads_1_mpairs_per_s");
                let floor = baseline_mpairs * (1.0 - MAX_REGRESSION);
                eprintln!(
                    "check: single-thread shuffle {shuffle_t1_mpairs:.3} Mpairs/s vs baseline {baseline_mpairs:.3} (floor {floor:.3})"
                );
                if shuffle_t1_mpairs < floor {
                    eprintln!(
                        "FAIL: single-thread shuffle throughput regressed more than {}% vs {baseline_path}",
                        (MAX_REGRESSION * 100.0) as u32
                    );
                    failed = true;
                }
            }
        }

        if failed {
            std::process::exit(1);
        }
        eprintln!("check: OK");
    }
}
