//! PR 1 perf baseline: parallel, allocation-free execution engine.
//!
//! Measures the two kernels the PR parallelised —
//!
//! 1. Monte-Carlo bootstrap, B = 100 over a 1M-row sample (the accuracy
//!    estimation hot path), at 1 thread vs. 8 threads;
//! 2. a wordcount-style MapReduce job over generated DFS splits, sequential
//!    vs. parallel task execution —
//!
//! verifies that the parallel results are bit-identical to the sequential
//! ones, and writes `BENCH_PR1.json` so future PRs have a perf trajectory to
//! compare against.  Usage: `cargo run --release -p earl-bench --bin bench_pr1
//! [output.json]`.

use std::time::Instant;

use earl_bench::BenchEnv;
use earl_bootstrap::bootstrap::{bootstrap_distribution, BootstrapConfig};
use earl_bootstrap::estimators::Mean;
use earl_bootstrap::rng::{seeded_rng, standard_normal};
use earl_mapreduce::{contrib, run_job, InputSource, JobConf};

const BOOTSTRAP_B: usize = 100;
const BOOTSTRAP_N: usize = 1_000_000;
const WORDCOUNT_LINES: usize = 100_000;
const PARALLEL_THREADS: usize = 8;

fn median_secs(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[samples.len() / 2]
}

fn time_n<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut out = None;
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = Instant::now();
        out = Some(f());
        samples.push(t0.elapsed().as_secs_f64());
    }
    (median_secs(samples), out.expect("at least one rep"))
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_PR1.json".to_owned());

    // ---- kernel 1: bootstrap B=100 over 1M rows ---------------------------
    let mut rng = seeded_rng(0xB00);
    let data: Vec<f64> = (0..BOOTSTRAP_N)
        .map(|_| 100.0 + 10.0 * standard_normal(&mut rng))
        .collect();
    eprintln!("bootstrap: B={BOOTSTRAP_B} over n={BOOTSTRAP_N} rows");

    let sequential_config = BootstrapConfig::with_resamples(BOOTSTRAP_B).with_parallelism(Some(1));
    let (boot_seq_s, seq_result) = time_n(3, || {
        bootstrap_distribution(1, &data, &Mean, &sequential_config).unwrap()
    });
    eprintln!("  1 thread : {boot_seq_s:.3}s");

    let parallel_config =
        BootstrapConfig::with_resamples(BOOTSTRAP_B).with_parallelism(Some(PARALLEL_THREADS));
    let (boot_par_s, par_result) = time_n(3, || {
        bootstrap_distribution(1, &data, &Mean, &parallel_config).unwrap()
    });
    eprintln!("  {PARALLEL_THREADS} threads: {boot_par_s:.3}s");

    assert_eq!(
        seq_result, par_result,
        "parallel bootstrap must be bit-identical"
    );
    let boot_speedup = boot_seq_s / boot_par_s;
    eprintln!("  speedup  : {boot_speedup:.2}x (bit-identical results)");

    // ---- kernel 2: wordcount over generated splits ------------------------
    let env = BenchEnv::new(0xC0);
    let lines: Vec<String> = (0..WORDCOUNT_LINES)
        .map(|i| {
            format!(
                "alpha bravo-{} charlie-{} delta echo-{}",
                i % 97,
                i % 31,
                i % 7
            )
        })
        .collect();
    env.dfs().write_lines("/wc", &lines).unwrap();
    let splits = env.dfs().default_splits("/wc").unwrap().len();
    eprintln!("wordcount: {WORDCOUNT_LINES} lines over {splits} splits, 8 reducers");

    let wc_conf = |threads: usize| {
        JobConf::new("wc", InputSource::Path("/wc".into()))
            .with_reducers(8)
            .with_parallelism(Some(threads))
    };
    let (wc_seq_s, wc_seq) = time_n(3, || {
        run_job(
            env.dfs(),
            &wc_conf(1),
            &contrib::TokenCountMapper,
            &contrib::WordCountReducer,
        )
        .unwrap()
    });
    eprintln!("  1 thread : {wc_seq_s:.3}s");
    let (wc_par_s, wc_par) = time_n(3, || {
        run_job(
            env.dfs(),
            &wc_conf(PARALLEL_THREADS),
            &contrib::TokenCountMapper,
            &contrib::WordCountReducer,
        )
        .unwrap()
    });
    eprintln!("  {PARALLEL_THREADS} threads: {wc_par_s:.3}s");

    assert_eq!(
        wc_seq.outputs, wc_par.outputs,
        "parallel wordcount must match sequential"
    );
    assert_eq!(
        wc_seq.counters, wc_par.counters,
        "parallel counters must match sequential"
    );
    let wc_speedup = wc_seq_s / wc_par_s;
    eprintln!("  speedup  : {wc_speedup:.2}x (identical outputs and counters)");

    // ---- baseline file ----------------------------------------------------
    let json = format!(
        r#"{{
  "pr": 1,
  "description": "Parallel, allocation-free execution engine baseline (median of 3 runs, release build)",
  "note": "speedup is bounded by host_cores: on a single-core host extra threads only add scheduling overhead; the >=4x bootstrap target applies to hosts with >=8 cores. Results are bit-identical at every thread count.",
  "host_cores": {cores},
  "bootstrap_b100_n1m": {{
    "b": {b},
    "n": {n},
    "threads_1_s": {boot_seq_s:.4},
    "threads_{threads}_s": {boot_par_s:.4},
    "speedup": {boot_speedup:.2},
    "bit_identical": true
  }},
  "wordcount_100k_lines": {{
    "lines": {lines_n},
    "splits": {splits},
    "reducers": 8,
    "threads_1_s": {wc_seq_s:.4},
    "threads_{threads}_s": {wc_par_s:.4},
    "speedup": {wc_speedup:.2},
    "identical_outputs": true
  }}
}}
"#,
        cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        b = BOOTSTRAP_B,
        n = BOOTSTRAP_N,
        threads = PARALLEL_THREADS,
        lines_n = WORDCOUNT_LINES,
    );
    std::fs::write(&out_path, &json).expect("write baseline file");
    eprintln!("wrote {out_path}");
    println!("{json}");
}
